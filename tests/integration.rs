//! Cross-crate integration tests: full workloads through the full
//! simulated machine, eager-vs-lazy equivalence, and end-to-end figure
//! harness smoke checks.

use mcs_sim::addr::PhysAddr;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::micro::{copy_latency, seq_access};
use mcs_workloads::CopyMech;
use mcsquare::{McSquareConfig, McSquareEngine};

fn run_gen(
    g: mcs_workloads::micro::Generated,
    cfg: SystemConfig,
    mc2: Option<McSquareConfig>,
) -> (System, mcs_sim::stats::RunStats) {
    let mut sys = match mc2 {
        Some(m) => {
            let e = McSquareEngine::new(m, cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(g.uops))], Box::new(e))
        }
        None => System::new(cfg, vec![Box::new(FixedProgram::new(g.uops))]),
    };
    g.pokes.apply(&mut sys);
    let stats = sys.run(5_000_000_000).expect("finishes");
    (sys, stats)
}

#[test]
fn fig10_shape_lazy_beats_eager_at_large_sizes() {
    // The headline claim at one size: a 64 KB lazy copy completes much
    // faster than the eager one (the data isn't moved yet), and remains
    // correct when later accessed.
    let mut space = AddrSpace::dram_3gb();
    let eager = copy_latency(CopyMech::Native, 64 * 1024, false, &mut space);
    let (_, se) = run_gen(eager, SystemConfig::table1_one_core(), None);
    let te = marker_latencies(&se.cores[0])[0];

    let mut space = AddrSpace::dram_3gb();
    let lazy = copy_latency(CopyMech::McSquare { threshold: 0 }, 64 * 1024, false, &mut space);
    let (_, sl) =
        run_gen(lazy, SystemConfig::table1_one_core(), Some(McSquareConfig::default()));
    let tl = marker_latencies(&sl.cores[0])[0];

    assert!(
        tl * 2 < te,
        "lazy 64KB copy ({tl} cy) should be far cheaper than eager ({te} cy)"
    );
}

#[test]
fn fig12_shape_sequential_access_stays_competitive() {
    // Even reading 100% of a misaligned lazy copy, the prefetcher keeps
    // (MC)² at or below ~1.3x the eager runtime (the paper reports ≤1.0;
    // we allow slack for the scaled substrate, the shape matters).
    let size = 512 * 1024u64;
    let mut space = AddrSpace::dram_3gb();
    let e = seq_access(CopyMech::Native, size, 1.0, true, &mut space);
    let (_, se) = run_gen(e, SystemConfig::table1_one_core(), None);
    let te = marker_latencies(&se.cores[0])[0];

    let mut space = AddrSpace::dram_3gb();
    let l = seq_access(CopyMech::McSquare { threshold: 0 }, size, 1.0, true, &mut space);
    let (sys, sl) =
        run_gen(l, SystemConfig::table1_one_core(), Some(McSquareConfig::default()));
    let tl = marker_latencies(&sl.cores[0])[0];

    assert!(
        (tl as f64) < te as f64 * 1.3,
        "lazy full-access runtime {tl} too far above eager {te}"
    );
    drop(sys);
}

#[test]
fn lazy_copy_correct_under_table1_config_with_prefetchers() {
    // Correctness of the bounce path under the full-size machine with
    // both prefetchers on (they generate prefetch reads of tracked lines).
    let size = 128 * 1024u64;
    let mut space = AddrSpace::dram_3gb();
    let g = seq_access(CopyMech::McSquare { threshold: 0 }, size, 1.0, true, &mut space);
    let dst = g.dst;
    let want = mcs_workloads::common::pattern(size as usize, 11);
    let (sys, _) = run_gen(g, SystemConfig::table1_one_core(), Some(McSquareConfig::default()));
    assert_eq!(sys.peek_coherent(dst, size as usize), want);
}

#[test]
fn multicore_mvcc_lazy_vs_eager_same_retires() {
    // 4 cores running MVCC partitions: both mechanisms must retire the
    // same uop counts (same work), lazy must not deadlock under sharing
    // of the memory controllers.
    use mcs_sim::program::Program;
    use mcs_workloads::mvcc::{mvcc_multithread, MvccConfig, UpdateKind};
    let base = MvccConfig {
        tuples: 8,
        tuple_size: 4096,
        txns: 16,
        kind: UpdateKind::Rmw,
        ..MvccConfig::default()
    };
    let mut counts = Vec::new();
    for lazy in [false, true] {
        let mut space = AddrSpace::dram_3gb();
        let mech =
            if lazy { CopyMech::McSquare { threshold: 0 } } else { CopyMech::Native };
        let progs = mvcc_multithread(mech, &base, 4, &mut space);
        let mut cfg = SystemConfig::table1();
        cfg.cores = 4;
        let mut pokes = mcs_workloads::Pokes::default();
        let mut programs: Vec<Box<dyn Program>> = Vec::new();
        for (u, p) in progs {
            programs.push(Box::new(FixedProgram::new(u)));
            pokes.0.extend(p.0);
        }
        let mut sys = if lazy {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, programs, Box::new(e))
        } else {
            System::new(cfg, programs)
        };
        pokes.apply(&mut sys);
        let st = sys.run(10_000_000_000).expect("finishes");
        counts.push(st.cores.iter().map(|c| c.loads + c.stores).sum::<u64>());
    }
    // Same loads+stores modulo the copy mechanism's own accesses: lazy
    // replaces copy loads/stores with CLWB+MCLAZY, so lazy ≤ eager.
    assert!(counts[1] <= counts[0], "lazy must not add demand accesses: {counts:?}");
}

#[test]
fn cow_snapshot_data_isolation() {
    // After fork + parent writes, the child's (snapshot) pages must hold
    // the ORIGINAL data; the parent's faulted pages hold the new write.
    use mcs_os::{CowCopyMode, Kernel, OsCosts, PageSize, VirtAddr, Vm};
    let mut kernel =
        Kernel::new(OsCosts::free(), AddrSpace::new(PhysAddr(1 << 21), 1 << 30));
    let mut parent = Vm::new();
    let base = VirtAddr(0x100_0000);
    let pa0 = kernel.mmap(&mut parent, base, 2 << 20, PageSize::Huge2M);
    let (child, _) = kernel.fork(&mut parent, mcs_sim::uop::StatTag::Kernel);

    // Parent faults (lazy mode) and then stores.
    let mut uops = kernel.handle_cow_fault(&mut parent, base, CowCopyMode::Lazy, 0);
    let (new_pa, _) = parent.translate(base).unwrap();
    uops.push(mcs_sim::uop::Uop::new(
        mcs_sim::uop::UopKind::Store {
            addr: new_pa,
            size: 8,
            data: mcs_sim::uop::StoreData::Splat(0xEE),
            nontemporal: false,
        },
        mcs_sim::uop::StatTag::App,
    ));
    uops.push(mcs_sim::uop::Uop::new(mcs_sim::uop::UopKind::Mfence, mcs_sim::uop::StatTag::App));
    // Read back both copies through the memory system.
    for off in [0u64, 64] {
        uops.push(mcs_sim::uop::Uop::new(
            mcs_sim::uop::UopKind::Load { addr: new_pa.add(off), size: 8 },
            mcs_sim::uop::StatTag::App,
        ));
    }

    let cfg = SystemConfig::table1_one_core();
    let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
    let mut sys = System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e));
    sys.poke(pa0, &mcs_workloads::common::pattern(4096, 7));
    sys.run(5_000_000_000).expect("finishes");

    let (child_pa, _) = child.translate(base).unwrap();
    assert_eq!(child_pa, pa0, "child still maps the original frame");
    assert_eq!(
        sys.peek_coherent(child_pa, 8),
        mcs_workloads::common::pattern(8, 7),
        "snapshot unchanged"
    );
    let got = sys.peek_coherent(new_pa, 8);
    assert_eq!(got, vec![0xEE; 8], "parent sees its write");
    // Bytes beyond the write come from the lazy copy of the original page.
    assert_eq!(
        sys.peek_coherent(new_pa.add(64), 8),
        mcs_workloads::common::pattern(4096, 7)[64..72].to_vec(),
    );
}

#[test]
fn pipe_transfer_delivers_data_lazily() {
    use mcs_os::{CopyMode, OsCosts, Pipe};
    let mut space = AddrSpace::dram_3gb();
    let kbuf = space.alloc_page(64 * 1024);
    let src = space.alloc_page(8192);
    let dst = space.alloc_page(8192);
    let mut pipe = Pipe::new(kbuf, 64 * 1024, OsCosts::default());
    let mut uops = Vec::new();
    let (w, n) = pipe.write_uops(0, src, 8192, CopyMode::Lazy);
    assert_eq!(n, 8192);
    uops.extend(w);
    let (r, m) = pipe.read_uops(uops.len() as u64, dst, 8192, CopyMode::Lazy);
    assert_eq!(m, 8192);
    uops.extend(r);
    // Touch everything so the chain of lazy copies resolves.
    for i in 0..(8192 / 64) {
        uops.push(mcs_sim::uop::Uop::new(
            mcs_sim::uop::UopKind::Load { addr: dst.add(i * 64), size: 64 },
            mcs_sim::uop::StatTag::App,
        ));
    }
    let cfg = SystemConfig::table1_one_core();
    let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
    let mut sys = System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e));
    let data = mcs_workloads::common::pattern(8192, 31);
    sys.poke(src, &data);
    let stats = sys.run(5_000_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(dst, 8192), data, "user→kernel→user chain intact");
    assert!(stats.engine_counter("ctt_chain_collapses") > 0, "kernel-buffer hop collapsed");
}
