//! Virtual-memory snapshotting example (§V-B, Fig. 18): an in-memory
//! database forks to take a consistent snapshot, then keeps serving
//! writes. Hugepage copy-on-write faults are served either by the native
//! kernel (full 2 MB copy in the handler) or the (MC)²-modified kernel
//! (one MCLAZY).
//!
//! Run with: `cargo run --release --example snapshot_cow`

use mcs_os::{CowCopyMode, Kernel, OsCosts};
use mcs_sim::addr::PhysAddr;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::cow::{cow_program, CowConfig};
use mcsquare::{McSquareConfig, McSquareEngine};

fn run(mode: CowCopyMode) -> Vec<u64> {
    let mut kernel = Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 2 << 30));
    let wcfg = CowConfig {
        region: 16 * 1024 * 1024, // 8 hugepages
        updates: 40,
        mode,
        ..CowConfig::default()
    };
    let (uops, pokes) = cow_program(&wcfg, &mut kernel);
    let cfg = SystemConfig::table1_one_core();
    let mut sys = match mode {
        CowCopyMode::Lazy => {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
        }
        CowCopyMode::Eager => System::new(cfg, vec![Box::new(FixedProgram::new(uops))]),
    };
    pokes.apply(&mut sys);
    let stats = sys.run(20_000_000_000).expect("finishes");
    println!(
        "  ({} COW faults, {} pages copied)",
        kernel.stats.cow_faults, kernel.stats.pages_copied
    );
    marker_latencies(&stats.cores[0])
}

fn stat(name: &str, lats: &[u64]) {
    let min = lats.iter().min().unwrap();
    let max = lats.iter().max().unwrap();
    let avg = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
    println!("  {name}: min {min} cy, avg {avg:.0} cy, max {max} cy (spike {:.0}x)", *max as f64 / *min as f64);
}

fn main() {
    println!("16 MB hugepage-mapped database, fork(), 40 random 8B updates\n");
    println!("native kernel (eager 2 MB copy in the fault handler):");
    let native = run(CowCopyMode::Eager);
    stat("latency", &native);

    println!("\n(MC)^2 kernel (MCLAZY in copy_user_huge_page):");
    let lazy = run(CowCopyMode::Lazy);
    stat("latency", &lazy);

    let improvement = *native.iter().max().unwrap() as f64 / *lazy.iter().max().unwrap() as f64;
    println!("\nworst-case fault latency reduced {improvement:.0}x by the lazy kernel");
}
