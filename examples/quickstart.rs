//! Quickstart: build a Table I machine with the (MC)² engine, perform a
//! lazy memcpy, touch the destination, and inspect what actually moved.
//!
//! Run with: `cargo run --release --example quickstart`

use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};
use mcsquare::{McSquareConfig, McSquareEngine};

fn main() {
    // Carve two 64 KB buffers out of the simulated DRAM.
    let mut space = AddrSpace::dram_3gb();
    let size = 64 * 1024u64;
    let src = space.alloc_page(size);
    let dst = space.alloc_page(size);

    // The program: memcpy_lazy(dst, src, 64 KB), then read back the first
    // quarter of the destination.
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 4 / 64) {
        uops.push(Uop::new(
            UopKind::Load { addr: dst.add(i * 64), size: 64 },
            StatTag::App,
        ));
    }

    // A Table I machine with the (MC)² engine plugged into its memory
    // controllers.
    let cfg = SystemConfig::table1_one_core();
    let engine = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
    let mut sys = System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(engine));

    // Initialise the source with a recognisable pattern.
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    sys.poke(src, &data);

    let stats = sys.run(1_000_000_000).expect("program finishes");

    println!("ran {} cycles ({:.1} µs at 4 GHz)", stats.cycles, stats.cycles as f64 / 4000.0);
    println!("CTT inserts:            {}", stats.engine_counter("ctt_inserts"));
    println!("demand reconstructions: {}", stats.engine_counter("recon_demand"));
    println!("destination writebacks: {}", stats.engine_counter("dest_writebacks"));
    println!("entries still tracked:  {}", stats.engine_counter("ctt_live_entries"));
    println!(
        "DRAM reads: {}   (an eager copy would have read {} lines up front)",
        stats.mcs.iter().map(|m| m.reads).sum::<u64>(),
        size / 64
    );

    // Only the accessed quarter was ever copied; the rest stays tracked.
    let copied = sys.peek_coherent(dst, (size / 4) as usize);
    assert_eq!(copied, data[..(size / 4) as usize], "accessed data matches the source");
    println!("accessed quarter verified — data appears exactly as if copied eagerly");
}
