//! MVCC database example (§V-B, Figs. 16–17): tuple-wise read-copy-update
//! with lazy copies, sweeping the fraction of each 8 KB tuple a
//! transaction actually modifies.
//!
//! Run with: `cargo run --release --example mvcc_db`

use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::mvcc::{mvcc_program, MvccConfig, UpdateKind};
use mcs_workloads::CopyMech;
use mcsquare::{McSquareConfig, McSquareEngine};

fn run(mech: CopyMech, frac: f64) -> u64 {
    let mut space = AddrSpace::dram_3gb();
    let wcfg = MvccConfig {
        tuples: 32,
        tuple_size: 8192,
        txns: 64,
        update_frac: frac,
        kind: UpdateKind::Rmw,
        ..MvccConfig::default()
    };
    let needs_engine = mech.needs_engine();
    let (uops, pokes, _) = mvcc_program(mech, &wcfg, &mut space);
    let cfg = SystemConfig::table1_one_core();
    let mut sys = if needs_engine {
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
    } else {
        System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
    };
    pokes.apply(&mut sys);
    let stats = sys.run(20_000_000_000).expect("finishes");
    marker_latencies(&stats.cores[0])[0]
}

fn main() {
    println!("Cicada-style MVCC, 8 KB tuples, 64 txns (50:50 read/RMW-update)\n");
    println!("{:>10} {:>14} {:>14} {:>9}", "updated", "memcpy (cy)", "(MC)^2 (cy)", "speedup");
    for frac in [0.0625, 0.125, 0.25, 0.5, 1.0] {
        let base = run(CopyMech::Native, frac);
        let lazy = run(CopyMech::McSquare { threshold: 0 }, frac);
        println!(
            "{:>9.2}% {:>14} {:>14} {:>8.2}x",
            frac * 100.0,
            base,
            lazy,
            base as f64 / lazy as f64
        );
    }
    println!("\nlazy copies pay only for the fraction actually touched: the");
    println!("smaller the update, the bigger the win — the Fig. 16 shape.");
}
