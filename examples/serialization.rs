//! Serialization example: the paper's headline use case (§V-B, Fig. 14).
//!
//! Runs the Fleetbench-like Protobuf workload three ways — plain memcpy,
//! zIO-style elision, and (MC)² through the 1 KB interposer — and prints
//! the runtimes side by side.
//!
//! Run with: `cargo run --release --example serialization`

use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::protobuf::{protobuf_program, ProtobufConfig};
use mcs_workloads::CopyMech;
use mcsquare::{McSquareConfig, McSquareEngine};

fn run(mech: CopyMech, wcfg: &ProtobufConfig) -> (u64, String) {
    let mut space = AddrSpace::dram_3gb();
    let needs_engine = mech.needs_engine();
    let (uops, pokes, copier) = protobuf_program(mech, wcfg, &mut space);
    let note = match copier.zio_stats() {
        Some(z) => format!("zio: {} elisions, {} fallbacks", z.elisions, z.fallbacks),
        None => format!("{} copies, {} bytes", copier.calls, copier.bytes_copied),
    };
    let cfg = SystemConfig::table1_one_core();
    let mut sys = if needs_engine {
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
    } else {
        System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
    };
    pokes.apply(&mut sys);
    let stats = sys.run(10_000_000_000).expect("finishes");
    (marker_latencies(&stats.cores[0])[0], note)
}

fn main() {
    let wcfg = ProtobufConfig { messages: 48, fields: 8, ..ProtobufConfig::default() };
    println!("Protobuf-style serialize/deserialize, {} messages × {} fields", wcfg.messages, wcfg.fields);

    let (base, note) = run(CopyMech::Native, &wcfg);
    println!("  baseline memcpy : {:>9} cycles   ({note})", base);

    let (zio, note) = run(CopyMech::Zio, &wcfg);
    println!(
        "  zIO             : {:>9} cycles   {:+.1}%  ({note})",
        zio,
        (zio as f64 / base as f64 - 1.0) * 100.0
    );

    let (mc2, note) = run(CopyMech::mcsquare_1k(), &wcfg);
    println!(
        "  (MC)^2          : {:>9} cycles   speedup {:.2}x  ({note})",
        mc2,
        base as f64 / mc2 as f64
    );
}
