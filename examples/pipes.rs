//! Pipe example (§V-B, Fig. 19): stream data through a kernel pipe with
//! eager vs. lazy kernel copies and compare throughput.
//!
//! Run with: `cargo run --release --example pipes`

use mcs_os::{CopyMode, OsCosts, Pipe};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use mcsquare::{McSquareConfig, McSquareEngine};

fn run(mode: CopyMode, transfer: u64, rounds: usize) -> (f64, bool) {
    let mut space = AddrSpace::dram_3gb();
    let kbuf = space.alloc_page(64 * 1024);
    let dst = space.alloc_page(transfer);
    let mut pipe = Pipe::new(kbuf, 64 * 1024, OsCosts::default());

    let mut uops = Vec::new();
    let mut pokes: Vec<(mcs_sim::addr::PhysAddr, Vec<u8>)> = Vec::new();
    uops.push(Uop::new(UopKind::Marker { id: 0 }, StatTag::App));
    for r in 0..rounds {
        let src = space.alloc_page(transfer);
        let data: Vec<u8> = (0..transfer).map(|i| ((i + r as u64) % 251) as u8).collect();
        pokes.push((src, data));
        let (w, n) = pipe.write_uops(uops.len() as u64, src, transfer, mode);
        assert_eq!(n, transfer);
        uops.extend(w);
        let (rd, m) = pipe.read_uops(uops.len() as u64, dst, transfer, mode);
        assert_eq!(m, transfer);
        uops.extend(rd);
        uops.push(Uop::new(UopKind::Load { addr: dst, size: 8 }, StatTag::App));
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    uops.push(Uop::new(UopKind::Marker { id: 1 }, StatTag::App));

    let cfg = SystemConfig::table1_one_core();
    let mut sys = match mode {
        CopyMode::Lazy => {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
        }
        CopyMode::Eager => System::new(cfg, vec![Box::new(FixedProgram::new(uops))]),
    };
    let last = pokes.last().cloned();
    for (a, b) in &pokes {
        sys.poke(*a, b);
    }
    let stats = sys.run(20_000_000_000).expect("finishes");
    let lat = mcs_workloads::common::marker_latencies(&stats.cores[0])[0];
    let bytes = transfer * rounds as u64;
    let bpk = bytes as f64 / (lat as f64 / 1000.0);
    // The consumer's buffer holds the final round's payload.
    let ok = last
        .map(|(_, d)| sys.peek_coherent(dst, 16) == d[..16].to_vec())
        .unwrap_or(false);
    (bpk, ok)
}

fn main() {
    println!("kernel pipe transfers, 16 rounds per point\n");
    println!("{:>9} {:>16} {:>16} {:>7}", "transfer", "native (B/kcy)", "(MC)^2 (B/kcy)", "ratio");
    for transfer in [1u64 << 10, 4 << 10, 16 << 10] {
        let (n, ok1) = run(CopyMode::Eager, transfer, 16);
        let (l, ok2) = run(CopyMode::Lazy, transfer, 16);
        assert!(ok1 && ok2, "payload integrity");
        println!("{:>8}K {:>16.1} {:>16.1} {:>6.2}x", transfer >> 10, n, l, l / n);
    }
    println!("\ndata verified: the consumer sees exactly what the producer sent,");
    println!("even though the lazy kernel never copied it through the CPU.");
}
