//! Scheduler-mode determinism: the event-driven scheduler is an
//! *elision* of do-nothing cycles, never a reordering. These tests pin
//! that claim three ways:
//!
//! * `EventDriven` vs `Conservative` must agree on the **entire**
//!   [`RunStats`] (every core, cache, controller, and engine counter)
//!   and on the final simulated clock, across all three memory
//!   technologies with refresh armed — refresh deadlines are the one
//!   periodic event a skip could plausibly jump over.
//! * `EventDriven` vs `TickByTick` must agree on the final clock and on
//!   every message-driven statistic (caches, controllers, engine).
//!   Per-cycle core accounting is compared too: idle cycles elided by a
//!   skip are re-attributed on wake, so totals match.
//! * Both hold under an active fault plan, whose decision streams are
//!   consumed per *event* and must therefore be schedule-invariant.

use mcs_sim::config::{MemTech, SystemConfig};
use mcs_sim::fault::FaultPlan;
use mcs_sim::program::FixedProgram;
use mcs_sim::stats::RunStats;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcs_sim::{PhysAddr, SchedMode, System, CACHELINE};

/// A per-core workload that exercises every scheduling-relevant path:
/// cached stores, loads, non-temporal stores, CLWB writebacks, fences,
/// compute gaps long enough to make the cores go quiet (so skips arm),
/// and a trailing pointer-chase-style reload of everything written.
fn workload(core: usize) -> Vec<Uop> {
    let base = 0x4_0000 + (core as u64) * 0x2_0000;
    let mut uops = Vec::new();
    for i in 0..24u64 {
        let line = PhysAddr(base + i * CACHELINE as u64);
        let nt = i % 5 == 0;
        let size: u8 = if nt { CACHELINE as u8 } else { 8 };
        uops.push(Uop::new(
            UopKind::Store {
                addr: line,
                size,
                data: StoreData::Imm(vec![core as u8; size as usize]),
                nontemporal: nt,
            },
            StatTag::App,
        ));
        if i % 4 == 0 {
            uops.push(Uop::new(UopKind::Clwb { addr: line }, StatTag::App));
        }
        if i % 8 == 7 {
            uops.push(Uop::new(UopKind::Mfence, StatTag::App));
            // A long quiet stretch: with nothing in flight the cores
            // report a wake-at hint and the scheduler may skip ahead.
            uops.push(
                Uop::new(UopKind::Compute { cycles: 600 }, StatTag::App),
            );
        }
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    for i in 0..24u64 {
        let line = PhysAddr(base + i * CACHELINE as u64);
        uops.push(Uop::new(
            UopKind::Load { addr: line, size: 8 },
            StatTag::App,
        ));
    }
    uops
}

fn run_mode(cfg: &SystemConfig, mode: SchedMode) -> (RunStats, u64) {
    let progs: Vec<Box<dyn mcs_sim::program::Program>> = (0..cfg.cores)
        .map(|c| {
            Box::new(FixedProgram::new(workload(c)))
                as Box<dyn mcs_sim::program::Program>
        })
        .collect();
    let mut sys = System::new(cfg.clone(), progs);
    sys.set_sched_mode(mode);
    let stats = sys.run(20_000_000).expect("workload finishes");
    let now = sys.now();
    (stats, now)
}

fn cfg_for(tech: MemTech, fault: FaultPlan) -> SystemConfig {
    SystemConfig::builder().tech(tech).refresh(true).fault(fault).build()
}

#[test]
fn event_driven_matches_conservative_on_full_stats_all_techs() {
    for tech in [MemTech::Ddr4, MemTech::Ddr5, MemTech::Hbm2] {
        let cfg = cfg_for(tech, FaultPlan::none());
        let (cons, cons_now) = run_mode(&cfg, SchedMode::Conservative);
        let (ev, ev_now) = run_mode(&cfg, SchedMode::EventDriven);
        assert_eq!(
            cons_now, ev_now,
            "{tech:?}: final clock diverged between Conservative and \
             EventDriven"
        );
        assert_eq!(
            cons, ev,
            "{tech:?}: RunStats diverged between Conservative and \
             EventDriven"
        );
    }
}

#[test]
fn event_driven_matches_tick_by_tick() {
    let cfg = cfg_for(MemTech::Ddr4, FaultPlan::none());
    let (tick, tick_now) = run_mode(&cfg, SchedMode::TickByTick);
    let (ev, ev_now) = run_mode(&cfg, SchedMode::EventDriven);
    assert_eq!(tick_now, ev_now, "final clock diverged vs TickByTick");
    assert_eq!(tick.cycles, ev.cycles);
    assert_eq!(tick.l1, ev.l1, "L1 stats diverged vs TickByTick");
    assert_eq!(tick.llc, ev.llc, "LLC stats diverged vs TickByTick");
    assert_eq!(tick.mcs, ev.mcs, "MC stats diverged vs TickByTick");
    assert_eq!(tick.engine, ev.engine, "engine stats diverged");
    assert_eq!(
        tick.cores, ev.cores,
        "per-core accounting diverged vs TickByTick (idle re-attribution \
         on wake must cover every elided cycle)"
    );
}

#[test]
fn sched_modes_agree_under_faults() {
    let cfg = cfg_for(MemTech::Ddr5, FaultPlan::mild(0xFA17));
    let (cons, cons_now) = run_mode(&cfg, SchedMode::Conservative);
    let (ev, ev_now) = run_mode(&cfg, SchedMode::EventDriven);
    assert_eq!(cons_now, ev_now, "clock diverged under faults");
    assert_eq!(
        cons, ev,
        "fault schedules must be elision-invariant: streams are consumed \
         per event, not per cycle"
    );
}
