//! Property-based timing checks for every memory backend.
//!
//! For random request streams against each [`DramModel`] backend:
//!
//! * **causality** — the completion cycle is strictly after the request
//!   cycle (data cannot arrive before it was asked for);
//! * **bus exclusivity** — the data bus is never double-booked:
//!   completions on the same bus (same pseudo-channel, for HBM) are
//!   spaced at least `tBURST` apart;
//! * **monotonicity** — issuing the same request *later* from the same
//!   channel state never yields an *earlier* completion.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::{DramConfig, MemTech};
use mcs_sim::dram::{Ddr4Channel, Ddr5Channel, DramModel, HbmChannel};
use proptest::prelude::*;

/// A request stream: (cycles since previous request, line index).
fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200, 0u64..512), 1..40)
}

fn ddr4_cfg() -> DramConfig {
    DramConfig {
        banks: 4,
        row_bytes: 1024,
        t_rcd: 10,
        t_rp: 10,
        t_cl: 10,
        t_burst: 4,
        t_refi: 700,
        t_rfc: 50,
        ..DramConfig::for_tech(MemTech::Ddr4)
    }
}

fn ddr5_cfg() -> DramConfig {
    DramConfig {
        banks: 8,
        bank_groups: 4,
        row_bytes: 1024,
        t_rcd: 10,
        t_rp: 10,
        t_cl: 10,
        t_burst: 4,
        t_ccd_l: 9,
        t_refi: 700,
        t_rfc: 50,
        ..DramConfig::for_tech(MemTech::Ddr5)
    }
}

fn hbm_cfg() -> DramConfig {
    DramConfig {
        banks: 4,
        pseudo_channels: 2,
        row_bytes: 512,
        t_rcd: 10,
        t_rp: 10,
        t_cl: 10,
        t_burst: 4,
        t_refi: 700,
        t_rfc: 50,
        ..DramConfig::for_tech(MemTech::Hbm2)
    }
}

/// Drive `stream` through a fresh backend, checking causality and bus
/// exclusivity along the way.
fn check_stream<M: DramModel>(mut dram: M, stream: &[(u64, u64)], t_burst: u64) -> Result<(), TestCaseError> {
    let mut now = 0u64;
    // Per-bus completion times, for the exclusivity check.
    let mut completions: Vec<(usize, u64)> = Vec::new();
    for &(gap, line) in stream {
        now += gap;
        let addr = PhysAddr(line * 64);
        dram.sync(now);
        let (done, _) = dram.access(now, addr);
        prop_assert!(done > now, "completion {done} not after request cycle {now}");
        completions.push((dram.bus_of(addr), done));
    }
    let buses = completions.iter().map(|c| c.0).max().unwrap_or(0) + 1;
    for bus in 0..buses {
        let mut on_bus: Vec<u64> =
            completions.iter().filter(|c| c.0 == bus).map(|c| c.1).collect();
        on_bus.sort_unstable();
        for w in on_bus.windows(2) {
            prop_assert!(
                w[1] >= w[0] + t_burst,
                "bus {bus} double-booked: completions at {} and {} closer than tBURST {t_burst}",
                w[0],
                w[1]
            );
        }
    }
    Ok(())
}

/// After a random warm-up, issuing the same request at `t` vs. `t + delay`
/// (from clones of the same state) must not complete earlier.
fn check_monotonic<M: DramModel + Clone>(
    mut dram: M,
    warmup: &[(u64, u64)],
    line: u64,
    delay: u64,
) -> Result<(), TestCaseError> {
    let mut now = 0u64;
    for &(gap, l) in warmup {
        now += gap;
        dram.sync(now);
        let _ = dram.access(now, PhysAddr(l * 64));
    }
    let addr = PhysAddr(line * 64);
    let mut early = dram.clone();
    let mut late = dram;
    early.sync(now);
    let (done_early, _) = early.access(now, addr);
    late.sync(now + delay);
    let (done_late, _) = late.access(now + delay, addr);
    prop_assert!(
        done_late >= done_early,
        "issuing at {now}+{delay} completed at {done_late}, earlier than {done_early} at {now}"
    );
    Ok(())
}

proptest! {
    #[test]
    fn ddr4_stream_timing(stream in stream_strategy()) {
        check_stream(Ddr4Channel::new(ddr4_cfg(), 2), &stream, 4)?;
    }

    #[test]
    fn ddr5_stream_timing(stream in stream_strategy()) {
        check_stream(Ddr5Channel::new(ddr5_cfg(), 2), &stream, 4)?;
    }

    #[test]
    fn hbm_stream_timing(stream in stream_strategy()) {
        check_stream(HbmChannel::new(hbm_cfg(), 2), &stream, 4)?;
    }

    #[test]
    fn ddr4_monotonic(warmup in stream_strategy(), line in 0u64..512, delay in 0u64..500) {
        check_monotonic(Ddr4Channel::new(ddr4_cfg(), 2), &warmup, line, delay)?;
    }

    #[test]
    fn ddr5_monotonic(warmup in stream_strategy(), line in 0u64..512, delay in 0u64..500) {
        check_monotonic(Ddr5Channel::new(ddr5_cfg(), 2), &warmup, line, delay)?;
    }

    #[test]
    fn hbm_monotonic(warmup in stream_strategy(), line in 0u64..512, delay in 0u64..500) {
        check_monotonic(HbmChannel::new(hbm_cfg(), 2), &warmup, line, delay)?;
    }

    #[test]
    fn refresh_accounting_is_exact(stream in stream_strategy()) {
        // However the stream is paced (including skip-ahead-sized gaps),
        // the number of refresh windows applied equals the number of tREFI
        // boundaries crossed — no window is lost or double-counted.
        for cfg in [ddr4_cfg(), ddr5_cfg(), hbm_cfg()] {
            let t_refi = cfg.t_refi;
            let mut dram = mcs_sim::dram::build(&cfg, 1);
            let mut now = 0u64;
            for &(gap, line) in &stream {
                now += gap;
                dram.sync(now);
                let _ = dram.access(now, PhysAddr(line * 64));
            }
            prop_assert_eq!(dram.refreshes(), now / t_refi);
        }
    }
}
