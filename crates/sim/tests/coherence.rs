//! Multi-core coherence tests for the MSI directory: cross-core
//! visibility, ownership migration, recall/downgrade, non-temporal
//! invalidation, and writeback ordering — exercised through the full
//! system rather than unit-level handlers.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::{FixedProgram, Program};
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};

fn ld(addr: u64, size: u8) -> Uop {
    Uop::new(UopKind::Load { addr: PhysAddr(addr), size }, StatTag::App)
}

fn st(addr: u64, bytes: &[u8]) -> Uop {
    Uop::new(
        UopKind::Store {
            addr: PhysAddr(addr),
            size: bytes.len() as u8,
            data: StoreData::Imm(bytes.to_vec()),
            nontemporal: false,
        },
        StatTag::App,
    )
}

fn fence() -> Uop {
    Uop::new(UopKind::Mfence, StatTag::App)
}

fn two_core_sys(p0: Vec<Uop>, p1: Vec<Uop>) -> System {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 2;
    let programs: Vec<Box<dyn Program>> =
        vec![Box::new(FixedProgram::new(p0)), Box::new(FixedProgram::new(p1))];
    System::new(cfg, programs)
}

#[test]
fn ownership_migrates_between_writers() {
    // Both cores write the same line (different bytes); the directory must
    // recall ownership back and forth and preserve both writes.
    let reps = 8u64;
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    for i in 0..reps {
        p0.push(st(0x9000, &[i as u8]));
        p0.push(fence());
        p1.push(st(0x9008, &[(100 + i) as u8]));
        p1.push(fence());
    }
    let mut sys = two_core_sys(p0, p1);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(PhysAddr(0x9000), 1), vec![(reps - 1) as u8]);
    assert_eq!(sys.peek_coherent(PhysAddr(0x9008), 1), vec![(100 + reps - 1) as u8]);
}

#[test]
fn reader_sees_writers_final_value_after_drain() {
    // Writer stores then flushes to memory; reader polls the same line.
    // After both finish, every copy agrees.
    let p0 = vec![
        st(0xa000, &[0xCC]),
        Uop::new(UopKind::Clwb { addr: PhysAddr(0xa000) }, StatTag::App),
        fence(),
    ];
    let p1: Vec<Uop> = (0..6).map(|_| ld(0xa000, 1)).collect();
    let mut sys = two_core_sys(p0, p1);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek(PhysAddr(0xa000), 1), vec![0xCC], "memory drained");
    assert_eq!(sys.peek_coherent(PhysAddr(0xa000), 1), vec![0xCC]);
}

#[test]
fn nontemporal_store_invalidates_remote_copies() {
    // Core 1 caches a line; core 0 NT-stores the whole line; the final
    // coherent view must be the NT data (remote copy invalidated, not
    // resurrected by a stale writeback).
    let p1 = vec![ld(0xb000, 8), ld(0xb000, 8)];
    let p0 = vec![
        Uop::new(
            UopKind::Store {
                addr: PhysAddr(0xb000),
                size: 64,
                data: StoreData::Splat(0x7E),
                nontemporal: true,
            },
            StatTag::App,
        ),
        fence(),
    ];
    let mut sys = two_core_sys(p0, p1);
    sys.poke(PhysAddr(0xb000), &[1u8; 64]);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(PhysAddr(0xb000), 8), vec![0x7E; 8]);
    assert_eq!(sys.peek(PhysAddr(0xb000), 8), vec![0x7E; 8], "NT wrote through");
}

#[test]
fn interleaved_false_sharing_preserves_both_halves() {
    // Classic false sharing: two cores hammer disjoint halves of one line.
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    for i in 0..10u8 {
        p0.push(st(0xc000, &[i, i]));
        p1.push(st(0xc020, &[i + 50, i + 50]));
    }
    p0.push(fence());
    p1.push(fence());
    let mut sys = two_core_sys(p0, p1);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(PhysAddr(0xc000), 2), vec![9, 9]);
    assert_eq!(sys.peek_coherent(PhysAddr(0xc020), 2), vec![59, 59]);
}

#[test]
fn capacity_evictions_do_not_lose_writes() {
    // Dirty a working set far larger than L1 (1 KB) and LLC (4 KB) so
    // evictions and writebacks churn; every byte must survive.
    let lines = 256u64; // 16 KB
    let base = 0x40000u64;
    let mut p0 = Vec::new();
    for i in 0..lines {
        p0.push(st(base + i * 64, &[(i % 251) as u8]));
    }
    p0.push(fence());
    // Read everything back (forces misses through the churned hierarchy).
    for i in 0..lines {
        p0.push(ld(base + i * 64, 1));
    }
    let mut sys = two_core_sys(p0, vec![]);
    sys.run(100_000_000).expect("finishes");
    for i in 0..lines {
        assert_eq!(
            sys.peek_coherent(PhysAddr(base + i * 64), 1),
            vec![(i % 251) as u8],
            "line {i}"
        );
    }
}

#[test]
fn read_sharing_scales_to_eight_cores() {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 8;
    let programs: Vec<Box<dyn Program>> = (0..8)
        .map(|_| {
            let p: Vec<Uop> = (0..8u64).map(|i| ld(0xd000 + i * 64, 8)).collect();
            Box::new(FixedProgram::new(p)) as Box<dyn Program>
        })
        .collect();
    let mut sys = System::new(cfg, programs);
    sys.poke(PhysAddr(0xd000), &[0xAB; 512]);
    let stats = sys.run(100_000_000).expect("finishes");
    // One memory fill per line; everyone else hits the LLC.
    let mem_reads: u64 = stats.mcs.iter().map(|m| m.reads).sum();
    assert!(mem_reads <= 8 + 2, "shared reads must not refetch: {mem_reads}");
    for c in &stats.cores {
        assert_eq!(c.loads, 8);
    }
}

#[test]
fn writer_then_reader_chain_through_three_cores() {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 3;
    // Core 0 writes A; core 1 copies A→B (eagerly, with polling loads);
    // core 2 reads B. Without inter-core synchronisation primitives we
    // only assert the final coherent state.
    let p0 = vec![st(0xe000, &[7]), fence()];
    let p1 = vec![ld(0xe000, 1), st(0xe100, &[1]), fence()];
    let p2 = vec![ld(0xe100, 1)];
    let programs: Vec<Box<dyn Program>> = vec![
        Box::new(FixedProgram::new(p0)),
        Box::new(FixedProgram::new(p1)),
        Box::new(FixedProgram::new(p2)),
    ];
    let mut sys = System::new(cfg, programs);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(PhysAddr(0xe000), 1), vec![7]);
    assert_eq!(sys.peek_coherent(PhysAddr(0xe100), 1), vec![1]);
}
