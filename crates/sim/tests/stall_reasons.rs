//! Regression tests for stall attribution (`CoreStats::stalls`).
//!
//! Two properties: (a) every [`StallReason`] variant is reachable — a
//! workload exists whose stalls are attributed to it — and (b) every
//! stalled cycle is attributed to exactly one reason, i.e. the per-reason
//! histogram sums to `stalled_cycles` and never exceeds total cycles.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::stats::{RunStats, StallReason};
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};

fn ld(addr: u64) -> Uop {
    Uop::new(UopKind::Load { addr: PhysAddr(addr), size: 8 }, StatTag::App)
}

fn st(addr: u64) -> Uop {
    Uop::new(
        UopKind::Store {
            addr: PhysAddr(addr),
            size: 8,
            data: StoreData::Splat(0x11),
            nontemporal: false,
        },
        StatTag::App,
    )
}

fn run(uops: Vec<Uop>) -> RunStats {
    let mut sys = System::new(SystemConfig::tiny(), vec![Box::new(FixedProgram::new(uops))]);
    sys.run(10_000_000).expect("workload finishes")
}

/// Run and assert the exact-attribution invariant, then return the stats.
fn run_checked(uops: Vec<Uop>) -> RunStats {
    let stats = run(uops);
    let c = &stats.cores[0];
    c.check_stall_accounting().expect("each stalled cycle attributed exactly once");
    assert_eq!(c.total_stalls(), c.stalled_cycles);
    assert!(c.stalled_cycles <= c.cycles);
    stats
}

fn assert_reaches(stats: &RunStats, reason: StallReason) {
    let n = stats.cores[0].stalls.get(&reason).copied().unwrap_or(0);
    assert!(n > 0, "expected {reason:?} stalls, histogram: {:?}", stats.cores[0].stalls);
}

#[test]
fn load_miss_is_reachable() {
    // Uncached loads miss all the way to DRAM; the ROB head waits.
    let stats = run_checked((0..8).map(|i| ld(0x10000 + i * 4096)).collect());
    assert_reaches(&stats, StallReason::LoadMiss);
}

#[test]
fn clwb_slots_is_reachable() {
    // More CLWBs than slots (tiny: 4): dispatch blocks, and the final
    // fence drains them with ClwbSlots at the ROB head.
    let mut uops: Vec<Uop> = (0..8).map(|i| st(0x20000 + i * 64)).collect();
    for i in 0..8u64 {
        uops.push(Uop::new(UopKind::Clwb { addr: PhysAddr(0x20000 + i * 64) }, StatTag::App));
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    let stats = run_checked(uops);
    assert_reaches(&stats, StallReason::ClwbSlots);
}

#[test]
fn mclazy_slots_is_reachable() {
    // More MCLAZYs than slots (tiny: 2); the baseline NullEngine acks
    // them, but acks take interconnect round-trips during which dispatch
    // is blocked on a slot.
    let uops: Vec<Uop> = (0..6u64)
        .map(|i| {
            Uop::new(
                UopKind::Mclazy {
                    dst: PhysAddr(0x400000 + i * 8192),
                    src: PhysAddr(0x300000 + i * 8192),
                    size: 4096,
                },
                StatTag::Memcpy,
            )
        })
        .collect();
    let stats = run_checked(uops);
    assert_reaches(&stats, StallReason::MclazySlots);
}

#[test]
fn fence_is_reachable() {
    // A fence draining a plain store: no CLWBs, no MCLAZYs — the wait is
    // attributed to the fence itself.
    let stats = run_checked(vec![st(0x30000), Uop::new(UopKind::Mfence, StatTag::App)]);
    assert_reaches(&stats, StallReason::Fence);
}

#[test]
fn store_buffer_is_reachable() {
    // Stores to distinct uncached lines retire into the store buffer
    // (tiny: 4 entries) far faster than misses drain it.
    let stats = run_checked((0..24).map(|i| st(0x40000 + i * 4096)).collect());
    assert_reaches(&stats, StallReason::StoreBuffer);
}

#[test]
fn rob_full_is_reachable() {
    // A long compute at the head with enough work behind it to fill the
    // ROB (tiny: 16 entries): dispatch blocks on ROB space.
    let mut uops = vec![Uop::new(UopKind::Compute { cycles: 500 }, StatTag::App)];
    for _ in 0..30 {
        uops.push(Uop::new(UopKind::Compute { cycles: 1 }, StatTag::App));
    }
    let stats = run_checked(uops);
    assert_reaches(&stats, StallReason::RobFull);
}

#[test]
fn frontend_is_reachable() {
    // A lone long compute: nothing to dispatch behind it, the zero-retire
    // cycles fall into the front-end bucket.
    let stats = run_checked(vec![Uop::new(UopKind::Compute { cycles: 100 }, StatTag::App)]);
    assert_reaches(&stats, StallReason::Frontend);
}

#[test]
fn attribution_is_exact_on_a_mixed_workload() {
    // All stall sources at once; the histogram must still sum exactly to
    // the stalled-cycle count (each stalled cycle attributed once).
    let mut uops = Vec::new();
    for i in 0..6u64 {
        uops.push(st(0x50000 + i * 4096));
        uops.push(ld(0x60000 + i * 4096));
    }
    for i in 0..6u64 {
        uops.push(Uop::new(UopKind::Clwb { addr: PhysAddr(0x50000 + i * 4096) }, StatTag::App));
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    uops.push(Uop::new(UopKind::Compute { cycles: 200 }, StatTag::App));
    for _ in 0..20 {
        uops.push(Uop::new(UopKind::Compute { cycles: 1 }, StatTag::App));
    }
    let stats = run_checked(uops);
    let c = &stats.cores[0];
    assert!(c.stalled_cycles > 0);
    // Several distinct reasons must appear in one run.
    assert!(c.stalls.len() >= 3, "expected a mixed histogram, got {:?}", c.stalls);
}
