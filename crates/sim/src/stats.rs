//! Simulation statistics.
//!
//! Counters are organised the way the paper reports them: cycles are
//! attributed to a [`crate::uop::StatTag`] (memcpy vs. application vs.
//! kernel work), and stall cycles are further attributed to the resource
//! being waited on. This is what regenerates Figs. 2, 3, 11 and 20b.

use crate::uop::StatTag;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why a core made no forward progress in a cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StallReason {
    /// Head of ROB is a load waiting for memory.
    LoadMiss,
    /// Dispatch blocked: all CLWB writeback slots are in flight.
    ClwbSlots,
    /// Dispatch blocked: all MCLAZY slots are in flight (includes the
    /// memory controller back-pressuring acks because the CTT is full).
    MclazySlots,
    /// Fence draining: waiting for stores / CLWBs / MCLAZYs to complete.
    Fence,
    /// Store buffer full.
    StoreBuffer,
    /// ROB full.
    RobFull,
    /// Program supplied no uop (dependency stall, e.g. pointer chasing).
    Frontend,
}

impl StallReason {
    /// Stable lowercase name, used in TSV output and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::LoadMiss => "load_miss",
            StallReason::ClwbSlots => "clwb_slots",
            StallReason::MclazySlots => "mclazy_slots",
            StallReason::Fence => "fence",
            StallReason::StoreBuffer => "store_buffer",
            StallReason::RobFull => "rob_full",
            StallReason::Frontend => "frontend",
        }
    }
}

/// Per-core statistics.
#[derive(Clone, Default, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Total cycles this core was live (first fetch to completion).
    pub cycles: u64,
    /// Retired uops.
    pub retired: u64,
    /// Retired loads / stores.
    pub loads: u64,
    pub stores: u64,
    /// Cycles attributed to each tag (by ROB-head tag; idle cycles inherit
    /// the last observed tag so totals add up).
    pub cycles_by_tag: BTreeMap<StatTag, u64>,
    /// Cycles with zero retires while waiting on memory, per tag.
    pub mem_stall_by_tag: BTreeMap<StatTag, u64>,
    /// Zero-retire cycles broken down by reason.
    pub stalls: BTreeMap<StallReason, u64>,
    /// Total zero-retire cycles. Each stalled cycle is attributed to
    /// exactly one [`StallReason`], so `stalled_cycles ==
    /// stalls.values().sum()` always (see [`CoreStats::check_stall_accounting`]).
    pub stalled_cycles: u64,
    /// Cycles in which at least one load miss was outstanding, per tag
    /// (the paper's "Mem miss cycles", Fig. 3).
    pub mem_busy_by_tag: BTreeMap<StatTag, u64>,
    /// Loads that completed having missed the L1 (serviced by LLC or
    /// beyond), and loads that went all the way to memory.
    pub l1_miss_loads: u64,
    pub mem_loads: u64,
    /// Retire timestamps of `Marker` uops, in retire order: (marker id,
    /// cycle). The RDTSC-style probe used for per-operation latency.
    pub markers: Vec<(u32, u64)>,
}

impl CoreStats {
    /// Total cycles attributed to `tag`.
    pub fn tag_cycles(&self, tag: StatTag) -> u64 {
        self.cycles_by_tag.get(&tag).copied().unwrap_or(0)
    }

    /// Total memory-stall cycles attributed to `tag`.
    pub fn tag_mem_stalls(&self, tag: StatTag) -> u64 {
        self.mem_stall_by_tag.get(&tag).copied().unwrap_or(0)
    }

    /// Add a stall-reason cycle.
    pub fn bump_stall(&mut self, r: StallReason) {
        *self.stalls.entry(r).or_insert(0) += 1;
        self.stalled_cycles += 1;
    }

    /// Record `n` stall cycles with one reason at once (batched idle
    /// accounting). Keeps the `stalled_cycles == Σ stalls` ledger intact.
    pub fn bump_stall_n(&mut self, r: StallReason, n: u64) {
        if n == 0 {
            return;
        }
        *self.stalls.entry(r).or_insert(0) += n;
        self.stalled_cycles += n;
    }

    /// Sum of the per-reason stall histogram.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.values().sum()
    }

    /// Verify the stall-attribution invariant: every stalled cycle is
    /// attributed to exactly one reason, and a core cannot stall for more
    /// cycles than it ran.
    pub fn check_stall_accounting(&self) -> Result<(), String> {
        let sum = self.total_stalls();
        if sum != self.stalled_cycles {
            return Err(format!(
                "stall histogram sums to {sum} but stalled_cycles is {}",
                self.stalled_cycles
            ));
        }
        if self.stalled_cycles > self.cycles {
            return Err(format!(
                "stalled_cycles {} exceeds total cycles {}",
                self.stalled_cycles, self.cycles
            ));
        }
        Ok(())
    }
}

/// Per-cache statistics.
#[derive(Clone, Default, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub prefetches_issued: u64,
    pub prefetch_hits: u64,
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss ratio over all demand accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Per-memory-controller statistics.
#[derive(Clone, Default, Debug, PartialEq, Serialize, Deserialize)]
pub struct McStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    /// All-bank refresh windows the channel has performed (0 when the
    /// backend runs with refresh disabled).
    pub refreshes: u64,
    /// Reads serviced by WPQ forwarding.
    pub wpq_forwards: u64,
    /// Cycles the input port was blocked by engine back-pressure
    /// (CTT-full / BPQ-full stalls; Fig. 20b).
    pub input_stall_cycles: u64,
    /// Engine-generated DRAM reads/writes (lazy copies, drains).
    pub engine_reads: u64,
    pub engine_writes: u64,
    /// Correctable ECC errors observed on DRAM accesses (each triggered a
    /// bounded retry-with-backoff; injected, see [`crate::fault`]).
    pub ecc_corrected: u64,
    /// Re-read attempts spent correcting ECC errors.
    pub ecc_retries: u64,
    /// Uncorrectable ECC errors: the line was poisoned.
    pub ecc_uncorrectable: u64,
    /// Demand/engine reads that returned poisoned data.
    pub poisoned_reads: u64,
    /// Forced CTT flushes the copy engine performed under injected faults.
    pub forced_flushes: u64,
    /// Dropped-CTT-entry repairs: the engine detected lost copy metadata
    /// and eagerly re-copied the affected line.
    pub eager_fallbacks: u64,
    /// Transient controller stall windows tripped by injected faults.
    pub fault_stalls: u64,
    /// Cycles the input port was blocked inside injected stall windows.
    pub fault_stall_cycles: u64,
    /// Malformed packets dropped (and reported via the audit log) instead
    /// of processed.
    pub malformed_packets: u64,
    /// Sum of enqueue→completion latencies (cycles) over all DRAM-serviced
    /// demand reads, and their count. WPQ-forwarded reads never reach DRAM
    /// and are excluded. Together these give the mean loaded read latency
    /// the LLC observes — the y-axis of a bandwidth–latency (Mess) curve.
    pub demand_read_lat_sum: u64,
    /// Number of DRAM-serviced demand reads behind `demand_read_lat_sum`.
    pub demand_reads_done: u64,
}

impl McStats {
    /// Sum of all fault/degradation counters; 0 on a clean (empty
    /// fault-plan) run, which keeps summary output byte-identical.
    pub fn fault_events(&self) -> u64 {
        self.ecc_corrected
            + self.ecc_retries
            + self.ecc_uncorrectable
            + self.poisoned_reads
            + self.forced_flushes
            + self.eager_fallbacks
            + self.fault_stalls
            + self.malformed_packets
    }
}

/// Statistics of one full run.
#[derive(Clone, Default, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Simulated cycles until all programs finished (and queues drained).
    pub cycles: u64,
    pub cores: Vec<CoreStats>,
    pub l1: Vec<CacheStats>,
    pub llc: CacheStats,
    pub mcs: Vec<McStats>,
    /// Engine counters (name → value), e.g. CTT inserts, bounces, drains.
    pub engine: BTreeMap<String, u64>,
}

impl RunStats {
    /// Sum of a per-tag cycle counter across cores.
    pub fn total_tag_cycles(&self, tag: StatTag) -> u64 {
        self.cores.iter().map(|c| c.tag_cycles(tag)).sum()
    }

    /// Sum of memory-stall cycles for a tag across cores.
    pub fn total_tag_mem_stalls(&self, tag: StatTag) -> u64 {
        self.cores.iter().map(|c| c.tag_mem_stalls(tag)).sum()
    }

    /// Fraction of all attributed cycles spent under `tag` (Fig. 2's "copy
    /// overhead" when `tag == StatTag::Memcpy`).
    pub fn tag_fraction(&self, tag: StatTag) -> f64 {
        let total: u64 =
            self.cores.iter().flat_map(|c| c.cycles_by_tag.values()).sum();
        if total == 0 {
            0.0
        } else {
            self.total_tag_cycles(tag) as f64 / total as f64
        }
    }

    /// Total DRAM accesses across controllers.
    pub fn dram_accesses(&self) -> u64 {
        self.mcs.iter().map(|m| m.reads + m.writes).sum()
    }

    /// Total CTT-full input stall cycles across controllers (Fig. 20b).
    pub fn mc_input_stalls(&self) -> u64 {
        self.mcs.iter().map(|m| m.input_stall_cycles).sum()
    }

    /// Engine counter by name (0 when absent).
    pub fn engine_counter(&self, name: &str) -> u64 {
        self.engine.get(name).copied().unwrap_or(0)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles: {}", self.cycles)?;
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "  core{i}: retired={} loads={} stores={} l1miss={} memloads={}",
                c.retired, c.loads, c.stores, c.l1_miss_loads, c.mem_loads
            )?;
        }
        writeln!(
            f,
            "  llc: hits={} misses={} (mr={:.3})",
            self.llc.hits,
            self.llc.misses,
            self.llc.miss_ratio()
        )?;
        for (i, m) in self.mcs.iter().enumerate() {
            writeln!(
                f,
                "  mc{i}: rd={} wr={} rowhit={} rowmiss={} rowconf={} refresh={} stalls={}",
                m.reads,
                m.writes,
                m.row_hits,
                m.row_misses,
                m.row_conflicts,
                m.refreshes,
                m.input_stall_cycles
            )?;
            if m.fault_events() > 0 {
                writeln!(
                    f,
                    "  mc{i}.faults: ecc_corr={} ecc_retry={} ecc_uncorr={} \
poisoned_rd={} forced_flush={} eager_fb={} stalls={}/{}cy malformed={}",
                    m.ecc_corrected,
                    m.ecc_retries,
                    m.ecc_uncorrectable,
                    m.poisoned_reads,
                    m.forced_flushes,
                    m.eager_fallbacks,
                    m.fault_stalls,
                    m.fault_stall_cycles,
                    m.malformed_packets
                )?;
            }
        }
        for (k, v) in &self.engine {
            writeln!(f, "  engine.{k}: {v}")?;
        }
        Ok(())
    }
}

/// Latency percentile summary over a sample set (used by the
/// per-operation latency figures).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub min: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
    pub mean: f64,
}

/// Summarise a latency sample (cycles). Returns `None` for an empty set.
pub fn summarize_latencies(samples: &[u64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let pct = |p: f64| v[(((v.len() - 1) as f64) * p).round() as usize];
    Some(LatencySummary {
        min: v[0],
        p50: pct(0.50),
        p99: pct(0.99),
        max: *v.last().expect("nonempty"),
        mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let s = summarize_latencies(&[10, 20, 30, 40, 1000]).unwrap();
        assert_eq!(s.min, 10);
        assert_eq!(s.p50, 30);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p99, 1000);
        assert!((s.mean - 220.0).abs() < 1e-9);
        assert!(summarize_latencies(&[]).is_none());
    }

    #[test]
    fn tag_fraction_sums() {
        let mut rs = RunStats::default();
        let mut c = CoreStats::default();
        c.cycles_by_tag.insert(StatTag::Memcpy, 30);
        c.cycles_by_tag.insert(StatTag::App, 70);
        rs.cores.push(c);
        assert!((rs.tag_fraction(StatTag::Memcpy) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn miss_ratio_handles_zero() {
        let cs = CacheStats::default();
        assert_eq!(cs.miss_ratio(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let rs = RunStats::default();
        assert!(!format!("{rs}").is_empty());
    }

    #[test]
    fn display_reports_full_row_buffer_breakdown() {
        let mut rs = RunStats::default();
        rs.mcs.push(McStats {
            row_hits: 3,
            row_misses: 2,
            row_conflicts: 1,
            refreshes: 4,
            ..McStats::default()
        });
        let s = format!("{rs}");
        assert!(s.contains("rowhit=3"), "{s}");
        assert!(s.contains("rowmiss=2"), "{s}");
        assert!(s.contains("rowconf=1"), "{s}");
        assert!(s.contains("refresh=4"), "{s}");
    }

    #[test]
    fn fault_counters_print_only_when_nonzero() {
        let mut rs = RunStats::default();
        rs.mcs.push(McStats::default());
        let clean = format!("{rs}");
        assert!(!clean.contains("faults"), "clean run must not print fault line: {clean}");
        rs.mcs[0].ecc_corrected = 2;
        rs.mcs[0].ecc_retries = 4;
        rs.mcs[0].poisoned_reads = 1;
        let s = format!("{rs}");
        assert!(s.contains("ecc_corr=2"), "{s}");
        assert!(s.contains("ecc_retry=4"), "{s}");
        assert!(s.contains("poisoned_rd=1"), "{s}");
    }

    #[test]
    fn engine_counter_defaults_to_zero() {
        let mut rs = RunStats::default();
        assert_eq!(rs.engine_counter("ctt_inserts"), 0);
        rs.engine.insert("ctt_inserts".into(), 5);
        assert_eq!(rs.engine_counter("ctt_inserts"), 5);
    }
}
