//! Runtime invariant checking (the `check-invariants` feature).
//!
//! This module is the dynamic half of the verification layer (the static
//! half is the `mcs-check` bounded model checker). When the feature is
//! enabled, [`crate::system::System`] owns a [`Checker`] that observes
//! every packet placed on the memory interconnect and periodically audits
//! global state; any violation panics with a description of the broken
//! invariant. With the feature disabled none of this code exists and the
//! simulator is byte-for-byte identical to an unchecked build.
//!
//! What is checked:
//!
//! * **Packet conservation** — every `ReadReq` is answered by exactly one
//!   `ReadResp` with the same packet id; every acked write gets exactly
//!   one `WriteAck`; every `BounceRead` gets exactly one `BounceResp`
//!   carrying the same [`crate::packet::BounceInfo`]; every `MCLAZY`
//!   broadcast is eventually acknowledged. At quiescence no request may
//!   remain unanswered (catches dropped-packet deadlocks early, with the
//!   offending id rather than a timeout).
//! * **Coherence** (performed by `System`, see
//!   `System::validate_invariants`) — at most one L1 holds a line in M;
//!   an L1 in M implies the directory agrees or a transaction is in
//!   flight; inclusion holds against the LLC.
//! * **Stats sanity** — core/LLC/MC counters never decrease, and stall
//!   attribution is exact ([`crate::stats::CoreStats::check_stall_accounting`]).

use crate::packet::{MemCmd, Packet};
use std::collections::{HashMap, HashSet};

/// Key identifying one bounce round-trip. `BounceRead` and `BounceResp`
/// use fresh packet ids but carry the same `BounceInfo`, so conservation
/// is tracked on the info tuple: (reply_to, token, src, dest_off, len).
type BounceKey = (usize, u64, u64, u32, u32);

/// Ledgers for in-flight request/response pairs on the interconnect.
#[derive(Debug, Default)]
pub struct Checker {
    /// `ReadReq` ids awaiting a `ReadResp`.
    reads: HashSet<u64>,
    /// `needs_ack` write ids awaiting a `WriteAck`.
    write_acks: HashSet<u64>,
    /// Every `Mclazy` broadcast id ever seen (acks must refer to one).
    mclazy_known: HashSet<u64>,
    /// `Mclazy` ids not yet acknowledged. A broadcast is one logical
    /// request even though the LLC sends one copy per channel, and some
    /// engines (e.g. the baseline `NullEngine`) ack more than once — the
    /// LLC ignores duplicates — so this is a set, not a multiset.
    mclazy_unacked: HashSet<u64>,
    /// Outstanding bounce round-trips (multiset: identical fragments can
    /// be in flight for different reconstructions).
    bounces: HashMap<BounceKey, u32>,
    /// Number of `tick()` calls, for validation cadence.
    pub ticks: u64,
    /// Monotonicity snapshots: per-core (cycles, retired, stalled).
    pub core_snap: Vec<(u64, u64, u64)>,
    /// (llc hits+misses, total MC reads+writes).
    pub mem_snap: (u64, u64),
}

fn bounce_key(info: &crate::packet::BounceInfo) -> BounceKey {
    (info.reply_to, info.token, info.src.0, info.dest_off, info.len)
}

impl Checker {
    /// Observe a packet being placed on the interconnect.
    ///
    /// # Panics
    /// Panics when a response has no matching outstanding request, or a
    /// request id is reused while still in flight.
    pub fn observe_send(&mut self, pkt: &Packet) {
        match &pkt.cmd {
            MemCmd::ReadReq => {
                assert!(
                    self.reads.insert(pkt.id),
                    "invariant violation (packet conservation): \
                     ReadReq id {} reused while still in flight ({pkt:?})",
                    pkt.id
                );
            }
            MemCmd::ReadResp => {
                assert!(
                    self.reads.remove(&pkt.id),
                    "invariant violation (packet conservation): \
                     ReadResp id {} without an outstanding ReadReq ({pkt:?})",
                    pkt.id
                );
            }
            MemCmd::WriteReq | MemCmd::LazyDestWrite if pkt.needs_ack => {
                assert!(
                    self.write_acks.insert(pkt.id),
                    "invariant violation (packet conservation): \
                     acked-write id {} reused while still in flight ({pkt:?})",
                    pkt.id
                );
            }
            MemCmd::WriteAck => {
                assert!(
                    self.write_acks.remove(&pkt.id),
                    "invariant violation (packet conservation): \
                     WriteAck id {} without an outstanding acked write ({pkt:?})",
                    pkt.id
                );
            }
            MemCmd::Mclazy(_) => {
                self.mclazy_known.insert(pkt.id);
                self.mclazy_unacked.insert(pkt.id);
            }
            MemCmd::MclazyAck => {
                assert!(
                    self.mclazy_known.contains(&pkt.id),
                    "invariant violation (packet conservation): \
                     MclazyAck id {} for an unknown MCLAZY broadcast ({pkt:?})",
                    pkt.id
                );
                self.mclazy_unacked.remove(&pkt.id);
            }
            MemCmd::BounceRead(info) => {
                *self.bounces.entry(bounce_key(info)).or_insert(0) += 1;
            }
            MemCmd::BounceResp(info) => {
                let key = bounce_key(info);
                match self.bounces.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        if *n == 0 {
                            self.bounces.remove(&key);
                        }
                    }
                    _ => panic!(
                        "invariant violation (packet conservation): \
                         BounceResp without an outstanding BounceRead ({pkt:?})"
                    ),
                }
            }
            // Fire-and-forget commands and unacked writes have no
            // conservation obligation.
            MemCmd::Mcfree(_) | MemCmd::WriteReq | MemCmd::LazyDestWrite => {}
        }
    }

    /// Assert all ledgers are empty — called once the system is quiescent,
    /// when any remaining entry is a dropped packet.
    ///
    /// # Panics
    /// Panics naming the leaked request(s).
    pub fn assert_quiescent(&self) {
        assert!(
            self.reads.is_empty(),
            "invariant violation (packet conservation): \
             {} ReadReq(s) never answered at quiescence: {:?}",
            self.reads.len(),
            self.reads
        );
        assert!(
            self.write_acks.is_empty(),
            "invariant violation (packet conservation): \
             {} acked write(s) never acknowledged at quiescence: {:?}",
            self.write_acks.len(),
            self.write_acks
        );
        assert!(
            self.mclazy_unacked.is_empty(),
            "invariant violation (packet conservation): \
             {} MCLAZY broadcast(s) never acknowledged at quiescence: {:?}",
            self.mclazy_unacked.len(),
            self.mclazy_unacked
        );
        assert!(
            self.bounces.is_empty(),
            "invariant violation (packet conservation): \
             {} bounce read(s) never answered at quiescence: {:?}",
            self.bounces.len(),
            self.bounces
        );
    }
}
