//! The `Program` trait: how workloads drive a simulated core.
//!
//! A program is a uop generator. The core pulls uops through
//! [`Program::fetch`] and notifies the program of completed loads through
//! [`Program::on_load_complete`], which is what makes dependent access
//! patterns (the pointer chase of Fig. 13, fault handling in `mcs-os`)
//! expressible: the program returns [`Fetch::Stall`] until the value it
//! needs has arrived.

use crate::uop::{Uop, UopId};

/// Result of asking a program for its next uop.
#[derive(Debug)]
pub enum Fetch {
    /// Dispatch this uop. The core assigns it the [`UopId`] passed as
    /// `next_id` to [`Program::fetch`].
    Uop(Uop),
    /// No uop available this cycle (dependency not yet satisfied); ask
    /// again later.
    Stall,
    /// The program has finished.
    Done,
}

/// A workload running on one core.
///
/// Programs see uop ids: `fetch` is told the id that will be assigned to
/// the uop it returns, and `on_load_complete` reports results by id.
///
/// Programs are `Send` so whole systems can be constructed and run on
/// worker threads during benchmark sweeps.
///
/// Contract for [`Fetch::Stall`]: once `fetch` stalls, its answer may only
/// change after an `on_load_complete` delivery — the core's idle
/// skip-ahead relies on this.
pub trait Program: Send {
    /// Produce the next uop, to be assigned id `next_id`.
    fn fetch(&mut self, next_id: UopId) -> Fetch;

    /// A previously fetched load (id `id`) completed with `data`.
    fn on_load_complete(&mut self, id: UopId, data: &[u8]) {
        let _ = (id, data);
    }
}

/// A program that replays a fixed uop sequence (no data dependencies).
#[derive(Debug)]
pub struct FixedProgram {
    uops: std::vec::IntoIter<Uop>,
}

impl FixedProgram {
    /// Wrap a pre-generated uop list.
    pub fn new(uops: Vec<Uop>) -> FixedProgram {
        FixedProgram { uops: uops.into_iter() }
    }
}

impl Program for FixedProgram {
    fn fetch(&mut self, _next_id: UopId) -> Fetch {
        match self.uops.next() {
            Some(u) => Fetch::Uop(u),
            None => Fetch::Done,
        }
    }
}

/// Chain several programs, running them back to back on the same core.
pub struct SeqProgram {
    parts: Vec<Box<dyn Program>>,
    idx: usize,
}

impl SeqProgram {
    /// Run `parts` in order.
    pub fn new(parts: Vec<Box<dyn Program>>) -> SeqProgram {
        SeqProgram { parts, idx: 0 }
    }
}

impl Program for SeqProgram {
    fn fetch(&mut self, next_id: UopId) -> Fetch {
        while self.idx < self.parts.len() {
            match self.parts[self.idx].fetch(next_id) {
                Fetch::Done => self.idx += 1,
                other => return other,
            }
        }
        Fetch::Done
    }

    fn on_load_complete(&mut self, id: UopId, data: &[u8]) {
        if let Some(p) = self.parts.get_mut(self.idx) {
            p.on_load_complete(id, data);
        }
    }
}

impl std::fmt::Debug for SeqProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SeqProgram({}/{} parts)", self.idx, self.parts.len())
    }
}

/// An empty program (for cores that should stay idle).
#[derive(Debug, Default)]
pub struct IdleProgram;

impl Program for IdleProgram {
    fn fetch(&mut self, _next_id: UopId) -> Fetch {
        Fetch::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::uop::{StatTag, UopKind};

    fn ld(a: u64) -> Uop {
        Uop::new(UopKind::Load { addr: PhysAddr(a), size: 8 }, StatTag::App)
    }

    #[test]
    fn fixed_program_replays_and_ends() {
        let mut p = FixedProgram::new(vec![ld(0), ld(64)]);
        assert!(matches!(p.fetch(0), Fetch::Uop(_)));
        assert!(matches!(p.fetch(1), Fetch::Uop(_)));
        assert!(matches!(p.fetch(2), Fetch::Done));
        assert!(matches!(p.fetch(3), Fetch::Done));
    }

    #[test]
    fn seq_program_chains() {
        let mut p = SeqProgram::new(vec![
            Box::new(FixedProgram::new(vec![ld(0)])),
            Box::new(FixedProgram::new(vec![ld(64), ld(128)])),
        ]);
        let mut n = 0;
        while let Fetch::Uop(_) = p.fetch(n) {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn idle_program_is_done() {
        assert!(matches!(IdleProgram.fetch(0), Fetch::Done));
    }
}
