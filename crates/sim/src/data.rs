//! Functional data: cacheline payloads and a sparse memory image.
//!
//! The simulator moves real bytes, not just timing tokens. Every read
//! response, cache fill, writeback, and bounce carries a [`LineData`], and
//! each system owns one [`SparseMem`] representing DRAM contents. This is
//! what lets the test suite prove the paper's central claim — "at all times,
//! data appears to the program as if it had been copied eagerly" — rather
//! than just measure cycles.

use crate::addr::{PhysAddr, CACHELINE};
use std::collections::HashMap;
use std::fmt;

/// The contents of one 64-byte cacheline.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct LineData(pub [u8; CACHELINE as usize]);

impl LineData {
    /// A line of all-zero bytes (the contents of untouched memory).
    pub const ZERO: LineData = LineData([0; CACHELINE as usize]);

    /// Construct a line where every byte holds `b`.
    pub fn splat(b: u8) -> LineData {
        LineData([b; CACHELINE as usize])
    }

    /// Copy `src` into this line starting at byte `off`.
    ///
    /// # Panics
    /// Panics if `off + src.len()` exceeds the line size.
    pub fn write(&mut self, off: usize, src: &[u8]) {
        self.0[off..off + src.len()].copy_from_slice(src);
    }

    /// Read `len` bytes starting at byte `off`.
    ///
    /// # Panics
    /// Panics if `off + len` exceeds the line size.
    pub fn read(&self, off: usize, len: usize) -> &[u8] {
        &self.0[off..off + len]
    }
}

impl Default for LineData {
    fn default() -> Self {
        LineData::ZERO
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print first 8 bytes; full dumps are unreadable in test output.
        write!(
            f,
            "LineData[{:02x} {:02x} {:02x} {:02x} {:02x} {:02x} {:02x} {:02x} ..]",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5], self.0[6], self.0[7]
        )
    }
}

/// A sparse byte-addressable memory image, keyed by cacheline.
///
/// Unbacked lines read as zero, matching an OS that hands out zeroed pages.
/// `SparseMem` is purely functional — all timing lives in the DRAM model.
#[derive(Default, Clone)]
pub struct SparseMem {
    lines: HashMap<u64, LineData>,
}

impl SparseMem {
    /// Create an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the full line containing `addr` (which need not be aligned).
    pub fn read_line(&self, addr: PhysAddr) -> LineData {
        self.lines
            .get(&addr.line_base().0)
            .copied()
            .unwrap_or(LineData::ZERO)
    }

    /// Overwrite the full line containing `addr`.
    pub fn write_line(&mut self, addr: PhysAddr, data: LineData) {
        self.lines.insert(addr.line_base().0, data);
    }

    /// Read `len` bytes starting at `addr`, crossing lines as needed.
    pub fn read_bytes(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut rem = len;
        while rem > 0 {
            let off = a.line_off() as usize;
            let take = rem.min(CACHELINE as usize - off);
            let line = self.read_line(a);
            out.extend_from_slice(line.read(off, take));
            a = a.add(take as u64);
            rem -= take;
        }
        out
    }

    /// Write `bytes` starting at `addr`, crossing lines as needed.
    pub fn write_bytes(&mut self, addr: PhysAddr, bytes: &[u8]) {
        let mut a = addr;
        let mut src = bytes;
        while !src.is_empty() {
            let off = a.line_off() as usize;
            let take = src.len().min(CACHELINE as usize - off);
            let mut line = self.read_line(a);
            line.write(off, &src[..take]);
            self.write_line(a, line);
            a = a.add(take as u64);
            src = &src[take..];
        }
    }

    /// Number of lines that have ever been written (footprint proxy).
    pub fn backed_lines(&self) -> usize {
        self.lines.len()
    }
}

impl fmt::Debug for SparseMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseMem({} lines backed)", self.lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read_line(PhysAddr(0x1000)), LineData::ZERO);
        assert_eq!(m.read_bytes(PhysAddr(12345), 10), vec![0u8; 10]);
    }

    #[test]
    fn roundtrip_within_line() {
        let mut m = SparseMem::new();
        m.write_bytes(PhysAddr(0x100), &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(PhysAddr(0x100), 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_bytes(PhysAddr(0x0fe), 8), vec![0, 0, 1, 2, 3, 4, 0, 0]);
    }

    #[test]
    fn roundtrip_across_lines() {
        let mut m = SparseMem::new();
        let data: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(PhysAddr(0x1f0), &data); // misaligned, crosses 4 lines
        assert_eq!(m.read_bytes(PhysAddr(0x1f0), 200), data);
    }

    #[test]
    fn line_write_and_splat() {
        let mut m = SparseMem::new();
        m.write_line(PhysAddr(0x247), LineData::splat(0xab)); // unaligned addr ok
        assert_eq!(m.read_line(PhysAddr(0x240)), LineData::splat(0xab));
        assert_eq!(m.read_bytes(PhysAddr(0x23f), 2), vec![0, 0xab]);
    }

    #[test]
    fn partial_line_update_preserves_rest() {
        let mut m = SparseMem::new();
        m.write_line(PhysAddr(0x0), LineData::splat(7));
        m.write_bytes(PhysAddr(0x8), &[9, 9]);
        let line = m.read_line(PhysAddr(0x0));
        assert_eq!(line.read(7, 4), &[7, 9, 9, 7]);
    }

    #[test]
    fn backed_lines_counts_unique_lines() {
        let mut m = SparseMem::new();
        m.write_bytes(PhysAddr(0), &[1]);
        m.write_bytes(PhysAddr(63), &[1]);
        m.write_bytes(PhysAddr(64), &[1]);
        assert_eq!(m.backed_lines(), 2);
    }
}
