//! Micro-operations: the instruction vocabulary programs feed to cores.
//!
//! This is deliberately a memory-centric ISA: the paper's experiments are
//! entirely memory-bound, so non-memory work is abstracted as
//! [`UopKind::Compute`] with a cycle cost. The two new instructions the
//! paper introduces, `MCLAZY` and `MCFREE` (§III-C), are first-class uops.

use crate::addr::{PhysAddr, CACHELINE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Attribution tag used by the statistics machinery: which logical activity
/// a uop belongs to. Regenerates the paper's "cycles spent in memcpy"
/// accounting (Figs. 2–3).
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub enum StatTag {
    /// Application work.
    #[default]
    App,
    /// Inside a memcpy / memcpy_lazy call.
    Memcpy,
    /// Kernel work (fault handlers, syscalls, pipe copies).
    Kernel,
}

/// Identifier of a uop within one core's program (assigned by the core at
/// dispatch, monotonically increasing).
pub type UopId = u64;

/// Where a store's bytes come from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreData {
    /// Immediate bytes (length = store size).
    Imm(Vec<u8>),
    /// Every stored byte is this value.
    Splat(u8),
    /// Bytes produced by a previous load of this program: the load
    /// identified by the program-order index returned from
    /// [`crate::program::Program::fetch`] (its [`UopId`]), starting at
    /// `offset` within that load's result.
    FromLoad {
        /// Uop id of the producing load.
        load: UopId,
        /// Byte offset within the load result.
        offset: u8,
    },
}

/// A micro-operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UopKind {
    /// Load `size` bytes from `addr`. Must not cross a cacheline boundary.
    Load {
        /// Physical address.
        addr: PhysAddr,
        /// Access size in bytes (1..=64).
        size: u8,
    },
    /// Store `size` bytes to `addr`. Must not cross a cacheline boundary.
    Store {
        /// Physical address.
        addr: PhysAddr,
        /// Access size in bytes (1..=64).
        size: u8,
        /// Data source.
        data: StoreData,
        /// Non-temporal: bypass the caches and write straight to memory
        /// (no read-for-ownership; used by the Fig. 17 variant).
        nontemporal: bool,
    },
    /// Write back the (possibly dirty) line containing `addr` to memory,
    /// keeping it cached clean — the CLWB instruction the software wrapper
    /// issues per source line (§IV).
    Clwb {
        /// Any address within the target line.
        addr: PhysAddr,
    },
    /// Write back every dirty line in `[addr, addr+size)` to memory in one
    /// instruction — the wider writeback operation §V-A1 proposes to
    /// remove `memcpy_lazy`'s per-line CLWB serialisation ("a wider
    /// writeback operation could be provided, for example operating at a
    /// page granularity").
    WbRange {
        /// Range start (any alignment).
        addr: PhysAddr,
        /// Range size in bytes.
        size: u64,
    },
    /// The paper's MCLAZY instruction: request a prospective copy.
    Mclazy {
        /// Destination (must be cacheline aligned).
        dst: PhysAddr,
        /// Source (any alignment).
        src: PhysAddr,
        /// Bytes to copy (must be a multiple of the cacheline size).
        size: u64,
    },
    /// The paper's MCFREE instruction: hint that a buffer is dead.
    Mcfree {
        /// Start of the freed buffer.
        addr: PhysAddr,
        /// Size in bytes.
        size: u64,
    },
    /// Full memory fence: later uops wait until all earlier memory effects
    /// (stores, CLWBs, MCLAZYs, NT stores) are complete.
    Mfence,
    /// Non-memory work occupying the pipeline for `cycles` cycles.
    Compute {
        /// Cost in cycles.
        cycles: u32,
    },
    /// Timestamp marker: records the retire cycle under `id` in the core
    /// statistics (the RDTSC-style instrumentation the paper uses for
    /// per-operation latencies, Figs. 15 and 18). Free of cost.
    Marker {
        /// Marker identifier reported in [`crate::stats::CoreStats::markers`].
        id: u32,
    },
    /// Pipeline serialisation point: later uops do not dispatch until this
    /// uop retires from an otherwise-empty pipeline with memory drained —
    /// the behaviour of privilege transitions (syscall/trap entry and
    /// exit) and other serialising instructions. Used by the kernel cost
    /// model so syscall and fault costs do not overlap surrounding work.
    PipelineFlush,
}

/// A tagged micro-operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Uop {
    /// Operation.
    pub kind: UopKind,
    /// Statistics attribution.
    pub tag: StatTag,
}

impl Uop {
    /// Construct a uop.
    pub fn new(kind: UopKind, tag: StatTag) -> Uop {
        Uop { kind, tag }
    }

    /// Validate structural constraints (alignment, sizes). Programs are
    /// expected to produce valid uops; the core asserts this in debug
    /// builds.
    ///
    /// # Errors
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match &self.kind {
            UopKind::Load { addr, size } => check_access(*addr, *size),
            UopKind::Store { addr, size, data, .. } => {
                check_access(*addr, *size)?;
                if let StoreData::Imm(b) = data {
                    if b.len() != *size as usize {
                        return Err(format!(
                            "store imm length {} != size {}",
                            b.len(),
                            size
                        ));
                    }
                }
                Ok(())
            }
            UopKind::Mclazy { dst, size, .. } => {
                if !dst.is_aligned(CACHELINE) {
                    return Err(format!("MCLAZY dst {dst} not cacheline aligned"));
                }
                if *size == 0 || *size % CACHELINE != 0 {
                    return Err(format!("MCLAZY size {size} not a multiple of 64"));
                }
                Ok(())
            }
            UopKind::Mcfree { size, .. } => {
                if *size == 0 {
                    return Err("MCFREE size 0".into());
                }
                Ok(())
            }
            UopKind::WbRange { size, .. } => {
                if *size == 0 || *size > crate::addr::PAGE_2M {
                    return Err(format!("WBRANGE size {size} out of range"));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Whether this uop reads or writes memory (used for fence ordering).
    pub fn is_mem(&self) -> bool {
        !matches!(
            self.kind,
            UopKind::Compute { .. }
                | UopKind::Mfence
                | UopKind::Marker { .. }
                | UopKind::PipelineFlush
        )
    }
}

fn check_access(addr: PhysAddr, size: u8) -> Result<(), String> {
    if size == 0 || size as u64 > CACHELINE {
        return Err(format!("access size {size} out of range"));
    }
    if addr.line_off() + size as u64 > CACHELINE {
        return Err(format!("access at {addr} size {size} crosses a cacheline"));
    }
    Ok(())
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            UopKind::Load { addr, size } => write!(f, "ld {size}B @{addr}"),
            UopKind::Store { addr, size, nontemporal, .. } => {
                write!(f, "st{} {size}B @{addr}", if *nontemporal { ".nt" } else { "" })
            }
            UopKind::Clwb { addr } => write!(f, "clwb @{addr}"),
            UopKind::WbRange { addr, size } => write!(f, "wbrange {size}B @{addr}"),
            UopKind::Mclazy { dst, src, size } => {
                write!(f, "mclazy {size}B {src} -> {dst}")
            }
            UopKind::Mcfree { addr, size } => write!(f, "mcfree {size}B @{addr}"),
            UopKind::Mfence => write!(f, "mfence"),
            UopKind::Compute { cycles } => write!(f, "compute {cycles}cy"),
            UopKind::Marker { id } => write!(f, "marker #{id}"),
            UopKind::PipelineFlush => write!(f, "pipeline-flush"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_load() {
        let u = Uop::new(UopKind::Load { addr: PhysAddr(0x40), size: 64 }, StatTag::App);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn load_crossing_line_rejected() {
        let u = Uop::new(UopKind::Load { addr: PhysAddr(0x41), size: 64 }, StatTag::App);
        assert!(u.validate().is_err());
        let u = Uop::new(UopKind::Load { addr: PhysAddr(0x7f), size: 2 }, StatTag::App);
        assert!(u.validate().is_err());
    }

    #[test]
    fn mclazy_alignment_rules() {
        let ok = Uop::new(
            UopKind::Mclazy { dst: PhysAddr(0x1000), src: PhysAddr(0x2003), size: 128 },
            StatTag::Memcpy,
        );
        assert!(ok.validate().is_ok(), "source may be misaligned");
        let bad_dst = Uop::new(
            UopKind::Mclazy { dst: PhysAddr(0x1001), src: PhysAddr(0x2000), size: 128 },
            StatTag::Memcpy,
        );
        assert!(bad_dst.validate().is_err());
        let bad_size = Uop::new(
            UopKind::Mclazy { dst: PhysAddr(0x1000), src: PhysAddr(0x2000), size: 100 },
            StatTag::Memcpy,
        );
        assert!(bad_size.validate().is_err());
    }

    #[test]
    fn store_imm_length_checked() {
        let u = Uop::new(
            UopKind::Store {
                addr: PhysAddr(0),
                size: 4,
                data: StoreData::Imm(vec![1, 2, 3]),
                nontemporal: false,
            },
            StatTag::App,
        );
        assert!(u.validate().is_err());
    }

    #[test]
    fn is_mem_classification() {
        assert!(!Uop::new(UopKind::Mfence, StatTag::App).is_mem());
        assert!(!Uop::new(UopKind::Compute { cycles: 3 }, StatTag::App).is_mem());
        assert!(Uop::new(UopKind::Clwb { addr: PhysAddr(0) }, StatTag::App).is_mem());
    }

    #[test]
    fn display_formats() {
        let u = Uop::new(UopKind::Load { addr: PhysAddr(0x40), size: 8 }, StatTag::App);
        assert_eq!(format!("{u}"), "ld 8B @0x40");
    }
}
