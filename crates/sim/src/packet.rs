//! Memory-system packets: the vocabulary spoken on the interconnect between
//! the LLC and the memory controllers, and between memory controllers.
//!
//! The baseline machine only uses `ReadReq`/`ReadResp`/`WriteReq` plus the
//! ack for MCLAZY insertion. The remaining commands (`BounceRead`,
//! `BounceResp`, `LazyDestWrite`, `Mclazy`, `Mcfree`) are the (MC)²
//! extensions of §III; the simulator defines the vocabulary and the
//! `mcsquare` crate implements their semantics through the
//! [`crate::engine::CopyEngine`] hook.

use crate::addr::PhysAddr;
use crate::data::LineData;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Routing target of a packet on the memory interconnect.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// The shared last-level cache (which forwards responses up to cores).
    Llc,
    /// Memory controller `i`.
    Mc(usize),
}

/// Monotonic packet-id source, unique within a process. Ids only need to be
/// unique per outstanding request; a global counter is the simplest way.
static NEXT_PACKET_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh packet id.
pub fn fresh_id() -> u64 {
    NEXT_PACKET_ID.fetch_add(1, Ordering::Relaxed)
}

/// Descriptor of a lazy-copy operation as carried by an `MCLAZY` packet:
/// destination, source, and size in bytes.
///
/// Per §III-C the destination must be cacheline aligned and the size a
/// multiple of the cacheline size; the source may be arbitrarily aligned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LazyDesc {
    /// Destination physical address (cacheline aligned).
    pub dst: PhysAddr,
    /// Source physical address (any alignment).
    pub src: PhysAddr,
    /// Copy size in bytes (multiple of the cacheline size).
    pub size: u64,
}

/// Descriptor carried by an `MCFREE` packet: a buffer whose tracked copies
/// can be dropped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FreeDesc {
    /// Start of the freed buffer.
    pub addr: PhysAddr,
    /// Size of the freed buffer in bytes.
    pub size: u64,
}

/// A bounce request: "read `len` source bytes at `src` on behalf of the
/// reconstruction of destination line `dest_line`".
///
/// `token` identifies the reconstruction in flight at the requesting MC so
/// the fragments can be reassembled; `dest_off` says where in the
/// destination line the fragment lands.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BounceInfo {
    /// MC that is reconstructing the destination line and awaits the fragment.
    pub reply_to: usize,
    /// Reassembly token at the requesting MC.
    pub token: u64,
    /// Source address of the fragment.
    pub src: PhysAddr,
    /// Length of the fragment in bytes (1..=64).
    pub len: u32,
    /// Offset within the destination line where the fragment belongs.
    pub dest_off: u32,
}

/// Packet command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemCmd {
    /// Read one full cacheline (LLC → MC). Answered with `ReadResp`.
    ReadReq,
    /// Cacheline data response (MC → LLC).
    ReadResp,
    /// Posted full-line write (LLC → MC): writeback, CLWB data, or NT store.
    WriteReq,
    /// Lazy-copy request (LLC → MC, §III-B1 step 3). Answered with
    /// `MclazyAck` once inserted in the CTT.
    Mclazy(LazyDesc),
    /// Ack that an MCLAZY packet was accepted by the memory controller.
    MclazyAck,
    /// Free hint (LLC → MC, fire-and-forget).
    Mcfree(FreeDesc),
    /// MC → MC: fetch a source fragment for a destination-line
    /// reconstruction (§III-B2 "read from destination", step 2).
    BounceRead(BounceInfo),
    /// MC → MC: fragment data coming back.
    BounceResp(BounceInfo),
    /// MC → MC: write a fully reconstructed destination line to the MC that
    /// owns it (the write leg of a lazy copy; always accepted).
    LazyDestWrite,
    /// MC → LLC: a `WriteReq` with `needs_ack` was accepted into a write
    /// pending queue (or the BPQ). Used to make CLWB completion reflect
    /// controller acceptance, so BPQ back-pressure reaches the core.
    WriteAck,
}

impl MemCmd {
    /// True for commands that carry a data payload.
    pub fn has_data(&self) -> bool {
        matches!(
            self,
            MemCmd::ReadResp | MemCmd::WriteReq | MemCmd::BounceResp(_) | MemCmd::LazyDestWrite
        )
    }
}

/// A packet on the memory interconnect.
#[derive(Clone)]
pub struct Packet {
    /// Request/response matching id.
    pub id: u64,
    /// Command.
    pub cmd: MemCmd,
    /// Address the command operates on (line-aligned for line ops).
    pub addr: PhysAddr,
    /// Data payload for commands where [`MemCmd::has_data`] holds.
    pub data: Option<LineData>,
    /// Routing target.
    pub dest: Node,
    /// True for prefetcher-generated reads (they fill caches but nobody
    /// stalls on them).
    pub is_prefetch: bool,
    /// Core that ultimately caused this packet, when known (for stats and
    /// for routing acks back up).
    pub core: Option<usize>,
    /// For `WriteReq`: request a `WriteAck` once the write is accepted by
    /// the memory controller (used by CLWB).
    pub needs_ack: bool,
    /// Data payload is poisoned: it was produced from a DRAM line that
    /// suffered an uncorrectable ECC error (see [`crate::fault`]). Poison
    /// is metadata — the functional bytes are still simulated — and it
    /// propagates with the data: poisoned reads, poisoned reconstructed
    /// destination writes.
    pub poisoned: bool,
}

impl Packet {
    /// Construct a read request for the line containing `addr`.
    pub fn read(addr: PhysAddr, dest: Node) -> Packet {
        Packet {
            id: fresh_id(),
            cmd: MemCmd::ReadReq,
            addr: addr.line_base(),
            data: None,
            dest,
            is_prefetch: false,
            core: None,
            needs_ack: false,
            poisoned: false,
        }
    }

    /// Construct a posted full-line write.
    pub fn write(addr: PhysAddr, data: LineData, dest: Node) -> Packet {
        Packet {
            id: fresh_id(),
            cmd: MemCmd::WriteReq,
            addr: addr.line_base(),
            data: Some(data),
            dest,
            is_prefetch: false,
            core: None,
            needs_ack: false,
            poisoned: false,
        }
    }

    /// Build the response to this read request with the given payload.
    ///
    /// # Panics
    /// Panics if `self` is not a `ReadReq`.
    pub fn make_read_resp(&self, data: LineData) -> Packet {
        assert_eq!(self.cmd, MemCmd::ReadReq, "make_read_resp on non-read");
        Packet {
            id: self.id,
            cmd: MemCmd::ReadResp,
            addr: self.addr,
            data: Some(data),
            dest: Node::Llc,
            is_prefetch: self.is_prefetch,
            core: self.core,
            needs_ack: false,
            poisoned: false,
        }
    }

    /// Build the `WriteAck` for this write request.
    ///
    /// # Panics
    /// Panics if `self` is not a write command.
    pub fn make_write_ack(&self) -> Packet {
        assert!(
            matches!(self.cmd, MemCmd::WriteReq | MemCmd::LazyDestWrite),
            "make_write_ack on non-write"
        );
        Packet {
            id: self.id,
            cmd: MemCmd::WriteAck,
            addr: self.addr,
            data: None,
            dest: Node::Llc,
            is_prefetch: false,
            core: self.core,
            needs_ack: false,
            poisoned: false,
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packet#{}{{{:?} @{:?} -> {:?}{}{}{}}}",
            self.id,
            self.cmd,
            self.addr,
            self.dest,
            if self.is_prefetch { " pf" } else { "" },
            if self.data.is_some() { " +data" } else { "" },
            if self.poisoned { " poison" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, b);
    }

    #[test]
    fn read_req_aligns_address() {
        let p = Packet::read(PhysAddr(0x1039), Node::Mc(0));
        assert_eq!(p.addr, PhysAddr(0x1000));
        assert_eq!(p.cmd, MemCmd::ReadReq);
        assert!(p.data.is_none());
    }

    #[test]
    fn read_resp_preserves_id_and_routes_to_llc() {
        let req = Packet::read(PhysAddr(0x40), Node::Mc(1));
        let resp = req.make_read_resp(LineData::splat(3));
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.dest, Node::Llc);
        assert_eq!(resp.data, Some(LineData::splat(3)));
    }

    #[test]
    #[should_panic(expected = "non-read")]
    fn read_resp_from_write_panics() {
        let w = Packet::write(PhysAddr(0), LineData::ZERO, Node::Mc(0));
        let _ = w.make_read_resp(LineData::ZERO);
    }

    #[test]
    fn has_data_classification() {
        assert!(!MemCmd::ReadReq.has_data());
        assert!(MemCmd::ReadResp.has_data());
        assert!(MemCmd::WriteReq.has_data());
        assert!(MemCmd::LazyDestWrite.has_data());
        assert!(!MemCmd::MclazyAck.has_data());
    }
}
