//! The copy-engine hook: where (MC)² plugs into the memory controller.
//!
//! The simulator defines the *mechanism* — a [`CopyEngine`] sees every
//! packet arriving at every memory controller before normal processing, can
//! issue its own DRAM reads and writes, send packets across the memory
//! interconnect, and apply back-pressure — and the `mcsquare` crate supplies
//! the *policy* (the Copy Tracking Table and Bounce Pending Queue of §III).
//!
//! A single engine instance serves all memory controllers; the `mcid`
//! argument says which controller is calling. This models the paper's
//! broadcast-synchronized per-MC CTTs as one logical table (the broadcast
//! latency is part of the packet latencies on the interconnect).

use crate::addr::PhysAddr;
use crate::data::{LineData, SparseMem};
use crate::packet::Packet;
use crate::Cycle;

/// What the engine decided about an arriving packet.
#[derive(Debug)]
pub enum Verdict {
    /// Not interesting: let the memory controller handle it normally.
    Pass(Packet),
    /// The engine consumed the packet (it will produce any responses
    /// itself).
    Consumed,
    /// The engine cannot accept the packet right now (CTT or BPQ full):
    /// the controller re-queues it at the head of its input and retries,
    /// blocking everything behind it. This is the §III-A back-pressure
    /// whose stalls Fig. 20b counts.
    Retry(Packet),
}

/// Side-effect collector handed to the engine on every call.
///
/// The memory controller drains these after the call returns: DRAM reads
/// are entered into the read pending queue tagged as engine reads (the
/// result comes back via [`CopyEngine::on_dram_read`]); DRAM writes enter
/// the write pending queue; packets are sent onto the memory interconnect.
#[derive(Debug, Default)]
pub struct EngineIo {
    /// (tag, line address) — reads to this controller's own channel.
    pub dram_reads: Vec<(u64, PhysAddr)>,
    /// (line address, data, poisoned) — writes to this controller's own
    /// channel. A poisoned write marks the line as carrying data derived
    /// from an uncorrectable ECC error (materialize-or-poison).
    pub dram_writes: Vec<(PhysAddr, LineData, bool)>,
    /// Packets to put on the interconnect (routed by `Packet::dest`),
    /// with an extra delay beyond the base interconnect latency.
    pub sends: Vec<(Packet, Cycle)>,
    /// Occupancy of this controller's write pending queue at call time,
    /// as (len, capacity) — the §III-B2 75% bandwidth-contention check.
    pub wpq: (usize, usize),
    /// Forced CTT flushes injected during this call (fault accounting,
    /// folded into [`crate::stats::McStats::forced_flushes`]).
    pub fault_forced_flushes: u64,
    /// Dropped-entry repairs (eager re-copies) performed during this call
    /// (folded into [`crate::stats::McStats::eager_fallbacks`]).
    pub fault_eager_fallbacks: u64,
}

impl EngineIo {
    /// Fractional WPQ occupancy in `[0, 1]`.
    pub fn wpq_frac(&self) -> f64 {
        if self.wpq.1 == 0 {
            0.0
        } else {
            self.wpq.0 as f64 / self.wpq.1 as f64
        }
    }

    /// Issue a tagged read of the line containing `addr` on this channel.
    pub fn dram_read(&mut self, tag: u64, addr: PhysAddr) {
        self.dram_reads.push((tag, addr.line_base()));
    }

    /// Issue a write of the line containing `addr` on this channel.
    pub fn dram_write(&mut self, addr: PhysAddr, data: LineData) {
        self.dram_writes.push((addr.line_base(), data, false));
    }

    /// Issue a write whose data is poisoned (derived from an uncorrectable
    /// ECC error): the controller will mark the line poisoned on commit.
    pub fn dram_write_poisoned(&mut self, addr: PhysAddr, data: LineData) {
        self.dram_writes.push((addr.line_base(), data, true));
    }

    /// Send a packet on the interconnect after the base link latency.
    pub fn send(&mut self, pkt: Packet) {
        self.sends.push((pkt, 0));
    }

    /// Send a packet with additional delay (e.g. the CTT lookup latency
    /// added to a bounced read).
    pub fn send_after(&mut self, pkt: Packet, extra: Cycle) {
        self.sends.push((pkt, extra));
    }
}

/// A lazy-copy engine plugged into the memory controllers.
pub trait CopyEngine: std::fmt::Debug {
    /// A packet arrived at controller `mcid`. Called before normal RPQ/WPQ
    /// processing.
    fn on_arrive(&mut self, now: Cycle, mcid: usize, pkt: Packet, io: &mut EngineIo) -> Verdict;

    /// A DRAM read issued through [`EngineIo::dram_read`] completed.
    /// `poisoned` is true when the line suffered an uncorrectable ECC
    /// error: the engine must materialize-or-poison anything derived from
    /// this data.
    #[allow(clippy::too_many_arguments)]
    fn on_dram_read(
        &mut self,
        now: Cycle,
        mcid: usize,
        tag: u64,
        addr: PhysAddr,
        data: LineData,
        poisoned: bool,
        io: &mut EngineIo,
    );

    /// Called once per cycle per controller for background work
    /// (asynchronous CTT draining, BPQ release).
    fn tick(&mut self, now: Cycle, mcid: usize, io: &mut EngineIo) {
        let _ = (now, mcid, io);
    }

    /// Whether [`CopyEngine::tick`] could do any work for controller
    /// `mcid` right now. The event-driven scheduler only elides a
    /// controller's tick when this is false, so the default errs towards
    /// `true`; engines whose `tick` is a no-op (or conditional on state
    /// they can inspect cheaply) should override it.
    fn needs_tick(&self, mcid: usize) -> bool {
        let _ = mcid;
        true
    }

    /// True while the engine has in-flight work; keeps the simulation
    /// alive during quiescence detection.
    fn busy(&self) -> bool {
        false
    }

    /// Counters to merge into [`crate::stats::RunStats::engine`].
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// The engine's materialized view of `line`, if it tracks one: the
    /// line's bytes as a demand read would observe them, with any lazily
    /// tracked fragments overlaid on `mem`'s backing data. `None` when the
    /// engine does not track the line (memory is authoritative). Used by
    /// differential checkers to compare the machine's logical memory image
    /// against an eager oracle without perturbing simulation state.
    fn peek_line(&self, mem: &SparseMem, line: PhysAddr) -> Option<LineData> {
        let _ = (mem, line);
        None
    }

    /// Check the engine's internal invariants (called periodically by the
    /// system's runtime checker). Returns a description of the first
    /// violated invariant, if any.
    #[cfg(feature = "check-invariants")]
    fn validate(&mut self, now: Cycle) -> Result<(), String> {
        let _ = now;
        Ok(())
    }

    /// Lines the engine is currently reconstructing from DRAM (the
    /// destination lines of in-flight recons). While a reconstruction is
    /// in flight no core may hold a dirty copy of the line — the engine's
    /// write would race the cache's writeback.
    #[cfg(feature = "check-invariants")]
    fn reconstructing_lines(&self) -> Vec<PhysAddr> {
        Vec::new()
    }
}

/// The no-op engine: an unmodified memory controller (the baseline).
///
/// `MCLAZY` packets are acknowledged and otherwise ignored; baseline
/// programs never issue them, and acknowledging keeps a misdirected
/// program from deadlocking (the data would simply not be copied).
#[derive(Debug, Default)]
pub struct NullEngine;

impl CopyEngine for NullEngine {
    fn on_arrive(&mut self, _now: Cycle, _mcid: usize, pkt: Packet, io: &mut EngineIo) -> Verdict {
        use crate::packet::{MemCmd, Node};
        match pkt.cmd {
            MemCmd::Mclazy(_) => {
                let ack = Packet {
                    id: pkt.id,
                    cmd: MemCmd::MclazyAck,
                    addr: pkt.addr,
                    data: None,
                    dest: Node::Llc,
                    is_prefetch: false,
                    core: pkt.core,
                    needs_ack: false,
                    poisoned: false,
                };
                io.send(ack);
                Verdict::Consumed
            }
            MemCmd::Mcfree(_) => Verdict::Consumed,
            _ => Verdict::Pass(pkt),
        }
    }

    fn on_dram_read(
        &mut self,
        _now: Cycle,
        _mcid: usize,
        _tag: u64,
        _addr: PhysAddr,
        _data: LineData,
        _poisoned: bool,
        _io: &mut EngineIo,
    ) {
        unreachable!("NullEngine never issues DRAM reads");
    }

    fn needs_tick(&self, _mcid: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MemCmd, Node};

    #[test]
    fn null_engine_passes_reads_and_writes() {
        let mut e = NullEngine;
        let mut io = EngineIo::default();
        let p = Packet::read(PhysAddr(0x40), Node::Mc(0));
        match e.on_arrive(0, 0, p, &mut io) {
            Verdict::Pass(p) => assert_eq!(p.cmd, MemCmd::ReadReq),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn null_engine_acks_mclazy() {
        let mut e = NullEngine;
        let mut io = EngineIo::default();
        let p = Packet {
            id: 7,
            cmd: MemCmd::Mclazy(crate::packet::LazyDesc {
                dst: PhysAddr(0),
                src: PhysAddr(64),
                size: 64,
            }),
            addr: PhysAddr(0),
            data: None,
            dest: Node::Mc(0),
            is_prefetch: false,
            core: Some(0),
            needs_ack: false,
            poisoned: false,
        };
        match e.on_arrive(0, 0, p, &mut io) {
            Verdict::Consumed => {}
            other => panic!("expected consumed, got {other:?}"),
        }
        assert_eq!(io.sends.len(), 1);
        assert_eq!(io.sends[0].0.cmd, MemCmd::MclazyAck);
        assert_eq!(io.sends[0].0.id, 7);
    }

    #[test]
    fn wpq_frac_computation() {
        let mut io = EngineIo::default();
        io.wpq = (3, 4);
        assert!((io.wpq_frac() - 0.75).abs() < 1e-9);
        io.wpq = (0, 0);
        assert_eq!(io.wpq_frac(), 0.0);
    }
}
