//! Simulation configuration.
//!
//! [`SystemConfig::table1`] reproduces the paper's Table I: 8 CPUs at 4 GHz,
//! 64 KB private L1s with stride prefetchers, a shared 2 MB LLC, two DDR4
//! channels, a 2048-entry CTT (0.79 ns lookup) and an 8-entry BPQ. All
//! latency parameters are expressed in CPU cycles at 4 GHz (1 cycle =
//! 0.25 ns).

use serde::{Deserialize, Serialize};

/// CPU core model parameters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer capacity (in-flight uops).
    pub rob_size: usize,
    /// Uops dispatched per cycle.
    pub dispatch_width: usize,
    /// Uops retired per cycle.
    pub retire_width: usize,
    /// Load-queue capacity (outstanding loads).
    pub lq_size: usize,
    /// Store-buffer capacity (retired stores not yet in the cache).
    pub sb_size: usize,
    /// Maximum outstanding CLWB writebacks. This is the resource whose
    /// exhaustion serialises `memcpy_lazy`'s writebacks above 1 KB (Fig. 11:
    /// 1 KB = 16 cachelines).
    pub max_clwb: usize,
    /// Maximum outstanding MCLAZY packets (they proceed in parallel like
    /// CLFLUSHOPT, §III-C).
    pub max_mclazy: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_size: 224,
            dispatch_width: 4,
            retire_width: 4,
            lq_size: 32,
            sb_size: 56,
            max_clwb: 16,
            max_mclazy: 8,
        }
    }
}

/// Parameters of one cache level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
    /// Miss-status-holding registers: outstanding misses.
    pub mshrs: usize,
    /// Stride prefetcher enabled (Table I: both levels use one).
    pub prefetch: bool,
    /// Prefetch degree: lines fetched ahead once a stride locks on.
    pub prefetch_degree: usize,
}

impl CacheConfig {
    /// Number of sets implied by size/ways and the 64B line.
    pub fn sets(&self) -> usize {
        (self.size_bytes / crate::addr::CACHELINE) as usize / self.ways
    }
}

/// Memory technology behind one channel: selects which
/// [`crate::dram::DramModel`] backend the system builds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemTech {
    /// DDR4-2400 single 64-bit bus per channel (the Table I baseline).
    Ddr4,
    /// DDR5-4800 sub-channel: bank groups with tCCD_L/tCCD_S CAS spacing,
    /// smaller rows, two sub-channels per DIMM (so more system channels).
    Ddr5,
    /// HBM2-style channel: independent narrow pseudo-channels, short
    /// bursts, small rows, low capacity per channel.
    Hbm2,
}

impl MemTech {
    /// Every supported technology, for sweeps.
    pub const ALL: [MemTech; 3] = [MemTech::Ddr4, MemTech::Ddr5, MemTech::Hbm2];

    /// Short lowercase name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            MemTech::Ddr4 => "ddr4",
            MemTech::Ddr5 => "ddr5",
            MemTech::Hbm2 => "hbm2",
        }
    }

    /// Channels a Table I-class system of this technology exposes: 2 DDR4
    /// channels; the same two DIMM slots give 4 DDR5 sub-channels; one
    /// HBM2 stack gives 8 channels.
    pub fn default_channels(self) -> usize {
        match self {
            MemTech::Ddr4 => 2,
            MemTech::Ddr5 => 4,
            MemTech::Hbm2 => 8,
        }
    }
}

/// Run-level options that used to be scattered across ad-hoc environment
/// variables (`MCS_REFRESH`, `MCS_FAULTS`, `MCS_TRACE`) and per-system
/// setters: one typed value, set once per process via [`set_sim_options`]
/// and consumed by [`SystemConfig::table1`]/[`SystemConfig::tiny`] and the
/// bench harness. Construct with [`SimOptions::builder`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimOptions {
    /// Enable DRAM all-bank refresh at each technology's canonical
    /// interval (default off so published numbers are reproduced exactly).
    pub refresh: bool,
    /// Fault-injection plan (empty = inject nothing).
    pub fault: crate::fault::FaultPlan,
    /// Arm event tracing around each bench job and write
    /// `<path>.jobN.trace.json` plus companion series/histogram TSVs; see
    /// DESIGN.md, "Observability layer". Ignored (benignly) when the
    /// `trace` feature is off.
    pub trace: Option<String>,
    /// How the run loop advances simulated time (the fast-forward knob,
    /// generalised): see [`crate::system::SchedMode`].
    pub sched: crate::system::SchedMode,
    /// Liveness watchdog window in cycles for bench runs (`None` = no
    /// watchdog; see [`crate::system::System::run_with_watchdog`]).
    pub watchdog: Option<crate::Cycle>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            refresh: false,
            fault: crate::fault::FaultPlan::none(),
            trace: None,
            sched: crate::system::SchedMode::EventDriven,
            watchdog: None,
        }
    }
}

impl SimOptions {
    /// Start building options from the defaults.
    pub fn builder() -> SimOptionsBuilder {
        SimOptionsBuilder { opts: SimOptions::default() }
    }

    /// The options the legacy environment variables ask for. Emits a
    /// one-time deprecation warning to stderr when any of them is set:
    /// new code should pass options explicitly ([`set_sim_options`], or
    /// the bench harness's `BenchOpts` flags).
    pub fn from_env() -> SimOptions {
        let refresh = matches!(std::env::var("MCS_REFRESH").as_deref(), Ok("1") | Ok("true"));
        let faults = matches!(std::env::var("MCS_FAULTS").as_deref(), Ok("1") | Ok("true"));
        let trace = std::env::var("MCS_TRACE").ok().filter(|s| !s.is_empty());
        if refresh || faults || trace.is_some() {
            warn_env_deprecated();
        }
        SimOptions {
            refresh,
            fault: if faults {
                crate::fault::FaultPlan::mild(0xFA17)
            } else {
                crate::fault::FaultPlan::none()
            },
            trace,
            ..SimOptions::default()
        }
    }
}

/// Builder for [`SimOptions`].
#[derive(Clone, Debug, Default)]
pub struct SimOptionsBuilder {
    opts: SimOptions,
}

impl SimOptionsBuilder {
    /// Enable/disable DRAM refresh.
    pub fn refresh(mut self, on: bool) -> Self {
        self.opts.refresh = on;
        self
    }

    /// Install a fault-injection plan.
    pub fn fault(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.opts.fault = plan;
        self
    }

    /// Arm event tracing, writing outputs next to `path`.
    pub fn trace(mut self, path: impl Into<String>) -> Self {
        self.opts.trace = Some(path.into());
        self
    }

    /// Select the tick scheduling mode.
    pub fn sched(mut self, mode: crate::system::SchedMode) -> Self {
        self.opts.sched = mode;
        self
    }

    /// Legacy on/off form of [`Self::sched`]: `true` =
    /// [`crate::system::SchedMode::EventDriven`], `false` =
    /// [`crate::system::SchedMode::TickByTick`].
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.opts.sched = if on {
            crate::system::SchedMode::EventDriven
        } else {
            crate::system::SchedMode::TickByTick
        };
        self
    }

    /// Arm a liveness watchdog with the given window.
    pub fn watchdog(mut self, window: crate::Cycle) -> Self {
        self.opts.watchdog = Some(window);
        self
    }

    /// Finish building.
    pub fn build(self) -> SimOptions {
        self.opts
    }
}

static SIM_OPTS: std::sync::RwLock<Option<SimOptions>> = std::sync::RwLock::new(None);

/// Install process-wide simulation options. Later calls replace earlier
/// ones; configs built before the call are unaffected.
pub fn set_sim_options(opts: SimOptions) {
    *SIM_OPTS.write().expect("options lock") = Some(opts);
}

/// The process-wide simulation options: whatever [`set_sim_options`]
/// installed, falling back to the deprecated environment variables
/// ([`SimOptions::from_env`]) when nothing was set explicitly.
pub fn sim_options() -> SimOptions {
    if let Some(o) = SIM_OPTS.read().expect("options lock").as_ref() {
        return o.clone();
    }
    SimOptions::from_env()
}

fn warn_env_deprecated() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "# warning: MCS_REFRESH/MCS_FAULTS/MCS_TRACE are deprecated; \
             use the --refresh/--faults/--trace bench flags or \
             mcs_sim::config::set_sim_options"
        );
    }
}

/// Whether refresh-enabled runs were requested (CI's second timing path;
/// default off so published numbers are reproduced exactly).
#[deprecated(note = "use sim_options().refresh")]
pub fn refresh_env() -> bool {
    sim_options().refresh
}

/// Output path requested for event tracing, if any.
#[deprecated(note = "use sim_options().trace")]
pub fn trace_env() -> Option<String> {
    sim_options().trace
}

/// DRAM timing and geometry for one channel, expressed in CPU cycles.
///
/// Defaults approximate DDR4-2400 at a 4 GHz CPU clock: tRCD = tRP = tCL ≈
/// 13.75 ns ≈ 55 cycles, 64B burst ≈ 3.33 ns ≈ 13 cycles (19.2 GB/s per
/// channel). See [`DramConfig::for_tech`] for the other technologies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Backend this configuration describes.
    pub tech: MemTech,
    /// Banks per channel (per pseudo-channel for HBM).
    pub banks: usize,
    /// Bank groups the banks divide into (DDR5; 1 = no grouping).
    pub bank_groups: usize,
    /// Pseudo-channels per channel (HBM; 1 = a single shared bus).
    pub pseudo_channels: usize,
    /// Row size in bytes (per bank).
    pub row_bytes: u64,
    /// Activate-to-CAS delay (row miss adder), cycles.
    pub t_rcd: u64,
    /// Precharge delay (row conflict adder), cycles.
    pub t_rp: u64,
    /// CAS latency, cycles.
    pub t_cl: u64,
    /// Data-burst occupancy of one bus per 64B access, cycles. This is
    /// the per-bus bandwidth cap.
    pub t_burst: u64,
    /// Same-bank-group CAS-to-CAS spacing (DDR5 tCCD_L), cycles; only
    /// consulted when `bank_groups > 1`.
    pub t_ccd_l: u64,
    /// All-bank refresh interval, cycles; 0 disables refresh (the
    /// behaviour-preserving default — see [`DramConfig::with_refresh`]).
    pub t_refi: u64,
    /// All-bank refresh duration, cycles (banks blocked, rows closed).
    pub t_rfc: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            tech: MemTech::Ddr4,
            banks: 16,
            bank_groups: 1,
            pseudo_channels: 1,
            row_bytes: 8192,
            t_rcd: 55,
            t_rp: 55,
            t_cl: 55,
            t_burst: 13,
            t_ccd_l: 0,
            t_refi: 0,
            t_rfc: 1400,
        }
    }
}

impl DramConfig {
    /// The canonical timing for `tech`:
    ///
    /// * **DDR4-2400** — the Table I baseline (identical to [`Default`]).
    /// * **DDR5-4800 sub-channel** — 32 banks in 8 groups, 2 KB rows (the
    ///   32-bit sub-channel fetches half a module row), tRCD/tRP/tCL ≈
    ///   16 ns ≈ 64 cycles, BL16 burst ≈ 3.33 ns ≈ 13 cycles, tCCD_L ≈
    ///   5 ns ≈ 20 cycles, tRFC ≈ 295 ns ≈ 1180 cycles.
    /// * **HBM2E-style channel** — 2 pseudo-channels of 16 banks each,
    ///   1 KB rows, tRCD/tRP/tCL ≈ 14 ns ≈ 56 cycles, 64B over a 64-bit
    ///   pseudo-channel bus at 3.6 Gb/s ≈ 2.2 ns ≈ 9 cycles, tRFC ≈
    ///   260 ns ≈ 1040 cycles.
    pub fn for_tech(tech: MemTech) -> DramConfig {
        match tech {
            MemTech::Ddr4 => DramConfig::default(),
            MemTech::Ddr5 => DramConfig {
                tech: MemTech::Ddr5,
                banks: 32,
                bank_groups: 8,
                pseudo_channels: 1,
                row_bytes: 2048,
                t_rcd: 64,
                t_rp: 64,
                t_cl: 64,
                t_burst: 13,
                t_ccd_l: 20,
                t_refi: 0,
                t_rfc: 1180,
            },
            MemTech::Hbm2 => DramConfig {
                tech: MemTech::Hbm2,
                banks: 16,
                bank_groups: 1,
                pseudo_channels: 2,
                row_bytes: 1024,
                t_rcd: 56,
                t_rp: 56,
                t_cl: 56,
                t_burst: 9,
                t_ccd_l: 0,
                t_refi: 0,
                t_rfc: 1040,
            },
        }
    }

    /// DDR4-2400: the Table I baseline (identical to [`Default`]).
    #[deprecated(note = "use DramConfig::for_tech(MemTech::Ddr4)")]
    pub fn ddr4() -> DramConfig {
        DramConfig::for_tech(MemTech::Ddr4)
    }

    /// DDR5-4800 sub-channel timing (see [`DramConfig::for_tech`]).
    #[deprecated(note = "use DramConfig::for_tech(MemTech::Ddr5)")]
    pub fn ddr5() -> DramConfig {
        DramConfig::for_tech(MemTech::Ddr5)
    }

    /// HBM2E-style channel timing (see [`DramConfig::for_tech`]).
    #[deprecated(note = "use DramConfig::for_tech(MemTech::Hbm2)")]
    pub fn hbm2() -> DramConfig {
        DramConfig::for_tech(MemTech::Hbm2)
    }

    /// Enable all-bank refresh at the technology's canonical interval:
    /// tREFI = 7.8 µs ≈ 31200 cycles for DDR4; DDR5 and HBM2 refresh
    /// twice as often (3.9 µs ≈ 15600 cycles) with shorter tRFC.
    pub fn with_refresh(mut self) -> DramConfig {
        self.t_refi = match self.tech {
            MemTech::Ddr4 => 31_200,
            MemTech::Ddr5 | MemTech::Hbm2 => 15_600,
        };
        self
    }

    /// Enable refresh when the process-wide options ask for it
    /// ([`sim_options`]); otherwise leave it as configured.
    #[deprecated(note = "use SystemConfig::builder().refresh(..) or sim_options()")]
    pub fn refresh_from_env(self) -> DramConfig {
        if sim_options().refresh {
            self.with_refresh()
        } else {
            self
        }
    }
}

/// Memory-controller queueing parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// Read pending queue capacity.
    pub rpq_cap: usize,
    /// Write pending queue capacity.
    pub wpq_cap: usize,
    /// Drain writes once WPQ occupancy exceeds this fraction.
    pub wpq_drain_hi: f64,
    /// Stop draining once occupancy falls below this fraction.
    pub wpq_drain_lo: f64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { rpq_cap: 32, wpq_cap: 64, wpq_drain_hi: 0.7, wpq_drain_lo: 0.3 }
    }
}

/// Interconnect latencies (one-way, cycles).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Core ↔ L1.
    pub core_l1: u64,
    /// L1 ↔ LLC.
    pub l1_llc: u64,
    /// LLC ↔ memory controller (the memory interconnect hop).
    pub llc_mc: u64,
    /// MC ↔ MC (bounces and CTT broadcasts traverse the same interconnect).
    pub mc_mc: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { core_l1: 1, l1_llc: 12, llc_mc: 40, mc_mc: 40 }
    }
}

/// Full system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of CPU cores (each runs one program).
    pub cores: usize,
    /// Core model.
    pub core: CoreConfig,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Shared last-level cache (the paper's "Shared L2").
    pub llc: CacheConfig,
    /// Number of memory channels / controllers.
    pub channels: usize,
    /// DRAM timing per channel.
    pub dram: DramConfig,
    /// Memory-controller queues.
    pub mc: McConfig,
    /// Link latencies.
    pub links: LinkConfig,
    /// CTT lookup latency in cycles, added to a bounced destination read
    /// (paper: 0.79 ns ≈ 3.16 cycles at 4 GHz; we round up to 4).
    pub ctt_latency: u64,
    /// Fault-injection plan (empty = inject nothing, the default).
    #[serde(default)]
    pub fault: crate::fault::FaultPlan,
}

impl SystemConfig {
    /// The paper's Table I configuration, honouring the process-wide
    /// [`sim_options`] (refresh, fault plan).
    pub fn table1() -> SystemConfig {
        let opts = sim_options();
        SystemConfig {
            cores: 8,
            core: CoreConfig::default(),
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 8,
                hit_latency: 4,
                // Fill buffers + superqueue: enough outstanding misses to
                // cover the DRAM round trip at streaming bandwidth.
                mshrs: 24,
                prefetch: true,
                prefetch_degree: 8,
            },
            llc: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                hit_latency: 35,
                mshrs: 48,
                prefetch: true,
                prefetch_degree: 8,
            },
            channels: 2,
            dram: if opts.refresh {
                DramConfig::for_tech(MemTech::Ddr4).with_refresh()
            } else {
                DramConfig::for_tech(MemTech::Ddr4)
            },
            mc: McConfig { rpq_cap: 48, ..McConfig::default() },
            links: LinkConfig::default(),
            ctt_latency: 4,
            fault: opts.fault,
        }
    }

    /// A single-core variant of Table I (most microbenchmarks are
    /// single-threaded).
    pub fn table1_one_core() -> SystemConfig {
        SystemConfig { cores: 1, ..SystemConfig::table1() }
    }

    /// Swap the memory technology: replaces the DRAM timing with the
    /// canonical [`DramConfig`] for `tech` and adjusts the channel count
    /// ([`MemTech::default_channels`]). Whether refresh was enabled is
    /// carried over at the new technology's canonical interval.
    #[deprecated(note = "use SystemConfig::builder().tech(..)")]
    pub fn with_tech(self, tech: MemTech) -> SystemConfig {
        SystemConfigBuilder { cfg: self }.tech(tech).build()
    }

    /// Start building a configuration from Table I (honouring the
    /// process-wide [`sim_options`]): override the memory technology,
    /// refresh, core count, or fault plan, then [`build`].
    ///
    /// [`build`]: SystemConfigBuilder::build
    ///
    /// ```
    /// use mcs_sim::config::{MemTech, SystemConfig};
    /// let cfg = SystemConfig::builder().tech(MemTech::Hbm2).refresh(true).build();
    /// assert_eq!(cfg.channels, 8);
    /// assert!(cfg.dram.t_refi > 0);
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: SystemConfig::table1() }
    }

    /// A tiny configuration for fast unit tests: small caches so evictions
    /// and misses occur quickly, short latencies so tests run in few cycles.
    pub fn tiny() -> SystemConfig {
        let opts = sim_options();
        SystemConfig {
            cores: 1,
            core: CoreConfig {
                rob_size: 16,
                dispatch_width: 2,
                retire_width: 2,
                lq_size: 4,
                sb_size: 4,
                max_clwb: 4,
                max_mclazy: 2,
            },
            l1: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                hit_latency: 1,
                mshrs: 4,
                prefetch: false,
                prefetch_degree: 0,
            },
            llc: CacheConfig {
                size_bytes: 4096,
                ways: 4,
                hit_latency: 4,
                mshrs: 8,
                prefetch: false,
                prefetch_degree: 0,
            },
            channels: 2,
            dram: DramConfig {
                banks: 4,
                row_bytes: 1024,
                t_rcd: 6,
                t_rp: 6,
                t_cl: 6,
                t_burst: 2,
                // Scaled-down refresh so the options-gated refresh path is
                // actually exercised inside short unit-test runs.
                t_refi: if opts.refresh { 500 } else { 0 },
                t_rfc: 60,
                ..DramConfig::default()
            },
            mc: McConfig { rpq_cap: 8, wpq_cap: 8, wpq_drain_hi: 0.7, wpq_drain_lo: 0.2 },
            links: LinkConfig { core_l1: 1, l1_llc: 2, llc_mc: 4, mc_mc: 4 },
            ctt_latency: 1,
            fault: opts.fault,
        }
    }

    /// Approximate total memory bandwidth in bytes per cycle (all
    /// channels, counting every independent pseudo-channel bus).
    pub fn peak_bw_bytes_per_cycle(&self) -> f64 {
        (self.channels * self.dram.pseudo_channels) as f64 * crate::addr::CACHELINE as f64
            / self.dram.t_burst as f64
    }
}

/// Builder for [`SystemConfig`]: see [`SystemConfig::builder`].
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Replace the starting configuration (default: Table I).
    pub fn base(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Number of CPU cores.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n;
        self
    }

    /// Swap the memory technology: canonical [`DramConfig`] timing for
    /// `tech` plus its channel count ([`MemTech::default_channels`]).
    /// Whether refresh was enabled is carried over at the new
    /// technology's canonical interval.
    pub fn tech(mut self, tech: MemTech) -> Self {
        let refresh = self.cfg.dram.t_refi > 0;
        self.cfg.channels = tech.default_channels();
        self.cfg.dram = DramConfig::for_tech(tech);
        if refresh {
            self.cfg.dram = self.cfg.dram.with_refresh();
        }
        self
    }

    /// Enable refresh at the current technology's canonical interval, or
    /// disable it.
    pub fn refresh(mut self, on: bool) -> Self {
        if on {
            self.cfg.dram = self.cfg.dram.with_refresh();
        } else {
            self.cfg.dram.t_refi = 0;
        }
        self
    }

    /// Install a fault-injection plan.
    pub fn fault(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.cfg.fault = plan;
        self
    }

    /// Finish building.
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.llc.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.channels, 2);
        assert!(c.l1.prefetch && c.llc.prefetch);
    }

    #[test]
    fn cache_geometry() {
        let c = SystemConfig::table1();
        assert_eq!(c.l1.sets(), 128); // 64KB / 64B / 8 ways
        assert_eq!(c.llc.sets(), 2048); // 2MB / 64B / 16 ways
    }

    #[test]
    fn bandwidth_is_plausible() {
        let c = SystemConfig::table1();
        // 2 channels * 64B / 13cy * 4GHz ≈ 39 GB/s
        let bw_gbs = c.peak_bw_bytes_per_cycle() * 4.0;
        assert!(bw_gbs > 30.0 && bw_gbs < 50.0, "bw {bw_gbs}");
    }

    #[test]
    fn configs_are_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SystemConfig>();
        assert_serde::<DramConfig>();
        assert_serde::<CoreConfig>();
        assert_serde::<MemTech>();
    }

    #[test]
    fn builder_swaps_timing_and_channels() {
        // Pin refresh off so the test is stable under refresh-enabled runs
        // (refresh preservation is covered by the next test).
        let mut base = SystemConfig::table1();
        base.dram.t_refi = 0;
        let c = SystemConfig::builder().base(base.clone()).tech(MemTech::Ddr5).build();
        assert_eq!(c.dram.tech, MemTech::Ddr5);
        assert_eq!(c.channels, 4);
        assert!(c.dram.bank_groups > 1 && c.dram.t_ccd_l > c.dram.t_burst);
        let h = SystemConfig::builder().base(base).tech(MemTech::Hbm2).build();
        assert_eq!(h.channels, 8);
        assert!(h.dram.pseudo_channels > 1);
        // Round-tripping back to DDR4 restores the baseline machine.
        let back = SystemConfig::builder().base(h).tech(MemTech::Ddr4).build();
        assert_eq!(back.dram, DramConfig::for_tech(MemTech::Ddr4));
        assert_eq!(back.channels, 2);
    }

    #[test]
    fn builder_preserves_refresh_choice() {
        let on = SystemConfig::builder().refresh(true).tech(MemTech::Ddr5).build();
        assert!(on.dram.t_refi > 0);
        let off = SystemConfig::builder().refresh(false).tech(MemTech::Ddr5).build();
        assert_eq!(off.dram.t_refi, 0);
    }

    #[test]
    fn builder_sets_cores_and_fault() {
        let c = SystemConfig::builder()
            .cores(2)
            .fault(crate::fault::FaultPlan::mild(7))
            .build();
        assert_eq!(c.cores, 2);
        assert!(!c.fault.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_builder() {
        // The old entry points must keep producing identical configs while
        // they exist, so downstream code can migrate incrementally.
        assert_eq!(DramConfig::ddr4(), DramConfig::for_tech(MemTech::Ddr4));
        assert_eq!(DramConfig::ddr5(), DramConfig::for_tech(MemTech::Ddr5));
        assert_eq!(DramConfig::hbm2(), DramConfig::for_tech(MemTech::Hbm2));
        let mut base = SystemConfig::table1();
        base.dram.t_refi = 0;
        assert_eq!(
            base.clone().with_tech(MemTech::Hbm2),
            SystemConfig::builder().base(base).tech(MemTech::Hbm2).build()
        );
    }

    #[test]
    fn peak_bandwidth_orders_technologies() {
        let bw = |t: MemTech| {
            SystemConfig::builder().tech(t).build().peak_bw_bytes_per_cycle()
        };
        let (d4, d5, hbm) = (bw(MemTech::Ddr4), bw(MemTech::Ddr5), bw(MemTech::Hbm2));
        assert!(d4 < d5 && d5 < hbm, "bw ordering: {d4} {d5} {hbm}");
    }

    #[test]
    fn sim_options_builder_round_trips() {
        let o = SimOptions::builder()
            .refresh(true)
            .trace("trace/out")
            .sched(crate::system::SchedMode::Conservative)
            .watchdog(10_000)
            .build();
        assert!(o.refresh);
        assert_eq!(o.trace.as_deref(), Some("trace/out"));
        assert_eq!(o.sched, crate::system::SchedMode::Conservative);
        assert_eq!(o.watchdog, Some(10_000));
        let ff = SimOptions::builder().fast_forward(false).build();
        assert_eq!(ff.sched, crate::system::SchedMode::TickByTick);
    }
}
