//! Fixed-latency FIFO links between components.
//!
//! Every hop in the simulated machine (core↔L1, L1↔LLC, LLC↔bus, bus↔MC)
//! is a [`DelayQueue`]: messages become visible to the receiver a fixed
//! number of cycles after being pushed, and ordering is preserved (FIFO per
//! link). FIFO ordering is load-bearing for correctness: the paper relies on
//! the caches' FIFO write buffer to guarantee that source-line writebacks
//! reach the memory controller before the MCLAZY packet that follows them
//! (§III-B1, step 2).

use crate::Cycle;
use std::collections::VecDeque;

/// A FIFO queue whose entries become poppable `latency` cycles after push.
#[derive(Debug)]
pub struct DelayQueue<T> {
    latency: Cycle,
    q: VecDeque<(Cycle, T)>,
}

impl<T> DelayQueue<T> {
    /// Create a link with the given one-way latency in cycles.
    pub fn new(latency: Cycle) -> Self {
        Self { latency, q: VecDeque::new() }
    }

    /// Enqueue a message at time `now`; it is deliverable at `now + latency`.
    pub fn push(&mut self, now: Cycle, msg: T) {
        let ready = now + self.latency;
        debug_assert!(self.q.back().is_none_or(|(r, _)| *r <= ready));
        self.q.push_back((ready, msg));
    }

    /// Enqueue with an extra delay on top of the link latency.
    ///
    /// FIFO order is still enforced: if the previous message is scheduled
    /// later, this one is delayed to match (no reordering within a link).
    pub fn push_after(&mut self, now: Cycle, extra: Cycle, msg: T) {
        let mut ready = now + self.latency + extra;
        if let Some((prev, _)) = self.q.back() {
            ready = ready.max(*prev);
        }
        self.q.push_back((ready, msg));
    }

    /// Pop the head message if it has arrived by `now`.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        if self.q.front().is_some_and(|(r, _)| *r <= now) {
            self.q.pop_front().map(|(_, m)| m)
        } else {
            None
        }
    }

    /// Peek at the head message if it has arrived by `now`.
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        match self.q.front() {
            Some((r, m)) if *r <= now => Some(m),
            _ => None,
        }
    }

    /// Re-insert a message at the head of the queue, immediately deliverable.
    ///
    /// Used to model back-pressure: a receiver that cannot accept the head
    /// message (e.g. the CTT is full) pushes it back and retries next cycle,
    /// blocking everything behind it (head-of-line blocking).
    pub fn push_front(&mut self, now: Cycle, msg: T) {
        self.q.push_front((now, msg));
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the link is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The earliest cycle at which a currently queued message becomes
    /// deliverable, if any. Used for idle skip-ahead.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.q.front().map(|(r, _)| *r)
    }

    /// Iterate over in-flight messages (oldest first), regardless of
    /// delivery time. Used by snooping logic that must observe traffic
    /// still on the wire.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter().map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut l = DelayQueue::new(5);
        l.push(10, "a");
        assert!(l.pop(14).is_none());
        assert_eq!(l.pop(15), Some("a"));
        assert!(l.pop(100).is_none());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut l = DelayQueue::new(2);
        l.push(0, 1);
        l.push(0, 2);
        l.push(1, 3);
        assert_eq!(l.pop(10), Some(1));
        assert_eq!(l.pop(10), Some(2));
        assert_eq!(l.pop(10), Some(3));
    }

    #[test]
    fn push_after_never_reorders() {
        let mut l = DelayQueue::new(1);
        l.push_after(0, 100, "slow");
        l.push_after(1, 0, "fast");
        // "fast" would be ready at 2, but FIFO order delays it behind "slow".
        assert_eq!(l.pop(101), Some("slow"));
        assert_eq!(l.pop(101), Some("fast"));
    }

    #[test]
    fn push_front_is_immediately_ready() {
        let mut l = DelayQueue::new(50);
        l.push(0, "later");
        l.push_front(3, "now");
        assert_eq!(l.pop(3), Some("now"));
        assert!(l.pop(3).is_none());
        assert_eq!(l.pop(50), Some("later"));
    }

    #[test]
    fn next_ready_reports_head() {
        let mut l: DelayQueue<u8> = DelayQueue::new(7);
        assert_eq!(l.next_ready(), None);
        l.push(1, 9);
        assert_eq!(l.next_ready(), Some(8));
    }

    #[test]
    fn zero_latency_same_cycle() {
        let mut l = DelayQueue::new(0);
        l.push(4, 42);
        assert_eq!(l.pop(4), Some(42));
    }
}
