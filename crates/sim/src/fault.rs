//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what can go wrong* in a run: correctable and
//! uncorrectable ECC errors at the DRAM channels, extra delay / duplicated
//! packets on the memory interconnect, transient memory-controller input
//! stalls, and (interpreted by the `mcsquare` engine) forced CTT flushes
//! and dropped CTT entries. Every decision is drawn from a [`FaultStream`]
//! — a SplitMix64 counter seeded from `(plan.seed, domain, lane)` — and is
//! consumed once per *event* (per DRAM access, per accepted packet, per
//! interconnect send, per CTT insert), never per cycle. That makes fault
//! schedules:
//!
//! * **deterministic**: the same seed and plan produce the same faults,
//!   stats, and final memory image on every run;
//! * **fast-forward safe**: the simulator's idle skip-ahead elides cycles,
//!   not events, so the schedule is identical with skipping on or off.
//!
//! An empty plan (all rates zero — the default) compiles down to a `None`
//! fault state everywhere and injects nothing, so committed results are
//! byte-identical to a build without this module.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Stream-domain tags: decorrelate the per-subsystem decision streams so
/// e.g. raising the ECC rate does not reshuffle the link-fault schedule.
pub mod domain {
    /// ECC decisions at a memory controller's DRAM channel.
    pub const ECC: u64 = 0x1;
    /// Transient input stalls at a memory controller.
    pub const MC_STALL: u64 = 0x2;
    /// Extra delay on interconnect sends.
    pub const LINK_JITTER: u64 = 0x3;
    /// Packet duplication on interconnect sends.
    pub const LINK_DUP: u64 = 0x4;
    /// Forced CTT flushes (copy engine).
    pub const CTT_FLUSH: u64 = 0x5;
    /// Dropped CTT entries (copy engine).
    pub const CTT_DROP: u64 = 0x6;
    /// Victim selection for dropped entries (copy engine).
    pub const CTT_PICK: u64 = 0x7;
}

/// What faults to inject, and how hard. All `*_rate` fields are per-event
/// probabilities in `[0, 1]`; a rate of `0` disables that fault class.
/// [`FaultPlan::none`] (== `Default`) injects nothing at zero cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Root seed of every decision stream.
    pub seed: u64,
    /// Probability that a DRAM access suffers a correctable ECC error.
    /// Each error is retried (re-read) with exponential backoff latency.
    pub ecc_correctable_rate: f64,
    /// Probability that a DRAM read suffers an uncorrectable error: the
    /// line is poisoned and demand reads of it return poisoned responses
    /// until the line is rewritten.
    pub ecc_uncorrectable_rate: f64,
    /// Bounded retries per correctable error (re-reads stop early when a
    /// retry comes back clean).
    pub ecc_max_retries: u32,
    /// Latency added by the first retry; each further retry doubles it.
    pub ecc_penalty: Cycle,
    /// Probability that an interconnect send is delayed by
    /// `link_jitter_cycles` extra cycles.
    pub link_jitter_rate: f64,
    /// Extra delay per jittered send.
    pub link_jitter_cycles: Cycle,
    /// Probability that an idempotent interconnect packet (unacked write,
    /// `Mcfree`, `MclazyAck`) is delivered twice.
    pub link_dup_rate: f64,
    /// Probability that accepting an input packet trips a transient
    /// controller stall (RPQ/WPQ intake and DRAM scheduling pause).
    pub mc_stall_rate: f64,
    /// Length of one transient controller stall.
    pub mc_stall_cycles: Cycle,
    /// Probability (per CTT insert) that the engine is forced to flush an
    /// entry eagerly even below the drain threshold.
    pub ctt_flush_rate: f64,
    /// Probability (per CTT insert) that a tracked line's CTT metadata is
    /// dropped; the engine detects the loss and repairs it by eager
    /// re-copy.
    pub ctt_drop_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: inject nothing (all hooks compile to no-ops).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            ecc_correctable_rate: 0.0,
            ecc_uncorrectable_rate: 0.0,
            ecc_max_retries: 0,
            ecc_penalty: 0,
            link_jitter_rate: 0.0,
            link_jitter_cycles: 0,
            link_dup_rate: 0.0,
            mc_stall_rate: 0.0,
            mc_stall_cycles: 0,
            ctt_flush_rate: 0.0,
            ctt_drop_rate: 0.0,
        }
    }

    /// A mild every-fault-class plan for adversarial test passes: low
    /// enough rates that workloads still make brisk progress, high enough
    /// that every degradation path fires in a few thousand events.
    pub fn mild(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ecc_correctable_rate: 0.01,
            ecc_uncorrectable_rate: 0.002,
            ecc_max_retries: 2,
            ecc_penalty: 20,
            link_jitter_rate: 0.05,
            link_jitter_cycles: 3,
            link_dup_rate: 0.02,
            mc_stall_rate: 0.005,
            mc_stall_cycles: 30,
            ctt_flush_rate: 0.05,
            ctt_drop_rate: 0.02,
        }
    }

    /// Whether the plan injects nothing (every rate is zero).
    pub fn is_empty(&self) -> bool {
        self.ecc_correctable_rate <= 0.0
            && self.ecc_uncorrectable_rate <= 0.0
            && self.link_jitter_rate <= 0.0
            && self.link_dup_rate <= 0.0
            && self.mc_stall_rate <= 0.0
            && self.ctt_flush_rate <= 0.0
            && self.ctt_drop_rate <= 0.0
    }

    /// The plan the process-wide options carry (historically the
    /// `MCS_FAULTS` environment variable: CI's adversarial test pass).
    #[deprecated(note = "use sim_options().fault")]
    pub fn from_env() -> FaultPlan {
        crate::config::sim_options().fault
    }

    /// A decision stream for `domain` (see [`domain`]) at `lane` (e.g. the
    /// memory-controller index), derived from this plan's seed.
    pub fn stream(&self, dom: u64, lane: u64) -> FaultStream {
        FaultStream::new(self.seed, dom, lane)
    }
}

/// A deterministic decision stream: SplitMix64 over a seed derived from
/// `(seed, domain, lane)`. Self-contained so fault schedules do not depend
/// on (or perturb) any other randomness in the process.
#[derive(Clone, Debug)]
pub struct FaultStream {
    state: u64,
}

impl FaultStream {
    /// Create the stream for `(seed, domain, lane)`.
    pub fn new(seed: u64, dom: u64, lane: u64) -> FaultStream {
        let mut s = FaultStream {
            state: seed
                ^ dom.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ lane.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ 0x94D0_49BB_1331_11EB,
        };
        // Burn one output so trivially related seeds decorrelate.
        s.next_u64();
        s
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli draw: true with probability `rate`. A rate `<= 0` returns
    /// false *without consuming the stream* (the empty-plan fast path); any
    /// positive rate consumes exactly one draw.
    pub fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let draw = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < rate
    }

    /// Uniform draw in `0..n` (0 when `n == 0`).
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_injects_nothing() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::none());
        let mut s = p.stream(domain::ECC, 0);
        let before = s.state;
        assert!(!s.roll(p.ecc_correctable_rate));
        assert_eq!(s.state, before, "zero rate must not consume the stream");
    }

    #[test]
    fn mild_plan_is_nonempty() {
        assert!(!FaultPlan::mild(1).is_empty());
    }

    #[test]
    fn streams_are_deterministic_and_domain_separated() {
        let p = FaultPlan::mild(42);
        let a: Vec<u64> = {
            let mut s = p.stream(domain::ECC, 0);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = p.stream(domain::ECC, 0);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, domain, lane) ⇒ same stream");
        let mut c = p.stream(domain::ECC, 1);
        let mut d = p.stream(domain::LINK_DUP, 0);
        assert_ne!(a[0], c.next_u64(), "lanes decorrelate");
        assert_ne!(a[0], d.next_u64(), "domains decorrelate");
    }

    #[test]
    fn roll_extremes() {
        let mut s = FaultStream::new(1, 2, 3);
        for _ in 0..64 {
            assert!(s.roll(1.0));
            assert!(!s.roll(0.0));
        }
    }

    #[test]
    fn roll_rate_is_approximately_honoured() {
        let mut s = FaultStream::new(9, domain::MC_STALL, 0);
        let hits = (0..10_000).filter(|_| s.roll(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "rate 0.25 gave {hits}/10000");
    }

    #[test]
    fn pick_stays_in_range() {
        let mut s = FaultStream::new(5, domain::CTT_PICK, 0);
        for _ in 0..100 {
            assert!(s.pick(7) < 7);
        }
        assert_eq!(s.pick(0), 0);
    }

    #[test]
    fn plan_serializes() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<FaultPlan>();
    }
}
