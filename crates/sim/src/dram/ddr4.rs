//! DDR4-style channel: one shared 64-bit data bus, `banks` banks with
//! open-row registers, optional all-bank refresh.
//!
//! Accesses are classified as row hits (tCL), row misses/empty (tRCD +
//! tCL) or row conflicts (tRP + tRCD + tCL), and every access occupies the
//! shared per-channel data bus for `tBURST` cycles — the per-channel
//! bandwidth cap. Bank-level parallelism lets latencies overlap across
//! banks, which is what gives memcpy its memory-level parallelism until
//! the ROB fills (§II-A).
//!
//! With `t_refi > 0`, an all-bank refresh window of `t_rfc` cycles opens
//! every `t_refi` cycles: every row is closed (refresh implies precharge)
//! and every bank and the data bus are blocked until the window ends.
//! Commands already in flight when a window opens are allowed to complete
//! (the controller holds off *new* commands, as real controllers do around
//! a REF).

use super::{DramModel, RefreshTimer, RowOutcome};
use crate::addr::{PhysAddr, CACHELINE};
use crate::config::DramConfig;
use crate::Cycle;
use std::cell::Cell;

#[derive(Debug, Clone)]
pub(crate) struct Bank {
    pub(crate) open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command
    /// (CAS-to-CAS spacing; activations/precharges fold in as delays).
    pub(crate) next_cas: Cycle,
}

/// One DDR4 channel.
#[derive(Debug, Clone)]
pub struct Ddr4Channel {
    cfg: DramConfig,
    channels: usize,
    banks: Vec<Bank>,
    bus_free: Cycle,
    refresh: RefreshTimer,
    /// Memoised `next_ready` (min over per-bank `next_cas` and the bus):
    /// bank state only changes in `access`/`sync`, which clear this.
    ready_cache: Cell<Option<Cycle>>,
}

impl Ddr4Channel {
    /// Create a channel; `channels` is the system-wide channel count (for
    /// address mapping).
    pub fn new(cfg: DramConfig, channels: usize) -> Ddr4Channel {
        let banks = vec![Bank { open_row: None, next_cas: 0 }; cfg.banks];
        let refresh = RefreshTimer::new(cfg.t_refi, cfg.t_rfc);
        Ddr4Channel { cfg, channels, banks, bus_free: 0, refresh, ready_cache: Cell::new(None) }
    }

    pub(crate) fn bank_row(&self, addr: PhysAddr) -> (usize, u64) {
        let local_line = addr.line().0 / self.channels as u64;
        let lines_per_row = self.cfg.row_bytes / CACHELINE;
        let bank = ((local_line / lines_per_row) % self.cfg.banks as u64) as usize;
        let row = local_line / lines_per_row / self.cfg.banks as u64;
        (bank, row)
    }

    /// `(bank_ready, is_row_hit)` with one address decode.
    #[inline]
    pub(crate) fn probe(&self, now: Cycle, addr: PhysAddr) -> (bool, bool) {
        let (bank, row) = self.bank_row(addr);
        let b = &self.banks[bank];
        (b.next_cas <= now, b.open_row == Some(row))
    }

    pub(crate) fn refresh_due(&self, now: Cycle) -> bool {
        self.refresh.due(now)
    }

    pub(crate) fn refresh_next(&self) -> Cycle {
        self.refresh.next_due()
    }
}

impl DramModel for Ddr4Channel {
    fn sync(&mut self, now: Cycle) {
        while let Some(end) = self.refresh.pop_due(now) {
            for b in &mut self.banks {
                b.open_row = None;
                b.next_cas = b.next_cas.max(end);
            }
            self.bus_free = self.bus_free.max(end);
            self.ready_cache.set(None);
        }
    }

    fn is_row_hit(&self, addr: PhysAddr) -> bool {
        let (bank, row) = self.bank_row(addr);
        self.banks[bank].open_row == Some(row)
    }

    fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        let (bank, _) = self.bank_row(addr);
        self.banks[bank].next_cas <= now
    }

    fn bus_ready(&self, now: Cycle) -> bool {
        self.bus_free <= now + self.cfg.t_cl
    }

    fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        self.sync(now);
        let (bank_idx, row) = self.bank_row(addr);
        let bank = &mut self.banks[bank_idx];
        let earliest = now.max(bank.next_cas);
        let (outcome, cas) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, earliest),
            Some(_) => (RowOutcome::Conflict, earliest + self.cfg.t_rp + self.cfg.t_rcd),
            None => (RowOutcome::Empty, earliest + self.cfg.t_rcd),
        };
        bank.open_row = Some(row);
        // Data appears tCL after the column command and must find the
        // shared data bus free; bursts to the same open row pipeline at
        // tBURST (CAS-to-CAS) spacing.
        let data_start = (cas + self.cfg.t_cl).max(self.bus_free);
        let done = data_start + self.cfg.t_burst;
        bank.next_cas = cas + self.cfg.t_burst;
        self.bus_free = done;
        self.ready_cache.set(None);
        (done, outcome)
    }

    fn next_ready(&self) -> Cycle {
        if let Some(v) = self.ready_cache.get() {
            return v;
        }
        let v = self.banks.iter().map(|b| b.next_cas).min().unwrap_or(0).min(self.bus_free);
        self.ready_cache.set(Some(v));
        v
    }

    fn refreshes(&self) -> u64 {
        self.refresh.count()
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        self.bank_row(addr).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            banks: 4,
            row_bytes: 1024,
            t_rcd: 10,
            t_rp: 10,
            t_cl: 10,
            t_burst: 2,
            ..DramConfig::default()
        }
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = Ddr4Channel::new(cfg(), 1);
        let (done, out) = d.access(0, PhysAddr(0));
        assert_eq!(out, RowOutcome::Empty);
        assert_eq!(done, 10 + 10 + 2); // tRCD + tCL + tBURST
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = Ddr4Channel::new(cfg(), 1);
        let (done1, _) = d.access(0, PhysAddr(0));
        assert!(d.is_row_hit(PhysAddr(64)));
        let (done2, out) = d.access(done1, PhysAddr(64));
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(done2, done1 + 10 + 2); // tCL + tBURST
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = Ddr4Channel::new(cfg(), 1);
        let (done1, _) = d.access(0, PhysAddr(0));
        // Same bank, next row: row_bytes*banks past addr 0.
        let other = PhysAddr(1024 * 4);
        let (_, out) = d.access(done1, other);
        assert_eq!(out, RowOutcome::Conflict);
    }

    #[test]
    fn banks_overlap_but_bus_serialises_bursts() {
        let mut d = Ddr4Channel::new(cfg(), 1);
        // Two accesses to different banks issued at the same time: their
        // array latencies overlap, the bursts serialise on the data bus.
        let a = PhysAddr(0);
        let b = PhysAddr(1024); // next bank
        let (done_a, _) = d.access(0, a);
        let (done_b, _) = d.access(0, b);
        assert_eq!(done_a, 22);
        assert_eq!(done_b, 24); // burst queued right behind
    }

    #[test]
    fn sequential_lines_stay_in_row_across_two_channels() {
        let d = Ddr4Channel::new(cfg(), 2);
        // lines 0,2,4.. live on channel 0; all map to row 0 bank 0 until
        // 1024 bytes of local lines are consumed.
        let (b0, r0) = d.bank_row(PhysAddr(0));
        let (b1, r1) = d.bank_row(PhysAddr(128));
        assert_eq!((b0, r0), (b1, r1));
    }

    #[test]
    fn bus_throughput_caps_bandwidth() {
        let mut d = Ddr4Channel::new(cfg(), 1);
        // Saturate with row hits in one row: per-access spacing = tBURST.
        let (mut last, _) = d.access(0, PhysAddr(0));
        for i in 1..8u64 {
            let (done, out) = d.access(0, PhysAddr(i * 64));
            assert_eq!(out, RowOutcome::Hit);
            assert_eq!(done, last + 2);
            last = done;
        }
    }

    #[test]
    fn refresh_closes_rows_and_blocks_the_bank() {
        let mut d = Ddr4Channel::new(DramConfig { t_refi: 100, t_rfc: 40, ..cfg() }, 1);
        let (_, out) = d.access(0, PhysAddr(0));
        assert_eq!(out, RowOutcome::Empty);
        assert!(d.is_row_hit(PhysAddr(64)));
        // Cross the tREFI boundary: the open row is gone and the bank is
        // blocked until the window ends at 140.
        d.sync(100);
        assert!(!d.is_row_hit(PhysAddr(64)));
        assert!(!d.bank_ready(100, PhysAddr(64)));
        assert!(d.bank_ready(140, PhysAddr(64)));
        assert_eq!(d.refreshes(), 1);
        // The re-access is a row empty (refresh precharged), not a hit.
        let (done, out) = d.access(140, PhysAddr(64));
        assert_eq!(out, RowOutcome::Empty);
        assert_eq!(done, 140 + 10 + 10 + 2);
    }

    #[test]
    fn refresh_disabled_matches_original_timing() {
        // t_refi = 0 (the default): sync is a no-op at any time.
        let mut a = Ddr4Channel::new(cfg(), 1);
        let mut b = Ddr4Channel::new(cfg(), 1);
        b.sync(1_000_000);
        let (da, _) = a.access(1_000_000, PhysAddr(0));
        let (db, _) = b.access(1_000_000, PhysAddr(0));
        assert_eq!(da, db);
        assert_eq!(b.refreshes(), 0);
    }
}
