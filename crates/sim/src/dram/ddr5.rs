//! DDR5-style sub-channel: a DDR4-like bank array organised into *bank
//! groups*, with same-group vs. different-group CAS spacing.
//!
//! DDR5 doubles the burst length onto a half-width (32-bit) sub-channel,
//! so per-64B bus occupancy matches DDR4 — but back-to-back column
//! commands to banks in the *same* bank group must be spaced by `tCCD_L`
//! (the group's shared I/O circuitry needs time to turn around), while
//! different groups only need `tCCD_S`, which equals the burst and is
//! therefore already enforced by the data bus.
//!
//! Address mapping: real DDR5 controllers place the bank-group bits just
//! above the line offset, so consecutive cachelines alternate bank groups
//! and a sequential stream pays only `tCCD_S`; we do the same (the group
//! is the low bits of the channel-local line index, and each group then
//! fills rows exactly like a DDR4 bank). A pathological stride that stays
//! inside one group degrades to `tCCD_L` spacing, as on hardware. Rows
//! are smaller than DDR4's (the sub-channel fetches half a module row).
//!
//! Refresh follows the same all-bank tREFI/tRFC model as DDR4 (DDR5's
//! finer-grained same-bank refresh is deliberately not modelled; see
//! DESIGN.md).

use super::ddr4::Bank;
use super::{DramModel, RefreshTimer, RowOutcome};
use crate::addr::{PhysAddr, CACHELINE};
use crate::config::DramConfig;
use crate::Cycle;
use std::cell::Cell;

/// One DDR5 sub-channel.
#[derive(Debug, Clone)]
pub struct Ddr5Channel {
    cfg: DramConfig,
    channels: usize,
    banks: Vec<Bank>,
    bus_free: Cycle,
    /// Last column command issued on this channel: (cycle, bank group).
    last_cas: Option<(Cycle, usize)>,
    refresh: RefreshTimer,
    /// Memoised `next_ready`; cleared by `access`/`sync`.
    ready_cache: Cell<Option<Cycle>>,
}

impl Ddr5Channel {
    /// Create a sub-channel; `channels` is the system-wide channel count
    /// (for address mapping).
    pub fn new(cfg: DramConfig, channels: usize) -> Ddr5Channel {
        assert!(cfg.bank_groups >= 1, "DDR5 needs at least one bank group");
        assert!(cfg.banks.is_multiple_of(cfg.bank_groups), "banks must divide into bank groups");
        let banks = vec![Bank { open_row: None, next_cas: 0 }; cfg.banks];
        let refresh = RefreshTimer::new(cfg.t_refi, cfg.t_rfc);
        Ddr5Channel {
            cfg,
            channels,
            banks,
            bus_free: 0,
            last_cas: None,
            refresh,
            ready_cache: Cell::new(None),
        }
    }

    /// (bank index, row, bank group) for `addr`. Consecutive lines stripe
    /// across bank groups; within a group, lines fill rows and rows stripe
    /// across the group's banks, like DDR4.
    fn bank_row(&self, addr: PhysAddr) -> (usize, u64, usize) {
        let local_line = addr.line().0 / self.channels as u64;
        let groups = self.cfg.bank_groups as u64;
        let group = (local_line % groups) as usize;
        let gline = local_line / groups;
        let lines_per_row = self.cfg.row_bytes / CACHELINE;
        let banks_per_group = (self.cfg.banks / self.cfg.bank_groups) as u64;
        let bank_in_group = (gline / lines_per_row) % banks_per_group;
        let row = gline / lines_per_row / banks_per_group;
        let bank = group * banks_per_group as usize + bank_in_group as usize;
        (bank, row, group)
    }

    /// `(bank_ready, is_row_hit)` with one address decode.
    #[inline]
    pub(crate) fn probe(&self, now: Cycle, addr: PhysAddr) -> (bool, bool) {
        let (bank, row, _) = self.bank_row(addr);
        let b = &self.banks[bank];
        (b.next_cas <= now, b.open_row == Some(row))
    }

    pub(crate) fn refresh_due(&self, now: Cycle) -> bool {
        self.refresh.due(now)
    }

    pub(crate) fn refresh_next(&self) -> Cycle {
        self.refresh.next_due()
    }
}

impl DramModel for Ddr5Channel {
    fn sync(&mut self, now: Cycle) {
        while let Some(end) = self.refresh.pop_due(now) {
            for b in &mut self.banks {
                b.open_row = None;
                b.next_cas = b.next_cas.max(end);
            }
            self.bus_free = self.bus_free.max(end);
            self.ready_cache.set(None);
        }
    }

    fn is_row_hit(&self, addr: PhysAddr) -> bool {
        let (bank, row, _) = self.bank_row(addr);
        self.banks[bank].open_row == Some(row)
    }

    fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        let (bank, _, _) = self.bank_row(addr);
        self.banks[bank].next_cas <= now
    }

    fn bus_ready(&self, now: Cycle) -> bool {
        self.bus_free <= now + self.cfg.t_cl
    }

    fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        self.sync(now);
        let (bank_idx, row, group) = self.bank_row(addr);
        let bank = &mut self.banks[bank_idx];
        let earliest = now.max(bank.next_cas);
        let (outcome, mut cas) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, earliest),
            Some(_) => (RowOutcome::Conflict, earliest + self.cfg.t_rp + self.cfg.t_rcd),
            None => (RowOutcome::Empty, earliest + self.cfg.t_rcd),
        };
        // CAS-to-CAS spacing: tCCD_L within a bank group, tCCD_S (= the
        // burst, enforced by the bus anyway) across groups.
        if let Some((last, last_group)) = self.last_cas {
            let gap = if last_group == group { self.cfg.t_ccd_l } else { self.cfg.t_burst };
            cas = cas.max(last + gap);
        }
        bank.open_row = Some(row);
        let data_start = (cas + self.cfg.t_cl).max(self.bus_free);
        let done = data_start + self.cfg.t_burst;
        bank.next_cas = cas + self.cfg.t_ccd_l.max(self.cfg.t_burst);
        self.bus_free = done;
        self.last_cas = Some((cas, group));
        self.ready_cache.set(None);
        (done, outcome)
    }

    fn next_ready(&self) -> Cycle {
        if let Some(v) = self.ready_cache.get() {
            return v;
        }
        let v = self.banks.iter().map(|b| b.next_cas).min().unwrap_or(0).min(self.bus_free);
        self.ready_cache.set(Some(v));
        v
    }

    fn refreshes(&self) -> u64 {
        self.refresh.count()
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        self.bank_row(addr).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemTech;

    fn cfg() -> DramConfig {
        DramConfig {
            banks: 8,
            bank_groups: 4,
            row_bytes: 1024,
            t_rcd: 10,
            t_rp: 10,
            t_cl: 10,
            t_burst: 2,
            t_ccd_l: 6,
            t_refi: 0,
            ..DramConfig::for_tech(MemTech::Ddr5)
        }
    }

    #[test]
    fn consecutive_lines_alternate_groups_and_pay_only_the_burst() {
        let mut d = Ddr5Channel::new(cfg(), 1);
        // Line 0 → group 0, line 1 → group 1: spacing = tBURST, exactly
        // like two DDR4 banks.
        let (done0, _) = d.access(0, PhysAddr(0));
        let (done1, _) = d.access(0, PhysAddr(64));
        assert_eq!(done0, 22);
        assert_eq!(done1, 24);
    }

    #[test]
    fn same_group_back_to_back_pays_tccd_l() {
        let mut d = Ddr5Channel::new(cfg(), 1);
        // Lines 0 and 4 both map to group 0 (4 groups), same bank and row.
        let (done0, _) = d.access(0, PhysAddr(0));
        let (done4, out) = d.access(0, PhysAddr(4 * 64));
        assert_eq!(done0, 22);
        assert_eq!(out, RowOutcome::Hit);
        // CAS slips from 10 to 10 + tCCD_L = 16; data at max(26, 22) = 26.
        assert_eq!(done4, 28);
    }

    #[test]
    fn a_stream_reopens_rows_in_every_group_then_hits() {
        let mut d = Ddr5Channel::new(cfg(), 1);
        let mut now = 0;
        let mut outcomes = Vec::new();
        for i in 0..8u64 {
            let (done, out) = d.access(now, PhysAddr(i * 64));
            outcomes.push(out);
            now = done;
        }
        // First touch of each of the 4 groups activates; the second pass
        // over the groups row-hits.
        assert!(outcomes[..4].iter().all(|o| *o == RowOutcome::Empty));
        assert!(outcomes[4..].iter().all(|o| *o == RowOutcome::Hit));
    }

    #[test]
    fn refresh_applies_to_all_groups() {
        let mut d = Ddr5Channel::new(DramConfig { t_refi: 50, t_rfc: 20, ..cfg() }, 1);
        let _ = d.access(0, PhysAddr(0));
        d.sync(50);
        assert_eq!(d.refreshes(), 1);
        assert!(!d.is_row_hit(PhysAddr(0)));
        assert!(!d.bank_ready(50, PhysAddr(0)));
        assert!(d.bank_ready(70, PhysAddr(0)));
    }
}
