//! HBM2-style channel: several independent *pseudo-channels*, each a
//! narrow bank array with its own data bus.
//!
//! HBM trades per-bus speed for width: a stack exposes many channels and
//! each channel is split into pseudo-channels that share only the command
//! infrastructure, so a single (MC)-fronted channel here contains
//! `pseudo_channels` fully independent bus+bank arrays. Consecutive
//! cachelines stripe across pseudo-channels (on top of the system-wide
//! channel striping), which multiplies sequential bandwidth while each
//! individual access still sees ordinary row-buffer timing. Rows are
//! small (HBM pages are 1 KB per pseudo-channel), so capacity per open
//! row — and per channel — is low, and random traffic activates often.
//!
//! Refresh is all-bank per channel: one tREFI/tRFC window blocks every
//! pseudo-channel at once (HBM's per-bank refresh option is deliberately
//! not modelled; see DESIGN.md).

use super::ddr4::Bank;
use super::{DramModel, RefreshTimer, RowOutcome};
use crate::addr::{PhysAddr, CACHELINE};
use crate::config::DramConfig;
use crate::Cycle;
use std::cell::Cell;

/// One pseudo-channel: a private bus fronting a private bank array.
#[derive(Debug, Clone)]
struct PseudoChannel {
    banks: Vec<Bank>,
    bus_free: Cycle,
}

/// One HBM channel (a set of pseudo-channels).
#[derive(Debug, Clone)]
pub struct HbmChannel {
    cfg: DramConfig,
    channels: usize,
    pcs: Vec<PseudoChannel>,
    refresh: RefreshTimer,
    /// Memoised `next_ready`; cleared by `access`/`sync`.
    ready_cache: Cell<Option<Cycle>>,
}

impl HbmChannel {
    /// Create a channel; `channels` is the system-wide channel count (for
    /// address mapping).
    pub fn new(cfg: DramConfig, channels: usize) -> HbmChannel {
        assert!(cfg.pseudo_channels >= 1, "HBM needs at least one pseudo-channel");
        let pcs = (0..cfg.pseudo_channels)
            .map(|_| PseudoChannel {
                banks: vec![Bank { open_row: None, next_cas: 0 }; cfg.banks],
                bus_free: 0,
            })
            .collect();
        let refresh = RefreshTimer::new(cfg.t_refi, cfg.t_rfc);
        HbmChannel { cfg, channels, pcs, refresh, ready_cache: Cell::new(None) }
    }

    /// (pseudo-channel, bank, row) for `addr`: lines stripe across
    /// pseudo-channels, then fill rows within one, like a DDR4 channel.
    fn locate(&self, addr: PhysAddr) -> (usize, usize, u64) {
        let local_line = addr.line().0 / self.channels as u64;
        let pc = (local_line % self.cfg.pseudo_channels as u64) as usize;
        let pcline = local_line / self.cfg.pseudo_channels as u64;
        let lines_per_row = self.cfg.row_bytes / CACHELINE;
        let bank = ((pcline / lines_per_row) % self.cfg.banks as u64) as usize;
        let row = pcline / lines_per_row / self.cfg.banks as u64;
        (pc, bank, row)
    }

    /// `(bank_ready, is_row_hit)` with one address decode.
    #[inline]
    pub(crate) fn probe(&self, now: Cycle, addr: PhysAddr) -> (bool, bool) {
        let (pc, bank, row) = self.locate(addr);
        let b = &self.pcs[pc].banks[bank];
        (b.next_cas <= now, b.open_row == Some(row))
    }

    pub(crate) fn refresh_due(&self, now: Cycle) -> bool {
        self.refresh.due(now)
    }

    pub(crate) fn refresh_next(&self) -> Cycle {
        self.refresh.next_due()
    }
}

impl DramModel for HbmChannel {
    fn sync(&mut self, now: Cycle) {
        while let Some(end) = self.refresh.pop_due(now) {
            for pc in &mut self.pcs {
                for b in &mut pc.banks {
                    b.open_row = None;
                    b.next_cas = b.next_cas.max(end);
                }
                pc.bus_free = pc.bus_free.max(end);
            }
            self.ready_cache.set(None);
        }
    }

    fn is_row_hit(&self, addr: PhysAddr) -> bool {
        let (pc, bank, row) = self.locate(addr);
        self.pcs[pc].banks[bank].open_row == Some(row)
    }

    fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        let (pc, bank, _) = self.locate(addr);
        self.pcs[pc].banks[bank].next_cas <= now
    }

    fn bus_ready(&self, now: Cycle) -> bool {
        // Some pseudo-channel can take a column command; an access aimed
        // at a busier one simply queues behind it.
        self.pcs.iter().any(|pc| pc.bus_free <= now + self.cfg.t_cl)
    }

    fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        self.sync(now);
        let (pci, bank_idx, row) = self.locate(addr);
        let pc = &mut self.pcs[pci];
        let bank = &mut pc.banks[bank_idx];
        let earliest = now.max(bank.next_cas);
        let (outcome, cas) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, earliest),
            Some(_) => (RowOutcome::Conflict, earliest + self.cfg.t_rp + self.cfg.t_rcd),
            None => (RowOutcome::Empty, earliest + self.cfg.t_rcd),
        };
        bank.open_row = Some(row);
        let data_start = (cas + self.cfg.t_cl).max(pc.bus_free);
        let done = data_start + self.cfg.t_burst;
        bank.next_cas = cas + self.cfg.t_burst;
        pc.bus_free = done;
        self.ready_cache.set(None);
        (done, outcome)
    }

    fn next_ready(&self) -> Cycle {
        if let Some(v) = self.ready_cache.get() {
            return v;
        }
        let v = self
            .pcs
            .iter()
            .flat_map(|pc| {
                pc.banks.iter().map(|b| b.next_cas).chain(std::iter::once(pc.bus_free))
            })
            .min()
            .unwrap_or(0);
        self.ready_cache.set(Some(v));
        v
    }

    fn refreshes(&self) -> u64 {
        self.refresh.count()
    }

    fn bus_of(&self, addr: PhysAddr) -> usize {
        self.locate(addr).0
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        let (pc, bank, _) = self.locate(addr);
        pc * self.cfg.banks + bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemTech;

    fn cfg() -> DramConfig {
        DramConfig {
            banks: 4,
            row_bytes: 512,
            pseudo_channels: 2,
            t_rcd: 10,
            t_rp: 10,
            t_cl: 10,
            t_burst: 2,
            t_refi: 0,
            ..DramConfig::for_tech(MemTech::Hbm2)
        }
    }

    #[test]
    fn lines_stripe_across_pseudo_channels() {
        let d = HbmChannel::new(cfg(), 1);
        assert_eq!(d.bus_of(PhysAddr(0)), 0);
        assert_eq!(d.bus_of(PhysAddr(64)), 1);
        assert_eq!(d.bus_of(PhysAddr(128)), 0);
    }

    #[test]
    fn pseudo_channel_buses_overlap_completely() {
        let mut d = HbmChannel::new(cfg(), 1);
        // Two lines on different pseudo-channels issued together: both
        // complete at tRCD + tCL + tBURST — no shared-bus serialisation.
        let (done0, o0) = d.access(0, PhysAddr(0));
        let (done1, o1) = d.access(0, PhysAddr(64));
        assert_eq!(o0, RowOutcome::Empty);
        assert_eq!(o1, RowOutcome::Empty);
        assert_eq!(done0, 22);
        assert_eq!(done1, 22);
    }

    #[test]
    fn within_one_pseudo_channel_the_bus_serialises() {
        let mut d = HbmChannel::new(cfg(), 1);
        // Lines 0 and 2 are both on pseudo-channel 0, same row.
        let (done0, _) = d.access(0, PhysAddr(0));
        let (done2, out) = d.access(0, PhysAddr(128));
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(done0, 22);
        assert_eq!(done2, 24);
    }

    #[test]
    fn small_rows_conflict_sooner() {
        let mut d = HbmChannel::new(cfg(), 1);
        // Pseudo-channel 0, bank 0 holds rows of 512 B = 8 lines; with 2
        // pseudo-channels and 4 banks, the same bank's next row starts
        // 2*8*4 = 64 lines later.
        let (done, _) = d.access(0, PhysAddr(0));
        let (_, out) = d.access(done, PhysAddr(64 * 64));
        assert_eq!(out, RowOutcome::Conflict);
    }

    #[test]
    fn refresh_blocks_every_pseudo_channel() {
        let mut d = HbmChannel::new(DramConfig { t_refi: 50, t_rfc: 20, ..cfg() }, 1);
        let _ = d.access(0, PhysAddr(0));
        let _ = d.access(0, PhysAddr(64));
        d.sync(50);
        assert_eq!(d.refreshes(), 1);
        assert!(!d.bank_ready(50, PhysAddr(0)));
        assert!(!d.bank_ready(50, PhysAddr(64)));
        assert!(d.bank_ready(70, PhysAddr(0)));
    }
}
