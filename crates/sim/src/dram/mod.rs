//! Composable memory-backend subsystem.
//!
//! Each memory controller fronts one *channel* of some memory technology.
//! The controller's FR-FCFS scheduler only needs a small contract from the
//! technology model — row-hit prediction, bank/bus readiness, and an
//! `access` that books the resources and returns the completion cycle —
//! captured by the [`DramModel`] trait. Three backends implement it:
//!
//! * [`ddr4::Ddr4Channel`] — the Table I baseline: one 64-bit bus, banks
//!   with open-row registers, optional tREFI/tRFC all-bank refresh;
//! * [`ddr5::Ddr5Channel`] — DDR4 plus bank groups: consecutive CAS
//!   commands to the *same* group must be spaced by `tCCD_L`, different
//!   groups only by `tCCD_S` (= the burst), and rows are smaller;
//! * [`hbm::HbmChannel`] — an HBM2-style channel split into independent
//!   pseudo-channels, each with its own narrow bus and bank array.
//!
//! Which backend a [`DramConfig`] describes is selected by
//! [`crate::config::MemTech`]; [`build`] is the factory the system wiring
//! uses. Address mapping (line-interleaved channels) is shared: the
//! cacheline index is first striped across channels, then within a channel
//! consecutive lines fill a row, rows stripe across banks. Sequential
//! buffers therefore enjoy high row-buffer locality, as on real hardware.
//!
//! Refresh is modelled lazily: every `tREFI` cycles an all-bank refresh
//! window of `tRFC` cycles opens, closing every row and blocking every
//! bank and bus of the channel. Windows are applied by [`DramModel::sync`],
//! which the controller calls once per tick before the read-only readiness
//! checks; `tREFI = 0` disables refresh entirely (the behaviour-preserving
//! default).

pub mod ddr4;
pub mod ddr5;
pub mod hbm;

pub use ddr4::Ddr4Channel;
pub use ddr5::Ddr5Channel;
pub use hbm::HbmChannel;

use crate::addr::PhysAddr;
use crate::config::{DramConfig, MemTech};
use crate::Cycle;

/// Which channel (memory controller) services a given line, with `channels`
/// total channels.
pub fn channel_of(addr: PhysAddr, channels: usize) -> usize {
    (addr.line().0 % channels as u64) as usize
}

/// Outcome of a DRAM access with respect to the row buffer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no open row).
    Empty,
    /// Another row was open and had to be precharged.
    Conflict,
}

/// Timing contract between a memory controller and one channel of some
/// memory technology (request in → completion cycle out).
///
/// The controller calls [`DramModel::sync`] once per tick, *before* any of
/// the read-only readiness checks, so that elapsed refresh windows are
/// reflected in bank/bus state; the checks themselves stay `&self` and are
/// safe to call from scheduling closures.
pub trait DramModel: std::fmt::Debug + Send {
    /// Apply all state changes implied by time advancing to `now` (refresh
    /// windows that have opened). Idempotent; must be called before the
    /// readiness checks each tick.
    fn sync(&mut self, now: Cycle);

    /// Whether an access to `addr` would hit the open row right now.
    fn is_row_hit(&self, addr: PhysAddr) -> bool;

    /// Whether the addressed bank can start a new access at `now`.
    fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool;

    /// Whether the controller may issue another column command at `now`:
    /// the data bus may be booked up to one CAS latency ahead, so bursts
    /// pipeline behind in-flight accesses instead of serialising with
    /// their array latency.
    fn bus_ready(&self, now: Cycle) -> bool;

    /// Start an access at `now`. Returns the completion cycle (data fully
    /// transferred) and the row outcome.
    ///
    /// Callers should check [`Self::bank_ready`] and [`Self::bus_ready`]
    /// first; starting anyway simply queues behind the busy resource.
    fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome);

    /// Earliest cycle at which any bank becomes ready (skip-ahead hint).
    /// Must never overshoot: the channel may be ready earlier, not later.
    fn next_ready(&self) -> Cycle;

    /// All-bank refresh windows applied so far (0 when refresh is off).
    fn refreshes(&self) -> u64;

    /// Index of the independent data bus `addr` is transferred on (always
    /// 0 except for pseudo-channelled backends). Completions on one bus
    /// are spaced at least a burst apart; different buses overlap freely.
    fn bus_of(&self, _addr: PhysAddr) -> usize {
        0
    }

    /// Index of the bank servicing `addr`, for diagnostics and trace
    /// lanes (pseudo-channelled backends flatten: pc * banks + bank).
    /// Purely informational; scheduling goes through the readiness checks.
    fn bank_of(&self, _addr: PhysAddr) -> usize {
        0
    }
}

/// Build the backend selected by `cfg.tech`; `channels` is the system-wide
/// channel count (for address mapping).
pub fn build(cfg: &DramConfig, channels: usize) -> DramBackend {
    match cfg.tech {
        MemTech::Ddr4 => DramBackend::Ddr4(Ddr4Channel::new(cfg.clone(), channels)),
        MemTech::Ddr5 => DramBackend::Ddr5(Ddr5Channel::new(cfg.clone(), channels)),
        MemTech::Hbm2 => DramBackend::Hbm2(HbmChannel::new(cfg.clone(), channels)),
    }
}

/// Enum-dispatched channel backend: one variant per [`MemTech`].
///
/// The memory controller holds this instead of a `Box<dyn DramModel>` so
/// the per-cycle timing checks (`bank_ready`, `is_row_hit`, `bus_ready`)
/// that the FR-FCFS scheduler calls in a loop over its pending queues
/// compile to direct, inlinable calls. The trait is still implemented on
/// the enum, so code written against `DramModel` keeps working.
#[derive(Debug, Clone)]
pub enum DramBackend {
    Ddr4(Ddr4Channel),
    Ddr5(Ddr5Channel),
    Hbm2(HbmChannel),
}

macro_rules! each_backend {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            DramBackend::Ddr4($d) => $body,
            DramBackend::Ddr5($d) => $body,
            DramBackend::Hbm2($d) => $body,
        }
    };
}

impl DramBackend {
    #[inline]
    pub fn sync(&mut self, now: Cycle) {
        each_backend!(self, d => d.sync(now));
    }

    #[inline]
    pub fn is_row_hit(&self, addr: PhysAddr) -> bool {
        each_backend!(self, d => d.is_row_hit(addr))
    }

    #[inline]
    pub fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        each_backend!(self, d => d.bank_ready(now, addr))
    }

    /// `(bank_ready, is_row_hit)` for `addr` with a single address decode
    /// — the FR-FCFS queue scans need both per candidate, and the decode
    /// (two divisions) dominates the check itself.
    #[inline]
    pub fn probe(&self, now: Cycle, addr: PhysAddr) -> (bool, bool) {
        each_backend!(self, d => d.probe(now, addr))
    }

    #[inline]
    pub fn bus_ready(&self, now: Cycle) -> bool {
        each_backend!(self, d => d.bus_ready(now))
    }

    #[inline]
    pub fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        each_backend!(self, d => d.access(now, addr))
    }

    #[inline]
    pub fn next_ready(&self) -> Cycle {
        each_backend!(self, d => DramModel::next_ready(d))
    }

    #[inline]
    pub fn refreshes(&self) -> u64 {
        each_backend!(self, d => d.refreshes())
    }

    #[inline]
    pub fn bus_of(&self, addr: PhysAddr) -> usize {
        each_backend!(self, d => d.bus_of(addr))
    }

    #[inline]
    pub fn bank_of(&self, addr: PhysAddr) -> usize {
        each_backend!(self, d => d.bank_of(addr))
    }

    /// Whether a refresh window has opened that [`Self::sync`] has not yet
    /// applied — i.e. whether `sync(now)` would change channel state. Used
    /// by the event-driven scheduler: an otherwise-idle controller must
    /// still tick to apply elapsed windows at the same cycle the per-tick
    /// scheduler would.
    #[inline]
    pub fn refresh_due(&self, now: Cycle) -> bool {
        each_backend!(self, d => d.refresh_due(now))
    }

    /// First cycle at which [`Self::refresh_due`] will turn true
    /// ([`Cycle::MAX`] when refresh is disabled) — wake-up hint for the
    /// event-driven scheduler's cached controller readiness.
    #[inline]
    pub fn refresh_next(&self) -> Cycle {
        each_backend!(self, d => d.refresh_next())
    }
}

impl DramModel for DramBackend {
    fn sync(&mut self, now: Cycle) {
        DramBackend::sync(self, now);
    }
    fn is_row_hit(&self, addr: PhysAddr) -> bool {
        DramBackend::is_row_hit(self, addr)
    }
    fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        DramBackend::bank_ready(self, now, addr)
    }
    fn bus_ready(&self, now: Cycle) -> bool {
        DramBackend::bus_ready(self, now)
    }
    fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        DramBackend::access(self, now, addr)
    }
    fn next_ready(&self) -> Cycle {
        DramBackend::next_ready(self)
    }
    fn refreshes(&self) -> u64 {
        DramBackend::refreshes(self)
    }
    fn bus_of(&self, addr: PhysAddr) -> usize {
        DramBackend::bus_of(self, addr)
    }
    fn bank_of(&self, addr: PhysAddr) -> usize {
        DramBackend::bank_of(self, addr)
    }
}

impl From<Ddr4Channel> for DramBackend {
    fn from(d: Ddr4Channel) -> DramBackend {
        DramBackend::Ddr4(d)
    }
}

impl From<Ddr5Channel> for DramBackend {
    fn from(d: Ddr5Channel) -> DramBackend {
        DramBackend::Ddr5(d)
    }
}

impl From<HbmChannel> for DramBackend {
    fn from(d: HbmChannel) -> DramBackend {
        DramBackend::Hbm2(d)
    }
}

/// Lazy all-bank refresh bookkeeping shared by the backends: a window of
/// `t_rfc` cycles opens every `t_refi` cycles; `t_refi == 0` disables it.
#[derive(Debug, Clone)]
pub(crate) struct RefreshTimer {
    t_refi: Cycle,
    t_rfc: Cycle,
    /// Start of the next unapplied window.
    next: Cycle,
    /// Windows applied so far.
    count: u64,
}

impl RefreshTimer {
    pub(crate) fn new(t_refi: Cycle, t_rfc: Cycle) -> RefreshTimer {
        RefreshTimer { t_refi, t_rfc, next: t_refi, count: 0 }
    }

    /// Pop the next window that has opened by `now`, returning the cycle
    /// at which it *ends* (all banks blocked until then, all rows closed).
    pub(crate) fn pop_due(&mut self, now: Cycle) -> Option<Cycle> {
        if self.t_refi == 0 || now < self.next {
            return None;
        }
        let end = self.next + self.t_rfc;
        self.next += self.t_refi;
        self.count += 1;
        Some(end)
    }

    /// Whether a window has opened by `now` that has not been popped yet
    /// (i.e. whether `pop_due(now)` would return `Some`).
    pub(crate) fn due(&self, now: Cycle) -> bool {
        self.t_refi != 0 && now >= self.next
    }

    /// Cycle at which the next unapplied window opens — the first `now`
    /// for which [`Self::due`] turns true ([`Cycle::MAX`] when refresh is
    /// disabled). Scheduling hint for the event-driven tick loop.
    pub(crate) fn next_due(&self) -> Cycle {
        if self.t_refi == 0 {
            Cycle::MAX
        } else {
            self.next
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mapping_stripes_lines() {
        assert_eq!(channel_of(PhysAddr(0), 2), 0);
        assert_eq!(channel_of(PhysAddr(64), 2), 1);
        assert_eq!(channel_of(PhysAddr(128), 2), 0);
        assert_eq!(channel_of(PhysAddr(63), 2), 0);
    }

    #[test]
    fn refresh_timer_disabled_never_fires() {
        let mut r = RefreshTimer::new(0, 100);
        assert_eq!(r.pop_due(u64::MAX), None);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn refresh_timer_yields_windows_in_order() {
        let mut r = RefreshTimer::new(100, 10);
        assert_eq!(r.pop_due(99), None);
        assert_eq!(r.pop_due(100), Some(110));
        assert_eq!(r.pop_due(100), None);
        // Jumping far ahead drains one window per call (catch-up loop).
        assert_eq!(r.pop_due(350), Some(210));
        assert_eq!(r.pop_due(350), Some(310));
        assert_eq!(r.pop_due(350), None);
        assert_eq!(r.count(), 3);
    }

    #[test]
    fn factory_builds_each_tech() {
        for tech in MemTech::ALL {
            let cfg = DramConfig { tech, ..DramConfig::default() };
            let d = build(&cfg, 2);
            assert_eq!(d.refreshes(), 0);
        }
    }
}
