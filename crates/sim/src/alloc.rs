//! A bump allocator over simulated physical memory.
//!
//! Workloads use this to carve buffers out of the 3 GB simulated DRAM.
//! There is no free — experiments allocate once and run — but the allocator
//! supports alignment and deliberate misalignment (several experiments
//! purposely misalign source and destination, §V-A2).

use crate::addr::{PhysAddr, CACHELINE, PAGE_2M, PAGE_4K};

/// A bump allocator over a contiguous physical range.
#[derive(Debug, Clone)]
pub struct AddrSpace {
    next: u64,
    end: u64,
}

impl AddrSpace {
    /// Allocate over `[base, base + size)`.
    pub fn new(base: PhysAddr, size: u64) -> AddrSpace {
        AddrSpace { next: base.0, end: base.0 + size }
    }

    /// An address space matching the paper's 3 GB DRAM, skipping the first
    /// 1 MB (so address 0 never aliases a buffer).
    pub fn dram_3gb() -> AddrSpace {
        AddrSpace::new(PhysAddr(1 << 20), 3 * (1 << 30) - (1 << 20))
    }

    /// Allocate `size` bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    /// Panics if the space is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> PhysAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        assert!(base + size <= self.end, "simulated address space exhausted");
        self.next = base + size;
        PhysAddr(base)
    }

    /// Allocate cacheline-aligned.
    pub fn alloc_lines(&mut self, size: u64) -> PhysAddr {
        self.alloc(size, CACHELINE)
    }

    /// Allocate 4 KB-page-aligned.
    pub fn alloc_page(&mut self, size: u64) -> PhysAddr {
        self.alloc(size, PAGE_4K)
    }

    /// Allocate 2 MB-hugepage-aligned.
    pub fn alloc_hugepage(&mut self, size: u64) -> PhysAddr {
        self.alloc(size, PAGE_2M)
    }

    /// Allocate `size` bytes whose address is `offset` bytes past an
    /// `align` boundary — used to construct deliberately misaligned
    /// buffers (e.g. Fig. 12 misaligns source and destination so every
    /// destination line needs two bounces).
    pub fn alloc_misaligned(&mut self, size: u64, align: u64, offset: u64) -> PhysAddr {
        let a = self.alloc(size + offset, align);
        a.add(offset)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut s = AddrSpace::new(PhysAddr(100), 1 << 20);
        let a = s.alloc(10, 64);
        assert!(a.is_aligned(64));
        let b = s.alloc(10, 4096);
        assert!(b.is_aligned(4096));
        assert!(b.0 > a.0);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut s = AddrSpace::new(PhysAddr(0), 1 << 20);
        let a = s.alloc(100, 64);
        let b = s.alloc(100, 64);
        assert!(b.0 >= a.0 + 100);
    }

    #[test]
    fn misaligned_alloc_has_requested_offset() {
        let mut s = AddrSpace::new(PhysAddr(0), 1 << 20);
        let a = s.alloc_misaligned(256, 4096, 36);
        assert_eq!(a.page_off(4096), 36);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut s = AddrSpace::new(PhysAddr(0), 128);
        let _ = s.alloc(256, 64);
    }

    #[test]
    fn dram_3gb_has_room() {
        let mut s = AddrSpace::dram_3gb();
        assert!(s.remaining() > 2 * (1 << 30));
        let a = s.alloc_hugepage(PAGE_2M);
        assert!(a.is_aligned(PAGE_2M));
    }
}
