//! Shared, inclusive last-level cache with an MSI directory.
//!
//! The LLC tracks, per resident line, which L1 owns it (Modified) or shares
//! it, and serialises transactions per line with blocking MSHRs. It is the
//! point where core-visible cache traffic turns into memory-interconnect
//! packets: fills, writebacks, CLWB write-throughs, non-temporal writes,
//! and the forwarding of MCLAZY/MCFREE toward the memory controllers.

use super::array::CacheArray;
use super::prefetch::StridePrefetcher;
use super::{L1ToLlc, LlcToL1, ServiceLevel};
use crate::addr::PhysAddr;
use crate::config::CacheConfig;
use crate::data::LineData;
use crate::dram::channel_of;
use crate::packet::{MemCmd, Node, Packet};
use crate::stats::CacheStats;
use crate::uop::UopId;
use crate::Cycle;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone)]
struct LlcLine {
    data: LineData,
    /// Dirty with respect to memory.
    dirty: bool,
    /// L1 holding the line in M, if any. While an owner exists the LLC's
    /// copy may be stale; it is refreshed by Recall/PutM before being
    /// served to anyone else.
    owner: Option<usize>,
    /// L1s holding the line in S (bitmask by core id; may include stale
    /// bits after silent clean evictions — invalidating a non-holder is
    /// harmless).
    sharers: u32,
    prefetched: bool,
}

/// What to do when a recall/inval transaction finishes.
#[derive(Debug)]
enum After {
    /// Grant shared data to a core.
    GrantS { core: usize },
    /// Grant exclusive data to a core.
    GrantM { core: usize },
    /// Finish evicting the line (write back if dirty, drop, then retry
    /// whatever was queued).
    Evict,
    /// Complete a non-temporal write: forward to memory, ack the core.
    NtWrite { data: LineData, id: UopId, core: usize },
    /// Complete a CLWB that needed a recall from a remote owner.
    Clwb { id: UopId, core: usize },
}

#[derive(Debug)]
enum Txn {
    /// Fill from memory in flight.
    Mem { excl: bool, core: usize, prefetch: bool },
    /// Waiting for one recall ack (the recalled L1 is implicit in the ack).
    Recall { after: After },
    /// Waiting for `pending` inval acks.
    Invals { pending: u32, after: After },
}

#[derive(Debug)]
struct Mshr {
    txn: Txn,
    /// Requests deferred while this line is busy, replayed afterwards.
    queue: VecDeque<L1ToLlc>,
}

/// Outputs of LLC handlers.
#[derive(Debug, Default)]
pub struct LlcOut {
    /// (l1 index, message, extra delay).
    pub to_l1: Vec<(usize, LlcToL1, Cycle)>,
    /// (packet, extra delay) toward the memory interconnect.
    pub to_bus: Vec<(Packet, Cycle)>,
}

/// The shared last-level cache.
#[derive(Debug)]
pub struct Llc {
    cfg: CacheConfig,
    channels: usize,
    array: CacheArray<LlcLine>,
    mshrs: HashMap<u64, Mshr>,
    /// Requests bounced for capacity (MSHR full / eviction in progress),
    /// replayed each cycle before new input.
    retry: VecDeque<L1ToLlc>,
    /// MCLAZY packets in flight to the MCs: packet id → (core, uop id).
    pending_lazy: HashMap<u64, (usize, UopId)>,
    /// CLWB write-throughs awaiting controller acceptance: packet id →
    /// (core, uop id). The ack is what propagates BPQ back-pressure.
    pending_write_acks: HashMap<u64, (usize, UopId)>,
    pf: StridePrefetcher,
    /// Statistics.
    pub stats: CacheStats,
}

impl Llc {
    /// Create the LLC for a system with `channels` memory controllers.
    pub fn new(cfg: CacheConfig, channels: usize) -> Llc {
        let sets = cfg.sets();
        let pf = StridePrefetcher::new(cfg.prefetch, cfg.prefetch_degree);
        Llc {
            cfg: cfg.clone(),
            channels,
            array: CacheArray::new(sets, cfg.ways),
            mshrs: HashMap::new(),
            retry: VecDeque::new(),
            pending_lazy: HashMap::new(),
            pending_write_acks: HashMap::new(),
            pf,
            stats: CacheStats::default(),
        }
    }

    fn mc_of(&self, line: PhysAddr) -> Node {
        Node::Mc(channel_of(line, self.channels))
    }

    /// Directory state of resident lines as `(line address, owner,
    /// sharers bitmask)`, for the runtime invariant checker.
    #[cfg(feature = "check-invariants")]
    pub fn check_lines(&self) -> Vec<(PhysAddr, Option<usize>, u32)> {
        self.array.iter().map(|(a, l)| (a, l.owner, l.sharers)).collect()
    }

    /// Whether `line` is resident or has a transaction in flight, for the
    /// runtime invariant checker (inclusion checks).
    #[cfg(feature = "check-invariants")]
    pub fn check_tracks(&self, line: PhysAddr) -> bool {
        self.array.peek(line).is_some() || self.mshrs.contains_key(&line.0)
    }

    /// Whether `line` has a transaction in flight, for the runtime
    /// invariant checker.
    #[cfg(feature = "check-invariants")]
    pub fn check_has_mshr(&self, line: PhysAddr) -> bool {
        self.mshrs.contains_key(&line.0)
    }

    /// Send a write to memory whose acceptance must be acknowledged back to
    /// `core` as the completion of CLWB uop `id`.
    fn send_acked_write(
        &mut self,
        line: PhysAddr,
        data: LineData,
        id: UopId,
        core: usize,
        out: &mut LlcOut,
    ) {
        let mut pkt = Packet::write(line, data, self.mc_of(line));
        pkt.needs_ack = true;
        pkt.core = Some(core);
        self.pending_write_acks.insert(pkt.id, (core, id));
        out.to_bus.push((pkt, self.cfg.hit_latency));
    }

    /// In-flight transaction count (diagnostics).
    pub fn mshr_count(&self) -> usize {
        self.mshrs.len()
    }

    /// Whether transactions or retries are outstanding.
    pub fn busy(&self) -> bool {
        !self.mshrs.is_empty()
            || !self.retry.is_empty()
            || !self.pending_lazy.is_empty()
            || !self.pending_write_acks.is_empty()
    }

    /// Whether deferred requests are queued for replay — i.e. whether
    /// [`Llc::begin_cycle`] would do anything. Used by the event-driven
    /// scheduler: with no retries and no deliverable input, the LLC's
    /// whole phase is a no-op.
    pub fn has_retries(&self) -> bool {
        !self.retry.is_empty()
    }

    /// Replay deferred requests (call once per cycle before new input).
    pub fn begin_cycle(&mut self, now: Cycle, out: &mut LlcOut) {
        for _ in 0..self.retry.len() {
            let Some(msg) = self.retry.pop_front() else { break };
            if !self.handle_l1(now, msg.clone(), out) {
                self.retry.push_back(msg);
                break; // still blocked; keep order, try next cycle
            }
        }
    }

    /// Handle a message from an L1. Returns `false` if it could not be
    /// accepted (caller must retry); acks are always accepted.
    pub fn handle_l1(&mut self, now: Cycle, msg: L1ToLlc, out: &mut LlcOut) -> bool {
        match msg {
            L1ToLlc::RecallAck { line, data, core } => {
                self.on_recall_ack(now, line, data, core, out);
                true
            }
            L1ToLlc::InvalAck { line, core } => {
                self.on_recall_ack(now, line, None, core, out);
                true
            }
            L1ToLlc::PutM { line, data, core } => {
                self.on_putm(line, data, core);
                true
            }
            L1ToLlc::WbRange { addr, size, dirty, id, core } => {
                self.wb_range(addr, size, dirty, id, core, out);
                true
            }
            L1ToLlc::Mclazy { desc, id, core } => {
                // §III-B1 step 3: the packet is BROADCAST to every memory
                // controller. Each per-controller FIFO then guarantees that
                // writebacks already heading to that controller process
                // before its copy of the broadcast — the ordering the
                // paper's consistency argument rests on. The engine arms
                // the tracking entry only once the last copy arrives.
                let bid = crate::packet::fresh_id();
                self.pending_lazy.insert(bid, (core, id));
                for k in 0..self.channels {
                    let pkt = Packet {
                        id: bid,
                        cmd: MemCmd::Mclazy(desc),
                        addr: desc.dst,
                        data: None,
                        dest: Node::Mc(k),
                        is_prefetch: false,
                        core: Some(core),
                        needs_ack: false,
                        poisoned: false,
                    };
                    out.to_bus.push((pkt, self.cfg.hit_latency));
                }
                true
            }
            L1ToLlc::Mcfree { addr, size } => {
                let pkt = Packet {
                    id: crate::packet::fresh_id(),
                    cmd: MemCmd::Mcfree(crate::packet::FreeDesc { addr, size }),
                    addr: addr.line_base(),
                    data: None,
                    dest: self.mc_of(addr),
                    is_prefetch: false,
                    core: None,
                    needs_ack: false,
                    poisoned: false,
                };
                out.to_bus.push((pkt, self.cfg.hit_latency));
                true
            }
            other => {
                let line = line_of(&other);
                if let Some(m) = self.mshrs.get_mut(&line.0) {
                    m.queue.push_back(other);
                    return true;
                }
                self.dispatch(now, other, out)
            }
        }
    }

    /// Handle a fresh (non-queued) request for an idle line.
    fn dispatch(&mut self, now: Cycle, msg: L1ToLlc, out: &mut LlcOut) -> bool {
        match msg {
            L1ToLlc::GetS { line, core, prefetch } => self.get_s(now, line, core, prefetch, out),
            L1ToLlc::GetM { line, core } => self.get_m(now, line, core, out),
            L1ToLlc::Clwb { line, data, id, core } => self.clwb(line, data, id, core, out),
            L1ToLlc::NtWrite { line, data, id, core } => self.nt_write(line, data, id, core, out),
            _ => unreachable!("handled in handle_l1"),
        }
    }

    fn get_s(
        &mut self,
        _now: Cycle,
        line: PhysAddr,
        core: usize,
        prefetch: bool,
        out: &mut LlcOut,
    ) -> bool {
        if let Some(l) = self.array.get_mut(line) {
            self.stats.hits += 1;
            if l.prefetched {
                l.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            if let Some(owner) = l.owner {
                if owner != core {
                    if self.mshrs.len() >= self.cfg.mshrs {
                        return false;
                    }
                    out.to_l1.push((owner, LlcToL1::Recall { line, inval: false }, 0));
                    self.mshrs.insert(
                        line.0,
                        Mshr {
                            txn: Txn::Recall { after: After::GrantS { core } },
                            queue: VecDeque::new(),
                        },
                    );
                    return true;
                }
                // Owner re-requesting S (lost its copy silently): demote.
                l.owner = None;
            }
            l.sharers |= 1 << core;
            let data = l.data;
            out.to_l1.push((
                core,
                LlcToL1::Data { line, data, excl: false, level: ServiceLevel::Llc },
                self.cfg.hit_latency,
            ));
            return true;
        }
        // Miss.
        self.stats.misses += 1;
        if !self.start_fill(line, false, core, prefetch, out) {
            self.stats.misses -= 1; // retried later; don't double count
            return false;
        }
        if !prefetch {
            self.issue_prefetches(line, out);
        }
        true
    }

    fn get_m(&mut self, _now: Cycle, line: PhysAddr, core: usize, out: &mut LlcOut) -> bool {
        if let Some(l) = self.array.get_mut(line) {
            self.stats.hits += 1;
            l.prefetched = false;
            if let Some(owner) = l.owner {
                if owner != core {
                    if self.mshrs.len() >= self.cfg.mshrs {
                        return false;
                    }
                    out.to_l1.push((owner, LlcToL1::Recall { line, inval: true }, 0));
                    self.mshrs.insert(
                        line.0,
                        Mshr {
                            txn: Txn::Recall { after: After::GrantM { core } },
                            queue: VecDeque::new(),
                        },
                    );
                    return true;
                }
                // Owner asking again (e.g. after silent drop): re-grant.
                let data = l.data;
                out.to_l1.push((
                    core,
                    LlcToL1::Data { line, data, excl: true, level: ServiceLevel::Llc },
                    self.cfg.hit_latency,
                ));
                return true;
            }
            let others = l.sharers & !(1 << core);
            if others != 0 {
                if self.mshrs.len() >= self.cfg.mshrs {
                    return false;
                }
                let mut pending = 0;
                for c in 0..32 {
                    if others & (1 << c) != 0 {
                        out.to_l1.push((c as usize, LlcToL1::Inval { line }, 0));
                        pending += 1;
                    }
                }
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        txn: Txn::Invals { pending, after: After::GrantM { core } },
                        queue: VecDeque::new(),
                    },
                );
                return true;
            }
            l.owner = Some(core);
            l.sharers = 0;
            let data = l.data;
            out.to_l1.push((
                core,
                LlcToL1::Data { line, data, excl: true, level: ServiceLevel::Llc },
                self.cfg.hit_latency,
            ));
            return true;
        }
        self.stats.misses += 1;
        if !self.start_fill(line, true, core, false, out) {
            self.stats.misses -= 1;
            return false;
        }
        true
    }

    /// Begin a memory fill; returns false if resources are unavailable.
    fn start_fill(
        &mut self,
        line: PhysAddr,
        excl: bool,
        core: usize,
        prefetch: bool,
        out: &mut LlcOut,
    ) -> bool {
        if self.mshrs.len() >= self.cfg.mshrs {
            return false;
        }
        if !self.array.has_room(line) && !self.make_room(line, out) {
            return false;
        }
        let mut pkt = Packet::read(line, self.mc_of(line));
        pkt.is_prefetch = prefetch;
        pkt.core = Some(core);
        out.to_bus.push((pkt, self.cfg.hit_latency));
        self.mshrs.insert(line.0, Mshr { txn: Txn::Mem { excl, core, prefetch }, queue: VecDeque::new() });
        true
    }

    /// Try to free a way in `line`'s set. Returns false if eviction needs a
    /// recall that is now in flight (caller retries the original request).
    fn make_room(&mut self, line: PhysAddr, out: &mut LlcOut) -> bool {
        // Prefer victims that are not resident in any L1 and not mid-transaction.
        let busy = |l: PhysAddr| self.mshrs.contains_key(&l.0);
        let victim = self
            .array
            .victim(line, |l, p| busy(l) || p.owner.is_some() || p.sharers != 0)
            .or_else(|| self.array.victim(line, |l, p| busy(l) || p.owner.is_some()));
        if let Some(v) = victim {
            let p = self.array.remove(v).expect("victim resident");
            self.stats.evictions += 1;
            // Clean sharers are force-invalidated without acks; inclusion is
            // restored within a link delay and clean reads in the window are
            // indistinguishable from an earlier interleaving.
            for c in 0..32 {
                if p.sharers & (1 << c) != 0 {
                    out.to_l1.push((c as usize, LlcToL1::Inval { line: v }, 0));
                }
            }
            if p.dirty {
                self.stats.writebacks += 1;
                out.to_bus.push((Packet::write(v, p.data, self.mc_of(v)), self.cfg.hit_latency));
            }
            return true;
        }
        // Every candidate is owned dirty in an L1: recall the LRU owner and
        // retry the request once the recall lands.
        if self.mshrs.len() >= self.cfg.mshrs {
            return false;
        }
        if let Some(v) = self.array.victim(line, |l, _| busy(l)) {
            let owner = self.array.peek(v).and_then(|p| p.owner).expect("owned victim");
            out.to_l1.push((owner, LlcToL1::Recall { line: v, inval: true }, 0));
            self.mshrs.insert(
                v.0,
                Mshr { txn: Txn::Recall { after: After::Evict }, queue: VecDeque::new() },
            );
        }
        false
    }

    fn issue_prefetches(&mut self, line: PhysAddr, out: &mut LlcOut) {
        for p in self.pf.observe(line) {
            if self.array.peek(p).is_some() || self.mshrs.contains_key(&p.0) {
                continue;
            }
            if self.mshrs.len() >= self.cfg.mshrs || !self.array.has_room(p) {
                break;
            }
            self.stats.prefetches_issued += 1;
            // Prefetches fill the LLC only (core index unused).
            let _ = self.start_fill(p, false, usize::MAX, true, out);
        }
    }

    /// The §V-A1 wide writeback: merge the L1's dirty lines, add this
    /// level's dirty lines in the range, push everything to memory, and
    /// acknowledge once the final write is accepted by its controller.
    fn wb_range(
        &mut self,
        addr: PhysAddr,
        size: u64,
        l1_dirty: Vec<(PhysAddr, LineData)>,
        id: UopId,
        core: usize,
        out: &mut LlcOut,
    ) {
        let mut writes: Vec<(PhysAddr, LineData)> = Vec::new();
        for (line, data) in l1_dirty {
            if let Some(l) = self.array.peek_mut(line) {
                l.data = data;
                l.dirty = false;
            }
            writes.push((line, data));
        }
        for line in crate::addr::lines_of(addr, size) {
            if let Some(l) = self.array.peek_mut(line) {
                if l.dirty && l.owner.is_none() {
                    l.dirty = false;
                    writes.push((line, l.data));
                }
            }
        }
        match writes.split_last() {
            None => out.to_l1.push((core, LlcToL1::ClwbAck { id }, self.cfg.hit_latency)),
            Some(((last_line, last_data), rest)) => {
                for (line, data) in rest {
                    out.to_bus
                        .push((Packet::write(*line, *data, self.mc_of(*line)), self.cfg.hit_latency));
                }
                self.send_acked_write(*last_line, *last_data, id, core, out);
            }
        }
    }

    fn clwb(
        &mut self,
        line: PhysAddr,
        data: Option<LineData>,
        id: UopId,
        core: usize,
        out: &mut LlcOut,
    ) -> bool {
        if let Some(d) = data {
            // L1 had it dirty: refresh our copy, write through to memory.
            // The ack comes back from the controller (WriteAck).
            if let Some(l) = self.array.peek_mut(line) {
                l.data = d;
                l.dirty = false;
            }
            self.send_acked_write(line, d, id, core, out);
            return true;
        }
        match self.array.peek_mut(line) {
            Some(l) if l.owner.is_some() && l.owner != Some(core) => {
                // Dirty in a remote L1: recall (downgrade) then write back.
                if self.mshrs.len() >= self.cfg.mshrs {
                    return false;
                }
                let owner = l.owner.expect("checked");
                out.to_l1.push((owner, LlcToL1::Recall { line, inval: false }, 0));
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        txn: Txn::Recall { after: After::Clwb { id, core } },
                        queue: VecDeque::new(),
                    },
                );
                true
            }
            Some(l) if l.dirty => {
                l.dirty = false;
                let d = l.data;
                self.send_acked_write(line, d, id, core, out);
                true
            }
            _ => {
                // Clean or absent everywhere: nothing to write back.
                out.to_l1.push((core, LlcToL1::ClwbAck { id }, self.cfg.hit_latency));
                true
            }
        }
    }

    fn nt_write(
        &mut self,
        line: PhysAddr,
        data: LineData,
        id: UopId,
        core: usize,
        out: &mut LlcOut,
    ) -> bool {
        if let Some(l) = self.array.peek(line) {
            let owner = l.owner;
            let others = l.sharers & !(1 << core);
            if let Some(o) = owner {
                if self.mshrs.len() >= self.cfg.mshrs {
                    return false;
                }
                out.to_l1.push((o, LlcToL1::Recall { line, inval: true }, 0));
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        txn: Txn::Recall { after: After::NtWrite { data, id, core } },
                        queue: VecDeque::new(),
                    },
                );
                return true;
            }
            if others != 0 {
                if self.mshrs.len() >= self.cfg.mshrs {
                    return false;
                }
                let mut pending = 0;
                for c in 0..32 {
                    if others & (1 << c) != 0 {
                        out.to_l1.push((c as usize, LlcToL1::Inval { line }, 0));
                        pending += 1;
                    }
                }
                self.mshrs.insert(
                    line.0,
                    Mshr {
                        txn: Txn::Invals { pending, after: After::NtWrite { data, id, core } },
                        queue: VecDeque::new(),
                    },
                );
                return true;
            }
            self.array.remove(line);
            self.stats.invalidations += 1;
        }
        out.to_bus.push((Packet::write(line, data, self.mc_of(line)), self.cfg.hit_latency));
        out.to_l1.push((core, LlcToL1::NtAck { id }, self.cfg.hit_latency));
        true
    }

    fn on_putm(&mut self, line: PhysAddr, data: LineData, core: usize) {
        if let Some(l) = self.array.peek_mut(line) {
            l.data = data;
            l.dirty = true;
            if l.owner == Some(core) {
                l.owner = None;
            }
            return;
        }
        // PutM raced with an eviction recall for the same line: treat the
        // data as the recall result; the ack will find the data merged.
        if let Some(m) = self.mshrs.get_mut(&line.0) {
            if let Txn::Recall { .. } = m.txn {
                // Stash into a synthetic resident line? The line was removed
                // during eviction only after recall completes, so for
                // in-flight recalls the line is still resident — handled
                // above. Reaching here means the line is gone; drop the
                // writeback (memory already has the last recalled version).
            }
        }
    }

    fn on_recall_ack(
        &mut self,
        now: Cycle,
        line: PhysAddr,
        data: Option<LineData>,
        _core: usize,
        out: &mut LlcOut,
    ) {
        let Some(m) = self.mshrs.get_mut(&line.0) else {
            return; // stale ack (e.g. inval of a silently evicted line)
        };
        // Merge returned data.
        if let Some(d) = data {
            if let Some(l) = self.array.peek_mut(line) {
                l.data = d;
                l.dirty = true;
            }
        }
        let done = match &mut m.txn {
            Txn::Recall { .. } => true,
            Txn::Invals { pending, .. } => {
                *pending -= 1;
                *pending == 0
            }
            Txn::Mem { .. } => false,
        };
        if !done {
            return;
        }
        let m = self.mshrs.remove(&line.0).expect("present");
        let after = match m.txn {
            Txn::Recall { after } => after,
            Txn::Invals { after, .. } => after,
            Txn::Mem { .. } => unreachable!(),
        };
        self.run_after(now, line, after, out);
        self.retry.extend(m.queue);
    }

    fn run_after(&mut self, _now: Cycle, line: PhysAddr, after: After, out: &mut LlcOut) {
        match after {
            After::GrantS { core } => {
                let l = self.array.peek_mut(line).expect("resident during txn");
                l.owner = None;
                l.sharers |= 1 << core;
                let data = l.data;
                out.to_l1.push((
                    core,
                    LlcToL1::Data { line, data, excl: false, level: ServiceLevel::Llc },
                    self.cfg.hit_latency,
                ));
            }
            After::GrantM { core } => {
                let l = self.array.peek_mut(line).expect("resident during txn");
                l.owner = Some(core);
                l.sharers = 0;
                let data = l.data;
                out.to_l1.push((
                    core,
                    LlcToL1::Data { line, data, excl: true, level: ServiceLevel::Llc },
                    self.cfg.hit_latency,
                ));
            }
            After::Evict => {
                if let Some(p) = self.array.remove(line) {
                    self.stats.evictions += 1;
                    if p.dirty {
                        self.stats.writebacks += 1;
                        out.to_bus
                            .push((Packet::write(line, p.data, self.mc_of(line)), self.cfg.hit_latency));
                    }
                }
            }
            After::NtWrite { data, id, core } => {
                if self.array.remove(line).is_some() {
                    self.stats.invalidations += 1;
                }
                out.to_bus.push((Packet::write(line, data, self.mc_of(line)), self.cfg.hit_latency));
                out.to_l1.push((core, LlcToL1::NtAck { id }, self.cfg.hit_latency));
            }
            After::Clwb { id, core } => {
                let dirty_data = match self.array.peek_mut(line) {
                    Some(l) => {
                        l.owner = None;
                        if l.dirty {
                            l.dirty = false;
                            Some(l.data)
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                match dirty_data {
                    Some(d) => self.send_acked_write(line, d, id, core, out),
                    None => out.to_l1.push((core, LlcToL1::ClwbAck { id }, self.cfg.hit_latency)),
                }
            }
        }
    }

    /// Handle a packet arriving from the memory interconnect.
    pub fn handle_pkt(&mut self, now: Cycle, pkt: Packet, out: &mut LlcOut) {
        match pkt.cmd {
            MemCmd::ReadResp => self.on_fill(now, pkt, out),
            MemCmd::MclazyAck => {
                if let Some((core, id)) = self.pending_lazy.remove(&pkt.id) {
                    out.to_l1.push((core, LlcToL1::MclazyAck { id }, 0));
                }
            }
            MemCmd::WriteAck => {
                if let Some((core, id)) = self.pending_write_acks.remove(&pkt.id) {
                    out.to_l1.push((core, LlcToL1::ClwbAck { id }, 0));
                }
            }
            other => unreachable!("unexpected packet at LLC: {other:?}"),
        }
    }

    fn on_fill(&mut self, now: Cycle, pkt: Packet, out: &mut LlcOut) {
        let line = pkt.addr;
        let data = pkt.data.expect("fill carries data");
        let Some(m) = self.mshrs.get(&line.0) else {
            return; // line was invalidated (MCLAZY snoop) while in flight
        };
        let Txn::Mem { excl, core, prefetch } = m.txn else {
            return; // ditto: txn type changed under an invalidation race
        };
        if !self.array.has_room(line) && !self.make_room(line, out) {
            // No victim available right now (all owned/busy): retry the
            // fill next cycle by re-queueing it through the retry path.
            let m = self.mshrs.remove(&line.0).expect("present");
            self.retry.extend(m.queue);
            self.retry.push_back(if excl {
                L1ToLlc::GetM { line, core }
            } else {
                L1ToLlc::GetS { line, core, prefetch }
            });
            return;
        }
        let m = self.mshrs.remove(&line.0).expect("present");
        // `core == usize::MAX` marks the LLC's own prefetches (no L1 is
        // waiting). An L1-initiated prefetch (`prefetch` set, real core)
        // must still be granted — the L1 holds an MSHR for it.
        let demand = core != usize::MAX;
        let lline = LlcLine {
            data,
            dirty: false,
            owner: if excl && demand { Some(core) } else { None },
            sharers: if !excl && demand { 1 << core } else { 0 },
            prefetched: prefetch,
        };
        self.array.insert(line, lline);
        if demand {
            // The LLC lookup latency was charged when the fill request was
            // sent toward memory; the response forwards without re-paying.
            out.to_l1.push((
                core,
                LlcToL1::Data { line, data, excl, level: ServiceLevel::Mem },
                0,
            ));
        }
        let _ = now;
        self.retry.extend(m.queue);
    }

    /// MCLAZY snoop support (called by the system): write back the line if
    /// dirty at this level and mark clean, returning a write packet target.
    pub fn snoop_writeback(&mut self, line: PhysAddr, out: &mut LlcOut) {
        if let Some(l) = self.array.peek_mut(line) {
            if l.dirty {
                l.dirty = false;
                let d = l.data;
                out.to_bus.push((Packet::write(line, d, self.mc_of(line)), 0));
            }
        }
    }

    /// MCLAZY snoop support: merge an L1's dirty data and write it back to
    /// memory (the L1 keeps a clean copy; ownership collapses to shared).
    pub fn snoop_merge_writeback(&mut self, line: PhysAddr, data: LineData, out: &mut LlcOut) {
        if let Some(l) = self.array.peek_mut(line) {
            l.data = data;
            l.dirty = false;
            if let Some(o) = l.owner.take() {
                l.sharers |= 1 << o;
            }
        }
        out.to_bus.push((Packet::write(line, data, self.mc_of(line)), 0));
    }

    /// MCLAZY snoop support: drop a destination line entirely.
    pub fn snoop_invalidate(&mut self, line: PhysAddr) {
        if self.array.remove(line).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Test/debug helper: peek at a resident line.
    pub fn peek_line(&self, line: PhysAddr) -> Option<&LineData> {
        self.array.peek(line).map(|l| &l.data)
    }
}

fn line_of(msg: &L1ToLlc) -> PhysAddr {
    match msg {
        L1ToLlc::GetS { line, .. }
        | L1ToLlc::GetM { line, .. }
        | L1ToLlc::PutM { line, .. }
        | L1ToLlc::Clwb { line, .. }
        | L1ToLlc::NtWrite { line, .. }
        | L1ToLlc::RecallAck { line, .. }
        | L1ToLlc::InvalAck { line, .. } => *line,
        L1ToLlc::Mclazy { desc, .. } => desc.dst,
        L1ToLlc::Mcfree { addr, .. } => *addr,
        L1ToLlc::WbRange { addr, .. } => *addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn mk() -> Llc {
        Llc::new(SystemConfig::tiny().llc, 2)
    }

    fn gets(line: u64, core: usize) -> L1ToLlc {
        L1ToLlc::GetS { line: PhysAddr(line), core, prefetch: false }
    }

    fn fill(llc: &mut Llc, line: u64, data: LineData, out: &mut LlcOut) {
        // Find the ReadReq we sent and answer it.
        let req = out
            .to_bus
            .iter()
            .find(|(p, _)| p.cmd == MemCmd::ReadReq && p.addr == PhysAddr(line))
            .map(|(p, _)| p.clone())
            .expect("read request issued");
        llc.handle_pkt(1, req.make_read_resp(data), out);
    }

    #[test]
    fn miss_fetches_from_memory_then_grants() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        assert!(llc.handle_l1(0, gets(0x100, 0), &mut out));
        assert_eq!(llc.stats.misses, 1);
        fill(&mut llc, 0x100, LineData::splat(4), &mut out);
        let grant = out
            .to_l1
            .iter()
            .find(|(c, m, _)| *c == 0 && matches!(m, LlcToL1::Data { .. }))
            .expect("granted");
        match &grant.1 {
            LlcToL1::Data { data, excl, level, .. } => {
                assert_eq!(*data, LineData::splat(4));
                assert!(!excl);
                assert_eq!(*level, ServiceLevel::Mem);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn second_reader_hits() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(0, gets(0x100, 0), &mut out);
        fill(&mut llc, 0x100, LineData::splat(4), &mut out);
        let mut out = LlcOut::default();
        llc.handle_l1(2, gets(0x100, 1), &mut out);
        assert_eq!(llc.stats.hits, 1);
        assert!(out.to_bus.is_empty());
    }

    #[test]
    fn getm_invalidates_sharers_before_grant() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(0, gets(0x100, 0), &mut out);
        fill(&mut llc, 0x100, LineData::ZERO, &mut out);
        llc.handle_l1(2, gets(0x100, 1), &mut out);

        let mut out = LlcOut::default();
        llc.handle_l1(3, L1ToLlc::GetM { line: PhysAddr(0x100), core: 2 }, &mut out);
        // Invals to cores 0 and 1, no grant yet.
        let invals: Vec<_> = out
            .to_l1
            .iter()
            .filter(|(_, m, _)| matches!(m, LlcToL1::Inval { .. }))
            .map(|(c, _, _)| *c)
            .collect();
        assert_eq!(invals, vec![0, 1]);
        assert!(!out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::Data { .. })));

        // Acks arrive; grant fires on the last one.
        let mut out = LlcOut::default();
        llc.handle_l1(4, L1ToLlc::InvalAck { line: PhysAddr(0x100), core: 0 }, &mut out);
        assert!(out.to_l1.is_empty());
        llc.handle_l1(5, L1ToLlc::InvalAck { line: PhysAddr(0x100), core: 1 }, &mut out);
        match &out.to_l1[0].1 {
            LlcToL1::Data { excl: true, .. } => {}
            other => panic!("expected M grant, got {other:?}"),
        }
    }

    #[test]
    fn gets_to_owned_line_recalls_owner() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(0, L1ToLlc::GetM { line: PhysAddr(0x100), core: 0 }, &mut out);
        fill(&mut llc, 0x100, LineData::ZERO, &mut out);

        let mut out = LlcOut::default();
        llc.handle_l1(2, gets(0x100, 1), &mut out);
        assert!(matches!(&out.to_l1[0], (0, LlcToL1::Recall { inval: false, .. }, _)));

        // Owner returns dirty data; requester gets it.
        let mut out = LlcOut::default();
        llc.handle_l1(
            3,
            L1ToLlc::RecallAck { line: PhysAddr(0x100), data: Some(LineData::splat(9)), core: 0 },
            &mut out,
        );
        match &out.to_l1[0] {
            (1, LlcToL1::Data { data, excl: false, .. }, _) => {
                assert_eq!(*data, LineData::splat(9))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn requests_to_busy_line_are_queued() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(0, gets(0x100, 0), &mut out);
        // Second request while fill outstanding: must not issue a second read.
        llc.handle_l1(1, gets(0x100, 1), &mut out);
        let reads = out.to_bus.iter().filter(|(p, _)| p.cmd == MemCmd::ReadReq).count();
        assert_eq!(reads, 1);
        fill(&mut llc, 0x100, LineData::splat(2), &mut out);
        // Queued request replays via retry queue.
        let mut out = LlcOut::default();
        llc.begin_cycle(2, &mut out);
        assert!(out
            .to_l1
            .iter()
            .any(|(c, m, _)| *c == 1 && matches!(m, LlcToL1::Data { .. })));
    }

    #[test]
    fn clwb_with_data_writes_through() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(0, L1ToLlc::GetM { line: PhysAddr(0x80), core: 0 }, &mut out);
        fill(&mut llc, 0x80, LineData::ZERO, &mut out);
        let mut out = LlcOut::default();
        llc.handle_l1(
            2,
            L1ToLlc::Clwb { line: PhysAddr(0x80), data: Some(LineData::splat(6)), id: 11, core: 0 },
            &mut out,
        );
        let (wr, _) = out
            .to_bus
            .iter()
            .find(|(p, _)| p.cmd == MemCmd::WriteReq && p.data == Some(LineData::splat(6)))
            .expect("write-through issued");
        assert!(wr.needs_ack, "CLWB writes request a controller ack");
        // The ClwbAck only fires once the controller accepts the write.
        assert!(!out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::ClwbAck { .. })));
        let ack = wr.make_write_ack();
        let mut out = LlcOut::default();
        llc.handle_pkt(3, ack, &mut out);
        assert!(out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::ClwbAck { id: 11 })));
    }

    #[test]
    fn nt_write_goes_straight_to_memory() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(
            0,
            L1ToLlc::NtWrite { line: PhysAddr(0xc0), data: LineData::splat(3), id: 4, core: 0 },
            &mut out,
        );
        assert!(out.to_bus.iter().any(|(p, _)| p.cmd == MemCmd::WriteReq));
        assert!(out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::NtAck { id: 4 })));
        assert!(llc.peek_line(PhysAddr(0xc0)).is_none(), "NT writes do not allocate");
    }

    #[test]
    fn mclazy_forwards_and_acks() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        let desc = crate::packet::LazyDesc { dst: PhysAddr(0x1000), src: PhysAddr(0x2000), size: 64 };
        llc.handle_l1(0, L1ToLlc::Mclazy { desc, id: 77, core: 0 }, &mut out);
        let (pkt, _) = out
            .to_bus
            .iter()
            .find(|(p, _)| matches!(p.cmd, MemCmd::Mclazy(_)))
            .expect("forwarded");
        let ack = Packet {
            id: pkt.id,
            cmd: MemCmd::MclazyAck,
            addr: pkt.addr,
            data: None,
            dest: Node::Llc,
            is_prefetch: false,
            core: Some(0),
            needs_ack: false,
            poisoned: false,
        };
        let mut out = LlcOut::default();
        llc.handle_pkt(3, ack, &mut out);
        assert!(out.to_l1.iter().any(|(c, m, _)| *c == 0 && matches!(m, LlcToL1::MclazyAck { id: 77 })));
        assert!(!llc.busy());
    }

    #[test]
    fn wb_range_writes_all_dirty_and_acks_after_last() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        // Two LLC-dirty lines via PutM.
        for a in [0u64, 0x40] {
            llc.handle_l1(0, gets(a, 0), &mut out);
            fill(&mut llc, a, LineData::ZERO, &mut out);
            llc.handle_l1(1, L1ToLlc::PutM { line: PhysAddr(a), data: LineData::splat(9), core: 0 }, &mut out);
        }
        let mut out = LlcOut::default();
        llc.handle_l1(
            2,
            L1ToLlc::WbRange { addr: PhysAddr(0), size: 128, dirty: vec![], id: 5, core: 0 },
            &mut out,
        );
        let writes: Vec<_> =
            out.to_bus.iter().filter(|(p, _)| p.cmd == MemCmd::WriteReq).collect();
        assert_eq!(writes.len(), 2);
        // Exactly one write requests the ack; ClwbAck fires on its WriteAck.
        let acked: Vec<_> = writes.iter().filter(|(p, _)| p.needs_ack).collect();
        assert_eq!(acked.len(), 1);
        assert!(!out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::ClwbAck { .. })));
        let ack = acked[0].0.make_write_ack();
        let mut out = LlcOut::default();
        llc.handle_pkt(3, ack, &mut out);
        assert!(out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::ClwbAck { id: 5 })));
    }

    #[test]
    fn wb_range_with_nothing_dirty_acks_immediately() {
        let mut llc = mk();
        let mut out = LlcOut::default();
        llc.handle_l1(
            0,
            L1ToLlc::WbRange { addr: PhysAddr(0x1000), size: 256, dirty: vec![], id: 6, core: 0 },
            &mut out,
        );
        assert!(out.to_bus.is_empty());
        assert!(out.to_l1.iter().any(|(_, m, _)| matches!(m, LlcToL1::ClwbAck { id: 6 })));
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        let mut llc = mk(); // tiny llc: 4096B, 4-way, 16 sets
        // Make line 0 dirty via PutM, then stream 4 more lines into set 0.
        let mut out = LlcOut::default();
        llc.handle_l1(0, gets(0, 0), &mut out);
        fill(&mut llc, 0, LineData::ZERO, &mut out);
        llc.handle_l1(1, L1ToLlc::PutM { line: PhysAddr(0), data: LineData::splat(8), core: 0 }, &mut out);
        // Set stride = 16 sets * 64B = 1024B.
        for k in 1..=4u64 {
            let addr = k * 1024;
            let mut out2 = LlcOut::default();
            llc.handle_l1(2, gets(addr, 0), &mut out2);
            fill(&mut llc, addr, LineData::ZERO, &mut out2);
            out.to_bus.extend(out2.to_bus);
        }
        assert!(
            out.to_bus
                .iter()
                .any(|(p, _)| p.cmd == MemCmd::WriteReq && p.data == Some(LineData::splat(8))),
            "dirty victim written back"
        );
    }
}
