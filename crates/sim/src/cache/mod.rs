//! Cache hierarchy: private L1s and a shared, inclusive LLC with an MSI
//! directory, plus the message vocabulary between levels.
//!
//! The protocol is deliberately compact (MSI, blocking per-line
//! transactions at the LLC) but captures everything the paper's evaluation
//! exercises: read-for-ownership on store misses (the effect Fig. 17
//! hinges on), writebacks, CLWB, non-temporal stores, invalidation of
//! destination buffers on MCLAZY (reduced cache pollution, §III-F), and
//! stride prefetching (which hides bounce latency in Fig. 12).

pub mod array;
pub mod l1;
pub mod llc;
pub mod prefetch;

use crate::addr::PhysAddr;
use crate::data::LineData;
use crate::packet::LazyDesc;
use crate::uop::UopId;

/// Which level ultimately serviced a load (for the Fig. 3 accounting).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ServiceLevel {
    /// L1 hit.
    L1,
    /// Served by the LLC.
    Llc,
    /// Went to memory (or was reconstructed by the copy engine).
    Mem,
}

/// Requests from a core to its L1.
#[derive(Clone, Debug)]
pub enum CoreToL1 {
    /// Load `size` bytes at `addr` (within one line).
    Load { id: UopId, addr: PhysAddr, size: u8 },
    /// Store `data` at `addr`.
    Store { id: UopId, addr: PhysAddr, data: Vec<u8>, nontemporal: bool },
    /// Write back the line containing `addr` if dirty, keep it cached clean.
    Clwb { id: UopId, addr: PhysAddr },
    /// Write back every dirty line in the range (§V-A1's wide writeback).
    WbRange { id: UopId, addr: PhysAddr, size: u64 },
    /// Forward an MCLAZY operation toward the memory controllers.
    Mclazy { id: UopId, desc: LazyDesc },
    /// Forward an MCFREE hint.
    Mcfree { addr: PhysAddr, size: u64 },
}

/// Responses from an L1 to its core.
#[derive(Clone, Debug)]
pub enum L1ToCore {
    /// Load result.
    LoadDone { id: UopId, data: Vec<u8>, level: ServiceLevel },
    /// Store globally performed (line owned and written).
    StoreDone { id: UopId },
    /// CLWB writeback accepted downstream.
    ClwbDone { id: UopId },
    /// MCLAZY accepted by the memory controller (CTT insertion done).
    MclazyDone { id: UopId },
    /// Non-temporal store accepted downstream.
    NtDone { id: UopId },
}

/// Requests from an L1 to the LLC.
#[derive(Clone, Debug)]
pub enum L1ToLlc {
    /// Read for sharing.
    GetS { line: PhysAddr, core: usize, prefetch: bool },
    /// Read for ownership (store intent).
    GetM { line: PhysAddr, core: usize },
    /// Dirty writeback on L1 eviction.
    PutM { line: PhysAddr, data: LineData, core: usize },
    /// CLWB: data present if the L1 copy was dirty.
    Clwb { line: PhysAddr, data: Option<LineData>, id: UopId, core: usize },
    /// Wide writeback: the L1's dirty lines within the range ride along.
    WbRange { addr: PhysAddr, size: u64, dirty: Vec<(PhysAddr, LineData)>, id: UopId, core: usize },
    /// Non-temporal full-line store.
    NtWrite { line: PhysAddr, data: LineData, id: UopId, core: usize },
    /// MCLAZY en route to the memory controllers.
    Mclazy { desc: LazyDesc, id: UopId, core: usize },
    /// MCFREE en route to the memory controllers.
    Mcfree { addr: PhysAddr, size: u64 },
    /// Response to a `Recall`: data if the line was dirty.
    RecallAck { line: PhysAddr, data: Option<LineData>, core: usize },
    /// Response to an `Inval`.
    InvalAck { line: PhysAddr, core: usize },
}

/// Messages from the LLC to an L1.
#[derive(Clone, Debug)]
pub enum LlcToL1 {
    /// Data grant: `excl` distinguishes GetM (M) from GetS (S) responses.
    Data { line: PhysAddr, data: LineData, excl: bool, level: ServiceLevel },
    /// Drop the line (ack with data if dirty).
    Inval { line: PhysAddr },
    /// Downgrade to shared, returning data if dirty (`inval == false`), or
    /// drop entirely (`inval == true`). Always acked.
    Recall { line: PhysAddr, inval: bool },
    /// CLWB completion.
    ClwbAck { id: UopId },
    /// NT store completion.
    NtAck { id: UopId },
    /// MCLAZY completion (CTT insertion acknowledged).
    MclazyAck { id: UopId },
}
