//! Private L1 data cache controller.
//!
//! Writeback, write-allocate, MSI states (I implicit, S, M), per-line MSHRs
//! with request merging, and a stride prefetcher. Stores require ownership
//! (read-for-ownership on miss); non-temporal stores bypass the cache
//! entirely.

use super::array::CacheArray;
use super::prefetch::StridePrefetcher;
use super::{CoreToL1, L1ToCore, L1ToLlc, LlcToL1, ServiceLevel};
use crate::addr::PhysAddr;
use crate::config::CacheConfig;
use crate::data::LineData;
use crate::stats::CacheStats;
use crate::uop::UopId;
use crate::Cycle;
use std::collections::HashMap;

/// L1 line state.
#[derive(Debug, Clone)]
struct L1Line {
    data: LineData,
    /// Shared (false) or Modified (true). Invalid = absent.
    modified: bool,
    /// Dirty with respect to the LLC (only meaningful while `modified`).
    dirty: bool,
    /// Installed by a prefetch and not yet demanded (for stats).
    prefetched: bool,
}

/// A pending operation queued on an MSHR, in arrival order.
#[derive(Debug, Clone)]
enum PendingOp {
    Load { id: UopId, off: usize, len: usize },
    Store { id: UopId, off: usize, bytes: Vec<u8> },
}

#[derive(Debug)]
struct Mshr {
    /// Ownership requested (GetM in flight or required).
    want_m: bool,
    /// GetS already in flight; issue GetM after it returns.
    upgrade_after: bool,
    ops: Vec<PendingOp>,
    prefetch_only: bool,
}

/// Outputs produced by L1 handlers in one call.
#[derive(Debug, Default)]
pub struct L1Out {
    /// Responses to the core, with extra delay beyond the core↔L1 latency.
    pub to_core: Vec<(L1ToCore, Cycle)>,
    /// Messages to the LLC.
    pub to_llc: Vec<L1ToLlc>,
}

/// One private L1 cache.
#[derive(Debug)]
pub struct L1 {
    /// Owning core index.
    pub id: usize,
    cfg: CacheConfig,
    array: CacheArray<L1Line>,
    mshrs: HashMap<u64, Mshr>,
    pf: StridePrefetcher,
    /// Cycle each in-flight miss was allocated, for miss-lifecycle spans.
    /// Purely observational; see DESIGN.md, "Observability layer".
    #[cfg(feature = "trace")]
    miss_start: HashMap<u64, Cycle>,
    /// Statistics.
    pub stats: CacheStats,
}

impl L1 {
    /// Create the L1 for core `id`.
    pub fn new(id: usize, cfg: CacheConfig) -> L1 {
        let sets = cfg.sets();
        let pf = StridePrefetcher::new(cfg.prefetch, cfg.prefetch_degree);
        L1 {
            id,
            cfg: cfg.clone(),
            array: CacheArray::new(sets, cfg.ways),
            mshrs: HashMap::new(),
            pf,
            #[cfg(feature = "trace")]
            miss_start: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> Cycle {
        self.cfg.hit_latency
    }

    /// Whether the cache has in-flight transactions.
    pub fn busy(&self) -> bool {
        !self.mshrs.is_empty()
    }

    /// In-flight miss count (diagnostics).
    pub fn mshr_count(&self) -> usize {
        self.mshrs.len()
    }

    /// Resident lines as `(line address, modified, dirty)`, for the
    /// runtime invariant checker.
    #[cfg(feature = "check-invariants")]
    pub fn check_lines(&self) -> Vec<(PhysAddr, bool, bool)> {
        self.array.iter().map(|(a, l)| (a, l.modified, l.dirty)).collect()
    }

    /// Whether `line` has an MSHR allocated (a transaction in flight),
    /// for the runtime invariant checker.
    #[cfg(feature = "check-invariants")]
    pub fn check_has_mshr(&self, line: PhysAddr) -> bool {
        self.mshrs.contains_key(&line.0)
    }

    /// Handle a core request. Returns `false` (without consuming) if the
    /// request cannot be accepted this cycle (MSHRs full); the caller
    /// retries later.
    pub fn handle_core(&mut self, now: Cycle, msg: &CoreToL1, out: &mut L1Out) -> bool {
        let _ = now; // stamp for the trace hooks below
        match msg {
            CoreToL1::Load { id, addr, size } => self.load(now, *id, *addr, *size as usize, out),
            CoreToL1::Store { id, addr, data, nontemporal } => {
                if *nontemporal {
                    self.nt_store(*id, *addr, data, out)
                } else {
                    self.store(now, *id, *addr, data.clone(), out)
                }
            }
            CoreToL1::Clwb { id, addr } => {
                self.clwb(*id, *addr, out);
                true
            }
            CoreToL1::WbRange { id, addr, size } => {
                self.wb_range(*id, *addr, *size, out);
                true
            }
            CoreToL1::Mclazy { id, desc } => {
                // The snoop (writeback of dirty source lines, invalidation
                // of destination lines across all caches) is performed by
                // the system before this message is forwarded; see
                // `System::snoop_mclazy`. The L1 only routes it onward.
                out.to_llc.push(L1ToLlc::Mclazy { desc: *desc, id: *id, core: self.id });
                true
            }
            CoreToL1::Mcfree { addr, size } => {
                out.to_llc.push(L1ToLlc::Mcfree { addr: *addr, size: *size });
                true
            }
        }
    }

    fn load(&mut self, now: Cycle, id: UopId, addr: PhysAddr, size: usize, out: &mut L1Out) -> bool {
        let _ = now;
        let line = addr.line_base();
        let off = addr.line_off() as usize;
        if let Some(l) = self.array.get_mut(line) {
            // A pending store to this line (GetM in flight) does not block
            // unrelated loads; program-order conflicts are filtered by the
            // core's store buffer before the load is ever sent here.
            self.stats.hits += 1;
            if l.prefetched {
                l.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            let data = l.data.read(off, size).to_vec();
            out.to_core.push((
                L1ToCore::LoadDone { id, data, level: ServiceLevel::L1 },
                self.cfg.hit_latency,
            ));
            return true;
        }
        // Miss: join or allocate an MSHR.
        if let Some(m) = self.mshrs.get_mut(&line.0) {
            m.ops.push(PendingOp::Load { id, off, len: size });
            m.prefetch_only = false;
            self.stats.misses += 1;
            return true;
        }
        if self.mshrs.len() >= self.cfg.mshrs {
            return false;
        }
        self.stats.misses += 1;
        #[cfg(feature = "trace")]
        self.miss_start.insert(line.0, now);
        self.mshrs.insert(
            line.0,
            Mshr {
                want_m: false,
                upgrade_after: false,
                ops: vec![PendingOp::Load { id, off, len: size }],
                prefetch_only: false,
            },
        );
        out.to_llc.push(L1ToLlc::GetS { line, core: self.id, prefetch: false });
        self.issue_prefetches(now, line, out);
        true
    }

    fn issue_prefetches(&mut self, now: Cycle, line: PhysAddr, out: &mut L1Out) {
        let _ = now;
        for p in self.pf.observe(line) {
            if self.array.peek(p).is_some() || self.mshrs.contains_key(&p.0) {
                continue;
            }
            if self.mshrs.len() >= self.cfg.mshrs {
                break;
            }
            #[cfg(feature = "trace")]
            self.miss_start.insert(p.0, now);
            self.mshrs.insert(
                p.0,
                Mshr { want_m: false, upgrade_after: false, ops: Vec::new(), prefetch_only: true },
            );
            self.stats.prefetches_issued += 1;
            out.to_llc.push(L1ToLlc::GetS { line: p, core: self.id, prefetch: true });
        }
    }

    fn store(&mut self, now: Cycle, id: UopId, addr: PhysAddr, bytes: Vec<u8>, out: &mut L1Out) -> bool {
        let _ = now;
        let line = addr.line_base();
        let off = addr.line_off() as usize;
        if let Some(l) = self.array.get_mut(line) {
            if l.modified {
                self.stats.hits += 1;
                l.data.write(off, &bytes);
                l.dirty = true;
                l.prefetched = false;
                out.to_core.push((L1ToCore::StoreDone { id }, self.cfg.hit_latency));
                return true;
            }
        }
        // Need ownership (upgrade or full RFO miss).
        if let Some(m) = self.mshrs.get_mut(&line.0) {
            if !m.want_m {
                // GetS in flight; upgrade once it lands.
                m.upgrade_after = true;
            }
            m.ops.push(PendingOp::Store { id, off, bytes });
            m.prefetch_only = false;
            self.stats.misses += 1;
            return true;
        }
        if self.mshrs.len() >= self.cfg.mshrs {
            return false;
        }
        self.stats.misses += 1;
        #[cfg(feature = "trace")]
        self.miss_start.insert(line.0, now);
        self.mshrs.insert(
            line.0,
            Mshr {
                want_m: true,
                upgrade_after: false,
                ops: vec![PendingOp::Store { id, off, bytes }],
                prefetch_only: false,
            },
        );
        out.to_llc.push(L1ToLlc::GetM { line, core: self.id });
        true
    }

    fn nt_store(&mut self, id: UopId, addr: PhysAddr, bytes: &[u8], out: &mut L1Out) -> bool {
        let line = addr.line_base();
        assert_eq!(addr.line_off(), 0, "NT stores must be line aligned");
        assert_eq!(bytes.len() as u64, crate::addr::CACHELINE, "NT stores are full-line");
        // Drop any local copy; the line's new value bypasses the caches.
        if self.array.remove(line).is_some() {
            self.stats.invalidations += 1;
        }
        let mut data = LineData::ZERO;
        data.write(0, bytes);
        out.to_llc.push(L1ToLlc::NtWrite { line, data, id, core: self.id });
        true
    }

    fn wb_range(&mut self, id: UopId, addr: PhysAddr, size: u64, out: &mut L1Out) {
        // Collect and clean all dirty lines in the range in one pass (the
        // §V-A1 wide-writeback instruction); the LLC adds its own and
        // forwards everything to memory.
        let mut dirty = Vec::new();
        for line in crate::addr::lines_of(addr, size) {
            if let Some(l) = self.array.peek_mut(line) {
                if l.modified && l.dirty {
                    l.dirty = false;
                    dirty.push((line, l.data));
                }
            }
        }
        out.to_llc.push(L1ToLlc::WbRange { addr, size, dirty, id, core: self.id });
    }

    fn clwb(&mut self, id: UopId, addr: PhysAddr, out: &mut L1Out) {
        let line = addr.line_base();
        let data = match self.array.peek_mut(line) {
            Some(l) if l.modified && l.dirty => {
                l.dirty = false;
                Some(l.data)
            }
            _ => None,
        };
        out.to_llc.push(L1ToLlc::Clwb { line, data, id, core: self.id });
    }

    /// Handle a message from the LLC.
    pub fn handle_llc(&mut self, now: Cycle, msg: LlcToL1, out: &mut L1Out) {
        let _ = now; // stamp for the trace hooks below
        match msg {
            LlcToL1::Data { line, data, excl, level } => {
                self.fill(now, line, data, excl, level, out)
            }
            LlcToL1::Inval { line } => {
                let data = match self.array.remove(line) {
                    Some(l) if l.modified && l.dirty => Some(l.data),
                    _ => None,
                };
                self.stats.invalidations += 1;
                out.to_llc.push(L1ToLlc::RecallAck { line, data, core: self.id });
            }
            LlcToL1::Recall { line, inval } => {
                let data = if inval {
                    match self.array.remove(line) {
                        Some(l) if l.modified && l.dirty => Some(l.data),
                        _ => None,
                    }
                } else {
                    match self.array.peek_mut(line) {
                        Some(l) if l.modified => {
                            let d = if l.dirty { Some(l.data) } else { None };
                            l.modified = false;
                            l.dirty = false;
                            d
                        }
                        _ => None,
                    }
                };
                out.to_llc.push(L1ToLlc::RecallAck { line, data, core: self.id });
            }
            LlcToL1::ClwbAck { id } => out.to_core.push((L1ToCore::ClwbDone { id }, 0)),
            LlcToL1::NtAck { id } => out.to_core.push((L1ToCore::NtDone { id }, 0)),
            LlcToL1::MclazyAck { id } => out.to_core.push((L1ToCore::MclazyDone { id }, 0)),
        }
    }

    fn fill(
        &mut self,
        now: Cycle,
        line: PhysAddr,
        data: LineData,
        excl: bool,
        level: ServiceLevel,
        out: &mut L1Out,
    ) {
        let _ = now;
        let Some(mut m) = self.mshrs.remove(&line.0) else {
            // Response to a transaction we no longer track (e.g. the line
            // was invalidated by an MCLAZY snoop while the fill was in
            // flight). Drop it: re-reading will miss and refetch.
            #[cfg(feature = "trace")]
            self.miss_start.remove(&line.0);
            return;
        };
        if m.upgrade_after && !excl {
            // We asked for S but a store arrived meanwhile: take the data
            // for the loads, then upgrade.
            let mut mdata = data;
            m.ops.retain(|op| match op {
                PendingOp::Load { id, off, len } => {
                    out.to_core.push((
                        L1ToCore::LoadDone {
                            id: *id,
                            data: mdata.read(*off, *len).to_vec(),
                            level,
                        },
                        self.cfg.hit_latency,
                    ));
                    false
                }
                PendingOp::Store { .. } => true,
            });
            let _ = &mut mdata;
            m.want_m = true;
            m.upgrade_after = false;
            self.mshrs.insert(line.0, m);
            out.to_llc.push(L1ToLlc::GetM { line, core: self.id });
            return;
        }

        // The transaction completes below: emit its miss-lifecycle span.
        #[cfg(feature = "trace")]
        if let Some(start) = self.miss_start.remove(&line.0) {
            mcs_trace::emit(mcs_trace::Event::L1Miss {
                l1: self.id as u16,
                line: line.0,
                start,
                end: now,
            });
        }

        // Install the line (evicting if needed). An ownership upgrade
        // (store to a line held in S) finds the line already resident:
        // update it in place with the authoritative data.
        if let Some(existing) = self.array.peek_mut(line) {
            existing.data = data;
            existing.modified = excl;
            let mut l = std::mem::replace(
                existing,
                L1Line { data, modified: excl, dirty: false, prefetched: false },
            );
            for op in &m.ops {
                match op {
                    PendingOp::Load { id, off, len } => {
                        out.to_core.push((
                            L1ToCore::LoadDone {
                                id: *id,
                                data: l.data.read(*off, *len).to_vec(),
                                level,
                            },
                            self.cfg.hit_latency,
                        ));
                    }
                    PendingOp::Store { id, off, bytes } => {
                        debug_assert!(excl, "store served without ownership");
                        l.data.write(*off, bytes);
                        l.dirty = true;
                        out.to_core.push((L1ToCore::StoreDone { id: *id }, self.cfg.hit_latency));
                    }
                }
            }
            *self.array.peek_mut(line).expect("still resident") = l;
            return;
        }
        self.make_room(line, out);
        let mut l = L1Line { data, modified: excl, dirty: false, prefetched: m.prefetch_only };
        // Apply queued ops in order.
        for op in &m.ops {
            match op {
                PendingOp::Load { id, off, len } => {
                    out.to_core.push((
                        L1ToCore::LoadDone {
                            id: *id,
                            data: l.data.read(*off, *len).to_vec(),
                            level,
                        },
                        self.cfg.hit_latency,
                    ));
                }
                PendingOp::Store { id, off, bytes } => {
                    debug_assert!(excl, "store served without ownership");
                    l.data.write(*off, bytes);
                    l.dirty = true;
                    l.prefetched = false;
                    out.to_core.push((L1ToCore::StoreDone { id: *id }, self.cfg.hit_latency));
                }
            }
        }
        self.array.insert(line, l);
    }

    fn make_room(&mut self, line: PhysAddr, out: &mut L1Out) {
        if self.array.has_room(line) {
            return;
        }
        let victim = self
            .array
            .victim(line, |_, _| false)
            .expect("full set has a victim");
        let v = self.array.remove(victim).expect("victim present");
        self.stats.evictions += 1;
        if v.modified && v.dirty {
            self.stats.writebacks += 1;
            out.to_llc.push(L1ToLlc::PutM { line: victim, data: v.data, core: self.id });
        }
        // Clean lines are dropped silently (the directory tolerates stale
        // sharer bits).
    }

    /// Snoop support for MCLAZY (called by the system): write back the
    /// line if dirty (returning the data) and mark it clean, keeping it
    /// cached.
    pub fn snoop_writeback(&mut self, line: PhysAddr) -> Option<LineData> {
        match self.array.peek_mut(line) {
            Some(l) if l.modified && l.dirty => {
                l.dirty = false;
                Some(l.data)
            }
            _ => None,
        }
    }

    /// Snoop support for MCLAZY (called by the system): drop the line
    /// (destination lines are about to be redefined by the lazy copy).
    pub fn snoop_invalidate(&mut self, line: PhysAddr) {
        if self.array.remove(line).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Test/debug helper: peek at a cached line's data.
    pub fn peek_line(&self, line: PhysAddr) -> Option<&LineData> {
        self.array.peek(line).map(|l| &l.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn mk() -> L1 {
        L1::new(0, SystemConfig::tiny().l1)
    }

    fn load(id: UopId, addr: u64, size: u8) -> CoreToL1 {
        CoreToL1::Load { id, addr: PhysAddr(addr), size }
    }

    #[test]
    fn miss_then_fill_serves_load() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        assert!(l1.handle_core(0, &load(1, 0x100, 8), &mut out));
        assert!(matches!(out.to_llc[0], L1ToLlc::GetS { .. }));
        assert!(out.to_core.is_empty());

        let mut out = L1Out::default();
        l1.handle_llc(
            10,
            LlcToL1::Data {
                line: PhysAddr(0x100),
                data: LineData::splat(5),
                excl: false,
                level: ServiceLevel::Llc,
            },
            &mut out,
        );
        match &out.to_core[0].0 {
            L1ToCore::LoadDone { id, data, .. } => {
                assert_eq!(*id, 1);
                assert_eq!(data, &vec![5u8; 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l1.stats.misses, 1);
    }

    #[test]
    fn hit_after_fill() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        l1.handle_core(0, &load(1, 0x100, 8), &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data {
                line: PhysAddr(0x100),
                data: LineData::splat(5),
                excl: false,
                level: ServiceLevel::Llc,
            },
            &mut out,
        );
        let mut out = L1Out::default();
        l1.handle_core(2, &load(2, 0x108, 4), &mut out);
        assert_eq!(l1.stats.hits, 1);
        assert!(matches!(&out.to_core[0].0, L1ToCore::LoadDone { id: 2, .. }));
    }

    #[test]
    fn store_miss_issues_getm_and_applies_on_fill() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        let st = CoreToL1::Store { id: 3, addr: PhysAddr(0x40), data: vec![9, 9], nontemporal: false };
        assert!(l1.handle_core(0, &st, &mut out));
        assert!(matches!(out.to_llc[0], L1ToLlc::GetM { .. }));

        let mut out = L1Out::default();
        l1.handle_llc(
            5,
            LlcToL1::Data {
                line: PhysAddr(0x40),
                data: LineData::splat(1),
                excl: true,
                level: ServiceLevel::Mem,
            },
            &mut out,
        );
        assert!(matches!(&out.to_core[0].0, L1ToCore::StoreDone { id: 3 }));
        let line = l1.peek_line(PhysAddr(0x40)).unwrap();
        assert_eq!(line.read(0, 3), &[9, 9, 1]);
    }

    #[test]
    fn store_hit_in_m_is_local() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        l1.handle_core(0, &CoreToL1::Store { id: 1, addr: PhysAddr(0x40), data: vec![1], nontemporal: false }, &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x40), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
            &mut out,
        );
        let mut out = L1Out::default();
        l1.handle_core(2, &CoreToL1::Store { id: 2, addr: PhysAddr(0x41), data: vec![2], nontemporal: false }, &mut out);
        assert!(out.to_llc.is_empty(), "M hit needs no LLC traffic");
        assert!(matches!(&out.to_core[0].0, L1ToCore::StoreDone { id: 2 }));
    }

    #[test]
    fn clwb_sends_dirty_data_and_cleans() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        l1.handle_core(0, &CoreToL1::Store { id: 1, addr: PhysAddr(0x40), data: vec![7], nontemporal: false }, &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x40), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
            &mut out,
        );
        let mut out = L1Out::default();
        l1.handle_core(2, &CoreToL1::Clwb { id: 9, addr: PhysAddr(0x47) }, &mut out);
        match &out.to_llc[0] {
            L1ToLlc::Clwb { data: Some(d), id: 9, .. } => assert_eq!(d.read(0, 1), &[7]),
            other => panic!("unexpected {other:?}"),
        }
        // Second CLWB finds it clean.
        let mut out = L1Out::default();
        l1.handle_core(3, &CoreToL1::Clwb { id: 10, addr: PhysAddr(0x40) }, &mut out);
        assert!(matches!(&out.to_llc[0], L1ToLlc::Clwb { data: None, .. }));
    }

    #[test]
    fn nt_store_bypasses_and_invalidates() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        // Prime the line.
        l1.handle_core(0, &load(1, 0x80, 8), &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x80), data: LineData::ZERO, excl: false, level: ServiceLevel::Llc },
            &mut out,
        );
        let mut out = L1Out::default();
        let nt = CoreToL1::Store { id: 5, addr: PhysAddr(0x80), data: vec![3u8; 64], nontemporal: true };
        l1.handle_core(2, &nt, &mut out);
        assert!(l1.peek_line(PhysAddr(0x80)).is_none(), "local copy dropped");
        assert!(matches!(&out.to_llc[0], L1ToLlc::NtWrite { .. }));
    }

    #[test]
    fn eviction_writes_back_dirty() {
        let mut l1 = mk(); // tiny: 1KB, 2-way, 8 sets
        let mut out = L1Out::default();
        // Fill set 0 with two dirty lines, then fill a third.
        for (i, addr) in [0u64, 8 * 64, 16 * 64].iter().enumerate() {
            l1.handle_core(
                0,
                &CoreToL1::Store { id: i as u64, addr: PhysAddr(*addr), data: vec![i as u8], nontemporal: false },
                &mut out,
            );
            l1.handle_llc(
                1,
                LlcToL1::Data { line: PhysAddr(*addr), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
                &mut out,
            );
        }
        assert!(out.to_llc.iter().any(|m| matches!(m, L1ToLlc::PutM { .. })), "dirty eviction writes back");
        assert_eq!(l1.stats.evictions, 1);
    }

    #[test]
    fn recall_downgrade_returns_dirty_data() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        l1.handle_core(0, &CoreToL1::Store { id: 1, addr: PhysAddr(0x40), data: vec![7], nontemporal: false }, &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x40), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
            &mut out,
        );
        let mut out = L1Out::default();
        l1.handle_llc(2, LlcToL1::Recall { line: PhysAddr(0x40), inval: false }, &mut out);
        match &out.to_llc[0] {
            L1ToLlc::RecallAck { data: Some(d), .. } => assert_eq!(d.read(0, 1), &[7]),
            other => panic!("unexpected {other:?}"),
        }
        // Line retained in S: a load still hits.
        let mut out = L1Out::default();
        l1.handle_core(3, &load(4, 0x40, 1), &mut out);
        assert_eq!(l1.stats.hits, 1);
    }

    #[test]
    fn mshr_exhaustion_backpressures() {
        let mut l1 = mk(); // tiny mshrs = 4
        let mut out = L1Out::default();
        for i in 0..4u64 {
            assert!(l1.handle_core(0, &load(i, i * 64, 1), &mut out));
        }
        assert!(!l1.handle_core(0, &load(9, 9 * 64, 1), &mut out), "5th miss must be rejected");
    }

    #[test]
    fn wb_range_collects_only_dirty_lines() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        // Dirty line at 0x40, clean (shared) line at 0x80.
        l1.handle_core(0, &CoreToL1::Store { id: 1, addr: PhysAddr(0x40), data: vec![7], nontemporal: false }, &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x40), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
            &mut out,
        );
        l1.handle_core(2, &load(2, 0x80, 8), &mut out);
        l1.handle_llc(
            3,
            LlcToL1::Data { line: PhysAddr(0x80), data: LineData::splat(5), excl: false, level: ServiceLevel::Llc },
            &mut out,
        );
        let mut out = L1Out::default();
        l1.handle_core(4, &CoreToL1::WbRange { id: 9, addr: PhysAddr(0x40), size: 128 }, &mut out);
        match &out.to_llc[0] {
            L1ToLlc::WbRange { dirty, id: 9, .. } => {
                assert_eq!(dirty.len(), 1, "only the dirty line rides along");
                assert_eq!(dirty[0].0, PhysAddr(0x40));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Line is clean now: a second pass collects nothing.
        let mut out = L1Out::default();
        l1.handle_core(5, &CoreToL1::WbRange { id: 10, addr: PhysAddr(0x40), size: 128 }, &mut out);
        match &out.to_llc[0] {
            L1ToLlc::WbRange { dirty, .. } => assert!(dirty.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snoop_invalidate_and_writeback() {
        let mut l1 = mk();
        let mut out = L1Out::default();
        l1.handle_core(0, &CoreToL1::Store { id: 1, addr: PhysAddr(0x40), data: vec![7], nontemporal: false }, &mut out);
        l1.handle_llc(
            1,
            LlcToL1::Data { line: PhysAddr(0x40), data: LineData::ZERO, excl: true, level: ServiceLevel::Llc },
            &mut out,
        );
        let wb = l1.snoop_writeback(PhysAddr(0x40)).expect("dirty");
        assert_eq!(wb.read(0, 1), &[7]);
        assert!(l1.snoop_writeback(PhysAddr(0x40)).is_none(), "now clean");
        l1.snoop_invalidate(PhysAddr(0x40));
        assert!(l1.peek_line(PhysAddr(0x40)).is_none());
    }
}
