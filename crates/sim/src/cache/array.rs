//! Generic set-associative cache array with LRU replacement.

use crate::addr::PhysAddr;

/// One occupied way.
#[derive(Debug, Clone)]
struct Way<T> {
    line: u64, // line base address
    lru: u64,
    payload: T,
}

/// A set-associative array keyed by cacheline base address, with true-LRU
/// replacement. Payload type `T` carries per-line state (data, dirty bits,
/// directory info).
#[derive(Debug)]
pub struct CacheArray<T> {
    sets: usize,
    ways: usize,
    table: Vec<Vec<Way<T>>>,
    stamp: u64,
}

impl<T> CacheArray<T> {
    /// Create an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> CacheArray<T> {
        assert!(sets.is_power_of_two() && sets > 0 && ways > 0);
        CacheArray { sets, ways, table: (0..sets).map(|_| Vec::new()).collect(), stamp: 0 }
    }

    fn set_of(&self, line: PhysAddr) -> usize {
        (line.line().0 as usize) & (self.sets - 1)
    }

    /// Look up a line, updating LRU state on hit.
    pub fn get_mut(&mut self, line: PhysAddr) -> Option<&mut T> {
        let line = line.line_base();
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(line);
        self.table[set].iter_mut().find(|w| w.line == line.0).map(|w| {
            w.lru = stamp;
            &mut w.payload
        })
    }

    /// Look up a line without touching LRU state.
    pub fn peek(&self, line: PhysAddr) -> Option<&T> {
        let line = line.line_base();
        let set = self.set_of(line);
        self.table[set].iter().find(|w| w.line == line.0).map(|w| &w.payload)
    }

    /// Look up mutably without touching LRU state.
    pub fn peek_mut(&mut self, line: PhysAddr) -> Option<&mut T> {
        let line = line.line_base();
        let set = self.set_of(line);
        self.table[set].iter_mut().find(|w| w.line == line.0).map(|w| &mut w.payload)
    }

    /// Whether the set containing `line` has a free way.
    pub fn has_room(&self, line: PhysAddr) -> bool {
        self.table[self.set_of(line.line_base())].len() < self.ways
    }

    /// Insert `line` (which must not be present). Does **not** evict;
    /// callers pick a victim first via [`Self::victim`] when the set is
    /// full.
    ///
    /// # Panics
    /// Panics if the set is full or the line is already present.
    pub fn insert(&mut self, line: PhysAddr, payload: T) {
        let line = line.line_base();
        let set = self.set_of(line);
        assert!(
            self.table[set].iter().all(|w| w.line != line.0),
            "line {line:?} already present"
        );
        assert!(self.table[set].len() < self.ways, "set full; evict first");
        self.stamp += 1;
        self.table[set].push(Way { line: line.0, lru: self.stamp, payload });
    }

    /// The LRU victim in `line`'s set among ways for which `keep` returns
    /// false, or `None` if every way must be kept.
    pub fn victim(&self, line: PhysAddr, keep: impl Fn(PhysAddr, &T) -> bool) -> Option<PhysAddr> {
        let set = self.set_of(line.line_base());
        self.table[set]
            .iter()
            .filter(|w| !keep(PhysAddr(w.line), &w.payload))
            .min_by_key(|w| w.lru)
            .map(|w| PhysAddr(w.line))
    }

    /// Remove a line, returning its payload.
    pub fn remove(&mut self, line: PhysAddr) -> Option<T> {
        let line = line.line_base();
        let set = self.set_of(line);
        let idx = self.table[set].iter().position(|w| w.line == line.0)?;
        Some(self.table[set].swap_remove(idx).payload)
    }

    /// Iterate over all (line, payload) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PhysAddr, &T)> {
        self.table.iter().flatten().map(|w| (PhysAddr(w.line), &w.payload))
    }

    /// Iterate mutably over all (line, payload) pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PhysAddr, &mut T)> {
        self.table.iter_mut().flatten().map(|w| (PhysAddr(w.line), &mut w.payload))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.table.iter().map(|s| s.len()).sum()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> PhysAddr {
        PhysAddr(i * 64)
    }

    #[test]
    fn insert_and_get() {
        let mut a: CacheArray<u32> = CacheArray::new(4, 2);
        a.insert(line(1), 11);
        assert_eq!(a.get_mut(line(1)), Some(&mut 11));
        assert_eq!(a.peek(line(2)), None);
    }

    #[test]
    fn sets_fill_independently() {
        let mut a: CacheArray<u32> = CacheArray::new(4, 2);
        // lines 0,4,8 map to set 0 (4 sets).
        a.insert(line(0), 0);
        a.insert(line(4), 4);
        assert!(!a.has_room(line(8)));
        assert!(a.has_room(line(1)));
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut a: CacheArray<u32> = CacheArray::new(1, 3);
        a.insert(line(0), 0);
        a.insert(line(1), 1);
        a.insert(line(2), 2);
        // Touch 0 so 1 becomes LRU.
        let _ = a.get_mut(line(0));
        assert_eq!(a.victim(line(3), |_, _| false), Some(line(1)));
    }

    #[test]
    fn victim_respects_keep_filter() {
        let mut a: CacheArray<u32> = CacheArray::new(1, 2);
        a.insert(line(0), 0);
        a.insert(line(1), 1);
        let v = a.victim(line(2), |l, _| l == line(0));
        assert_eq!(v, Some(line(1)));
        let none = a.victim(line(2), |_, _| true);
        assert_eq!(none, None);
    }

    #[test]
    fn remove_returns_payload() {
        let mut a: CacheArray<&str> = CacheArray::new(2, 2);
        a.insert(line(5), "x");
        assert_eq!(a.remove(line(5)), Some("x"));
        assert_eq!(a.remove(line(5)), None);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "set full")]
    fn insert_into_full_set_panics() {
        let mut a: CacheArray<u32> = CacheArray::new(1, 1);
        a.insert(line(0), 0);
        a.insert(line(1), 1);
    }

    #[test]
    fn unaligned_lookup_normalises() {
        let mut a: CacheArray<u32> = CacheArray::new(4, 2);
        a.insert(PhysAddr(64), 7);
        assert_eq!(a.peek(PhysAddr(100)), Some(&7));
    }
}
