//! Stride prefetcher (Table I: both cache levels have one).
//!
//! Tracks a small number of access streams; once a stream shows the same
//! line-granularity stride twice, it issues `degree` prefetches ahead of
//! the stream. This is the mechanism that hides bounce latency for
//! sequential destination reads in Fig. 12: the prefetcher runs ahead of
//! the demand stream, the prefetch reads reach the memory controller early,
//! and the lazy-copy bounce completes before the core asks for the data.

use crate::addr::{PhysAddr, CACHELINE};

#[derive(Debug, Clone)]
struct Stream {
    last_line: i64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// A stride prefetcher over cacheline addresses.
#[derive(Debug)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    capacity: usize,
    degree: usize,
    enabled: bool,
    stamp: u64,
}

impl StridePrefetcher {
    /// Create a prefetcher issuing `degree` lines ahead. `enabled = false`
    /// yields a no-op prefetcher (the Fig. 12 "No prefetch" ablation).
    pub fn new(enabled: bool, degree: usize) -> StridePrefetcher {
        StridePrefetcher { streams: Vec::new(), capacity: 8, degree, enabled, stamp: 0 }
    }

    /// Observe a demand access to `line`; returns lines to prefetch.
    pub fn observe(&mut self, line: PhysAddr) -> Vec<PhysAddr> {
        if !self.enabled || self.degree == 0 {
            return Vec::new();
        }
        self.stamp += 1;
        let l = (line.line_base().0 / CACHELINE) as i64;

        // Find the stream this access extends: closest last_line within a
        // window of 16 lines.
        let found = self
            .streams
            .iter_mut()
            .filter(|s| (l - s.last_line).abs() <= 16 && l != s.last_line)
            .min_by_key(|s| (l - s.last_line).abs());

        if let Some(s) = found {
            let stride = l - s.last_line;
            if stride == s.stride {
                s.confidence = s.confidence.saturating_add(1);
            } else {
                s.stride = stride;
                s.confidence = 1;
            }
            s.last_line = l;
            s.lru = self.stamp;
            if s.confidence >= 2 {
                let stride = s.stride;
                return (1..=self.degree as i64)
                    .filter_map(|k| {
                        // A downward stream near address zero would wrap on
                        // the cast; drop those candidates.
                        let tgt = l + k * stride;
                        (tgt >= 0).then(|| PhysAddr(tgt as u64 * CACHELINE))
                    })
                    .collect();
            }
            return Vec::new();
        }

        // New stream; evict LRU if at capacity.
        if self.streams.len() == self.capacity {
            let idx = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.streams.swap_remove(idx);
        }
        self.streams.push(Stream { last_line: l, stride: 0, confidence: 0, lru: self.stamp });
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(true, 4)
    }

    fn line(i: u64) -> PhysAddr {
        PhysAddr(i * 64)
    }

    #[test]
    fn sequential_stream_locks_on() {
        let mut p = pf();
        assert!(p.observe(line(10)).is_empty()); // new stream
        assert!(p.observe(line(11)).is_empty()); // stride seen once
        let out = p.observe(line(12)); // stride confirmed
        assert_eq!(out, vec![line(13), line(14), line(15), line(16)]);
    }

    #[test]
    fn backwards_stride_works() {
        let mut p = pf();
        p.observe(line(100));
        p.observe(line(99));
        let out = p.observe(line(98));
        assert_eq!(out[0], line(97));
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut p = pf();
        for &i in &[5u64, 900, 33, 1200, 7, 4000, 21, 9999] {
            assert!(p.observe(line(i)).is_empty());
        }
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StridePrefetcher::new(false, 4);
        for i in 0..10 {
            assert!(p.observe(line(i)).is_empty());
        }
    }

    #[test]
    fn interleaved_streams_both_lock_on() {
        let mut p = pf();
        // Two independent sequential streams far apart.
        let mut fired = 0;
        for i in 0..6u64 {
            if !p.observe(line(1000 + i)).is_empty() {
                fired += 1;
            }
            if !p.observe(line(50_000 + i)).is_empty() {
                fired += 1;
            }
        }
        assert!(fired >= 6, "both streams should prefetch, fired={fired}");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.observe(line(10));
        p.observe(line(11));
        assert!(!p.observe(line(12)).is_empty());
        // Stride changes from 1 to 3: one observation is not enough.
        assert!(p.observe(line(15)).is_empty());
        // Re-established twice: fires again.
        assert!(!p.observe(line(18)).is_empty());
    }
}
