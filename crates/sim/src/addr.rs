//! Physical addresses and cacheline/page arithmetic.
//!
//! The simulator deals exclusively in physical addresses, like the paper's
//! memory controller ((MC)² "deals with only physical addresses", §III-E).
//! Virtual memory, where needed, is modelled by the `mcs-os` crate on top.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cacheline in bytes. Fixed at 64, typical of x86 systems and the
/// granularity the paper assumes throughout.
pub const CACHELINE: u64 = 64;
/// Size of a base (small) page in bytes.
pub const PAGE_4K: u64 = 4096;
/// Size of a huge page in bytes (2 MiB) — also the maximum size a single
/// 21-bit CTT entry can track.
pub const PAGE_2M: u64 = 2 * 1024 * 1024;

/// A physical byte address.
///
/// Wraps a `u64`; the paper tracks 52-bit physical addresses, the upper
/// limit most systems support. Arithmetic helpers below never mask to 52
/// bits — the simulator simply never allocates beyond that.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Base address of the cacheline containing this address.
    #[inline]
    pub fn line_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(CACHELINE - 1))
    }

    /// Byte offset of this address within its cacheline.
    #[inline]
    pub fn line_off(self) -> u64 {
        self.0 & (CACHELINE - 1)
    }

    /// The cacheline index (address divided by the line size).
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHELINE)
    }

    /// Base address of the page of size `page` containing this address.
    ///
    /// # Panics
    /// Panics (in debug builds) if `page` is not a power of two.
    #[inline]
    pub fn page_base(self, page: u64) -> PhysAddr {
        debug_assert!(page.is_power_of_two());
        PhysAddr(self.0 & !(page - 1))
    }

    /// Byte offset within the page of size `page`.
    #[inline]
    pub fn page_off(self, page: u64) -> u64 {
        debug_assert!(page.is_power_of_two());
        self.0 & (page - 1)
    }

    /// Whether this address is aligned to `align` bytes.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Number of bytes needed to advance this address to the next `align`
    /// boundary (0 if already aligned). This is the paper's `ALIGN_REM`
    /// macro from the Fig. 8 pseudocode.
    #[inline]
    pub fn align_rem(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        (align - (self.0 & (align - 1))) & (align - 1)
    }

    /// Address `bytes` past this one.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: `a.add(n)` reads as pointer math
    pub fn add(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }

    /// Signed distance from `other` to `self` in bytes.
    #[inline]
    pub fn offset_from(self, other: PhysAddr) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A cacheline index: a physical address divided by [`CACHELINE`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The base physical (byte) address of this line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 * CACHELINE)
    }

    /// The line `n` lines after this one.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: `l.add(n)` reads as pointer math
    pub fn add(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L({:#x})", self.0 * CACHELINE)
    }
}

/// Iterate over the cachelines overlapping the byte range
/// `[start, start + len)`. Yields the line base addresses in order.
///
/// ```
/// use mcs_sim::addr::{lines_of, PhysAddr};
/// let v: Vec<_> = lines_of(PhysAddr(100), 64).collect();
/// assert_eq!(v, vec![PhysAddr(64), PhysAddr(128)]);
/// ```
pub fn lines_of(start: PhysAddr, len: u64) -> impl Iterator<Item = PhysAddr> {
    let first = start.line_base().0;
    let last = if len == 0 {
        first
    } else {
        PhysAddr(start.0 + len - 1).line_base().0 + CACHELINE
    };
    (first..last).step_by(CACHELINE as usize).map(PhysAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_and_offset() {
        let a = PhysAddr(0x1234);
        assert_eq!(a.line_base(), PhysAddr(0x1200));
        assert_eq!(a.line_off(), 0x34);
        assert_eq!(a.line(), LineAddr(0x1200 / 64));
        assert_eq!(a.line().base(), PhysAddr(0x1200));
    }

    #[test]
    fn page_arithmetic() {
        let a = PhysAddr(PAGE_4K * 3 + 17);
        assert_eq!(a.page_base(PAGE_4K), PhysAddr(PAGE_4K * 3));
        assert_eq!(a.page_off(PAGE_4K), 17);
        assert_eq!(a.page_base(PAGE_2M), PhysAddr(0));
    }

    #[test]
    fn align_rem_matches_paper_macro() {
        // ALIGN_REM(dest, CL_SIZE) = bytes to add to reach alignment.
        assert_eq!(PhysAddr(0x40).align_rem(64), 0);
        assert_eq!(PhysAddr(0x41).align_rem(64), 63);
        assert_eq!(PhysAddr(0x7f).align_rem(64), 1);
        for off in 0..128u64 {
            let a = PhysAddr(0x1000 + off);
            let r = a.align_rem(64);
            assert!(a.add(r).is_aligned(64));
            assert!(r < 64);
        }
    }

    #[test]
    fn lines_of_ranges() {
        assert_eq!(lines_of(PhysAddr(0), 0).count(), 0);
        assert_eq!(lines_of(PhysAddr(0), 1).count(), 1);
        assert_eq!(lines_of(PhysAddr(0), 64).count(), 1);
        assert_eq!(lines_of(PhysAddr(0), 65).count(), 2);
        assert_eq!(lines_of(PhysAddr(63), 2).count(), 2);
        let v: Vec<_> = lines_of(PhysAddr(130), 190).collect();
        assert_eq!(v, vec![PhysAddr(128), PhysAddr(192), PhysAddr(256)]);
    }

    #[test]
    fn alignment_checks() {
        assert!(PhysAddr(0).is_aligned(64));
        assert!(PhysAddr(4096).is_aligned(4096));
        assert!(!PhysAddr(4097).is_aligned(4096));
    }

    #[test]
    fn offset_from_is_signed() {
        assert_eq!(PhysAddr(100).offset_from(PhysAddr(40)), 60);
        assert_eq!(PhysAddr(40).offset_from(PhysAddr(100)), -60);
    }
}
