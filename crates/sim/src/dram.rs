//! DDR4-style DRAM channel timing model.
//!
//! Each memory controller owns one channel. A channel has `banks` banks,
//! each with an open-row register; accesses are classified as row hits
//! (tCL), row misses/empty (tRCD + tCL) or row conflicts (tRP + tRCD + tCL),
//! and every access occupies the shared per-channel data bus for `tBURST`
//! cycles — the per-channel bandwidth cap. Bank-level parallelism lets
//! latencies overlap across banks, which is what gives memcpy its
//! memory-level parallelism until the ROB fills (§II-A).
//!
//! Address mapping (line-interleaved channels): the cacheline index is first
//! striped across channels, then within a channel consecutive lines fill a
//! row, rows stripe across banks. Sequential buffers therefore enjoy high
//! row-buffer locality, as on real hardware.

use crate::addr::{PhysAddr, CACHELINE};
use crate::config::DramConfig;
use crate::Cycle;

/// Which channel (memory controller) services a given line, with `channels`
/// total channels.
pub fn channel_of(addr: PhysAddr, channels: usize) -> usize {
    (addr.line().0 % channels as u64) as usize
}

/// Outcome of a DRAM access with respect to the row buffer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no open row).
    Empty,
    /// Another row was open and had to be precharged.
    Conflict,
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command
    /// (CAS-to-CAS spacing; activations/precharges fold in as delays).
    next_cas: Cycle,
}

/// One DRAM channel.
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    channels: usize,
    banks: Vec<Bank>,
    bus_free: Cycle,
}

impl DramChannel {
    /// Create a channel; `channels` is the system-wide channel count (for
    /// address mapping).
    pub fn new(cfg: DramConfig, channels: usize) -> DramChannel {
        let banks = vec![Bank { open_row: None, next_cas: 0 }; cfg.banks];
        DramChannel { cfg, channels, banks, bus_free: 0 }
    }

    fn bank_row(&self, addr: PhysAddr) -> (usize, u64) {
        let local_line = addr.line().0 / self.channels as u64;
        let lines_per_row = self.cfg.row_bytes / CACHELINE;
        let bank = ((local_line / lines_per_row) % self.cfg.banks as u64) as usize;
        let row = local_line / lines_per_row / self.cfg.banks as u64;
        (bank, row)
    }

    /// Whether an access to `addr` would hit the open row right now.
    pub fn is_row_hit(&self, addr: PhysAddr) -> bool {
        let (bank, row) = self.bank_row(addr);
        self.banks[bank].open_row == Some(row)
    }

    /// Whether the addressed bank can start a new access at `now`.
    pub fn bank_ready(&self, now: Cycle, addr: PhysAddr) -> bool {
        let (bank, _) = self.bank_row(addr);
        self.banks[bank].next_cas <= now
    }

    /// Whether the controller may issue another column command at `now`:
    /// the data bus may be booked up to one CAS latency ahead, so bursts
    /// pipeline behind in-flight accesses instead of serialising with
    /// their array latency.
    pub fn bus_ready(&self, now: Cycle) -> bool {
        self.bus_free <= now + self.cfg.t_cl
    }

    /// Start an access at `now`. Returns the completion cycle (data fully
    /// transferred) and the row outcome.
    ///
    /// Callers should check [`Self::bank_ready`] and [`Self::bus_ready`]
    /// first; starting anyway simply queues behind the busy resource.
    pub fn access(&mut self, now: Cycle, addr: PhysAddr) -> (Cycle, RowOutcome) {
        let (bank_idx, row) = self.bank_row(addr);
        let bank = &mut self.banks[bank_idx];
        let earliest = now.max(bank.next_cas);
        let (outcome, cas) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, earliest),
            Some(_) => (RowOutcome::Conflict, earliest + self.cfg.t_rp + self.cfg.t_rcd),
            None => (RowOutcome::Empty, earliest + self.cfg.t_rcd),
        };
        bank.open_row = Some(row);
        // Data appears tCL after the column command and must find the
        // shared data bus free; bursts to the same open row pipeline at
        // tBURST (CAS-to-CAS) spacing.
        let data_start = (cas + self.cfg.t_cl).max(self.bus_free);
        let done = data_start + self.cfg.t_burst;
        bank.next_cas = cas + self.cfg.t_burst;
        self.bus_free = done;
        (done, outcome)
    }

    /// Earliest cycle at which any bank becomes ready (skip-ahead hint).
    pub fn next_ready(&self) -> Cycle {
        self.banks.iter().map(|b| b.next_cas).min().unwrap_or(0).min(self.bus_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig { banks: 4, row_bytes: 1024, t_rcd: 10, t_rp: 10, t_cl: 10, t_burst: 2 }
    }

    #[test]
    fn channel_mapping_stripes_lines() {
        assert_eq!(channel_of(PhysAddr(0), 2), 0);
        assert_eq!(channel_of(PhysAddr(64), 2), 1);
        assert_eq!(channel_of(PhysAddr(128), 2), 0);
        assert_eq!(channel_of(PhysAddr(63), 2), 0);
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = DramChannel::new(cfg(), 1);
        let (done, out) = d.access(0, PhysAddr(0));
        assert_eq!(out, RowOutcome::Empty);
        assert_eq!(done, 10 + 10 + 2); // tRCD + tCL + tBURST
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = DramChannel::new(cfg(), 1);
        let (done1, _) = d.access(0, PhysAddr(0));
        assert!(d.is_row_hit(PhysAddr(64)));
        let (done2, out) = d.access(done1, PhysAddr(64));
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(done2, done1 + 10 + 2); // tCL + tBURST
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = DramChannel::new(cfg(), 1);
        let (done1, _) = d.access(0, PhysAddr(0));
        // Same bank, next row: row_bytes*banks past addr 0.
        let other = PhysAddr(1024 * 4);
        let (_, out) = d.access(done1, other);
        assert_eq!(out, RowOutcome::Conflict);
    }

    #[test]
    fn banks_overlap_but_bus_serialises_bursts() {
        let mut d = DramChannel::new(cfg(), 1);
        // Two accesses to different banks issued at the same time: their
        // array latencies overlap, the bursts serialise on the data bus.
        let a = PhysAddr(0);
        let b = PhysAddr(1024); // next bank
        let (done_a, _) = d.access(0, a);
        let (done_b, _) = d.access(0, b);
        assert_eq!(done_a, 22);
        assert_eq!(done_b, 24); // burst queued right behind
    }

    #[test]
    fn sequential_lines_stay_in_row_across_two_channels() {
        let d = DramChannel::new(cfg(), 2);
        // lines 0,2,4.. live on channel 0; all map to row 0 bank 0 until
        // 1024 bytes of local lines are consumed.
        let (b0, r0) = d.bank_row(PhysAddr(0));
        let (b1, r1) = d.bank_row(PhysAddr(128));
        assert_eq!((b0, r0), (b1, r1));
    }

    #[test]
    fn bus_throughput_caps_bandwidth() {
        let mut d = DramChannel::new(cfg(), 1);
        // Saturate with row hits in one row: per-access spacing = tBURST.
        let (mut last, _) = d.access(0, PhysAddr(0));
        for i in 1..8u64 {
            let (done, out) = d.access(0, PhysAddr(i * 64));
            assert_eq!(out, RowOutcome::Hit);
            assert_eq!(done, last + 2);
            last = done;
        }
    }
}
