//! # mcs-sim — cycle-level memory-hierarchy simulator
//!
//! This crate is the substrate of the (MC)² reproduction: it plays the role
//! that the gem5 full-system simulator plays in the paper. It models, at
//! CPU-cycle granularity, the parts of the machine the paper's evaluation
//! depends on:
//!
//! * program-driven out-of-order-style CPU cores with a reorder buffer,
//!   load/store queues, a store buffer, fences, non-temporal stores, and
//!   dependent (pointer-chasing) loads ([`core`]);
//! * private L1 caches and a shared, inclusive last-level cache with an MSI
//!   directory and stride prefetchers ([`cache`]);
//! * a memory interconnect ([`bus`]);
//! * per-channel memory controllers with read/write pending queues and
//!   FR-FCFS-style scheduling ([`mc`]);
//! * a composable memory-backend subsystem ([`dram`]): a [`dram::DramModel`]
//!   trait with DDR4, DDR5 (bank groups) and HBM2 (pseudo-channel)
//!   bank/row-buffer timing models and optional tREFI/tRFC refresh,
//!   selected by [`config::MemTech`].
//!
//! The memory controller exposes a [`engine::CopyEngine`] hook. The
//! `mcsquare` crate plugs the paper's Copy Tracking Table and Bounce Pending
//! Queue in through that hook; with the default [`engine::NullEngine`] the
//! system behaves like an unmodified machine and serves as the baseline.
//!
//! Data is modelled functionally end to end: cachelines carry real bytes
//! through caches, queues, and DRAM, so tests can assert that a lazy copy is
//! indistinguishable from an eager one at every load.
//!
//! ```
//! use mcs_sim::{config::SystemConfig, system::System, program::FixedProgram};
//! use mcs_sim::uop::{Uop, UopKind, StatTag};
//!
//! let cfg = SystemConfig::table1_one_core(); // Table I, single core
//! let prog = FixedProgram::new(vec![Uop::new(
//!     UopKind::Load { addr: mcs_sim::addr::PhysAddr(0x1000), size: 8 },
//!     StatTag::App,
//! )]);
//! let mut sys = System::new(cfg, vec![Box::new(prog)]);
//! let stats = sys.run(1_000_000).expect("program finishes");
//! assert!(stats.cycles > 0);
//! ```

pub mod addr;
pub mod alloc;
pub mod bus;
pub mod cache;
#[cfg(feature = "check-invariants")]
pub mod check;
pub mod config;
pub mod core;
pub mod data;
pub mod dram;
pub mod engine;
pub mod fault;
pub mod link;
pub mod mc;
pub mod packet;
pub mod program;
pub mod stats;
pub mod system;
pub mod uop;

/// A point in simulated time, measured in CPU clock cycles.
pub type Cycle = u64;

pub use addr::{LineAddr, PhysAddr, CACHELINE};
pub use config::SystemConfig;
pub use data::{LineData, SparseMem};
pub use system::{SchedMode, System};
