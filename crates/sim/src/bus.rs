//! The memory interconnect: routes packets between the LLC and the memory
//! controllers, and between memory controllers (bounces and CTT traffic).
//!
//! Modelled as a crossbar with a fixed per-hop latency and per-destination
//! FIFO ordering — the property §III-B1 relies on so that source-line
//! writebacks reach a controller before the MCLAZY packet that follows
//! them. Bandwidth is not modelled on the interconnect itself; the DRAM
//! data bus is the bandwidth bottleneck in every experiment.

use crate::link::DelayQueue;
use crate::packet::{Node, Packet};
use crate::Cycle;

/// The interconnect fabric: one inbound FIFO per memory controller plus one
/// toward the LLC.
#[derive(Debug)]
pub struct Bus {
    /// Per-MC inbound queues (indexed by controller id).
    pub to_mc: Vec<DelayQueue<Packet>>,
    /// Inbound queue toward the LLC.
    pub to_llc: DelayQueue<Packet>,
}

impl Bus {
    /// Create a bus for `channels` memory controllers.
    ///
    /// `llc_mc` is the LLC↔MC latency; `mc_mc` the MC↔MC latency. Both are
    /// applied on the receiving queue, so a packet's latency depends only
    /// on its destination hop.
    pub fn new(channels: usize, llc_mc: Cycle, mc_mc: Cycle) -> Bus {
        // Packets into an MC may come from the LLC or another MC; a single
        // per-MC queue keeps FIFO ordering between them. We use the larger
        // of the two latencies conservatively for the shared queue.
        let lat = llc_mc.max(mc_mc);
        Bus {
            to_mc: (0..channels).map(|_| DelayQueue::new(lat)).collect(),
            to_llc: DelayQueue::new(llc_mc),
        }
    }

    /// Route a packet to its destination queue at time `now`, with `extra`
    /// cycles of additional delay.
    pub fn send(&mut self, now: Cycle, pkt: Packet, extra: Cycle) {
        match pkt.dest {
            Node::Llc => self.to_llc.push_after(now, extra, pkt),
            Node::Mc(i) => self.to_mc[i].push_after(now, extra, pkt),
        }
    }

    /// Whether any packet is in flight.
    pub fn busy(&self) -> bool {
        !self.to_llc.is_empty() || self.to_mc.iter().any(|q| !q.is_empty())
    }

    /// Earliest delivery time of any in-flight packet (skip-ahead hint).
    pub fn next_event(&self) -> Option<Cycle> {
        let mut hint = self.to_llc.next_ready();
        for q in &self.to_mc {
            hint = match (hint, q.next_ready()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::packet::Node;

    #[test]
    fn routes_by_destination() {
        let mut bus = Bus::new(2, 10, 10);
        bus.send(0, Packet::read(PhysAddr(0), Node::Mc(1)), 0);
        bus.send(0, Packet::read(PhysAddr(64), Node::Llc), 0);
        assert!(bus.to_mc[0].is_empty());
        assert_eq!(bus.to_mc[1].len(), 1);
        assert_eq!(bus.to_llc.len(), 1);
    }

    #[test]
    fn latency_applied() {
        let mut bus = Bus::new(1, 7, 7);
        bus.send(0, Packet::read(PhysAddr(0), Node::Mc(0)), 0);
        assert!(bus.to_mc[0].pop(6).is_none());
        assert!(bus.to_mc[0].pop(7).is_some());
    }

    #[test]
    fn fifo_per_destination_even_with_extra_delay() {
        let mut bus = Bus::new(1, 1, 1);
        let a = Packet::read(PhysAddr(0), Node::Mc(0));
        let b = Packet::read(PhysAddr(64), Node::Mc(0));
        let (ida, idb) = (a.id, b.id);
        bus.send(0, a, 100);
        bus.send(1, b, 0);
        let first = bus.to_mc[0].pop(101).unwrap();
        let second = bus.to_mc[0].pop(101).unwrap();
        assert_eq!(first.id, ida);
        assert_eq!(second.id, idb);
    }

    #[test]
    fn busy_and_next_event() {
        let mut bus = Bus::new(1, 3, 3);
        assert!(!bus.busy());
        assert_eq!(bus.next_event(), None);
        bus.send(5, Packet::read(PhysAddr(0), Node::Llc), 0);
        assert!(bus.busy());
        assert_eq!(bus.next_event(), Some(8));
    }
}
