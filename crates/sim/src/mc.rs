//! Memory controller: read/write pending queues, FR-FCFS-style scheduling,
//! write-drain watermarks, WPQ read forwarding, and the [`CopyEngine`] hook.

use crate::config::McConfig;
use crate::data::{LineData, SparseMem};
use crate::dram::{DramBackend, RowOutcome};
use crate::engine::{CopyEngine, EngineIo, Verdict};
use crate::fault::{domain, FaultPlan, FaultStream};
use crate::link::DelayQueue;
use crate::packet::{MemCmd, Packet};
use crate::stats::McStats;
use crate::addr::PhysAddr;
use crate::Cycle;
use std::collections::{HashSet, VecDeque};

/// Who asked for a DRAM read.
#[derive(Debug, Clone)]
enum ReadOrigin {
    /// A cache read: respond to the LLC with this request packet.
    Llc(Packet),
    /// An engine read with the engine's tag.
    Engine(u64),
}

#[derive(Debug)]
struct RpqEntry {
    addr: PhysAddr,
    origin: ReadOrigin,
    enq: Cycle,
}

#[derive(Debug)]
struct WpqEntry {
    addr: PhysAddr,
    data: LineData,
    /// The data was derived from an uncorrectable ECC error: committing
    /// this write re-poisons the line instead of clearing it.
    poison: bool,
    enq: Cycle,
    #[cfg(feature = "trace")]
    class: mcs_trace::PacketClass,
}

#[derive(Debug)]
struct Inflight {
    done: Cycle,
    addr: PhysAddr,
    kind: InflightKind,
    /// Cycle the request entered its pending queue (service latency base).
    enq: Cycle,
}

/// Traffic class of a read origin, for latency histograms.
#[cfg(feature = "trace")]
fn trace_class(origin: &ReadOrigin) -> mcs_trace::PacketClass {
    match origin {
        ReadOrigin::Llc(p) if p.is_prefetch => mcs_trace::PacketClass::PrefetchRead,
        ReadOrigin::Llc(_) => mcs_trace::PacketClass::DemandRead,
        ReadOrigin::Engine(_) => mcs_trace::PacketClass::EngineRead,
    }
}

#[cfg(feature = "trace")]
fn trace_row(outcome: RowOutcome) -> mcs_trace::RowKind {
    match outcome {
        RowOutcome::Hit => mcs_trace::RowKind::Hit,
        RowOutcome::Empty => mcs_trace::RowKind::Empty,
        RowOutcome::Conflict => mcs_trace::RowKind::Conflict,
    }
}

#[derive(Debug)]
enum InflightKind {
    Read(ReadOrigin),
    Write,
}

/// Per-controller fault-injection state. Present only when the configured
/// [`FaultPlan`] is non-empty, so clean runs pay nothing and stay
/// byte-identical. All decisions are per-*event* (per DRAM access, per
/// accepted packet), never per cycle, so fault schedules are identical
/// with and without idle skip-ahead.
#[derive(Debug)]
struct McFault {
    plan: FaultPlan,
    /// ECC decision stream (one roll per DRAM read, plus retry re-rolls).
    ecc: FaultStream,
    /// Transient-stall decision stream (one roll per accepted packet).
    stall: FaultStream,
    /// Lines currently carrying poison from an uncorrectable error.
    /// Metadata only: the functional bytes in [`SparseMem`] stay correct.
    poisoned: HashSet<u64>,
    /// Input intake and DRAM scheduling are blocked until this cycle.
    stall_until: Cycle,
}

/// One memory controller, fronting one DRAM channel.
#[derive(Debug)]
pub struct MemCtrl {
    /// Controller index (== channel index).
    pub id: usize,
    cfg: McConfig,
    dram: DramBackend,
    rpq: VecDeque<RpqEntry>,
    wpq: VecDeque<WpqEntry>,
    inflight: Vec<Inflight>,
    /// Packets the engine asked to retry; reprocessed before new input so
    /// a blocked MCLAZY never head-of-line-blocks engine-critical traffic.
    retry_q: VecDeque<Packet>,
    /// Engine reads satisfied by WPQ forwarding, delivered next tick
    /// (tag, line, data, poisoned).
    engine_fwd: Vec<(u64, PhysAddr, LineData, bool)>,
    draining: bool,
    /// Fault-injection state (None ⇔ empty plan ⇒ all hooks are no-ops).
    fault: Option<McFault>,
    /// Human-readable reports of malformed packets this controller dropped
    /// (bounded; see [`MemCtrl::audit_reports`]).
    audit: Vec<String>,
    /// Statistics.
    pub stats: McStats,
}

/// How many input packets a controller accepts per cycle.
const INPUT_PER_CYCLE: usize = 4;

/// Cap on retained malformed-packet audit reports (the counter keeps
/// counting past it).
const AUDIT_CAP: usize = 32;

impl MemCtrl {
    /// Create controller `id` with the given queue config and channel model.
    pub fn new(id: usize, cfg: McConfig, dram: DramBackend) -> MemCtrl {
        MemCtrl {
            id,
            cfg,
            dram,
            rpq: VecDeque::new(),
            wpq: VecDeque::new(),
            inflight: Vec::new(),
            retry_q: VecDeque::new(),
            engine_fwd: Vec::new(),
            draining: false,
            fault: None,
            audit: Vec::new(),
            stats: McStats::default(),
        }
    }

    /// Arm (or disarm) fault injection. An empty plan clears all fault
    /// state; a non-empty one derives this controller's decision streams
    /// from the plan seed and the controller index.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = (!plan.is_empty()).then(|| McFault {
            ecc: plan.stream(domain::ECC, self.id as u64),
            stall: plan.stream(domain::MC_STALL, self.id as u64),
            poisoned: HashSet::new(),
            stall_until: 0,
            plan: plan.clone(),
        });
    }

    /// Audit log of malformed packets this controller dropped instead of
    /// panicking on (first [`AUDIT_CAP`] reports retained;
    /// [`McStats::malformed_packets`] counts them all).
    pub fn audit_reports(&self) -> &[String] {
        &self.audit
    }

    /// Lines currently poisoned by uncorrectable ECC errors, sorted
    /// (diagnostics; empty without fault injection).
    pub fn poisoned_lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.fault.as_ref().map(|f| f.poisoned.iter().copied().collect()).unwrap_or_default();
        v.sort_unstable();
        v
    }

    fn record_malformed(&mut self, report: String) {
        self.stats.malformed_packets += 1;
        if self.audit.len() < AUDIT_CAP {
            self.audit.push(report);
        }
    }

    /// Whether the controller has no queued or in-flight work.
    pub fn idle(&self) -> bool {
        self.rpq.is_empty()
            && self.wpq.is_empty()
            && self.inflight.is_empty()
            && self.retry_q.is_empty()
            && self.engine_fwd.is_empty()
    }

    /// Earliest future event (skip-ahead hint).
    pub fn next_event(&self) -> Option<Cycle> {
        if !self.retry_q.is_empty() || !self.engine_fwd.is_empty() {
            return Some(0); // work every cycle until drained
        }
        let mut hint = self.inflight.iter().map(|f| f.done).min();
        if !self.rpq.is_empty() || !self.wpq.is_empty() {
            let mut d = self.dram.next_ready();
            if let Some(f) = &self.fault {
                // Nothing schedules inside an injected stall window.
                d = d.max(f.stall_until);
            }
            hint = Some(hint.map_or(d, |h| h.min(d)));
        }
        hint
    }

    /// Whether ticking this controller at `now` could change any state:
    /// the event-driven scheduler's per-component readiness check. Input
    /// deliverability is the caller's side of the predicate (the input
    /// queue lives in the interconnect), and engine background work is
    /// covered by [`CopyEngine::needs_tick`]. Pending refresh windows
    /// count as work so `sync` applies them — and the trace layer stamps
    /// them — at the same cycle a per-tick scheduler would.
    pub fn has_pending_work(&self, now: Cycle) -> bool {
        !self.retry_q.is_empty()
            || !self.engine_fwd.is_empty()
            || !self.rpq.is_empty()
            || !self.wpq.is_empty()
            || self.inflight.iter().any(|f| f.done <= now)
            || self.dram.refresh_due(now)
    }

    /// Cached-readiness form of [`Self::has_pending_work`]: `None` means
    /// the controller has immediate work and must tick every cycle;
    /// `Some(wake)` means it has nothing to do before cycle `wake` (the
    /// earliest in-flight completion or refresh window, [`Cycle::MAX`] if
    /// neither is pending). Valid until the controller next ticks — all
    /// controller state mutates only inside [`Self::tick`], and input
    /// arrival is the caller's side of the predicate.
    pub fn readiness(&self) -> Option<Cycle> {
        if !self.retry_q.is_empty()
            || !self.engine_fwd.is_empty()
            || !self.rpq.is_empty()
            || !self.wpq.is_empty()
        {
            return None;
        }
        let wake = self
            .inflight
            .iter()
            .map(|f| f.done)
            .fold(self.dram.refresh_next(), Cycle::min);
        Some(wake)
    }

    /// Current WPQ occupancy as (len, capacity).
    pub fn wpq_occupancy(&self) -> (usize, usize) {
        (self.wpq.len(), self.cfg.wpq_cap)
    }

    /// (rpq len, wpq len, in-flight DRAM accesses) — diagnostics.
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        (self.rpq.len(), self.wpq.len(), self.inflight.len())
    }

    fn fresh_io(&self) -> EngineIo {
        EngineIo { wpq: (self.wpq.len(), self.cfg.wpq_cap), ..EngineIo::default() }
    }

    fn apply_io(&mut self, now: Cycle, io: EngineIo, out: &mut Vec<(Packet, Cycle)>) {
        for (tag, addr) in io.dram_reads {
            self.stats.engine_reads += 1;
            // WPQ forwarding applies to engine reads too: a pending write
            // to the line is newer than DRAM contents.
            if let Some(w) = self.wpq.iter().rev().find(|w| w.addr == addr) {
                self.stats.wpq_forwards += 1;
                self.engine_fwd.push((tag, addr, w.data, w.poison));
                continue;
            }
            #[cfg(feature = "trace")]
            mcs_trace::emit(mcs_trace::Event::McEnqueue {
                mc: self.id as u16,
                class: mcs_trace::PacketClass::EngineRead,
                at: now,
            });
            self.rpq.push_back(RpqEntry { addr, origin: ReadOrigin::Engine(tag), enq: now });
        }
        for (addr, data, poison) in io.dram_writes {
            self.stats.engine_writes += 1;
            #[cfg(feature = "trace")]
            mcs_trace::emit(mcs_trace::Event::McEnqueue {
                mc: self.id as u16,
                class: mcs_trace::PacketClass::EngineWrite,
                at: now,
            });
            self.wpq.push_back(WpqEntry {
                addr,
                data,
                poison,
                enq: now,
                #[cfg(feature = "trace")]
                class: mcs_trace::PacketClass::EngineWrite,
            });
        }
        for send in io.sends {
            out.push(send);
        }
        self.stats.forced_flushes += io.fault_forced_flushes;
        self.stats.eager_fallbacks += io.fault_eager_fallbacks;
    }

    /// Advance one cycle.
    ///
    /// * `input` — packets arriving from the interconnect;
    /// * `engine` — the copy engine shared across controllers;
    /// * `mem` — the functional memory image;
    /// * `out` — packets to hand back to the interconnect, with extra delay.
    pub fn tick(
        &mut self,
        now: Cycle,
        input: &mut DelayQueue<Packet>,
        engine: &mut dyn CopyEngine,
        mem: &mut SparseMem,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        // Apply elapsed refresh windows before any readiness check.
        self.dram.sync(now);
        #[cfg(feature = "trace")]
        {
            // stats.refreshes still holds last tick's cumulative count.
            let r = self.dram.refreshes();
            if r > self.stats.refreshes {
                mcs_trace::emit(mcs_trace::Event::Refresh {
                    mc: self.id as u16,
                    n: (r - self.stats.refreshes) as u32,
                    at: now,
                });
            }
        }
        self.deliver_forwarded(now, engine, out);
        self.complete_inflight(now, engine, mem, out);
        self.engine_tick(now, engine, out);
        self.accept_input(now, input, engine, out);
        self.schedule_dram(now, mem);
        self.stats.refreshes = self.dram.refreshes();
    }

    fn deliver_forwarded(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let fwd = std::mem::take(&mut self.engine_fwd);
        for (tag, addr, data, poisoned) in fwd {
            if poisoned {
                self.stats.poisoned_reads += 1;
            }
            let mut io = self.fresh_io();
            engine.on_dram_read(now, self.id, tag, addr, data, poisoned, &mut io);
            self.apply_io(now, io, out);
        }
    }

    fn complete_inflight(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        mem: &mut SparseMem,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].done <= now {
                let f = self.inflight.swap_remove(i);
                match f.kind {
                    InflightKind::Read(origin) => {
                        let data = mem.read_line(f.addr);
                        let poisoned = self
                            .fault
                            .as_ref()
                            .is_some_and(|fs| fs.poisoned.contains(&f.addr.line_base().0));
                        if poisoned {
                            self.stats.poisoned_reads += 1;
                        }
                        #[cfg(feature = "trace")]
                        mcs_trace::emit(mcs_trace::Event::McComplete {
                            mc: self.id as u16,
                            class: trace_class(&origin),
                            enq: f.enq,
                            at: now,
                        });
                        match origin {
                            ReadOrigin::Llc(req) => {
                                if !req.is_prefetch {
                                    self.stats.demand_read_lat_sum += now - f.enq;
                                    self.stats.demand_reads_done += 1;
                                }
                                let mut resp = req.make_read_resp(data);
                                resp.poisoned = poisoned;
                                out.push((resp, 0));
                            }
                            ReadOrigin::Engine(tag) => {
                                let mut io = self.fresh_io();
                                engine
                                    .on_dram_read(now, self.id, tag, f.addr, data, poisoned, &mut io);
                                self.apply_io(now, io, out);
                            }
                        }
                    }
                    InflightKind::Write => {
                        // Data was applied to the image at issue; nothing to do.
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    fn engine_tick(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let mut io = self.fresh_io();
        engine.tick(now, self.id, &mut io);
        self.apply_io(now, io, out);
    }

    fn accept_input(
        &mut self,
        now: Cycle,
        input: &mut DelayQueue<Packet>,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        // Injected transient stall: the input port (and DRAM scheduler)
        // is paused; the fault hook rolls per accepted packet, so the
        // schedule is identical with and without idle skip-ahead.
        if let Some(f) = &self.fault {
            if now < f.stall_until {
                if !self.retry_q.is_empty() || input.peek(now).is_some() {
                    self.stats.fault_stall_cycles += 1;
                }
                return;
            }
        }
        // Engine-deferred packets first (e.g. MCLAZY waiting for CTT room).
        // They retry without blocking the packets behind them, which is
        // required for forward progress: freeing CTT entries depends on
        // LazyDestWrite deliveries that may share this input port.
        for _ in 0..self.retry_q.len() {
            let Some(pkt) = self.retry_q.pop_front() else { break };
            let mut io = self.fresh_io();
            match engine.on_arrive(now, self.id, pkt, &mut io) {
                Verdict::Consumed => {}
                Verdict::Retry(pkt) => {
                    self.apply_io(now, io, out);
                    self.retry_q.push_front(pkt);
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                Verdict::Pass(pkt) => {
                    self.apply_io(now, io, out);
                    self.enqueue(now, pkt, out);
                    continue;
                }
            }
            self.apply_io(now, io, out);
        }
        for _ in 0..INPUT_PER_CYCLE {
            // Flow control: don't pop what we can't queue.
            let Some(head) = input.peek(now) else { break };
            match head.cmd {
                MemCmd::ReadReq if self.rpq.len() >= self.cfg.rpq_cap => {
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                MemCmd::WriteReq | MemCmd::LazyDestWrite
                    if self.wpq.len() >= self.cfg.wpq_cap =>
                {
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                _ => {}
            }
            let pkt = input.pop(now).expect("peeked");
            if let Some(f) = self.fault.as_mut() {
                if f.stall.roll(f.plan.mc_stall_rate) {
                    f.stall_until = now + f.plan.mc_stall_cycles;
                    self.stats.fault_stalls += 1;
                }
            }
            let mut io = self.fresh_io();
            let verdict = engine.on_arrive(now, self.id, pkt, &mut io);
            self.apply_io(now, io, out);
            match verdict {
                Verdict::Consumed => {}
                Verdict::Retry(pkt) => {
                    self.stats.input_stall_cycles += 1;
                    self.retry_q.push_back(pkt);
                }
                Verdict::Pass(pkt) => self.enqueue(now, pkt, out),
            }
            // A stall tripped by this packet pauses intake immediately.
            if self.fault.as_ref().is_some_and(|f| now < f.stall_until) {
                break;
            }
        }
    }

    fn enqueue(&mut self, now: Cycle, pkt: Packet, out: &mut Vec<(Packet, Cycle)>) {
        match pkt.cmd {
            MemCmd::ReadReq => {
                // WPQ forwarding: a pending write to the same line services
                // the read without touching DRAM.
                if let Some(w) = self.wpq.iter().rev().find(|w| w.addr == pkt.addr) {
                    self.stats.wpq_forwards += 1;
                    let data = w.data;
                    let poison = w.poison;
                    if poison {
                        self.stats.poisoned_reads += 1;
                    }
                    let mut resp = pkt.make_read_resp(data);
                    resp.poisoned = poison;
                    out.push((resp, 0));
                    return;
                }
                #[cfg(feature = "trace")]
                mcs_trace::emit(mcs_trace::Event::McEnqueue {
                    mc: self.id as u16,
                    class: if pkt.is_prefetch {
                        mcs_trace::PacketClass::PrefetchRead
                    } else {
                        mcs_trace::PacketClass::DemandRead
                    },
                    at: now,
                });
                self.rpq.push_back(RpqEntry { addr: pkt.addr, origin: ReadOrigin::Llc(pkt), enq: now });
            }
            MemCmd::WriteReq | MemCmd::LazyDestWrite => {
                // A write without a payload is a protocol violation by the
                // sender; drop it and leave an audit trail rather than
                // aborting the whole simulation.
                let Some(data) = pkt.data else {
                    self.record_malformed(format!(
                        "mc{} @{now}: write without data dropped: {pkt:?}",
                        self.id
                    ));
                    return;
                };
                if pkt.needs_ack {
                    out.push((pkt.make_write_ack(), 0));
                }
                #[cfg(feature = "trace")]
                let class = if matches!(pkt.cmd, MemCmd::LazyDestWrite) {
                    mcs_trace::PacketClass::EngineWrite
                } else {
                    mcs_trace::PacketClass::Write
                };
                #[cfg(feature = "trace")]
                mcs_trace::emit(mcs_trace::Event::McEnqueue {
                    mc: self.id as u16,
                    class,
                    at: now,
                });
                self.wpq.push_back(WpqEntry {
                    addr: pkt.addr,
                    data,
                    poison: pkt.poisoned,
                    enq: now,
                    #[cfg(feature = "trace")]
                    class,
                });
            }
            _ => {
                // Mclazy/Mcfree/Bounce* are engine commands; with an engine
                // present they never Pass and NullEngine consumes them, so
                // anything landing here is malformed traffic. Surface it as
                // a diagnosable fault instead of an abort.
                self.record_malformed(format!(
                    "mc{} @{now}: unexpected command dropped: {pkt:?}",
                    self.id
                ));
            }
        }
    }

    fn schedule_dram(&mut self, now: Cycle, mem: &mut SparseMem) {
        // Injected transient stall also pauses the DRAM scheduler.
        if self.fault.as_ref().is_some_and(|f| now < f.stall_until) {
            return;
        }
        // Update drain mode hysteresis.
        let occ = self.wpq.len() as f64 / self.cfg.wpq_cap as f64;
        if (occ >= self.cfg.wpq_drain_hi || self.rpq.is_empty())
            && !self.wpq.is_empty() {
                self.draining = true;
            }
        if occ <= self.cfg.wpq_drain_lo && !self.rpq.is_empty() {
            self.draining = false;
        }
        if self.wpq.is_empty() {
            self.draining = false;
        }

        // Issue while the channel can accept column commands (the data bus
        // may be booked ahead; see DramModel::bus_ready), bounded per
        // tick to model the command bus.
        for _ in 0..4 {
            if !self.dram.bus_ready(now) {
                break;
            }
            let did = if self.draining { self.issue_write(now, mem) } else { self.issue_read(now) };
            if !did {
                // Try the other kind opportunistically.
                let did2 =
                    if self.draining { self.issue_read(now) } else { self.issue_write(now, mem) };
                if !did2 {
                    break;
                }
            }
        }
    }

    fn issue_read(&mut self, now: Cycle) -> bool {
        // FR-FCFS-lite with demand priority: engine reads (lazy-copy
        // drains) only issue when no demand read is ready, bounding their
        // bandwidth interference (§III-A1 limits outstanding asynchronous
        // copies for the same reason). One pass records the first entry in
        // each priority class (demand row-hit > demand > row-hit > ready),
        // probing each candidate's bank exactly once.
        let mut demand_ready = None;
        let mut any_hit = None;
        let mut any_ready = None;
        let mut pick = None;
        for (i, e) in self.rpq.iter().enumerate() {
            let (ready, hit) = self.dram.probe(now, e.addr);
            if !ready {
                continue;
            }
            if matches!(e.origin, ReadOrigin::Llc(_)) {
                if hit {
                    pick = Some(i); // top class: first match wins outright
                    break;
                }
                if demand_ready.is_none() {
                    demand_ready = Some(i);
                }
            } else if hit {
                if any_hit.is_none() {
                    any_hit = Some(i);
                }
            } else if any_ready.is_none() {
                any_ready = Some(i);
            }
        }
        let pick = pick.or(demand_ready).or(any_hit).or(any_ready);
        let Some(idx) = pick else { return false };
        let e = self.rpq.remove(idx).expect("index valid");
        let (mut done, outcome) = self.dram.access(now, e.addr);
        self.note_row(outcome);
        self.stats.reads += 1;
        if let Some(f) = self.fault.as_mut() {
            if f.ecc.roll(f.plan.ecc_uncorrectable_rate) {
                // Uncorrectable: poison the line. The response still
                // carries the functional bytes (poison is metadata), so
                // differential checks against an eager oracle remain valid.
                self.stats.ecc_uncorrectable += 1;
                f.poisoned.insert(e.addr.line_base().0);
            } else if f.ecc.roll(f.plan.ecc_correctable_rate) {
                // Correctable: bounded re-reads with exponential backoff.
                // The retry occupies the same bank reservation; only the
                // completion is delayed.
                self.stats.ecc_corrected += 1;
                let mut penalty = f.plan.ecc_penalty;
                for _ in 0..f.plan.ecc_max_retries {
                    self.stats.ecc_retries += 1;
                    done += penalty;
                    penalty = penalty.saturating_mul(2);
                    if !f.ecc.roll(f.plan.ecc_correctable_rate) {
                        break;
                    }
                }
            }
        }
        #[cfg(feature = "trace")]
        mcs_trace::emit(mcs_trace::Event::McIssue {
            mc: self.id as u16,
            bank: self.dram.bank_of(e.addr) as u16,
            class: trace_class(&e.origin),
            row: trace_row(outcome),
            enq: e.enq,
            at: now,
            done,
        });
        self.inflight.push(Inflight {
            done,
            addr: e.addr,
            kind: InflightKind::Read(e.origin),
            enq: e.enq,
        });
        true
    }

    fn issue_write(&mut self, now: Cycle, mem: &mut SparseMem) -> bool {
        // One pass: first ready row-hit wins, else first ready entry.
        let mut any_ready = None;
        let mut pick = None;
        for (i, e) in self.wpq.iter().enumerate() {
            let (ready, hit) = self.dram.probe(now, e.addr);
            if !ready {
                continue;
            }
            if hit {
                pick = Some(i);
                break;
            }
            if any_ready.is_none() {
                any_ready = Some(i);
            }
        }
        let pick = pick.or(any_ready);
        let Some(idx) = pick else { return false };
        let e = self.wpq.remove(idx).expect("index valid");
        let (done, outcome) = self.dram.access(now, e.addr);
        self.note_row(outcome);
        self.stats.writes += 1;
        #[cfg(feature = "trace")]
        mcs_trace::emit(mcs_trace::Event::McIssue {
            mc: self.id as u16,
            bank: self.dram.bank_of(e.addr) as u16,
            class: e.class,
            row: trace_row(outcome),
            enq: e.enq,
            at: now,
            done,
        });
        // Apply functionally at issue: any later read goes through the RPQ
        // behind this write's bank occupancy, and reads that raced ahead
        // were already served by WPQ forwarding.
        mem.write_line(e.addr, e.data);
        if let Some(f) = self.fault.as_mut() {
            let line = e.addr.line_base().0;
            if e.poison {
                f.poisoned.insert(line);
            } else {
                // Fresh data overwrites the faulted cells: poison clears.
                f.poisoned.remove(&line);
            }
        }
        self.inflight.push(Inflight { done, addr: e.addr, kind: InflightKind::Write, enq: e.enq });
        true
    }

    fn note_row(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::engine::NullEngine;
    use crate::packet::Node;

    fn mk() -> (MemCtrl, DelayQueue<Packet>, SparseMem, NullEngine) {
        let dram = crate::dram::Ddr4Channel::new(
            DramConfig {
                banks: 4,
                row_bytes: 1024,
                t_rcd: 5,
                t_rp: 5,
                t_cl: 5,
                t_burst: 2,
                ..DramConfig::default()
            },
            1,
        );
        let mc = MemCtrl::new(0, McConfig::default(), dram.into());
        (mc, DelayQueue::new(0), SparseMem::new(), NullEngine)
    }

    fn run(
        mc: &mut MemCtrl,
        input: &mut DelayQueue<Packet>,
        mem: &mut SparseMem,
        eng: &mut NullEngine,
        cycles: Cycle,
    ) -> Vec<Packet> {
        let mut got = Vec::new();
        for now in 0..cycles {
            let mut out = Vec::new();
            mc.tick(now, input, eng, mem, &mut out);
            got.extend(out.into_iter().map(|(p, _)| p));
        }
        got
    }

    #[test]
    fn read_returns_memory_contents() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mem.write_line(PhysAddr(0x40), LineData::splat(9));
        input.push(0, Packet::read(PhysAddr(0x40), Node::Mc(0)));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 50);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].cmd, MemCmd::ReadResp);
        assert_eq!(resps[0].data, Some(LineData::splat(9)));
        assert!(mc.idle());
    }

    #[test]
    fn write_then_read_sees_new_data() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        input.push(0, Packet::write(PhysAddr(0x80), LineData::splat(7), Node::Mc(0)));
        input.push(0, Packet::read(PhysAddr(0x80), Node::Mc(0)));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 60);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].data, Some(LineData::splat(7)));
    }

    #[test]
    fn wpq_forwarding_counts() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        input.push(0, Packet::write(PhysAddr(0x80), LineData::splat(7), Node::Mc(0)));
        input.push(0, Packet::read(PhysAddr(0x80), Node::Mc(0)));
        let _ = run(&mut mc, &mut input, &mut mem, &mut eng, 60);
        assert!(mc.stats.wpq_forwards >= 1 || mc.stats.reads == 1);
    }

    #[test]
    fn many_reads_all_complete() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        for i in 0..20u64 {
            mem.write_line(PhysAddr(i * 64), LineData::splat(i as u8));
            input.push(0, Packet::read(PhysAddr(i * 64), Node::Mc(0)));
        }
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 500);
        assert_eq!(resps.len(), 20);
        for r in &resps {
            let want = (r.addr.0 / 64) as u8;
            assert_eq!(r.data, Some(LineData::splat(want)));
        }
        assert!(mc.stats.row_hits > 0, "sequential reads should row-hit");
    }

    #[test]
    fn writes_drain_eventually() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        for i in 0..10u64 {
            input.push(0, Packet::write(PhysAddr(i * 64), LineData::splat(1), Node::Mc(0)));
        }
        let _ = run(&mut mc, &mut input, &mut mem, &mut eng, 500);
        assert!(mc.idle());
        assert_eq!(mc.stats.writes, 10);
        assert_eq!(mem.read_line(PhysAddr(0)), LineData::splat(1));
    }

    #[test]
    fn ecc_exact_accounting_at_rate_one() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mc.set_fault_plan(&FaultPlan {
            seed: 7,
            ecc_correctable_rate: 1.0,
            ecc_max_retries: 2,
            ecc_penalty: 8,
            ..FaultPlan::none()
        });
        for i in 0..10u64 {
            input.push(0, Packet::read(PhysAddr(i * 64), Node::Mc(0)));
        }
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 2000);
        assert_eq!(resps.len(), 10, "retries delay but never lose reads");
        // At rate 1.0 every DRAM read takes an error and every retry
        // re-faults, so retries == corrected × max_retries exactly.
        assert_eq!(mc.stats.ecc_corrected, 10);
        assert_eq!(mc.stats.ecc_retries, 20);
        assert_eq!(mc.stats.ecc_uncorrectable, 0);
        assert_eq!(mc.stats.poisoned_reads, 0);
        assert!(resps.iter().all(|r| !r.poisoned));
    }

    #[test]
    fn ecc_retries_add_latency() {
        let baseline = {
            let (mut mc, mut input, mut mem, mut eng) = mk();
            input.push(0, Packet::read(PhysAddr(0x40), Node::Mc(0)));
            let mut done = 0;
            for now in 0..500 {
                let mut out = Vec::new();
                mc.tick(now, &mut input, &mut eng, &mut mem, &mut out);
                if !out.is_empty() {
                    done = now;
                    break;
                }
            }
            done
        };
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mc.set_fault_plan(&FaultPlan {
            seed: 7,
            ecc_correctable_rate: 1.0,
            ecc_max_retries: 2,
            ecc_penalty: 8,
            ..FaultPlan::none()
        });
        input.push(0, Packet::read(PhysAddr(0x40), Node::Mc(0)));
        let mut done = 0;
        for now in 0..500 {
            let mut out = Vec::new();
            mc.tick(now, &mut input, &mut eng, &mut mem, &mut out);
            if !out.is_empty() {
                done = now;
                break;
            }
        }
        // Two retries with 8-cycle exponential backoff: 8 + 16 = 24 extra.
        assert_eq!(done, baseline + 24, "backoff penalty must be visible");
    }

    #[test]
    fn uncorrectable_errors_poison_reads_until_rewritten() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mc.set_fault_plan(&FaultPlan {
            seed: 3,
            ecc_uncorrectable_rate: 1.0,
            ..FaultPlan::none()
        });
        mem.write_line(PhysAddr(0x40), LineData::splat(5));
        input.push(0, Packet::read(PhysAddr(0x40), Node::Mc(0)));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 100);
        assert_eq!(resps.len(), 1);
        assert!(resps[0].poisoned, "uncorrectable error must poison the response");
        assert_eq!(resps[0].data, Some(LineData::splat(5)), "bytes stay functional");
        assert_eq!(mc.stats.ecc_uncorrectable, 1);
        assert_eq!(mc.stats.poisoned_reads, 1);
        assert_eq!(mc.poisoned_lines(), vec![0x40]);
        // A fresh write overwrites the faulted cells and clears the poison.
        input.push(200, Packet::write(PhysAddr(0x40), LineData::splat(6), Node::Mc(0)));
        for now in 200..400 {
            let mut out = Vec::new();
            mc.tick(now, &mut input, &mut eng, &mut mem, &mut out);
        }
        assert!(mc.idle());
        assert!(mc.poisoned_lines().is_empty(), "write must clear poison");
    }

    #[test]
    fn malformed_write_is_dropped_and_audited() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        let mut pkt = Packet::write(PhysAddr(0x40), LineData::splat(1), Node::Mc(0));
        pkt.data = None;
        input.push(0, pkt);
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 50);
        assert!(resps.is_empty());
        assert!(mc.idle(), "malformed packet must not wedge the controller");
        assert_eq!(mc.stats.malformed_packets, 1);
        assert_eq!(mc.audit_reports().len(), 1);
        assert!(mc.audit_reports()[0].contains("write without data"), "{:?}", mc.audit_reports());
    }

    #[test]
    fn unexpected_command_is_dropped_and_audited() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        // A ReadResp has no business arriving at a controller.
        let req = Packet::read(PhysAddr(0x40), Node::Mc(0));
        input.push(0, req.make_read_resp(LineData::ZERO));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 50);
        assert!(resps.is_empty());
        assert!(mc.idle());
        assert_eq!(mc.stats.malformed_packets, 1);
        assert!(mc.audit_reports()[0].contains("unexpected command"), "{:?}", mc.audit_reports());
    }

    #[test]
    fn transient_stalls_delay_but_never_lose_traffic() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mc.set_fault_plan(&FaultPlan {
            seed: 11,
            mc_stall_rate: 1.0,
            mc_stall_cycles: 20,
            ..FaultPlan::none()
        });
        for i in 0..5u64 {
            mem.write_line(PhysAddr(i * 64), LineData::splat(i as u8));
            input.push(0, Packet::read(PhysAddr(i * 64), Node::Mc(0)));
        }
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 2000);
        assert_eq!(resps.len(), 5, "stalls delay but never drop reads");
        assert!(mc.idle());
        assert_eq!(mc.stats.fault_stalls, 5, "rate 1.0 trips one stall per accept");
        assert!(mc.stats.fault_stall_cycles > 0);
    }
}
