//! Memory controller: read/write pending queues, FR-FCFS-style scheduling,
//! write-drain watermarks, WPQ read forwarding, and the [`CopyEngine`] hook.

use crate::config::McConfig;
use crate::data::{LineData, SparseMem};
use crate::dram::{DramModel, RowOutcome};
use crate::engine::{CopyEngine, EngineIo, Verdict};
use crate::link::DelayQueue;
use crate::packet::{MemCmd, Packet};
use crate::stats::McStats;
use crate::addr::PhysAddr;
use crate::Cycle;
use std::collections::VecDeque;

/// Who asked for a DRAM read.
#[derive(Debug, Clone)]
enum ReadOrigin {
    /// A cache read: respond to the LLC with this request packet.
    Llc(Packet),
    /// An engine read with the engine's tag.
    Engine(u64),
}

#[derive(Debug)]
struct RpqEntry {
    addr: PhysAddr,
    origin: ReadOrigin,
    enq: Cycle,
}

#[derive(Debug)]
struct WpqEntry {
    addr: PhysAddr,
    data: LineData,
}

#[derive(Debug)]
struct Inflight {
    done: Cycle,
    addr: PhysAddr,
    kind: InflightKind,
}

#[derive(Debug)]
enum InflightKind {
    Read(ReadOrigin),
    Write,
}

/// One memory controller, fronting one DRAM channel.
#[derive(Debug)]
pub struct MemCtrl {
    /// Controller index (== channel index).
    pub id: usize,
    cfg: McConfig,
    dram: Box<dyn DramModel>,
    rpq: VecDeque<RpqEntry>,
    wpq: VecDeque<WpqEntry>,
    inflight: Vec<Inflight>,
    /// Packets the engine asked to retry; reprocessed before new input so
    /// a blocked MCLAZY never head-of-line-blocks engine-critical traffic.
    retry_q: VecDeque<Packet>,
    /// Engine reads satisfied by WPQ forwarding, delivered next tick.
    engine_fwd: Vec<(u64, PhysAddr, LineData)>,
    draining: bool,
    /// Statistics.
    pub stats: McStats,
}

/// How many input packets a controller accepts per cycle.
const INPUT_PER_CYCLE: usize = 4;

impl MemCtrl {
    /// Create controller `id` with the given queue config and channel model.
    pub fn new(id: usize, cfg: McConfig, dram: Box<dyn DramModel>) -> MemCtrl {
        MemCtrl {
            id,
            cfg,
            dram,
            rpq: VecDeque::new(),
            wpq: VecDeque::new(),
            inflight: Vec::new(),
            retry_q: VecDeque::new(),
            engine_fwd: Vec::new(),
            draining: false,
            stats: McStats::default(),
        }
    }

    /// Whether the controller has no queued or in-flight work.
    pub fn idle(&self) -> bool {
        self.rpq.is_empty()
            && self.wpq.is_empty()
            && self.inflight.is_empty()
            && self.retry_q.is_empty()
            && self.engine_fwd.is_empty()
    }

    /// Earliest future event (skip-ahead hint).
    pub fn next_event(&self) -> Option<Cycle> {
        if !self.retry_q.is_empty() || !self.engine_fwd.is_empty() {
            return Some(0); // work every cycle until drained
        }
        let mut hint = self.inflight.iter().map(|f| f.done).min();
        if !self.rpq.is_empty() || !self.wpq.is_empty() {
            let d = self.dram.next_ready();
            hint = Some(hint.map_or(d, |h| h.min(d)));
        }
        hint
    }

    /// Current WPQ occupancy as (len, capacity).
    pub fn wpq_occupancy(&self) -> (usize, usize) {
        (self.wpq.len(), self.cfg.wpq_cap)
    }

    /// (rpq len, wpq len, in-flight DRAM accesses) — diagnostics.
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        (self.rpq.len(), self.wpq.len(), self.inflight.len())
    }

    fn fresh_io(&self) -> EngineIo {
        EngineIo { wpq: (self.wpq.len(), self.cfg.wpq_cap), ..EngineIo::default() }
    }

    fn apply_io(&mut self, now: Cycle, io: EngineIo, out: &mut Vec<(Packet, Cycle)>) {
        for (tag, addr) in io.dram_reads {
            self.stats.engine_reads += 1;
            // WPQ forwarding applies to engine reads too: a pending write
            // to the line is newer than DRAM contents.
            if let Some(w) = self.wpq.iter().rev().find(|w| w.addr == addr) {
                self.stats.wpq_forwards += 1;
                self.engine_fwd.push((tag, addr, w.data));
                continue;
            }
            self.rpq.push_back(RpqEntry { addr, origin: ReadOrigin::Engine(tag), enq: now });
        }
        for (addr, data) in io.dram_writes {
            self.stats.engine_writes += 1;
            self.wpq.push_back(WpqEntry { addr, data });
        }
        for send in io.sends {
            out.push(send);
        }
    }

    /// Advance one cycle.
    ///
    /// * `input` — packets arriving from the interconnect;
    /// * `engine` — the copy engine shared across controllers;
    /// * `mem` — the functional memory image;
    /// * `out` — packets to hand back to the interconnect, with extra delay.
    pub fn tick(
        &mut self,
        now: Cycle,
        input: &mut DelayQueue<Packet>,
        engine: &mut dyn CopyEngine,
        mem: &mut SparseMem,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        // Apply elapsed refresh windows before any readiness check.
        self.dram.sync(now);
        self.deliver_forwarded(now, engine, out);
        self.complete_inflight(now, engine, mem, out);
        self.engine_tick(now, engine, out);
        self.accept_input(now, input, engine, out);
        self.schedule_dram(now, mem);
        self.stats.refreshes = self.dram.refreshes();
    }

    fn deliver_forwarded(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let fwd = std::mem::take(&mut self.engine_fwd);
        for (tag, addr, data) in fwd {
            let mut io = self.fresh_io();
            engine.on_dram_read(now, self.id, tag, addr, data, &mut io);
            self.apply_io(now, io, out);
        }
    }

    fn complete_inflight(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        mem: &mut SparseMem,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].done <= now {
                let f = self.inflight.swap_remove(i);
                match f.kind {
                    InflightKind::Read(origin) => {
                        let data = mem.read_line(f.addr);
                        match origin {
                            ReadOrigin::Llc(req) => {
                                out.push((req.make_read_resp(data), 0));
                            }
                            ReadOrigin::Engine(tag) => {
                                let mut io = self.fresh_io();
                                engine.on_dram_read(now, self.id, tag, f.addr, data, &mut io);
                                self.apply_io(now, io, out);
                            }
                        }
                    }
                    InflightKind::Write => {
                        // Data was applied to the image at issue; nothing to do.
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    fn engine_tick(
        &mut self,
        now: Cycle,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        let mut io = self.fresh_io();
        engine.tick(now, self.id, &mut io);
        self.apply_io(now, io, out);
    }

    fn accept_input(
        &mut self,
        now: Cycle,
        input: &mut DelayQueue<Packet>,
        engine: &mut dyn CopyEngine,
        out: &mut Vec<(Packet, Cycle)>,
    ) {
        // Engine-deferred packets first (e.g. MCLAZY waiting for CTT room).
        // They retry without blocking the packets behind them, which is
        // required for forward progress: freeing CTT entries depends on
        // LazyDestWrite deliveries that may share this input port.
        for _ in 0..self.retry_q.len() {
            let Some(pkt) = self.retry_q.pop_front() else { break };
            let mut io = self.fresh_io();
            match engine.on_arrive(now, self.id, pkt, &mut io) {
                Verdict::Consumed => {}
                Verdict::Retry(pkt) => {
                    self.apply_io(now, io, out);
                    self.retry_q.push_front(pkt);
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                Verdict::Pass(pkt) => {
                    self.apply_io(now, io, out);
                    self.enqueue(now, pkt, out);
                    continue;
                }
            }
            self.apply_io(now, io, out);
        }
        for _ in 0..INPUT_PER_CYCLE {
            // Flow control: don't pop what we can't queue.
            let Some(head) = input.peek(now) else { break };
            match head.cmd {
                MemCmd::ReadReq if self.rpq.len() >= self.cfg.rpq_cap => {
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                MemCmd::WriteReq | MemCmd::LazyDestWrite
                    if self.wpq.len() >= self.cfg.wpq_cap =>
                {
                    self.stats.input_stall_cycles += 1;
                    break;
                }
                _ => {}
            }
            let pkt = input.pop(now).expect("peeked");
            let mut io = self.fresh_io();
            let verdict = engine.on_arrive(now, self.id, pkt, &mut io);
            self.apply_io(now, io, out);
            match verdict {
                Verdict::Consumed => {}
                Verdict::Retry(pkt) => {
                    self.stats.input_stall_cycles += 1;
                    self.retry_q.push_back(pkt);
                }
                Verdict::Pass(pkt) => self.enqueue(now, pkt, out),
            }
        }
    }

    fn enqueue(&mut self, now: Cycle, pkt: Packet, out: &mut Vec<(Packet, Cycle)>) {
        match pkt.cmd {
            MemCmd::ReadReq => {
                // WPQ forwarding: a pending write to the same line services
                // the read without touching DRAM.
                if let Some(w) = self.wpq.iter().rev().find(|w| w.addr == pkt.addr) {
                    self.stats.wpq_forwards += 1;
                    let data = w.data;
                    out.push((pkt.make_read_resp(data), 0));
                    return;
                }
                self.rpq.push_back(RpqEntry { addr: pkt.addr, origin: ReadOrigin::Llc(pkt), enq: now });
            }
            MemCmd::WriteReq | MemCmd::LazyDestWrite => {
                let data = pkt.data.expect("write without data");
                if pkt.needs_ack {
                    out.push((pkt.make_write_ack(), 0));
                }
                self.wpq.push_back(WpqEntry { addr: pkt.addr, data });
            }
            other => {
                // Mclazy/Mcfree/Bounce* are engine commands; with an engine
                // present they never Pass. NullEngine consumes them too.
                unreachable!("unexpected packet at MC{}: {other:?}", self.id);
            }
        }
    }

    fn schedule_dram(&mut self, now: Cycle, mem: &mut SparseMem) {
        // Update drain mode hysteresis.
        let occ = self.wpq.len() as f64 / self.cfg.wpq_cap as f64;
        if (occ >= self.cfg.wpq_drain_hi || self.rpq.is_empty())
            && !self.wpq.is_empty() {
                self.draining = true;
            }
        if occ <= self.cfg.wpq_drain_lo && !self.rpq.is_empty() {
            self.draining = false;
        }
        if self.wpq.is_empty() {
            self.draining = false;
        }

        // Issue while the channel can accept column commands (the data bus
        // may be booked ahead; see DramModel::bus_ready), bounded per
        // tick to model the command bus.
        for _ in 0..4 {
            if !self.dram.bus_ready(now) {
                break;
            }
            let did = if self.draining { self.issue_write(now, mem) } else { self.issue_read(now) };
            if !did {
                // Try the other kind opportunistically.
                let did2 =
                    if self.draining { self.issue_read(now) } else { self.issue_write(now, mem) };
                if !did2 {
                    break;
                }
            }
        }
    }

    fn issue_read(&mut self, now: Cycle) -> bool {
        // FR-FCFS-lite with demand priority: engine reads (lazy-copy
        // drains) only issue when no demand read is ready, bounding their
        // bandwidth interference (§III-A1 limits outstanding asynchronous
        // copies for the same reason).
        let is_demand = |e: &RpqEntry| matches!(e.origin, ReadOrigin::Llc(_));
        let ready = |e: &RpqEntry| self.dram.bank_ready(now, e.addr);
        let pick = self
            .rpq
            .iter()
            .position(|e| is_demand(e) && ready(e) && self.dram.is_row_hit(e.addr))
            .or_else(|| self.rpq.iter().position(|e| is_demand(e) && ready(e)))
            .or_else(|| {
                self.rpq
                    .iter()
                    .position(|e| ready(e) && self.dram.is_row_hit(e.addr))
            })
            .or_else(|| self.rpq.iter().position(ready));
        let Some(idx) = pick else { return false };
        let e = self.rpq.remove(idx).expect("index valid");
        let (done, outcome) = self.dram.access(now, e.addr);
        self.note_row(outcome);
        self.stats.reads += 1;
        let _ = e.enq;
        self.inflight.push(Inflight { done, addr: e.addr, kind: InflightKind::Read(e.origin) });
        true
    }

    fn issue_write(&mut self, now: Cycle, mem: &mut SparseMem) -> bool {
        let pick = self
            .wpq
            .iter()
            .position(|e| self.dram.bank_ready(now, e.addr) && self.dram.is_row_hit(e.addr))
            .or_else(|| self.wpq.iter().position(|e| self.dram.bank_ready(now, e.addr)));
        let Some(idx) = pick else { return false };
        let e = self.wpq.remove(idx).expect("index valid");
        let (done, outcome) = self.dram.access(now, e.addr);
        self.note_row(outcome);
        self.stats.writes += 1;
        // Apply functionally at issue: any later read goes through the RPQ
        // behind this write's bank occupancy, and reads that raced ahead
        // were already served by WPQ forwarding.
        mem.write_line(e.addr, e.data);
        self.inflight.push(Inflight { done, addr: e.addr, kind: InflightKind::Write });
        true
    }

    fn note_row(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::engine::NullEngine;
    use crate::packet::Node;

    fn mk() -> (MemCtrl, DelayQueue<Packet>, SparseMem, NullEngine) {
        let dram = crate::dram::Ddr4Channel::new(
            DramConfig {
                banks: 4,
                row_bytes: 1024,
                t_rcd: 5,
                t_rp: 5,
                t_cl: 5,
                t_burst: 2,
                ..DramConfig::default()
            },
            1,
        );
        let mc = MemCtrl::new(0, McConfig::default(), Box::new(dram));
        (mc, DelayQueue::new(0), SparseMem::new(), NullEngine)
    }

    fn run(
        mc: &mut MemCtrl,
        input: &mut DelayQueue<Packet>,
        mem: &mut SparseMem,
        eng: &mut NullEngine,
        cycles: Cycle,
    ) -> Vec<Packet> {
        let mut got = Vec::new();
        for now in 0..cycles {
            let mut out = Vec::new();
            mc.tick(now, input, eng, mem, &mut out);
            got.extend(out.into_iter().map(|(p, _)| p));
        }
        got
    }

    #[test]
    fn read_returns_memory_contents() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        mem.write_line(PhysAddr(0x40), LineData::splat(9));
        input.push(0, Packet::read(PhysAddr(0x40), Node::Mc(0)));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 50);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].cmd, MemCmd::ReadResp);
        assert_eq!(resps[0].data, Some(LineData::splat(9)));
        assert!(mc.idle());
    }

    #[test]
    fn write_then_read_sees_new_data() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        input.push(0, Packet::write(PhysAddr(0x80), LineData::splat(7), Node::Mc(0)));
        input.push(0, Packet::read(PhysAddr(0x80), Node::Mc(0)));
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 60);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].data, Some(LineData::splat(7)));
    }

    #[test]
    fn wpq_forwarding_counts() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        input.push(0, Packet::write(PhysAddr(0x80), LineData::splat(7), Node::Mc(0)));
        input.push(0, Packet::read(PhysAddr(0x80), Node::Mc(0)));
        let _ = run(&mut mc, &mut input, &mut mem, &mut eng, 60);
        assert!(mc.stats.wpq_forwards >= 1 || mc.stats.reads == 1);
    }

    #[test]
    fn many_reads_all_complete() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        for i in 0..20u64 {
            mem.write_line(PhysAddr(i * 64), LineData::splat(i as u8));
            input.push(0, Packet::read(PhysAddr(i * 64), Node::Mc(0)));
        }
        let resps = run(&mut mc, &mut input, &mut mem, &mut eng, 500);
        assert_eq!(resps.len(), 20);
        for r in &resps {
            let want = (r.addr.0 / 64) as u8;
            assert_eq!(r.data, Some(LineData::splat(want)));
        }
        assert!(mc.stats.row_hits > 0, "sequential reads should row-hit");
    }

    #[test]
    fn writes_drain_eventually() {
        let (mut mc, mut input, mut mem, mut eng) = mk();
        for i in 0..10u64 {
            input.push(0, Packet::write(PhysAddr(i * 64), LineData::splat(1), Node::Mc(0)));
        }
        let _ = run(&mut mc, &mut input, &mut mem, &mut eng, 500);
        assert!(mc.idle());
        assert_eq!(mc.stats.writes, 10);
        assert_eq!(mem.read_line(PhysAddr(0)), LineData::splat(1));
    }
}
