//! Top-level system: wires cores, L1s, the LLC, the interconnect, memory
//! controllers, DRAM channels, and the copy engine, and runs the clock.

use crate::bus::Bus;
use crate::cache::l1::{L1Out, L1};
use crate::cache::llc::{Llc, LlcOut};
use crate::cache::{CoreToL1, L1ToCore, L1ToLlc, LlcToL1};
use crate::config::SystemConfig;
use crate::core::{Core, CoreOut};
use crate::data::{LineData, SparseMem};
use crate::engine::{CopyEngine, NullEngine};
use crate::link::DelayQueue;
use crate::mc::MemCtrl;
use crate::packet::LazyDesc;
use crate::program::Program;
use crate::stats::RunStats;
use crate::addr::{lines_of, PhysAddr};
use crate::Cycle;

/// Why a run stopped early. Both variants carry enough per-component
/// state — memory-controller queue depths and per-core pipeline snapshots
/// — that a hung run is debuggable from the error value alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget was exhausted before all programs finished.
    Timeout {
        /// Budget that was exceeded.
        max_cycles: Cycle,
        /// Cores that had not finished.
        unfinished: Vec<usize>,
        /// Per-MC (rpq, wpq, inflight) depths at the timeout.
        mc_queues: Vec<(usize, usize, usize)>,
        /// Per-core pipeline snapshots (ROB head, fence state, store
        /// buffer, outstanding loads) at the timeout.
        cores: Vec<String>,
    },
    /// The liveness watchdog fired: no component made forward progress
    /// (retires, DRAM accesses, LLC activity) for a whole observation
    /// window while work was still outstanding.
    Livelock {
        /// Cycle at which the watchdog gave up.
        at: Cycle,
        /// Consecutive progress-free ticks that triggered it.
        idle_for: Cycle,
        /// Cores that had not finished.
        unfinished: Vec<usize>,
        /// Per-MC (rpq, wpq, inflight) depths when the watchdog fired.
        mc_queues: Vec<(usize, usize, usize)>,
        /// Per-core pipeline snapshots when the watchdog fired.
        cores: Vec<String>,
    },
}

impl SimError {
    /// Per-MC (rpq, wpq, inflight) depths captured when the run stopped.
    pub fn mc_queues(&self) -> &[(usize, usize, usize)] {
        match self {
            SimError::Timeout { mc_queues, .. } | SimError::Livelock { mc_queues, .. } => mc_queues,
        }
    }

    /// Per-core pipeline snapshots captured when the run stopped.
    pub fn core_states(&self) -> &[String] {
        match self {
            SimError::Timeout { cores, .. } | SimError::Livelock { cores, .. } => cores,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Timeout { max_cycles, unfinished, mc_queues, cores } => {
                writeln!(
                    f,
                    "simulation exceeded {max_cycles} cycles; unfinished cores {unfinished:?}"
                )?;
                writeln!(f, "  mc queues (rpq, wpq, inflight): {mc_queues:?}")?;
                for c in cores {
                    writeln!(f, "  {c}")?;
                }
                Ok(())
            }
            SimError::Livelock { at, idle_for, unfinished, mc_queues, cores } => {
                writeln!(
                    f,
                    "livelock: no forward progress for {idle_for} ticks \
(gave up at cycle {at}); unfinished cores {unfinished:?}"
                )?;
                writeln!(f, "  mc queues (rpq, wpq, inflight): {mc_queues:?}")?;
                for c in cores {
                    writeln!(f, "  {c}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How the run loop advances simulated time. All three modes execute the
/// same architectural events at the same cycles; they differ only in how
/// much per-cycle work is provably elidable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Execute every component on every cycle, never skipping ahead.
    /// Slowest; useful for debugging the schedulers themselves.
    TickByTick,
    /// Execute every component on every *executed* cycle, jumping over
    /// cycles only when the whole machine is provably idle (the legacy
    /// scheduler).
    Conservative,
    /// Execute the same cycle set as [`SchedMode::Conservative`], but
    /// within each executed cycle skip components that provably cannot
    /// act, batching their idle accounting. The default.
    EventDriven,
}

/// Cached readiness of a component, valid until it next executes: all
/// scheduling-relevant state of a core mutates only inside its own phase
/// (inbox arrival is covered separately by a queue peek), so the verdict
/// computed right after an execution holds for every elided cycle since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Readiness {
    /// Has immediate internal work: must execute every cycle.
    Active,
    /// Nothing to do before this cycle (`Cycle::MAX` = only external
    /// input can wake it).
    WakeAt(Cycle),
    /// The core ran its program to completion: never self-wakes and its
    /// elided cycles are not idle-accounted (a finished core's tick is a
    /// no-op, not a stall).
    Finished,
}

/// A complete simulated machine.
pub struct System {
    cfg: SystemConfig,
    now: Cycle,
    cores: Vec<Core>,
    l1s: Vec<L1>,
    llc: Llc,
    bus: Bus,
    mcs: Vec<MemCtrl>,
    engine: Box<dyn CopyEngine>,
    mem: SparseMem,
    core_to_l1: Vec<DelayQueue<CoreToL1>>,
    l1_to_core: Vec<DelayQueue<L1ToCore>>,
    /// Request virtual network (GetS/GetM/Clwb/NtWrite/Mclazy/Mcfree).
    l1_to_llc: Vec<DelayQueue<L1ToLlc>>,
    /// Response virtual network (RecallAck/InvalAck/PutM): never blocked
    /// by stalled requests, which would deadlock the directory.
    l1_to_llc_resp: Vec<DelayQueue<L1ToLlc>>,
    llc_to_l1: Vec<DelayQueue<LlcToL1>>,
    sched: SchedMode,
    /// Executed cycles during which core `i` was elided but not yet
    /// accounted (flushed before the core next runs, and at run exit).
    idle_pending: Vec<u64>,
    /// First cycle of core `i`'s current elision streak.
    idle_first: Vec<Cycle>,
    /// Cached per-core readiness, recomputed after each execution of the
    /// core's phase. `Active` is the safe reset value (never elides).
    core_ready: Vec<Readiness>,
    /// Cached per-controller readiness (never `Finished`); engine
    /// background work is probed fresh each cycle via `needs_tick`, since
    /// engine state is shared across controllers.
    mc_ready: Vec<Readiness>,
    /// Per-phase output buffers, reused across cycles so the hot loop
    /// allocates nothing once capacities have warmed up.
    scratch_core: CoreOut,
    scratch_l1: L1Out,
    scratch_llc: LlcOut,
    scratch_mc: Vec<(crate::packet::Packet, Cycle)>,
    /// Interconnect fault streams (None ⇔ empty plan).
    link_fault: Option<LinkFaults>,
    #[cfg(feature = "check-invariants")]
    checker: crate::check::Checker,
}

/// Decision streams for interconnect faults (jitter, duplication).
struct LinkFaults {
    jitter: crate::fault::FaultStream,
    dup: crate::fault::FaultStream,
}

/// Whether an interconnect packet may safely be delivered twice: posted
/// (unacked) writes are idempotent re-applications of the same line data,
/// `Mcfree` is a hint, and the LLC ignores stray `MclazyAck`s. Everything
/// matched against an outstanding request (responses, acks that complete
/// CLWBs, engine commands that mutate the CTT) must not be duplicated.
fn dup_safe(pkt: &crate::packet::Packet) -> bool {
    use crate::packet::MemCmd;
    match pkt.cmd {
        MemCmd::Mcfree(_) | MemCmd::MclazyAck => true,
        MemCmd::WriteReq | MemCmd::LazyDestWrite => !pkt.needs_ack,
        _ => false,
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "System(t={}, {} cores, {} MCs)", self.now, self.cores.len(), self.mcs.len())
    }
}

impl System {
    /// Build a baseline system (no lazy-copy engine) running `programs`.
    ///
    /// # Panics
    /// Panics if `programs.len() != cfg.cores`.
    pub fn new(cfg: SystemConfig, programs: Vec<Box<dyn Program>>) -> System {
        System::with_engine(cfg, programs, Box::new(NullEngine))
    }

    /// Build a system with a custom copy engine (the `mcsquare` crate's
    /// (MC)² engine, or any other [`CopyEngine`]).
    pub fn with_engine(
        cfg: SystemConfig,
        programs: Vec<Box<dyn Program>>,
        engine: Box<dyn CopyEngine>,
    ) -> System {
        assert_eq!(programs.len(), cfg.cores, "one program per core");
        let cores: Vec<Core> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(i, cfg.core.clone(), p))
            .collect();
        let l1s: Vec<L1> = (0..cfg.cores).map(|i| L1::new(i, cfg.l1.clone())).collect();
        let llc = Llc::new(cfg.llc.clone(), cfg.channels);
        let bus = Bus::new(cfg.channels, cfg.links.llc_mc, cfg.links.mc_mc);
        let mut mcs: Vec<MemCtrl> = (0..cfg.channels)
            .map(|i| MemCtrl::new(i, cfg.mc.clone(), crate::dram::build(&cfg.dram, cfg.channels)))
            .collect();
        for mc in &mut mcs {
            mc.set_fault_plan(&cfg.fault);
        }
        let link_fault = (!cfg.fault.is_empty()).then(|| LinkFaults {
            jitter: cfg.fault.stream(crate::fault::domain::LINK_JITTER, 0),
            dup: cfg.fault.stream(crate::fault::domain::LINK_DUP, 0),
        });
        fn mk<T>(n: usize, lat: Cycle) -> Vec<DelayQueue<T>> {
            (0..n).map(|_| DelayQueue::new(lat)).collect()
        }
        let n = cfg.cores;
        System {
            now: 0,
            cores,
            l1s,
            llc,
            bus,
            mcs,
            engine,
            mem: SparseMem::new(),
            core_to_l1: mk(n, cfg.links.core_l1),
            l1_to_core: mk(n, cfg.links.core_l1),
            l1_to_llc: mk(n, cfg.links.l1_llc),
            l1_to_llc_resp: mk(n, cfg.links.l1_llc),
            llc_to_l1: mk(n, cfg.links.l1_llc),
            sched: SchedMode::EventDriven,
            idle_pending: vec![0; n],
            idle_first: vec![0; n],
            core_ready: vec![Readiness::Active; n],
            mc_ready: vec![Readiness::Active; cfg.channels],
            scratch_core: CoreOut::default(),
            scratch_l1: L1Out::default(),
            scratch_llc: LlcOut::default(),
            scratch_mc: Vec::new(),
            link_fault,
            #[cfg(feature = "check-invariants")]
            checker: crate::check::Checker::default(),
            cfg,
        }
    }

    /// Put `pkt` on the memory interconnect, applying any configured link
    /// faults: jitter delays the send, and duplication-safe packets may be
    /// delivered twice (one cycle apart). Rolls are per-send, so the fault
    /// schedule is independent of idle skip-ahead.
    fn send_bus(&mut self, now: Cycle, pkt: crate::packet::Packet, extra: Cycle) {
        let mut extra = extra;
        if let Some(lf) = self.link_fault.as_mut() {
            if lf.jitter.roll(self.cfg.fault.link_jitter_rate) {
                extra += self.cfg.fault.link_jitter_cycles;
            }
            if lf.dup.roll(self.cfg.fault.link_dup_rate) && dup_safe(&pkt) {
                let dup = pkt.clone();
                #[cfg(feature = "check-invariants")]
                self.checker.observe_send(&dup);
                self.bus.send(now, dup, extra + 1);
            }
        }
        #[cfg(feature = "check-invariants")]
        self.checker.observe_send(&pkt);
        self.bus.send(now, pkt, extra);
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Disable idle skip-ahead (for debugging; results are identical).
    /// `false` selects [`SchedMode::TickByTick`]; `true` restores the
    /// default [`SchedMode::EventDriven`].
    pub fn set_fast_forward(&mut self, on: bool) {
        self.sched = if on { SchedMode::EventDriven } else { SchedMode::TickByTick };
    }

    /// Select the run-loop scheduler (see [`SchedMode`]). All modes
    /// produce identical architectural results.
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched = mode;
    }

    /// The currently selected run-loop scheduler.
    pub fn sched_mode(&self) -> SchedMode {
        self.sched
    }

    /// Write bytes directly into simulated DRAM, bypassing timing
    /// (workload initialisation).
    pub fn poke(&mut self, addr: PhysAddr, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    /// Read bytes directly from simulated DRAM, bypassing timing and caches.
    /// Note: dirty cached data is not reflected; use after a drained run.
    pub fn peek(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        self.mem.read_bytes(addr, len)
    }

    /// Read bytes as the coherence protocol would see them: the owning
    /// L1's copy wins, then the LLC, then DRAM. Test helper.
    pub fn peek_coherent(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut rem = len;
        while rem > 0 {
            let off = a.line_off() as usize;
            let take = rem.min(64 - off);
            let line = self
                .l1s
                .iter()
                .rev()
                .find_map(|l1| l1.peek_line(a).copied())
                .or_else(|| self.llc.peek_line(a).copied())
                .unwrap_or_else(|| self.mem.read_line(a));
            out.extend_from_slice(line.read(off, take));
            a = a.add(take as u64);
            rem -= take;
        }
        out
    }

    /// Advance one cycle, ticking every component unconditionally.
    pub fn tick(&mut self) {
        // A caller may interleave manual ticks with event-driven runs:
        // settle any batched idle accounting before executing everything,
        // and drop the cached readiness verdicts (`Active` never elides).
        self.flush_idle();
        self.reset_readiness();
        let now = self.now;
        for i in 0..self.cores.len() {
            self.phase_core(now, i);
        }
        for i in 0..self.l1s.len() {
            self.phase_l1(now, i);
        }
        self.phase_llc(now);
        for i in 0..self.mcs.len() {
            self.phase_mc(now, i);
        }
        self.tick_epilogue(now);
    }

    /// Advance one cycle, skipping components that provably cannot act.
    /// Executes exactly the same architectural events as [`System::tick`]
    /// at this cycle; elided cores have their per-cycle accounting batched
    /// and replayed by [`Core::account_idle`] before they next run.
    fn tick_event(&mut self) {
        let now = self.now;

        // 1. Cores. A core can act only when its inbox has a deliverable
        //    response, it has internal work, or an internal timer (compute
        //    completion, delayed load issue) has matured. The cached
        //    verdict makes the elided-cycle check O(1).
        for i in 0..self.cores.len() {
            let ready = match self.core_ready[i] {
                Readiness::Active => true,
                Readiness::WakeAt(w) => w <= now,
                Readiness::Finished => false,
            };
            if !ready && self.l1_to_core[i].peek(now).is_none() {
                if self.core_ready[i] != Readiness::Finished {
                    if self.idle_pending[i] == 0 {
                        self.idle_first[i] = now;
                    }
                    self.idle_pending[i] += 1;
                }
                continue;
            }
            self.flush_idle_core(i);
            self.phase_core(now, i);
            let c = &self.cores[i];
            self.core_ready[i] = if c.finished() {
                Readiness::Finished
            } else if c.has_internal_work() {
                Readiness::Active
            } else {
                Readiness::WakeAt(c.next_event().unwrap_or(Cycle::MAX))
            };
        }

        // 2. L1s are purely message-driven: no input, no work.
        for i in 0..self.l1s.len() {
            if self.llc_to_l1[i].peek(now).is_some() || self.core_to_l1[i].peek(now).is_some() {
                self.phase_l1(now, i);
            }
        }

        // 3. LLC: deferred replays or any deliverable input.
        if self.llc.has_retries()
            || self.bus.to_llc.peek(now).is_some()
            || self.l1_to_llc.iter().any(|q| q.peek(now).is_some())
            || self.l1_to_llc_resp.iter().any(|q| q.peek(now).is_some())
        {
            self.phase_llc(now);
        }

        // 4. MCs: deliverable input, queued/in-flight work, a due refresh
        //    window, or engine background work. The cached readiness covers
        //    controller-internal state (valid until the controller next
        //    ticks); `needs_tick` is probed fresh every cycle because the
        //    engine's state is shared and another controller's phase may
        //    have changed it. Refresh windows count as work so `sync`
        //    applies them (and stats/trace see them) at exactly the cycles
        //    the full tick would.
        for i in 0..self.mcs.len() {
            let ready = match self.mc_ready[i] {
                Readiness::Active => true,
                Readiness::WakeAt(w) => w <= now,
                Readiness::Finished => unreachable!("controllers never finish"),
            };
            if ready || self.bus.to_mc[i].peek(now).is_some() || self.engine.needs_tick(i) {
                self.phase_mc(now, i);
                self.mc_ready[i] = match self.mcs[i].readiness() {
                    None => Readiness::Active,
                    Some(w) => Readiness::WakeAt(w),
                };
            }
        }

        self.tick_epilogue(now);
    }

    /// Phase 1 for core `i`: consume L1 responses, then advance.
    fn phase_core(&mut self, now: Cycle, i: usize) {
        while let Some(msg) = self.l1_to_core[i].pop(now) {
            self.cores[i].handle_l1(now, msg);
        }
        let mut out = std::mem::take(&mut self.scratch_core);
        self.cores[i].tick(now, &mut out);
        for m in out.to_l1.drain(..) {
            self.core_to_l1[i].push(now, m);
        }
        self.scratch_core = out;
    }

    /// Phase 2 for L1 `i`: consume LLC messages, then core requests (with
    /// flow control), producing core responses and LLC requests.
    fn phase_l1(&mut self, now: Cycle, i: usize) {
        let mut out = std::mem::take(&mut self.scratch_l1);
        while let Some(msg) = self.llc_to_l1[i].pop(now) {
            self.l1s[i].handle_llc(now, msg, &mut out);
        }
        for _ in 0..8 {
            let Some(msg) = self.core_to_l1[i].peek(now) else { break };
            let msg = msg.clone();
            if self.l1s[i].handle_core(now, &msg, &mut out) {
                let _ = self.core_to_l1[i].pop(now);
            } else {
                break;
            }
        }
        for (m, extra) in out.to_core.drain(..) {
            self.l1_to_core[i].push_after(now, extra, m);
        }
        for m in out.to_llc.drain(..) {
            // Route by virtual network: responses must never queue
            // behind a blocked request.
            match m {
                L1ToLlc::RecallAck { .. } | L1ToLlc::InvalAck { .. } | L1ToLlc::PutM { .. } => {
                    self.l1_to_llc_resp[i].push(now, m)
                }
                other => self.l1_to_llc[i].push(now, other),
            }
        }
        self.scratch_l1 = out;
    }

    /// Phase 3: LLC replays deferred work, consumes L1 requests (performing
    /// the MCLAZY snoop where needed), consumes memory responses.
    fn phase_llc(&mut self, now: Cycle) {
        let mut out = std::mem::take(&mut self.scratch_llc);
        // Responses first: they are always accepted and unblock MSHRs.
        for i in 0..self.l1_to_llc_resp.len() {
            while let Some(msg) = self.l1_to_llc_resp[i].pop(now) {
                let accepted = self.llc.handle_l1(now, msg, &mut out);
                debug_assert!(accepted, "responses are always accepted");
            }
        }
        self.llc.begin_cycle(now, &mut out);
        for i in 0..self.l1_to_llc.len() {
            for _ in 0..8 {
                let Some(msg) = self.l1_to_llc[i].peek(now) else { break };
                if let L1ToLlc::Mclazy { desc, .. } = msg {
                    let desc = *desc;
                    let queues: Vec<&DelayQueue<L1ToLlc>> = self
                        .l1_to_llc_resp
                        .iter()
                        .collect();
                    Self::snoop_mclazy(&mut self.l1s, &mut self.llc, &queues, desc, &mut out);
                }
                let msg = self.l1_to_llc[i].peek(now).expect("still there").clone();
                if self.llc.handle_l1(now, msg, &mut out) {
                    let _ = self.l1_to_llc[i].pop(now);
                } else {
                    break;
                }
            }
        }
        while let Some(pkt) = self.bus.to_llc.pop(now) {
            self.llc.handle_pkt(now, pkt, &mut out);
        }
        for (l1, m, extra) in out.to_l1.drain(..) {
            self.llc_to_l1[l1].push_after(now, extra, m);
        }
        for (pkt, extra) in out.to_bus.drain(..) {
            self.send_bus(now, pkt, extra);
        }
        self.scratch_llc = out;
    }

    /// Phase 4 for memory controller `i`.
    fn phase_mc(&mut self, now: Cycle, i: usize) {
        let mut out = std::mem::take(&mut self.scratch_mc);
        // Split-borrow: temporarily take the input queue.
        let mut input = std::mem::replace(&mut self.bus.to_mc[i], DelayQueue::new(0));
        self.mcs[i].tick(now, &mut input, self.engine.as_mut(), &mut self.mem, &mut out);
        self.bus.to_mc[i] = input;
        for (pkt, extra) in out.drain(..) {
            self.send_bus(now, pkt, extra);
        }
        self.scratch_mc = out;
    }

    /// End of an executed cycle: periodic invariant checks, trace samples,
    /// and the clock edge.
    fn tick_epilogue(&mut self, now: Cycle) {
        let _ = now;

        #[cfg(feature = "check-invariants")]
        {
            self.checker.ticks += 1;
            if self.checker.ticks.is_multiple_of(1024) {
                self.validate_invariants(false);
            }
        }

        #[cfg(feature = "trace")]
        self.trace_sample(now);

        self.now += 1;
    }

    /// Replay core `i`'s batched idle accounting (no-op when none).
    fn flush_idle_core(&mut self, i: usize) {
        let k = self.idle_pending[i];
        if k > 0 {
            self.idle_pending[i] = 0;
            self.cores[i].account_idle(k, self.idle_first[i]);
        }
    }

    /// Replay all cores' batched idle accounting (run exits, mode mixes).
    fn flush_idle(&mut self) {
        for i in 0..self.cores.len() {
            self.flush_idle_core(i);
        }
    }

    /// Invalidate all cached readiness verdicts. Called whenever component
    /// state may have changed outside the event-driven loop's own phases
    /// (manual ticks, run entry after external setters).
    fn reset_readiness(&mut self) {
        self.core_ready.fill(Readiness::Active);
        self.mc_ready.fill(Readiness::Active);
    }

    /// Push one interval sample per memory controller into the armed
    /// trace sink when an epoch boundary has been reached. Observational
    /// only: reads queue depths and cumulative counters, never sim state.
    /// Idle skip-ahead lands on event cycles, so a jumped-over boundary is
    /// sampled at the first tick after it (the sample carries its actual
    /// cycle; intervals are differenced, not assumed uniform).
    #[cfg(feature = "trace")]
    fn trace_sample(&mut self, now: Cycle) {
        let mcs = &self.mcs;
        mcs_trace::with_sink(|sink| {
            if !sink.series.due(now) {
                return;
            }
            for mc in mcs.iter() {
                let (rpq, wpq, inflight) = mc.queue_depths();
                sink.series.push(mcs_trace::McSample {
                    cycle: now,
                    mc: mc.id as u16,
                    rpq: rpq as u32,
                    wpq: wpq as u32,
                    inflight: inflight as u32,
                    reads: mc.stats.reads,
                    writes: mc.stats.writes,
                    engine_accesses: mc.stats.engine_reads + mc.stats.engine_writes,
                    row_hits: mc.stats.row_hits,
                    row_misses: mc.stats.row_misses + mc.stats.row_conflicts,
                    refreshes: mc.stats.refreshes,
                });
            }
            sink.series.advance(now);
        });
    }

    /// The MCLAZY broadcast snoop (§III-B1 step 2): write back every dirty
    /// source line from the L1s and the LLC, and invalidate every
    /// destination line everywhere. Performed atomically when the MCLAZY
    /// message reaches the LLC; its timing cost is carried by the CLWB
    /// instructions the software wrapper issues per source line (§IV).
    fn snoop_mclazy(
        l1s: &mut [L1],
        llc: &mut Llc,
        in_flight: &[&DelayQueue<L1ToLlc>],
        desc: LazyDesc,
        out: &mut LlcOut,
    ) {
        for line in lines_of(desc.src, desc.size) {
            let mut merged: Option<LineData> = None;
            for l1 in l1s.iter_mut() {
                if let Some(d) = l1.snoop_writeback(line) {
                    merged = Some(d);
                }
            }
            // Dirty data may also be on the wire between an L1 and the
            // LLC (an eviction's PutM or a CLWB's payload). The paper's
            // guarantee — writebacks reach the controller before the
            // MCLAZY packet — requires the snoop to see those too, or the
            // LLC would absorb them dirty after the CTT already assumed
            // memory holds the source. The newest in-flight copy wins.
            for q in in_flight {
                for msg in q.iter() {
                    match msg {
                        L1ToLlc::PutM { line: l, data, .. } if l.line_base() == line => {
                            merged = Some(*data);
                        }
                        L1ToLlc::Clwb { line: l, data: Some(d), .. }
                            if l.line_base() == line =>
                        {
                            merged = Some(*d);
                        }
                        L1ToLlc::RecallAck { line: l, data: Some(d), .. }
                            if l.line_base() == line =>
                        {
                            merged = Some(*d);
                        }
                        _ => {}
                    }
                }
            }
            match merged {
                Some(d) => llc.snoop_merge_writeback(line, d, out),
                None => llc.snoop_writeback(line, out),
            }
        }
        for line in lines_of(desc.dst, desc.size) {
            for l1 in l1s.iter_mut() {
                l1.snoop_invalidate(line);
            }
            llc.snoop_invalidate(line);
        }
    }

    fn quiescent_links(&self, at: Cycle) -> bool {
        self.core_to_l1.iter().all(|q| q.peek(at).is_none())
            && self.l1_to_core.iter().all(|q| q.peek(at).is_none())
            && self.l1_to_llc.iter().all(|q| q.peek(at).is_none())
            && self.l1_to_llc_resp.iter().all(|q| q.peek(at).is_none())
            && self.llc_to_l1.iter().all(|q| q.peek(at).is_none())
            && self.bus.to_llc.peek(at).is_none()
            && self.bus.to_mc.iter().all(|q| q.peek(at).is_none())
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(|c| c.finished())
            && self.quiescent_links(Cycle::MAX)
            && self.mcs.iter().all(|m| m.idle())
            && !self.llc.busy()
            && !self.engine.busy()
    }

    fn skip_target(&self) -> Option<Cycle> {
        // Only skip when no link has a deliverable message next cycle and
        // no core can make internal progress; then jump to the earliest
        // future event.
        let next = self.now + 1;
        if !self.quiescent_links(next) {
            return None;
        }
        let mut hint: Option<Cycle> = None;
        let mut merge = |c: Option<Cycle>| {
            hint = match (hint, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        for q in &self.core_to_l1 {
            merge(q.next_ready());
        }
        for q in &self.l1_to_core {
            merge(q.next_ready());
        }
        for q in &self.l1_to_llc {
            merge(q.next_ready());
        }
        for q in &self.l1_to_llc_resp {
            merge(q.next_ready());
        }
        for q in &self.llc_to_l1 {
            merge(q.next_ready());
        }
        merge(self.bus.next_event());
        for m in &self.mcs {
            merge(m.next_event());
        }
        for c in &self.cores {
            merge(c.next_event());
        }
        match hint {
            Some(h) if h > next => Some(h),
            _ => None,
        }
    }

    /// Run until every program finishes and all queues drain, or until
    /// `max_cycles` elapse.
    ///
    /// # Errors
    /// Returns [`SimError::Timeout`] if the budget is exhausted first.
    pub fn run(&mut self, max_cycles: Cycle) -> Result<RunStats, SimError> {
        self.run_inner(max_cycles, None)
    }

    /// Like [`System::run`], but with a liveness watchdog: if no component
    /// makes forward progress (core retires, DRAM accesses or forwards,
    /// LLC hits/misses) for `window` consecutive executed ticks while work
    /// is still outstanding, the run aborts with [`SimError::Livelock`]
    /// carrying per-component queue snapshots. Ticks, not cycles: idle
    /// skip-ahead jumps (which are legitimate waits) never trip it.
    ///
    /// # Errors
    /// [`SimError::Timeout`] or [`SimError::Livelock`].
    pub fn run_with_watchdog(
        &mut self,
        max_cycles: Cycle,
        window: Cycle,
    ) -> Result<RunStats, SimError> {
        self.run_inner(max_cycles, Some(window))
    }

    /// Monotonic activity measure for the liveness watchdog.
    fn progress_metric(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.retired).sum::<u64>()
            + self
                .mcs
                .iter()
                .map(|m| m.stats.reads + m.stats.writes + m.stats.wpq_forwards)
                .sum::<u64>()
            + self.llc.stats.hits
            + self.llc.stats.misses
    }

    fn unfinished_cores(&self) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.finished())
            .map(|(i, _)| i)
            .collect()
    }

    fn mc_queue_snapshot(&self) -> Vec<(usize, usize, usize)> {
        self.mcs.iter().map(|m| m.queue_depths()).collect()
    }

    fn core_snapshot(&self) -> Vec<String> {
        self.cores.iter().map(|c| c.debug_state()).collect()
    }

    fn run_inner(
        &mut self,
        max_cycles: Cycle,
        watchdog: Option<Cycle>,
    ) -> Result<RunStats, SimError> {
        let start = self.now;
        let mut stable = 0u32;
        let mut last_metric = self.progress_metric();
        let mut idle_ticks: Cycle = 0;
        // External setters (fault plans, mode switches) may have touched
        // component state since the last run: start from a clean slate.
        self.reset_readiness();
        while self.now - start < max_cycles {
            match self.sched {
                SchedMode::EventDriven => self.tick_event(),
                _ => self.tick(),
            }
            if let Some(window) = watchdog {
                let m = self.progress_metric();
                if m != last_metric {
                    last_metric = m;
                    idle_ticks = 0;
                } else {
                    idle_ticks += 1;
                    if idle_ticks >= window && !self.all_done() {
                        self.flush_idle();
                        return Err(SimError::Livelock {
                            at: self.now,
                            idle_for: idle_ticks,
                            unfinished: self.unfinished_cores(),
                            mc_queues: self.mc_queue_snapshot(),
                            cores: self.core_snapshot(),
                        });
                    }
                }
            }
            if self.all_done() {
                // A few grace ticks so posted work settles, then stop.
                stable += 1;
                if stable >= 2 {
                    self.flush_idle();
                    #[cfg(feature = "check-invariants")]
                    self.validate_invariants(true);
                    return Ok(self.collect_stats());
                }
            } else {
                stable = 0;
                // Conservative idle skip: every core is stalled on external
                // events, and those events are all in the future. The cheap
                // all-cores-inactive gate runs first so configurations that
                // cannot skip (an active core) never pay for the link scan.
                // Under the event-driven scheduler the cached verdicts give
                // the same answer in O(cores): a core is `Active` exactly
                // when it had internal work at its last execution, and that
                // cannot change while it is elided.
                let cores_inactive = match self.sched {
                    SchedMode::TickByTick => false,
                    SchedMode::EventDriven => {
                        self.core_ready.iter().all(|r| *r != Readiness::Active)
                    }
                    SchedMode::Conservative => self
                        .cores
                        .iter()
                        .enumerate()
                        .all(|(i, c)| self.idle_pending[i] > 0 || c.finished() || !c_active(c)),
                };
                if cores_inactive {
                    if let Some(target) = self.skip_target() {
                        // With the watchdog armed, a skip of a whole
                        // observation window means nothing in the
                        // machine can act for `window` cycles while
                        // work is outstanding (e.g. an injected stall
                        // parked traffic inside a controller): that is
                        // a livelock, not a wait — report it rather
                        // than silently jumping over it.
                        if let Some(window) = watchdog {
                            if target.saturating_sub(self.now) >= window {
                                self.flush_idle();
                                return Err(SimError::Livelock {
                                    at: self.now,
                                    idle_for: target - self.now,
                                    unfinished: self.unfinished_cores(),
                                    mc_queues: self.mc_queue_snapshot(),
                                    cores: self.core_snapshot(),
                                });
                            }
                        }
                        self.now = target.max(self.now);
                    }
                }
            }
        }
        self.flush_idle();
        Err(SimError::Timeout {
            max_cycles,
            unfinished: self.unfinished_cores(),
            mc_queues: self.mc_queue_snapshot(),
            cores: self.core_snapshot(),
        })
    }

    /// Diagnostic snapshot of blocking state (for debugging stuck
    /// simulations; not a stable format).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "t={}", self.now);
        for c in &self.cores {
            let _ = writeln!(s, "  {}", c.debug_state());
        }
        for (i, l1) in self.l1s.iter().enumerate() {
            let _ = writeln!(s, "  l1[{i}] busy={}", l1.busy());
        }
        let _ = writeln!(s, "  llc busy={}", self.llc.busy());
        for (i, m) in self.mcs.iter().enumerate() {
            let _ = writeln!(s, "  mc[{i}] idle={} next={:?}", m.idle(), m.next_event());
        }
        let _ = writeln!(
            s,
            "  links: c2l={:?} l2c={:?} l2llc={:?} l2llc_resp={:?} llc2l={:?} bus_llc={} bus_mc={:?} engine_busy={}",
            self.core_to_l1.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.l1_to_core.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.l1_to_llc.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.l1_to_llc_resp.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.llc_to_l1.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.bus.to_llc.len(),
            self.bus.to_mc.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.engine.busy(),
        );
        s
    }

    /// Occupancy probe for diagnostics: (core loads issued, core SB, core
    /// ROB, per-L1 MSHRs, LLC MSHRs).
    pub fn probe(&self) -> (usize, usize, usize, Vec<usize>, usize) {
        (
            self.cores[0].issued_loads(),
            self.cores[0].sb_len(),
            self.cores[0].rob_len(),
            self.l1s.iter().map(|l| l.mshr_count()).collect(),
            self.llc.mshr_count(),
        )
    }

    /// MC queue depths + bus queue depths (diagnostics).
    pub fn probe_mc(&self) -> Vec<(usize, usize, usize, usize)> {
        self.mcs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let (r, w, f) = m.queue_depths();
                (r, w, f, self.bus.to_mc[i].len())
            })
            .collect()
    }

    /// Whether every core's program completed (may still be draining).
    pub fn cores_finished(&self) -> bool {
        self.cores.iter().all(|c| c.finished())
    }

    /// All malformed-packet audit reports across controllers.
    pub fn audit_reports(&self) -> Vec<String> {
        self.mcs.iter().flat_map(|m| m.audit_reports().iter().cloned()).collect()
    }

    /// Read bytes as the *materialized* logical memory image: like
    /// [`System::peek_coherent`], but lines the copy engine still tracks
    /// lazily are reconstructed through [`CopyEngine::peek_line`] instead
    /// of read stale from DRAM. This is the view a demand read would
    /// return, and the one differential checkers compare against an eager
    /// oracle. Meaningful after a drained run (no in-flight recons).
    pub fn peek_materialized(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut rem = len;
        while rem > 0 {
            let off = a.line_off() as usize;
            let take = rem.min(64 - off);
            let line = self
                .l1s
                .iter()
                .rev()
                .find_map(|l1| l1.peek_line(a).copied())
                .or_else(|| self.llc.peek_line(a).copied())
                .or_else(|| self.engine.peek_line(&self.mem, a.line_base()))
                .unwrap_or_else(|| self.mem.read_line(a));
            out.extend_from_slice(line.read(off, take));
            a = a.add(take as u64);
            rem -= take;
        }
        out
    }

    /// Audit global invariants: coherence directory agreement, copy-engine
    /// internal state, CTT/cache exclusivity, and stats sanity. Called
    /// periodically from [`System::tick`] and, with `quiescent = true`
    /// (which adds the strict end-state checks), when a run completes.
    ///
    /// # Panics
    /// Panics describing the first violated invariant.
    #[cfg(feature = "check-invariants")]
    pub fn validate_invariants(&mut self, quiescent: bool) {
        use std::collections::HashMap;

        // --- Coherence: MSI single-owner + directory agreement ---------
        // owners: line -> L1s holding it Modified; resident: line -> L1s
        // holding it in any state (for inclusion).
        let mut owners: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut resident: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut dirty_m: HashMap<u64, usize> = HashMap::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            for (line, modified, dirty) in l1.check_lines() {
                resident.entry(line.0).or_default().push(i);
                if modified {
                    owners.entry(line.0).or_default().push(i);
                    if dirty {
                        dirty_m.insert(line.0, i);
                    }
                }
            }
        }
        for (line, who) in &owners {
            assert!(
                who.len() <= 1,
                "invariant violation (coherence): line {:#x} held Modified by \
                 multiple L1s {who:?} at cycle {}",
                line,
                self.now
            );
        }
        let dir: HashMap<u64, (Option<usize>, u32)> = self
            .llc
            .check_lines()
            .into_iter()
            .map(|(a, owner, sharers)| (a.0, (owner, sharers)))
            .collect();
        for (line, who) in &owners {
            let i = who[0];
            let agrees = dir.get(line).is_some_and(|(owner, _)| *owner == Some(i));
            // Mid-run, a recall/grant for the line may be in flight: the
            // LLC then holds an MSHR serialising the transition.
            let in_transition = !quiescent
                && (self.llc.check_has_mshr(PhysAddr(*line)) || self.l1s[i].check_has_mshr(PhysAddr(*line)));
            assert!(
                agrees || in_transition,
                "invariant violation (coherence): L1 {i} holds line {:#x} \
                 Modified but the directory says {:?} and no transaction is \
                 in flight, at cycle {}",
                line,
                dir.get(line),
                self.now
            );
        }
        // Inclusion: an L1-resident line is tracked by the inclusive LLC
        // (resident, or mid-eviction with an MSHR serialising it).
        for (line, who) in &resident {
            assert!(
                self.llc.check_tracks(PhysAddr(*line)),
                "invariant violation (coherence): line {:#x} resident in \
                 L1s {who:?} but not tracked by the inclusive LLC, at cycle {}",
                line,
                self.now
            );
        }

        // --- Copy engine: internal audit + CTT/cache exclusivity -------
        if let Err(msg) = self.engine.validate(self.now) {
            panic!("invariant violation (copy engine) at cycle {}: {msg}", self.now);
        }
        for line in self.engine.reconstructing_lines() {
            assert!(
                !dirty_m.contains_key(&line.0),
                "invariant violation (exclusivity): core {} holds a dirty \
                 Modified copy of line {:#x} while the engine is \
                 reconstructing it from the CTT, at cycle {}",
                dirty_m[&line.0],
                line.0,
                self.now
            );
        }

        // --- Stats: exact stall attribution + monotonic counters --------
        if self.checker.core_snap.len() != self.cores.len() {
            self.checker.core_snap = vec![(0, 0, 0); self.cores.len()];
        }
        for (i, c) in self.cores.iter().enumerate() {
            if let Err(msg) = c.stats.check_stall_accounting() {
                panic!("invariant violation (stats, core {i}) at cycle {}: {msg}", self.now);
            }
            let cur = (c.stats.cycles, c.stats.retired, c.stats.stalled_cycles);
            let prev = self.checker.core_snap[i];
            assert!(
                cur.0 >= prev.0 && cur.1 >= prev.1 && cur.2 >= prev.2,
                "invariant violation (stats, core {i}): counters went \
                 backwards, {prev:?} -> {cur:?}, at cycle {}",
                self.now
            );
            self.checker.core_snap[i] = cur;
        }
        let mem_cur = (
            self.llc.stats.hits + self.llc.stats.misses,
            self.mcs.iter().map(|m| m.stats.reads + m.stats.writes).sum::<u64>(),
        );
        assert!(
            mem_cur.0 >= self.checker.mem_snap.0 && mem_cur.1 >= self.checker.mem_snap.1,
            "invariant violation (stats): LLC/MC counters went backwards, \
             {:?} -> {mem_cur:?}, at cycle {}",
            self.checker.mem_snap,
            self.now
        );
        self.checker.mem_snap = mem_cur;

        // --- Quiescence: strict end-state checks ------------------------
        if quiescent {
            self.checker.assert_quiescent();
            for (i, l1) in self.l1s.iter().enumerate() {
                assert_eq!(
                    l1.mshr_count(),
                    0,
                    "invariant violation (liveness): L1 {i} has MSHRs \
                     outstanding in a quiescent system"
                );
            }
            assert_eq!(
                self.llc.mshr_count(),
                0,
                "invariant violation (liveness): LLC has MSHRs outstanding \
                 in a quiescent system"
            );
            assert!(
                self.engine.reconstructing_lines().is_empty(),
                "invariant violation (liveness): reconstructions outstanding \
                 in a quiescent system: {:?}",
                self.engine.reconstructing_lines()
            );
        }
    }

    /// Collect statistics.
    pub fn collect_stats(&self) -> RunStats {
        RunStats {
            cycles: self.now,
            cores: self.cores.iter().map(|c| c.stats.clone()).collect(),
            l1: self.l1s.iter().map(|l| l.stats.clone()).collect(),
            llc: self.llc.stats.clone(),
            mcs: self.mcs.iter().map(|m| m.stats.clone()).collect(),
            engine: self.engine.counters().into_iter().collect(),
        }
    }
}

/// Heuristic: can this core make internal progress this cycle without any
/// new message arriving? Conservative (errs toward "yes, active"): skipping
/// is only allowed when this returns false.
fn c_active(core: &Core) -> bool {
    core.has_internal_work()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FixedProgram;
    use crate::uop::{StatTag, StoreData, Uop, UopKind};

    fn ld(addr: u64, size: u8) -> Uop {
        Uop::new(UopKind::Load { addr: PhysAddr(addr), size }, StatTag::App)
    }

    fn st(addr: u64, bytes: &[u8]) -> Uop {
        Uop::new(
            UopKind::Store {
                addr: PhysAddr(addr),
                size: bytes.len() as u8,
                data: StoreData::Imm(bytes.to_vec()),
                nontemporal: false,
            },
            StatTag::App,
        )
    }

    fn run_one(uops: Vec<Uop>) -> (System, RunStats) {
        let mut sys = System::new(
            SystemConfig::tiny(),
            vec![Box::new(FixedProgram::new(uops))],
        );
        let stats = sys.run(100_000).expect("finishes");
        (sys, stats)
    }

    #[test]
    fn single_load_reads_memory() {
        let cfg = SystemConfig::tiny();
        let mut sys = System::new(cfg, vec![Box::new(FixedProgram::new(vec![ld(0x1000, 8)]))]);
        sys.poke(PhysAddr(0x1000), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let stats = sys.run(100_000).expect("finishes");
        assert_eq!(stats.cores[0].loads, 1);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn store_then_load_forwards_or_reads_back() {
        let (_, stats) = run_one(vec![st(0x2000, &[42]), ld(0x2000, 1)]);
        assert_eq!(stats.cores[0].retired, 2);
    }

    #[test]
    fn store_becomes_visible_in_memory_after_fence_and_drain() {
        let uops = vec![
            st(0x3000, &[9, 8, 7]),
            Uop::new(UopKind::Clwb { addr: PhysAddr(0x3000) }, StatTag::App),
            Uop::new(UopKind::Mfence, StatTag::App),
        ];
        let (sys, _) = run_one(uops);
        assert_eq!(sys.peek(PhysAddr(0x3000), 3), vec![9, 8, 7]);
    }

    #[test]
    fn eager_memcpy_program_copies_data() {
        // 4-line memcpy: load src line, store to dst line (FromLoad).
        let src = 0x10000u64;
        let dst = 0x20000u64;
        let mut uops = Vec::new();
        for i in 0..4u64 {
            let lid = uops.len() as u64;
            uops.push(ld(src + i * 64, 64));
            uops.push(Uop::new(
                UopKind::Store {
                    addr: PhysAddr(dst + i * 64),
                    size: 64,
                    data: StoreData::FromLoad { load: lid, offset: 0 },
                    nontemporal: false,
                },
                StatTag::Memcpy,
            ));
        }
        for i in 0..4u64 {
            uops.push(Uop::new(UopKind::Clwb { addr: PhysAddr(dst + i * 64) }, StatTag::Memcpy));
        }
        uops.push(Uop::new(UopKind::Mfence, StatTag::Memcpy));

        let mut sys = System::new(SystemConfig::tiny(), vec![Box::new(FixedProgram::new(uops))]);
        let pattern: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        sys.poke(PhysAddr(src), &pattern);
        sys.run(1_000_000).expect("finishes");
        assert_eq!(sys.peek(PhysAddr(dst), 256), pattern);
    }

    #[test]
    fn nontemporal_store_reaches_memory() {
        let uops = vec![
            Uop::new(
                UopKind::Store {
                    addr: PhysAddr(0x4000),
                    size: 64,
                    data: StoreData::Splat(0xaa),
                    nontemporal: true,
                },
                StatTag::App,
            ),
            Uop::new(UopKind::Mfence, StatTag::App),
        ];
        let (sys, _) = run_one(uops);
        assert_eq!(sys.peek(PhysAddr(0x4000), 64), vec![0xaa; 64]);
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let mk = || {
            let mut uops = Vec::new();
            for i in 0..50u64 {
                uops.push(ld(0x1000 + (i * 97 % 64) * 64, 8));
                uops.push(st(0x9000 + i * 64, &[i as u8]));
            }
            uops
        };
        let (_, s1) = run_one(mk());
        let (_, s2) = run_one(mk());
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.llc.misses, s2.llc.misses);
    }

    #[test]
    fn fast_forward_matches_slow_path() {
        let mk = || {
            let uops: Vec<Uop> = (0..20u64).map(|i| ld(0x5000 + i * 4096, 8)).collect();
            FixedProgram::new(uops)
        };
        let mut a = System::new(SystemConfig::tiny(), vec![Box::new(mk())]);
        a.set_fast_forward(false);
        let sa = a.run(1_000_000).unwrap();
        let mut b = System::new(SystemConfig::tiny(), vec![Box::new(mk())]);
        b.set_fast_forward(true);
        let sb = b.run(1_000_000).unwrap();
        assert_eq!(sa.cycles, sb.cycles, "skip-ahead must not change timing");
    }

    #[test]
    fn multicore_disjoint_programs_finish() {
        let mut cfg = SystemConfig::tiny();
        cfg.cores = 2;
        let p0: Vec<Uop> = (0..10u64).map(|i| ld(0x10000 + i * 64, 8)).collect();
        let p1: Vec<Uop> = (0..10u64).map(|i| st(0x20000 + i * 64, &[1])).collect();
        let mut sys = System::new(
            cfg,
            vec![Box::new(FixedProgram::new(p0)), Box::new(FixedProgram::new(p1))],
        );
        let stats = sys.run(1_000_000).expect("finishes");
        assert_eq!(stats.cores[0].loads, 10);
        assert_eq!(stats.cores[1].stores, 10);
    }

    #[test]
    fn cross_core_store_visibility() {
        // Core 0 stores then fences; core 1 loads the same line afterwards.
        // Without ordering primitives across cores we just check the final
        // coherent value.
        let mut cfg = SystemConfig::tiny();
        cfg.cores = 2;
        let p0 = vec![st(0x7000, &[5]), Uop::new(UopKind::Mfence, StatTag::App)];
        let p1 = vec![ld(0x7040, 1)]; // disjoint line, keeps core busy
        let mut sys = System::new(
            cfg,
            vec![Box::new(FixedProgram::new(p0)), Box::new(FixedProgram::new(p1))],
        );
        sys.run(1_000_000).expect("finishes");
        assert_eq!(sys.peek_coherent(PhysAddr(0x7000), 1), vec![5]);
    }

    #[test]
    fn prefetched_streams_complete_with_prefetch_enabled() {
        // Regression: L1-initiated prefetch GetS must be granted by the
        // LLC, or demand loads merging into the prefetch MSHR hang.
        let mut cfg = SystemConfig::tiny();
        cfg.l1.prefetch = true;
        cfg.l1.prefetch_degree = 4;
        cfg.llc.prefetch = true;
        cfg.llc.prefetch_degree = 4;
        let uops: Vec<Uop> = (0..64u64).map(|i| ld(0x100000 + i * 64, 8)).collect();
        let mut sys = System::new(cfg, vec![Box::new(FixedProgram::new(uops))]);
        let stats = sys.run(1_000_000).expect("must not hang");
        assert_eq!(stats.cores[0].loads, 64);
        let pf: u64 = stats.l1.iter().map(|l| l.prefetches_issued).sum();
        assert!(pf > 0, "prefetcher must fire on a streaming read");
    }

    #[test]
    fn pipeline_flush_serialises_compute() {
        // Two 1000-cycle computes: unflushed they overlap in the ROB;
        // flushed they cannot.
        let mk = |flush: bool| {
            let mut uops = Vec::new();
            for _ in 0..2 {
                if flush {
                    uops.push(Uop::new(UopKind::PipelineFlush, StatTag::App));
                }
                uops.push(Uop::new(UopKind::Compute { cycles: 1000 }, StatTag::App));
            }
            FixedProgram::new(uops)
        };
        let mut a = System::new(SystemConfig::tiny(), vec![Box::new(mk(false))]);
        let ta = a.run(1_000_000).unwrap().cycles;
        let mut b = System::new(SystemConfig::tiny(), vec![Box::new(mk(true))]);
        let tb = b.run(1_000_000).unwrap().cycles;
        assert!(ta < 1500, "unflushed computes overlap: {ta}");
        assert!(tb >= 2000, "flushed computes serialise: {tb}");
    }

    #[test]
    fn wbrange_flushes_dirty_data_to_memory() {
        let uops = vec![
            st(0x5000, &[1, 2, 3]),
            st(0x5040, &[4, 5, 6]),
            Uop::new(UopKind::WbRange { addr: PhysAddr(0x5000), size: 128 }, StatTag::App),
            Uop::new(UopKind::Mfence, StatTag::App),
        ];
        let (sys, _) = run_one(uops);
        assert_eq!(sys.peek(PhysAddr(0x5000), 3), vec![1, 2, 3]);
        assert_eq!(sys.peek(PhysAddr(0x5040), 3), vec![4, 5, 6]);
    }

    #[test]
    fn timeout_reports_unfinished() {
        // A load that can never complete does not exist in this system, so
        // emulate with an absurdly small budget.
        let mut sys =
            System::new(SystemConfig::tiny(), vec![Box::new(FixedProgram::new(vec![ld(0, 8)]))]);
        let err = sys.run(1).unwrap_err();
        match err {
            SimError::Timeout { ref unfinished, ref cores, .. } => {
                assert_eq!(unfinished, &vec![0]);
                assert_eq!(cores.len(), 1, "per-core diagnostics included");
            }
            ref other => panic!("expected timeout, got {other:?}"),
        }
        // The error alone carries the queue and pipeline diagnostics.
        assert_eq!(err.mc_queues().len(), 2);
        assert!(err.core_states()[0].contains("core0"), "{:?}", err.core_states());
    }

    #[test]
    fn watchdog_reports_livelock_with_queue_snapshots() {
        // An injected controller stall far longer than the watchdog window
        // freezes all progress while queues stay occupied: a fabricated
        // hang the watchdog must convert into a structured error.
        let mut cfg = SystemConfig::tiny();
        cfg.fault = crate::fault::FaultPlan {
            seed: 1,
            mc_stall_rate: 1.0,
            mc_stall_cycles: 10_000_000,
            ..crate::fault::FaultPlan::none()
        };
        let uops: Vec<Uop> = (0..4u64).map(|i| ld(0x1000 + i * 4096, 8)).collect();
        let mut sys = System::new(cfg, vec![Box::new(FixedProgram::new(uops))]);
        let err = sys.run_with_watchdog(5_000_000, 2_000).unwrap_err();
        match err {
            SimError::Livelock { idle_for, ref unfinished, ref mc_queues, ref cores, .. } => {
                assert!(idle_for >= 2_000);
                assert_eq!(unfinished, &vec![0]);
                assert_eq!(mc_queues.len(), 2);
                assert!(
                    mc_queues.iter().any(|&(r, w, f)| r + w + f > 0),
                    "stalled work must be visible in the snapshot: {mc_queues:?}"
                );
                assert!(!cores.is_empty());
            }
            other => panic!("expected livelock, got {other}"),
        }
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_runs() {
        let uops: Vec<Uop> = (0..20u64).map(|i| ld(0x5000 + i * 4096, 8)).collect();
        let mut sys = System::new(SystemConfig::tiny(), vec![Box::new(FixedProgram::new(uops))]);
        sys.run_with_watchdog(1_000_000, 2_000).expect("healthy run passes the watchdog");
    }

    #[test]
    fn fault_plan_runs_are_deterministic_and_complete() {
        let mk = || {
            let mut cfg = SystemConfig::tiny();
            cfg.fault = crate::fault::FaultPlan::mild(0xD06);
            let mut uops = Vec::new();
            for i in 0..40u64 {
                uops.push(st(0x9000 + i * 64, &[i as u8]));
                uops.push(ld(0x1000 + (i * 97 % 64) * 64, 8));
            }
            uops.push(Uop::new(UopKind::Mfence, StatTag::App));
            System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
        };
        let mut a = mk();
        let sa = a.run(5_000_000).expect("finishes under mild faults");
        let mut b = mk();
        let sb = b.run(5_000_000).expect("finishes under mild faults");
        // Identical seed + plan ⇒ identical fault schedule, timing, stats,
        // and final memory image.
        assert_eq!(sa.cycles, sb.cycles);
        let fa: Vec<u64> = sa.mcs.iter().map(|m| m.fault_events()).collect();
        let fb: Vec<u64> = sb.mcs.iter().map(|m| m.fault_events()).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().sum::<u64>() > 0, "mild plan must actually inject: {fa:?}");
        assert_eq!(
            a.peek_coherent(PhysAddr(0x9000), 40 * 64),
            b.peek_coherent(PhysAddr(0x9000), 40 * 64)
        );
        // Faults degrade timing, never data.
        for i in 0..40u64 {
            assert_eq!(a.peek_coherent(PhysAddr(0x9000 + i * 64), 1), vec![i as u8]);
        }
    }

    #[test]
    fn fault_fast_forward_matches_slow_path() {
        // Fault rolls are per-event, so the schedule must be identical
        // with and without idle skip-ahead.
        let mk = || {
            let mut cfg = SystemConfig::tiny();
            cfg.fault = crate::fault::FaultPlan::mild(0xFF1);
            let uops: Vec<Uop> = (0..20u64).map(|i| ld(0x5000 + i * 4096, 8)).collect();
            System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
        };
        let mut a = mk();
        a.set_fast_forward(false);
        let sa = a.run(5_000_000).unwrap();
        let mut b = mk();
        b.set_fast_forward(true);
        let sb = b.run(5_000_000).unwrap();
        assert_eq!(sa.cycles, sb.cycles, "skip-ahead must not change the fault schedule");
        let fa: Vec<u64> = sa.mcs.iter().map(|m| m.fault_events()).collect();
        let fb: Vec<u64> = sb.mcs.iter().map(|m| m.fault_events()).collect();
        assert_eq!(fa, fb);
    }
}
