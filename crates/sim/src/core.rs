//! Program-driven out-of-order-style CPU core model.
//!
//! The model captures what the paper's experiments depend on (§II):
//! a reorder buffer that bounds memory-level parallelism (the reason memcpy
//! latency enters the critical path once the ROB fills), a load queue, a
//! store buffer with forwarding (x86-TSO-style retired stores), limited
//! outstanding CLWBs (the resource whose exhaustion serialises
//! `memcpy_lazy`'s writebacks in Fig. 11), parallel MCLAZY issue with
//! fence-enforced ordering (§III-C), and non-temporal stores.
//!
//! It does not model fetch/decode/branches: non-memory work is represented
//! by `Compute` uops with a cycle cost.

use crate::cache::{CoreToL1, L1ToCore, ServiceLevel};
use crate::config::CoreConfig;
use crate::packet::LazyDesc;
use crate::program::{Fetch, Program};
use crate::stats::{CoreStats, StallReason};
use crate::uop::{StatTag, StoreData, Uop, UopId, UopKind};
use crate::Cycle;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobKind {
    Load,
    Store,
    Clwb,
    Mclazy,
    Mcfree,
    Fence,
    Compute,
    Marker(u32),
    Flush,
}

#[derive(Debug)]
struct RobEntry {
    id: UopId,
    kind: RobKind,
    tag: StatTag,
    done: bool,
    /// For Compute: completion time.
    ready_at: Option<Cycle>,
}

#[derive(Debug)]
struct SbEntry {
    id: UopId,
    addr: crate::addr::PhysAddr,
    size: u8,
    data: Option<Vec<u8>>,
    from: Option<(UopId, u8)>,
    nontemporal: bool,
    sent: bool,
}

#[derive(Debug)]
struct PendingLoad {
    id: UopId,
    addr: crate::addr::PhysAddr,
    size: u8,
    issued: bool,
    issue_after: Cycle,
}

#[derive(Debug)]
struct PendingClwb {
    id: UopId,
    addr: crate::addr::PhysAddr,
    /// 0 for a single-line CLWB, else the WbRange size in bytes.
    size: u64,
    sent: bool,
}

/// Outputs of one core cycle.
#[derive(Debug, Default)]
pub struct CoreOut {
    /// Requests to the L1.
    pub to_l1: Vec<CoreToL1>,
}

/// One simulated CPU core running a [`Program`].
pub struct Core {
    /// Core index.
    pub id: usize,
    cfg: CoreConfig,
    program: Box<dyn Program>,
    next_id: UopId,
    rob: VecDeque<RobEntry>,
    sb: VecDeque<SbEntry>,
    loads: Vec<PendingLoad>,
    clwbs: Vec<PendingClwb>,
    /// Completed load values kept for `StoreData::FromLoad` consumers.
    load_vals: HashMap<UopId, Vec<u8>>,
    outstanding_mclazy: usize,
    outstanding_nt: usize,
    /// Leading store-buffer entries already sent to the L1. Sends are
    /// strictly in order and stop at the first unresolved entry, so the
    /// sent entries always form a prefix of the deque; the drain loops
    /// start here instead of rescanning acknowledged-pending stores.
    sb_sent_prefix: usize,
    /// Fence/Flush ROB entries not yet done. With none pending and no
    /// matured compute (see `compute_ready_min`), `complete` has nothing
    /// to transition and skips its ROB scan.
    undone_ff: usize,
    /// Lower bound on the earliest `ready_at` of a not-yet-done Compute
    /// entry (`None` = no such entry). Min-merged at dispatch, recomputed
    /// exactly whenever the completion scan runs.
    compute_ready_min: Option<Cycle>,
    /// Uop that failed a resource check at dispatch, retried next cycle.
    held: Option<Uop>,
    /// The program returned `Fetch::Stall`; only a load completion can
    /// change its answer (see the [`Program`] contract).
    frontend_stalled: bool,
    fence_blocked: bool,
    program_done: bool,
    /// All work retired and drained.
    finished: bool,
    last_tag: StatTag,
    /// Open stall span: (reason, start cycle). Purely observational; see
    /// DESIGN.md, "Observability layer".
    #[cfg(feature = "trace")]
    cur_stall: Option<(StallReason, crate::Cycle)>,
    /// Statistics.
    pub stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Core{}{{rob={}, sb={}, loads={}, finished={}}}",
            self.id,
            self.rob.len(),
            self.sb.len(),
            self.loads.len(),
            self.finished
        )
    }
}

impl Core {
    /// Create core `id` running `program`.
    pub fn new(id: usize, cfg: CoreConfig, program: Box<dyn Program>) -> Core {
        Core {
            id,
            cfg,
            program,
            next_id: 0,
            rob: VecDeque::new(),
            sb: VecDeque::new(),
            loads: Vec::new(),
            clwbs: Vec::new(),
            load_vals: HashMap::new(),
            outstanding_mclazy: 0,
            outstanding_nt: 0,
            sb_sent_prefix: 0,
            undone_ff: 0,
            compute_ready_min: None,
            held: None,
            frontend_stalled: false,
            fence_blocked: false,
            program_done: false,
            finished: false,
            last_tag: StatTag::App,
            #[cfg(feature = "trace")]
            cur_stall: None,
            stats: CoreStats::default(),
        }
    }

    /// Whether the core has retired everything and drained all buffers.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of loads in flight (diagnostics).
    pub fn outstanding_loads(&self) -> usize {
        self.loads.len()
    }

    /// Number of issued (sent to L1) loads in flight (diagnostics).
    pub fn issued_loads(&self) -> usize {
        self.loads.iter().filter(|l| l.issued).count()
    }

    /// Store-buffer occupancy (diagnostics).
    pub fn sb_len(&self) -> usize {
        self.sb.len()
    }

    /// ROB occupancy (diagnostics).
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// Earliest future self-wakeup (skip-ahead hint): pending compute
    /// completion or delayed load issue.
    pub fn next_event(&self) -> Option<Cycle> {
        let mut hint = self.rob.iter().filter_map(|e| e.ready_at).min();
        for l in &self.loads {
            if !l.issued {
                hint = Some(hint.map_or(l.issue_after, |h| h.min(l.issue_after)));
            }
        }
        hint
    }

    /// Handle a response from the L1.
    pub fn handle_l1(&mut self, _now: Cycle, msg: L1ToCore) {
        match msg {
            L1ToCore::LoadDone { id, data, level } => {
                if let Some(pos) = self.loads.iter().position(|l| l.id == id) {
                    self.loads.swap_remove(pos);
                }
                match level {
                    ServiceLevel::L1 => {}
                    ServiceLevel::Llc => self.stats.l1_miss_loads += 1,
                    ServiceLevel::Mem => {
                        self.stats.l1_miss_loads += 1;
                        self.stats.mem_loads += 1;
                    }
                }
                self.program.on_load_complete(id, &data);
                self.frontend_stalled = false;
                self.load_vals.insert(id, data);
                self.mark_done(id);
            }
            L1ToCore::StoreDone { id } => {
                if let Some(pos) = self.sb.iter().position(|s| s.id == id) {
                    self.sb.remove(pos);
                    if pos < self.sb_sent_prefix {
                        self.sb_sent_prefix -= 1;
                    }
                }
            }
            L1ToCore::ClwbDone { id } => {
                if let Some(pos) = self.clwbs.iter().position(|c| c.id == id) {
                    self.clwbs.swap_remove(pos);
                }
            }
            L1ToCore::MclazyDone { id: _ } => {
                debug_assert!(self.outstanding_mclazy > 0);
                self.outstanding_mclazy -= 1;
            }
            L1ToCore::NtDone { id: _ } => {
                debug_assert!(self.outstanding_nt > 0);
                self.outstanding_nt -= 1;
            }
        }
    }

    fn mark_done(&mut self, id: UopId) {
        if let Some(e) = self.rob.iter_mut().find(|e| e.id == id) {
            e.done = true;
        }
    }

    fn mem_drained(&self) -> bool {
        self.sb.is_empty()
            && self.clwbs.is_empty()
            && self.outstanding_mclazy == 0
            && self.outstanding_nt == 0
    }

    /// Advance one cycle: complete, retire, issue, dispatch.
    pub fn tick(&mut self, now: Cycle, out: &mut CoreOut) {
        if self.finished {
            return;
        }

        self.complete(now);
        let retired = self.retire(now);
        self.issue_loads(now, out);
        self.issue_clwbs(out);
        self.drain_sb(out);
        let dispatch_stall = self.dispatch(now, out);
        self.account(now, retired, dispatch_stall);

        if self.program_done && self.rob.is_empty() && self.loads.is_empty() && self.mem_drained() {
            self.finished = true;
        }
    }

    fn complete(&mut self, now: Cycle) {
        // Loads and stores transition via `mark_done`; only Fence/Flush
        // entries and maturing Computes need the scan, so skip it when
        // neither exists — the common case in streaming phases.
        if self.undone_ff == 0 && self.compute_ready_min.is_none_or(|r| r > now) {
            return;
        }
        let drained = self.mem_drained();
        let no_loads = self.loads.is_empty();
        // A pipeline flush completes only at the head of an otherwise
        // drained machine: everything older has retired and left.
        if let Some(head) = self.rob.front_mut() {
            if head.kind == RobKind::Flush && drained && no_loads && !head.done {
                head.done = true;
                self.undone_ff -= 1;
            }
        }
        let mut next_ready: Option<Cycle> = None;
        for e in self.rob.iter_mut() {
            if e.done {
                continue;
            }
            match e.kind {
                RobKind::Compute => {
                    if e.ready_at.is_some_and(|r| r <= now) {
                        e.done = true;
                    } else if let Some(r) = e.ready_at {
                        next_ready = Some(next_ready.map_or(r, |m: Cycle| m.min(r)));
                    }
                }
                RobKind::Fence
                    if drained && no_loads => {
                        e.done = true;
                        self.undone_ff -= 1;
                    }
                RobKind::Flush => {
                    // Completed below (needs head-of-ROB knowledge).
                }
                _ => {}
            }
        }
        self.compute_ready_min = next_ready;
    }

    fn retire(&mut self, now: Cycle) -> usize {
        let mut n = 0;
        while n < self.cfg.retire_width {
            match self.rob.front() {
                Some(e) if e.done => {
                    let e = self.rob.pop_front().expect("front");
                    match e.kind {
                        RobKind::Fence | RobKind::Flush => self.fence_blocked = false,
                        RobKind::Marker(mid) => self.stats.markers.push((mid, now)),
                        _ => {}
                    }
                    self.stats.retired += 1;
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }

    fn issue_loads(&mut self, now: Cycle, out: &mut CoreOut) {
        // Loads issue in order of arrival; forwarding and conflict checks
        // against the store buffer happen at issue time.
        let mut fwd: Vec<(UopId, Vec<u8>)> = Vec::new();
        for i in 0..self.loads.len() {
            if self.loads[i].issued || self.loads[i].issue_after > now {
                continue;
            }
            let (addr, size, id) = (self.loads[i].addr, self.loads[i].size, self.loads[i].id);
            match self.sb_lookup(addr, size as usize, id) {
                SbCheck::Forward(bytes) => {
                    self.loads[i].issued = true;
                    fwd.push((id, bytes));
                }
                SbCheck::Conflict => {
                    // Wait for the conflicting store to drain; retry later.
                }
                SbCheck::Clear => {
                    self.loads[i].issued = true;
                    out.to_l1.push(CoreToL1::Load { id, addr, size });
                }
            }
        }
        for (id, bytes) in fwd {
            if let Some(pos) = self.loads.iter().position(|l| l.id == id) {
                self.loads.swap_remove(pos);
            }
            self.program.on_load_complete(id, &bytes);
            self.load_vals.insert(id, bytes);
            self.mark_done(id);
        }
    }

    fn sb_lookup(&self, addr: crate::addr::PhysAddr, size: usize, before: UopId) -> SbCheck {
        let lo = addr.0;
        let hi = addr.0 + size as u64;
        // Scan youngest-first among stores older than the load.
        for s in self.sb.iter().rev() {
            if s.id >= before {
                continue;
            }
            let slo = s.addr.0;
            let shi = s.addr.0 + s.size as u64;
            if hi <= slo || shi <= lo {
                continue; // disjoint
            }
            if slo <= lo && hi <= shi && !s.nontemporal {
                let off = (lo - slo) as usize;
                if let Some(d) = &s.data {
                    return SbCheck::Forward(d[off..off + size].to_vec());
                }
                // Data may be available but not yet materialized into the
                // entry (resolution is lazy, see drain_sb): forward straight
                // from the producing load's value.
                if let Some((load, loff)) = s.from {
                    if let Some(v) = self.load_vals.get(&load) {
                        let off = loff as usize + off;
                        return SbCheck::Forward(v[off..off + size].to_vec());
                    }
                }
                return SbCheck::Conflict; // data not produced yet
            }
            return SbCheck::Conflict; // partial overlap: wait for drain
        }
        SbCheck::Clear
    }

    fn issue_clwbs(&mut self, out: &mut CoreOut) {
        for i in 0..self.clwbs.len() {
            if self.clwbs[i].sent {
                continue;
            }
            let addr = self.clwbs[i].addr;
            let size = self.clwbs[i].size;
            // Writebacks wait for older pending stores to the target range.
            let (lo, hi) = if size == 0 {
                (addr.line_base().0, addr.line_base().0 + crate::addr::CACHELINE)
            } else {
                (addr.line_base().0, addr.0 + size)
            };
            let conflict = self.sb.iter().any(|s| {
                s.id < self.clwbs[i].id && s.addr.0 < hi && s.addr.0 + s.size as u64 > lo
            });
            if conflict {
                continue;
            }
            self.clwbs[i].sent = true;
            if size == 0 {
                out.to_l1.push(CoreToL1::Clwb { id: self.clwbs[i].id, addr });
            } else {
                out.to_l1.push(CoreToL1::WbRange { id: self.clwbs[i].id, addr, size });
            }
        }
    }

    fn drain_sb(&mut self, out: &mut CoreOut) {
        // Sent entries form a prefix (in-order sends) and are fully
        // resolved, so the send loop starts past them. FromLoad data is
        // resolved lazily, right at the send head — entries deeper in the
        // buffer cannot send this cycle anyway, and `sb_lookup` forwards
        // straight out of `load_vals` for them.
        let mut sent = 0;
        let mut sent_nt = false;
        for s in self.sb.iter_mut().skip(self.sb_sent_prefix) {
            if s.sent {
                continue;
            }
            if s.data.is_none() {
                if let Some((load, off)) = s.from {
                    if let Some(v) = self.load_vals.get(&load) {
                        let off = off as usize;
                        s.data = Some(v[off..off + s.size as usize].to_vec());
                        s.from = None; // value consumed; safe to prune
                    }
                }
            }
            let Some(data) = s.data.clone() else { break }; // in-order: stop at unresolved
            if sent >= 2 {
                break;
            }
            s.sent = true;
            sent += 1;
            if s.nontemporal {
                sent_nt = true;
                self.outstanding_nt += 1;
                out.to_l1.push(CoreToL1::Store {
                    id: s.id,
                    addr: s.addr,
                    data,
                    nontemporal: true,
                });
            } else {
                out.to_l1.push(CoreToL1::Store {
                    id: s.id,
                    addr: s.addr,
                    data,
                    nontemporal: false,
                });
            }
        }
        self.sb_sent_prefix += sent;
        // NT stores leave the SB as soon as sent (posted); completion is
        // tracked by outstanding_nt for fences. A sent NT entry can only
        // have been marked in this very call, so the sweep is gated on it.
        if sent_nt {
            let before = self.sb.len();
            self.sb.retain(|s| !(s.nontemporal && s.sent));
            self.sb_sent_prefix -= before - self.sb.len();
        }
        // Bound the forwarding value cache, but never drop a value an
        // unresolved store still references (that would deadlock the SB).
        if self.load_vals.len() > 4 * self.cfg.rob_size {
            let referenced: std::collections::HashSet<UopId> =
                self.sb.iter().filter_map(|s| s.from.map(|(l, _)| l)).collect();
            let min_live = self.rob.front().map(|e| e.id).unwrap_or(self.next_id);
            let window = 2 * self.cfg.rob_size as u64;
            self.load_vals
                .retain(|id, _| referenced.contains(id) || *id + window >= min_live);
        }
    }

    /// Dispatch new uops; returns the stall reason if dispatch was blocked.
    fn dispatch(&mut self, now: Cycle, out: &mut CoreOut) -> Option<StallReason> {
        let mut stall = None;
        for _ in 0..self.cfg.dispatch_width {
            if self.program_done {
                break;
            }
            if self.fence_blocked {
                stall = Some(StallReason::Fence);
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                stall = Some(StallReason::RobFull);
                break;
            }
            let id = self.next_id;
            // Resource pre-checks require peeking at the uop; fetch it and
            // if resources are missing, hold it for next cycle.
            let uop = match self.held_or_fetch(id) {
                HeldFetch::Uop(u) => u,
                HeldFetch::Stall => {
                    stall = Some(StallReason::Frontend);
                    break;
                }
                HeldFetch::Done => {
                    self.program_done = true;
                    break;
                }
            };
            match self.try_dispatch(now, uop, id, out) {
                Ok(()) => {
                    self.next_id += 1;
                }
                Err((uop, reason)) => {
                    self.held = Some(uop);
                    stall = Some(reason);
                    break;
                }
            }
        }
        stall
    }

    fn held_or_fetch(&mut self, id: UopId) -> HeldFetch {
        if let Some(u) = self.held.take() {
            return HeldFetch::Uop(u);
        }
        match self.program.fetch(id) {
            Fetch::Uop(u) => {
                debug_assert!(u.validate().is_ok(), "invalid uop: {u} ({:?})", u.validate());
                HeldFetch::Uop(u)
            }
            Fetch::Stall => {
                self.frontend_stalled = true;
                HeldFetch::Stall
            }
            Fetch::Done => HeldFetch::Done,
        }
    }

    /// Diagnostic snapshot of the core's blocking state (for debugging
    /// stuck simulations; not a stable format).
    pub fn debug_state(&self) -> String {
        let head = self.rob.front().map(|e| format!("{:?} id={} done={}", e.kind, e.id, e.done));
        let sb: Vec<String> = self
            .sb
            .iter()
            .map(|s| {
                format!(
                    "id={} @{:?} sent={} data={} from={:?}",
                    s.id,
                    s.addr,
                    s.sent,
                    s.data.is_some(),
                    s.from
                )
            })
            .collect();
        let loads: Vec<String> =
            self.loads.iter().map(|l| format!("id={} @{:?} issued={}", l.id, l.addr, l.issued)).collect();
        format!(
            "core{} next_id={} rob={} head={:?} fence={} frontend_stalled={} held={:?} \
             clwbs={} mclazy={} nt={} sb={:?} loads={:?}",
            self.id,
            self.next_id,
            self.rob.len(),
            head,
            self.fence_blocked,
            self.frontend_stalled,
            self.held.as_ref().map(|u| u.to_string()),
            self.clwbs.len(),
            self.outstanding_mclazy,
            self.outstanding_nt,
            sb,
            loads
        )
    }

    /// Whether the core can make progress this cycle without any new
    /// message from the memory system (used by idle skip-ahead; errs
    /// toward `true`).
    pub fn has_internal_work(&self) -> bool {
        if self.finished {
            return false;
        }
        if self.rob.front().is_some_and(|e| e.done) {
            return true; // can retire
        }
        if self.undone_ff > 0 && self.mem_drained() && self.loads.is_empty() {
            return true; // fence/flush completion pending
        }
        if self.sb.len() > self.sb_sent_prefix {
            return true; // unsent stores (sent entries form a prefix)
        }
        if self.clwbs.iter().any(|c| !c.sent) {
            return true;
        }
        if self.loads.iter().any(|l| !l.issued) {
            return true; // may issue (or is a conflict resolved by SB drain)
        }
        if !self.program_done
            && !self.fence_blocked
            && self.rob.len() < self.cfg.rob_size
            && self.held.is_none()
            && !self.frontend_stalled
        {
            return true; // can fetch a new uop
        }
        false
    }

    fn try_dispatch(
        &mut self,
        now: Cycle,
        uop: Uop,
        id: UopId,
        out: &mut CoreOut,
    ) -> Result<(), (Uop, StallReason)> {
        let tag = uop.tag;
        match &uop.kind {
            UopKind::Load { addr, size } => {
                if self.loads.len() >= self.cfg.lq_size {
                    return Err((uop, StallReason::RobFull));
                }
                self.loads.push(PendingLoad {
                    id,
                    addr: *addr,
                    size: *size,
                    issued: false,
                    issue_after: now,
                });
                self.rob.push_back(RobEntry { id, kind: RobKind::Load, tag, done: false, ready_at: None });
                self.stats.loads += 1;
            }
            UopKind::Store { addr, size, data, nontemporal } => {
                if self.sb.len() >= self.cfg.sb_size {
                    return Err((uop, StallReason::StoreBuffer));
                }
                let (bytes, from) = match data {
                    StoreData::Imm(b) => (Some(b.clone()), None),
                    StoreData::Splat(v) => (Some(vec![*v; *size as usize]), None),
                    StoreData::FromLoad { load, offset } => {
                        match self.load_vals.get(load) {
                            Some(v) => {
                                let off = *offset as usize;
                                (Some(v[off..off + *size as usize].to_vec()), None)
                            }
                            None => (None, Some((*load, *offset))),
                        }
                    }
                };
                self.sb.push_back(SbEntry {
                    id,
                    addr: *addr,
                    size: *size,
                    data: bytes,
                    from,
                    nontemporal: *nontemporal,
                    sent: false,
                });
                // Stores retire as soon as they are in the SB (TSO).
                self.rob.push_back(RobEntry { id, kind: RobKind::Store, tag, done: true, ready_at: None });
                self.stats.stores += 1;
            }
            UopKind::Clwb { addr } => {
                if self.clwbs.len() >= self.cfg.max_clwb {
                    return Err((uop, StallReason::ClwbSlots));
                }
                self.clwbs.push(PendingClwb { id, addr: *addr, size: 0, sent: false });
                self.rob.push_back(RobEntry { id, kind: RobKind::Clwb, tag, done: true, ready_at: None });
            }
            UopKind::WbRange { addr, size } => {
                if self.clwbs.len() >= self.cfg.max_clwb {
                    return Err((uop, StallReason::ClwbSlots));
                }
                self.clwbs.push(PendingClwb { id, addr: *addr, size: *size, sent: false });
                self.rob.push_back(RobEntry { id, kind: RobKind::Clwb, tag, done: true, ready_at: None });
            }
            UopKind::Mclazy { dst, src, size } => {
                if self.outstanding_mclazy >= self.cfg.max_mclazy {
                    return Err((uop, StallReason::MclazySlots));
                }
                // Conservative ordering: MCLAZY waits for the store buffer
                // to drain so earlier stores to the source are visible.
                if !self.sb.is_empty() {
                    return Err((uop, StallReason::StoreBuffer));
                }
                self.outstanding_mclazy += 1;
                out.to_l1.push(CoreToL1::Mclazy {
                    id,
                    desc: LazyDesc { dst: *dst, src: *src, size: *size },
                });
                self.rob.push_back(RobEntry { id, kind: RobKind::Mclazy, tag, done: true, ready_at: None });
            }
            UopKind::Mcfree { addr, size } => {
                out.to_l1.push(CoreToL1::Mcfree { addr: *addr, size: *size });
                self.rob.push_back(RobEntry { id, kind: RobKind::Mcfree, tag, done: true, ready_at: None });
            }
            UopKind::Mfence => {
                self.fence_blocked = true;
                self.undone_ff += 1;
                self.rob.push_back(RobEntry { id, kind: RobKind::Fence, tag, done: false, ready_at: None });
            }
            UopKind::Compute { cycles } => {
                let ready = now + *cycles as Cycle;
                if *cycles > 0 {
                    self.compute_ready_min =
                        Some(self.compute_ready_min.map_or(ready, |m| m.min(ready)));
                }
                self.rob.push_back(RobEntry {
                    id,
                    kind: RobKind::Compute,
                    tag,
                    done: *cycles == 0,
                    ready_at: Some(ready),
                });
            }
            UopKind::Marker { id: mid } => {
                self.rob.push_back(RobEntry {
                    id,
                    kind: RobKind::Marker(*mid),
                    tag,
                    done: true,
                    ready_at: None,
                });
            }
            UopKind::PipelineFlush => {
                self.fence_blocked = true;
                self.undone_ff += 1;
                self.rob.push_back(RobEntry {
                    id,
                    kind: RobKind::Flush,
                    tag,
                    done: false,
                    ready_at: None,
                });
            }
        }
        self.last_tag = tag;
        Ok(())
    }

    fn account(&mut self, now: Cycle, retired: usize, dispatch_stall: Option<StallReason>) {
        let _ = now; // stamp for the trace hook below
        self.stats.cycles += 1;
        let tag = self.rob.front().map(|e| e.tag).unwrap_or(self.last_tag);
        *self.stats.cycles_by_tag.entry(tag).or_insert(0) += 1;

        // "Mem miss cycles": at least one outstanding load that has
        // plausibly left the L1 (issued and still pending).
        if self.loads.iter().any(|l| l.issued) {
            *self.stats.mem_busy_by_tag.entry(tag).or_insert(0) += 1;
        }

        // This cycle's stall attribution (None ⇔ something retired or the
        // machine was genuinely idle with nothing blocked).
        let mut stalled: Option<StallReason> = None;
        if retired == 0 && !self.rob.is_empty() {
            let head = self.rob.front().expect("nonempty");
            let reason = match head.kind {
                RobKind::Load => StallReason::LoadMiss,
                RobKind::Fence => {
                    if !self.clwbs.is_empty() {
                        StallReason::ClwbSlots
                    } else if self.outstanding_mclazy > 0 {
                        StallReason::MclazySlots
                    } else {
                        StallReason::Fence
                    }
                }
                // A compute (or other non-memory) head stalls retirement by
                // itself; if dispatch was also blocked on a concrete
                // resource this cycle (ROB full behind a long compute, store
                // buffer full), that resource is the more useful
                // attribution than the generic front-end bucket.
                RobKind::Compute => dispatch_stall.unwrap_or(StallReason::Frontend),
                _ => dispatch_stall.unwrap_or(StallReason::Frontend),
            };
            self.stats.bump_stall(reason);
            if matches!(reason, StallReason::LoadMiss) {
                *self.stats.mem_stall_by_tag.entry(tag).or_insert(0) += 1;
            }
            stalled = Some(reason);
        } else if retired == 0 {
            if let Some(r) = dispatch_stall {
                self.stats.bump_stall(r);
                stalled = Some(r);
            }
        }
        let _ = stalled;

        // Trace hook: convert the per-cycle attribution into stall *spans*
        // (one event per transition, not per cycle).
        #[cfg(feature = "trace")]
        match (self.cur_stall, stalled) {
            (Some((r0, _)), Some(r)) if r0 == r => {}
            (open, new) => {
                if let Some((r0, start)) = open {
                    mcs_trace::emit(mcs_trace::Event::CoreStall {
                        core: self.id as u16,
                        reason: r0.name(),
                        start,
                        end: now,
                    });
                }
                self.cur_stall = new.map(|r| (r, now));
            }
        }
    }

    /// Batched accounting for `k` executed cycles during which the core
    /// was provably frozen: no deliverable inbox message, no internal
    /// work ([`Core::has_internal_work`] false) and no timer due
    /// ([`Core::next_event`] in the future). Under those conditions
    /// [`Core::tick`] retires nothing and changes no state, so its only
    /// effect is `k` identical [`Core::account`] calls — replicated here
    /// in O(1). `first_now` is the first elided cycle (stall spans open
    /// there, exactly where the per-cycle path would have opened them).
    pub(crate) fn account_idle(&mut self, k: u64, first_now: Cycle) {
        let _ = first_now; // stamp for the trace hook below
        if k == 0 || self.finished {
            return;
        }
        let dispatch_stall = self.idle_dispatch_stall();
        self.stats.cycles += k;
        let tag = self.rob.front().map(|e| e.tag).unwrap_or(self.last_tag);
        *self.stats.cycles_by_tag.entry(tag).or_insert(0) += k;
        if self.loads.iter().any(|l| l.issued) {
            *self.stats.mem_busy_by_tag.entry(tag).or_insert(0) += k;
        }
        let mut stalled: Option<StallReason> = None;
        if !self.rob.is_empty() {
            let head = self.rob.front().expect("nonempty");
            let reason = match head.kind {
                RobKind::Load => StallReason::LoadMiss,
                RobKind::Fence => {
                    if !self.clwbs.is_empty() {
                        StallReason::ClwbSlots
                    } else if self.outstanding_mclazy > 0 {
                        StallReason::MclazySlots
                    } else {
                        StallReason::Fence
                    }
                }
                _ => dispatch_stall.unwrap_or(StallReason::Frontend),
            };
            self.stats.bump_stall_n(reason, k);
            if matches!(reason, StallReason::LoadMiss) {
                *self.stats.mem_stall_by_tag.entry(tag).or_insert(0) += k;
            }
            stalled = Some(reason);
        } else if let Some(r) = dispatch_stall {
            self.stats.bump_stall_n(r, k);
            stalled = Some(r);
        }
        let _ = stalled;
        #[cfg(feature = "trace")]
        match (self.cur_stall, stalled) {
            (Some((r0, _)), Some(r)) if r0 == r => {}
            (open, new) => {
                if let Some((r0, start)) = open {
                    mcs_trace::emit(mcs_trace::Event::CoreStall {
                        core: self.id as u16,
                        reason: r0.name(),
                        start,
                        end: first_now,
                    });
                }
                self.cur_stall = new.map(|r| (r, first_now));
            }
        }
    }

    /// What [`Core::dispatch`] would return on a frozen core — a pure
    /// function of state that cannot change while frozen. Mirrors the
    /// check order in `dispatch`/`try_dispatch`.
    fn idle_dispatch_stall(&self) -> Option<StallReason> {
        if self.program_done {
            return None;
        }
        if self.fence_blocked {
            return Some(StallReason::Fence);
        }
        if self.rob.len() >= self.cfg.rob_size {
            return Some(StallReason::RobFull);
        }
        if let Some(u) = &self.held {
            // A held uop failed a resource check last cycle and, with the
            // core frozen, fails the same one again.
            let r = match &u.kind {
                UopKind::Load { .. } => StallReason::RobFull,
                UopKind::Store { .. } => StallReason::StoreBuffer,
                UopKind::Clwb { .. } | UopKind::WbRange { .. } => StallReason::ClwbSlots,
                UopKind::Mclazy { .. } => {
                    if self.outstanding_mclazy >= self.cfg.max_mclazy {
                        StallReason::MclazySlots
                    } else {
                        StallReason::StoreBuffer
                    }
                }
                // Remaining kinds never fail a resource check, so they
                // are never held.
                _ => StallReason::Frontend,
            };
            return Some(r);
        }
        if self.frontend_stalled {
            return Some(StallReason::Frontend);
        }
        // Unreachable for a frozen core: dispatch could fetch a new uop,
        // so has_internal_work() would have been true.
        debug_assert!(false, "idle_dispatch_stall on a dispatch-capable core");
        Some(StallReason::Frontend)
    }
}

enum HeldFetch {
    Uop(Uop),
    Stall,
    Done,
}

#[derive(Debug)]
enum SbCheck {
    Forward(Vec<u8>),
    Conflict,
    Clear,
}
