//! # mcs-bench — benchmark harness for the (MC)² evaluation
//!
//! Provides the plumbing every figure binary shares: building and running
//! simulated systems (optionally with the (MC)² engine), parallel
//! parameter sweeps, and tab-separated result tables written to stdout and
//! `results/figXX.tsv`, mirroring the paper artifact's output layout.

use mcs_sim::config::{SimOptions, SystemConfig};
use mcs_sim::program::{FixedProgram, Program};
use mcs_sim::stats::RunStats;
use mcs_sim::system::System;
use mcs_sim::uop::Uop;
use mcs_sim::Cycle;
use mcs_workloads::Pokes;
use mcsquare::{McSquareConfig, McSquareEngine};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod figs;
pub mod mess;

/// CPU frequency of the Table I machine (cycles per nanosecond).
pub const CYCLES_PER_NS: f64 = 4.0;

/// Convert cycles to nanoseconds at 4 GHz.
pub fn ns(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_NS
}

/// Convert cycles to milliseconds at 4 GHz.
pub fn ms(cycles: u64) -> f64 {
    ns(cycles) / 1e6
}

/// One simulation job: a system configuration, per-core programs, memory
/// initialisation, and an optional (MC)² engine configuration.
pub struct Job {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Engine configuration; `None` = baseline machine.
    pub mc2: Option<McSquareConfig>,
    /// One program per core (padded with idle programs if short).
    pub programs: Vec<Box<dyn Program>>,
    /// Memory initialisation.
    pub pokes: Pokes,
    /// Cycle budget.
    pub max_cycles: Cycle,
}

impl Job {
    /// Single-core job from a uop list.
    pub fn single(
        cfg: SystemConfig,
        mc2: Option<McSquareConfig>,
        uops: Vec<Uop>,
        pokes: Pokes,
    ) -> Job {
        Job {
            cfg,
            mc2,
            programs: vec![Box::new(FixedProgram::new(uops))],
            pokes,
            max_cycles: 20_000_000_000,
        }
    }

    /// Run to completion.
    ///
    /// # Panics
    /// Panics if the simulation exceeds the cycle budget (a bug, not a
    /// measurement).
    pub fn run(mut self) -> RunStats {
        let _ = wall_start();
        let mut cfg = self.cfg;
        while self.programs.len() < cfg.cores {
            self.programs.push(Box::new(mcs_sim::program::IdleProgram));
        }
        cfg.cores = self.programs.len();
        let mut sys = match &self.mc2 {
            Some(m) => {
                // Arm the engine-level fault classes too when the config
                // carries a fault plan (with an empty plan this is
                // identical to `McSquareEngine::new`).
                let engine = McSquareEngine::with_faults(m.clone(), cfg.channels, &cfg.fault);
                System::with_engine(cfg, self.programs, Box::new(engine))
            }
            None => System::new(cfg, self.programs),
        };
        self.pokes.apply(&mut sys);
        let opts = mcs_sim::config::sim_options();
        sys.set_sched_mode(opts.sched);
        #[cfg(feature = "trace")]
        let trace_to = opts.trace.clone();
        #[cfg(feature = "trace")]
        if trace_to.is_some() {
            mcs_trace::arm(mcs_trace::TraceConfig::default());
        }
        let run = match opts.watchdog {
            Some(w) => sys.run_with_watchdog(self.max_cycles, w),
            None => sys.run(self.max_cycles),
        };
        let stats = match run {
            Ok(stats) => stats,
            Err(e) => panic!("simulation stuck: {e}\n{}", sys.debug_dump()),
        };
        SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
        #[cfg(feature = "trace")]
        if let Some(base) = trace_to {
            if let Some(sink) = mcs_trace::take() {
                write_trace_outputs(&base, &sink);
            }
        }
        stats
    }
}

/// Cumulative simulated cycles across every [`Job::run`] of this process.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Cumulative simulated cycles across every [`Job::run`] so far — the
/// numerator of the throughput figure. `perf_smoke` samples this around
/// each benchmark to attribute cycles per bench.
pub fn sim_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

fn wall_start() -> &'static Instant {
    static WALL_START: OnceLock<Instant> = OnceLock::new();
    WALL_START.get_or_init(Instant::now)
}

/// Print the simulator's throughput — simulated cycles per wall-clock
/// second since the first job started — to stderr (so TSV output on
/// stdout stays clean). Every figure binary calls this as its last step.
pub fn print_sim_throughput() {
    let cycles = SIM_CYCLES.load(Ordering::Relaxed);
    let wall = wall_start().elapsed().as_secs_f64();
    if cycles == 0 || wall <= 0.0 {
        return;
    }
    eprintln!(
        "# simulated {:.3} Gcycles in {:.1} s wall ({:.1} Mcycles/s)",
        cycles as f64 / 1e9,
        wall,
        cycles as f64 / wall / 1e6,
    );
}

/// Write the armed trace sink's three consumer outputs next to `base`
/// (the `MCS_TRACE` path): a Perfetto-loadable Chrome trace, the
/// epoch-sampled time series, and the per-class latency histograms. Each
/// job of a sweep gets its own numbered file set.
#[cfg(feature = "trace")]
fn write_trace_outputs(base: &str, sink: &mcs_trace::TraceSink) {
    static JOB_SEQ: AtomicU64 = AtomicU64::new(0);
    let stem = format!("{base}.job{}", JOB_SEQ.fetch_add(1, Ordering::Relaxed));
    let _ = std::fs::write(
        format!("{stem}.trace.json"),
        mcs_trace::chrome::to_chrome_json(sink, CYCLES_PER_NS),
    );
    let _ = std::fs::write(format!("{stem}.series.tsv"), sink.series.to_tsv(CYCLES_PER_NS));
    let _ = std::fs::write(format!("{stem}.hist.tsv"), sink.hists.to_tsv());
    eprintln!(
        "# trace: wrote {stem}.{{trace.json,series.tsv,hist.tsv}} ({} events buffered, {} dropped)",
        sink.ring.len(),
        sink.ring.dropped(),
    );
}

/// Run the marker-0/1-bracketed section of a single-core job and return
/// (elapsed cycles, full stats).
pub fn timed_run(job: Job) -> (u64, RunStats) {
    let stats = job.run();
    let lat = mcs_workloads::common::marker_latencies(&stats.cores[0]);
    let cycles = lat.first().copied().unwrap_or(stats.cycles);
    (cycles, stats)
}

/// Run a set of independent jobs in parallel (one OS thread each, capped
/// at the available parallelism), preserving order.
pub fn par_run<T, F>(points: Vec<T>, f: F) -> Vec<(T, RunStats)>
where
    T: Send + Clone,
    F: Fn(&T) -> Job + Sync,
{
    let max_par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut out: Vec<Option<(T, RunStats)>> = (0..points.len()).map(|_| None).collect();
    let mut idx = 0;
    while idx < points.len() {
        let chunk_end = (idx + max_par).min(points.len());
        let chunk: Vec<(usize, T)> =
            (idx..chunk_end).map(|i| (i, points[i].clone())).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .into_iter()
                .map(|(i, p)| {
                    let f = &f;
                    s.spawn(move || {
                        let stats = f(&p).run();
                        (i, p, stats)
                    })
                })
                .collect();
            for h in handles {
                let (i, p, stats) = h.join().expect("sweep worker panicked");
                out[i] = Some((p, stats));
            }
        });
        idx = chunk_end;
    }
    out.into_iter().map(|o| o.expect("filled")).collect()
}

/// A result table, printed as TSV and saved under `results/`.
#[derive(Debug, Clone)]
pub struct Table {
    /// Output name, e.g. "fig10".
    pub name: String,
    /// Free-text caption echoed as a `#` comment.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: &str, caption: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as TSV.
    pub fn render(&self) -> String {
        let mut s = format!("# {} — {}\n", self.name, self.caption);
        s.push_str(&self.headers.join("\t"));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join("\t"));
            s.push('\n');
        }
        s
    }

    /// Print to stdout and save to `results/<name>.tsv`.
    pub fn emit(&self) {
        let text = self.render();
        print!("{text}");
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{}.tsv", self.name)), &text);
        }
    }
}

/// Marker-0 latency of core 0: the bracketed section every single-core
/// figure measures.
///
/// # Panics
/// Panics if core 0 recorded no marker pair.
pub fn marker0(stats: &RunStats) -> u64 {
    mcs_workloads::common::marker_latencies(&stats.cores[0])[0]
}

/// Elapsed cycles of a multi-core run: the slowest of the first `cores`
/// cores' bracketed sections, falling back to the total run length when
/// no core recorded markers.
pub fn elapsed_cycles(stats: &RunStats, cores: usize) -> u64 {
    stats
        .cores
        .iter()
        .take(cores)
        .map(|c| mcs_workloads::common::marker_latencies(c).first().copied().unwrap_or(0))
        .max()
        .filter(|&m| m > 0)
        .unwrap_or(stats.cycles)
}

/// Transaction throughput in kOps/s at the Table I clock, over the
/// slowest core's bracketed section (Figs. 16–17).
pub fn throughput_kops(stats: &RunStats, txns_per_core: usize, cores: usize) -> f64 {
    let cycles = elapsed_cycles(stats, cores);
    (txns_per_core * cores) as f64 / (cycles as f64 / (CYCLES_PER_NS * 1e9)) / 1e3
}

/// Options shared by every figure binary, parsed from the command line
/// with the deprecated `MCS_*` environment variables as fallback. Every
/// binary calls [`BenchOpts::parse`] first thing in `main`; that also
/// installs the resulting [`SimOptions`] process-wide
/// ([`mcs_sim::config::set_sim_options`]) so configurations built later
/// honour them.
///
/// Recognised flags: `--smoke`, `--refresh`, `--faults`, `--trace=PATH`,
/// `--sched=tick|conservative|event`, `--watchdog=CYCLES`. Unknown
/// arguments are ignored (binaries may define their own).
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// `--smoke`: the seconds-long CI variant of a sweep.
    pub smoke: bool,
    /// Simulation options derived from the flags (and the env shim).
    pub sim: SimOptions,
}

impl BenchOpts {
    /// Parse the process arguments and install the simulation options
    /// process-wide.
    pub fn parse() -> BenchOpts {
        let opts = BenchOpts::from_args(std::env::args().skip(1));
        mcs_sim::config::set_sim_options(opts.sim.clone());
        opts
    }

    /// Parse from an explicit argument list (no global side effects —
    /// unit-testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> BenchOpts {
        let mut sim = SimOptions::from_env();
        let mut smoke = false;
        for a in args {
            match a.as_str() {
                "--smoke" => smoke = true,
                "--refresh" => sim.refresh = true,
                "--faults" => sim.fault = mcs_sim::fault::FaultPlan::mild(0xFA17),
                s if s.starts_with("--trace=") => {
                    let p = &s["--trace=".len()..];
                    sim.trace = (!p.is_empty()).then(|| p.to_string());
                }
                s if s.starts_with("--sched=") => {
                    sim.sched = match &s["--sched=".len()..] {
                        "tick" => mcs_sim::SchedMode::TickByTick,
                        "conservative" => mcs_sim::SchedMode::Conservative,
                        "event" => mcs_sim::SchedMode::EventDriven,
                        other => panic!("unknown --sched mode {other:?} (tick|conservative|event)"),
                    };
                }
                s if s.starts_with("--watchdog=") => {
                    let w = s["--watchdog=".len()..]
                        .parse()
                        .expect("--watchdog takes a cycle count");
                    sim.watchdog = Some(w);
                }
                _ => {} // binaries may define their own arguments
            }
        }
        BenchOpts { smoke, sim }
    }
}

/// Whether `--smoke` was passed: the seconds-long CI variant of a sweep.
#[deprecated(note = "use BenchOpts::parse().smoke")]
pub fn smoke_flag() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Format a byte size the way the figures label their axes.
pub fn fmt_size(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 20 => format!("{}MB", b >> 20),
        b if b >= 1 << 10 => format!("{}KB", b >> 10),
        b => format!("{b}B"),
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::addr::PhysAddr;
    use mcs_sim::uop::{StatTag, UopKind};

    #[test]
    fn single_job_runs() {
        let uops = vec![Uop::new(
            UopKind::Load { addr: PhysAddr(0x1000), size: 8 },
            StatTag::App,
        )];
        let stats = Job::single(SystemConfig::tiny(), None, uops, Pokes::default()).run();
        assert_eq!(stats.cores[0].loads, 1);
    }

    #[test]
    fn par_run_preserves_order() {
        let points: Vec<u64> = (1..=6).collect();
        let results = par_run(points.clone(), |&n| {
            let uops: Vec<Uop> = (0..n)
                .map(|i| {
                    Uop::new(
                        UopKind::Load { addr: PhysAddr(0x1000 + i * 64), size: 8 },
                        StatTag::App,
                    )
                })
                .collect();
            Job::single(SystemConfig::tiny(), None, uops, Pokes::default())
        });
        for (i, (p, st)) in results.iter().enumerate() {
            assert_eq!(*p, points[i]);
            assert_eq!(st.cores[0].loads, *p);
        }
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("test", "a caption", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("# test — a caption"));
        assert!(s.contains("a\tb"));
        assert!(s.contains("1\t2"));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(64), "64B");
        assert_eq!(fmt_size(2048), "2KB");
        assert_eq!(fmt_size(4 << 20), "4MB");
    }

    #[test]
    fn unit_conversions() {
        assert!((ns(4000) - 1000.0).abs() < 1e-9);
        assert!((ms(4_000_000) - 1.0).abs() < 1e-9);
    }
}
