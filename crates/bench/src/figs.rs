//! Shared construction of the Fig. 10 and Fig. 12 sweeps.
//!
//! The figure binaries and the trace-off byte-identity regression test
//! (`tests/trace_identity.rs`) must agree exactly on how each point is
//! simulated and how each row is formatted — any drift would make the
//! test compare different experiments. Both therefore build jobs and rows
//! through this module.

use crate::{f3, fmt_size, ns, Job};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::micro::{copy_latency, seq_access};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

/// Copy sizes of the Fig. 10 sweep.
pub const FIG10_SIZES: [u64; 9] =
    [64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];

/// The four Fig. 10 mechanisms: (column name, mechanism, touch-first).
pub fn fig10_mechs() -> Vec<(&'static str, CopyMech, bool)> {
    vec![
        ("memcpy", CopyMech::Native, false),
        ("zio", CopyMech::Zio, false),
        ("touched_memcpy", CopyMech::Native, true),
        ("mcsquare", CopyMech::McSquare { threshold: 0 }, false),
    ]
}

/// Build the Fig. 10 job for one (mechanism, size) point.
pub fn fig10_job(mech: &CopyMech, size: u64, touch: bool) -> Job {
    let mut space = AddrSpace::dram_3gb();
    let g = copy_latency(mech.clone(), size, touch, &mut space);
    let mc2 = mech.needs_engine().then(McSquareConfig::default);
    Job::single(SystemConfig::table1_one_core(), mc2, g.uops, g.pokes)
}

/// Format one Fig. 10 row from the four mechanisms' copy latencies (in
/// cycles, ordered as [`fig10_mechs`]).
pub fn fig10_row(size: u64, lats: &[u64]) -> Vec<String> {
    let mut row = vec![fmt_size(size)];
    row.extend(lats.iter().map(|&l| f3(ns(l))));
    row
}

/// One series of the Fig. 12 sweep.
#[derive(Clone)]
pub struct Fig12Variant {
    /// Column name (suffixed `_norm` in the table header).
    pub name: &'static str,
    /// Copy mechanism.
    pub mech: CopyMech,
    /// Offset the source by 20 bytes (two bounces per destination line).
    pub misalign: bool,
    /// Leave the prefetchers on.
    pub prefetch: bool,
}

/// Copy size of the Fig. 12 experiment (must exceed the LLC).
pub const FIG12_SIZE: u64 = 4 << 20;

/// Destination fractions of the Fig. 12 sweep.
pub const FIG12_FRACS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The five Fig. 12 series. The first (native memcpy) is the
/// normalisation baseline.
pub fn fig12_variants() -> Vec<Fig12Variant> {
    let mc2 = CopyMech::McSquare { threshold: 0 };
    vec![
        Fig12Variant { name: "memcpy", mech: CopyMech::Native, misalign: true, prefetch: true },
        Fig12Variant { name: "zio", mech: CopyMech::Zio, misalign: true, prefetch: true },
        Fig12Variant { name: "mcsquare", mech: mc2.clone(), misalign: true, prefetch: true },
        Fig12Variant {
            name: "mcsquare_aligned",
            mech: mc2.clone(),
            misalign: false,
            prefetch: true,
        },
        Fig12Variant { name: "mcsquare_nopf", mech: mc2, misalign: true, prefetch: false },
    ]
}

/// Build the Fig. 12 job for one (variant, fraction) point.
pub fn fig12_job(v: &Fig12Variant, frac: f64) -> Job {
    let mut space = AddrSpace::dram_3gb();
    let g = seq_access(v.mech.clone(), FIG12_SIZE, frac, v.misalign, &mut space);
    let mut cfg = SystemConfig::table1_one_core();
    if !v.prefetch {
        cfg.l1.prefetch = false;
        cfg.llc.prefetch = false;
    }
    let mc2 = v.mech.needs_engine().then(McSquareConfig::default);
    Job::single(cfg, mc2, g.uops, g.pokes)
}

/// Format one Fig. 12 row from the variants' runtimes (in cycles, ordered
/// as [`fig12_variants`]; `lats[0]` is the baseline).
pub fn fig12_row(frac: f64, lats: &[u64]) -> Vec<String> {
    let base = lats[0] as f64;
    let mut row = vec![format!("{:.0}%", frac * 100.0)];
    row.extend(lats.iter().map(|&l| f3(l as f64 / base)));
    row
}
