//! Simulator-throughput benchmark for CI: re-simulate a pinned subset of
//! the committed figures and report simulated Mcycles per wall-clock
//! second, per bench, as hand-rolled JSON in
//! `BENCH_sim_throughput.json`.
//!
//! Two properties are checked at once:
//!
//! * **Speed** — the JSON numbers are the regression-tracking signal for
//!   the event-driven scheduler and devirtualised DRAM fast paths; CI
//!   archives them per commit.
//! * **Fidelity** — every re-simulated TSV row must be byte-identical to
//!   the committed `results/` file it came from. A performance "win"
//!   that perturbs results is a bug, and this binary exits non-zero on
//!   the first drifted row.
//!
//! The workload is deliberately the same code path the figure binaries
//! use (`figs::fig10_job`, `mess::job_for` at the full committed scale),
//! so the measured throughput is the real harness throughput, not a
//! synthetic kernel.

use mcs_bench::figs::{fig10_job, fig10_mechs, fig10_row, FIG10_SIZES};
use mcs_bench::mess::{job_for, Point, Scale};
use mcs_bench::{marker0, BenchOpts};
use mcs_sim::config::MemTech;
use std::time::Instant;

/// One bench's measurement.
struct Sample {
    name: &'static str,
    mcycles: f64,
    wall_s: f64,
}

impl Sample {
    fn throughput(&self) -> f64 {
        if self.wall_s > 0.0 { self.mcycles / self.wall_s } else { 0.0 }
    }
}

/// Measure `run` as one bench: wall time around it, simulated cycles
/// from the harness's cumulative counter.
fn measure(name: &'static str, run: impl FnOnce()) -> Sample {
    let cycles0 = mcs_bench::sim_cycles();
    let t0 = Instant::now();
    run();
    Sample {
        name,
        mcycles: (mcs_bench::sim_cycles() - cycles0) as f64 / 1e6,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Find the committed TSV data row whose first `key.len()` columns equal
/// `key`.
fn committed_row(file: &str, key: &[&str]) -> String {
    let path = format!("{}/../../results/{}", env!("CARGO_MANIFEST_DIR"), file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e}"));
    text.lines()
        .find(|l| {
            !l.starts_with('#')
                && l.split('\t').take(key.len()).eq(key.iter().copied())
        })
        .unwrap_or_else(|| panic!("no row keyed {key:?} in {file}"))
        .to_string()
}

fn check_row(file: &str, key: &[&str], got: &str, drift: &mut u32) {
    let want = committed_row(file, key);
    if got != want {
        eprintln!("# DRIFT in {file} row {key:?}:\n#   committed: {want}\n#   simulated: {got}");
        *drift += 1;
    }
}

fn bench_fig10(drift: &mut u32) -> Sample {
    let mechs = fig10_mechs();
    let points: Vec<(usize, u64)> = mechs
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| FIG10_SIZES.iter().map(move |&s| (mi, s)))
        .collect();
    let mechs_ref = &mechs;
    let mut results = Vec::new();
    let sample = measure("fig10", || {
        results = mcs_bench::par_run(points, |&(mi, size)| {
            let (_, mech, touch) = &mechs_ref[mi];
            fig10_job(mech, size, *touch)
        });
    });
    for (si, &size) in FIG10_SIZES.iter().enumerate() {
        let lats: Vec<u64> = (0..mechs.len())
            .map(|mi| marker0(&results[mi * FIG10_SIZES.len() + si].1))
            .collect();
        let row = fig10_row(size, &lats).join("\t");
        check_row("fig10.tsv", &[row.split('\t').next().unwrap()], &row, drift);
    }
    sample
}

fn bench_mess(drift: &mut u32) -> Sample {
    // Full committed scale, pinned burst subset: the committed
    // `mess_curves.tsv` rows for these points must reproduce exactly.
    let sc = Scale::full();
    let points: Vec<Point> = MemTech::ALL
        .iter()
        .flat_map(|&tech| {
            [false, true]
                .into_iter()
                .map(move |lazy| Point { tech, lazy, burst: 4 })
        })
        .collect();
    let sc_ref = &sc;
    let mut results = Vec::new();
    let sample = measure("mess_curves", || {
        results = mcs_bench::par_run(points, |p| job_for(p, sc_ref));
    });
    for (p, stats) in &results {
        let row = mcs_bench::mess::row_for(p, &sc, stats).join("\t");
        let mode = if p.lazy { "mcsquare" } else { "memcpy" };
        let burst = p.burst.to_string();
        check_row("mess_curves.tsv", &[p.tech.name(), mode, &burst], &row, drift);
    }
    sample
}

fn main() {
    let _opts = BenchOpts::parse();
    let mut drift = 0u32;
    let samples = vec![bench_fig10(&mut drift), bench_mess(&mut drift)];

    let mut json = String::from("{\n  \"benches\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mcycles\": {:.3}, \"wall_s\": {:.3}, \
             \"mcycles_per_s\": {:.3}}}{}\n",
            s.name,
            s.mcycles,
            s.wall_s,
            s.throughput(),
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    let tot_mc: f64 = samples.iter().map(|s| s.mcycles).sum();
    let tot_wall: f64 = samples.iter().map(|s| s.wall_s).sum();
    json.push_str(&format!(
        "  ],\n  \"total\": {{\"mcycles\": {:.3}, \"wall_s\": {:.3}, \
         \"mcycles_per_s\": {:.3}}},\n  \"rows_drifted\": {}\n}}\n",
        tot_mc,
        tot_wall,
        if tot_wall > 0.0 { tot_mc / tot_wall } else { 0.0 },
        drift,
    ));
    std::fs::write("BENCH_sim_throughput.json", &json).expect("write BENCH_sim_throughput.json");
    eprint!("{json}");

    for s in &samples {
        eprintln!(
            "# perf_smoke {}: {:.1} Mcycles in {:.2} s = {:.2} Mcycles/s",
            s.name,
            s.mcycles,
            s.wall_s,
            s.throughput(),
        );
    }
    if drift > 0 {
        eprintln!("# perf_smoke: {drift} row(s) drifted from committed results");
        std::process::exit(1);
    }
}
