//! Figure 19: Linux pipe transfer throughput, native vs. lazy kernel
//! copies.
//!
//! Paper shape: at small transfers the syscall cost dominates and the two
//! are close; as transfers grow, (MC)² approaches ~2× the native
//! throughput (it skips both the user→kernel and kernel→user data moves).

use mcs_bench::{marker0, f3, Job, Table};
use mcs_os::CopyMode;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::pipe::{pipe_program, throughput_bytes_per_kcycle, PipeConfig};
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let sizes: Vec<u64> = vec![1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10];
    let points: Vec<(u64, bool)> = sizes.iter().flat_map(|&s| [(s, false), (s, true)]).collect();

    let results = mcs_bench::par_run(points, |&(size, lazy)| {
        let mut space = AddrSpace::dram_3gb();
        let mode = if lazy { CopyMode::Lazy } else { CopyMode::Eager };
        let wcfg = PipeConfig { transfer: size, rounds: 24, mode, ..PipeConfig::default() };
        let (uops, pokes, _) = pipe_program(&wcfg, &mut space);
        Job::single(
            SystemConfig::table1_one_core(),
            lazy.then(McSquareConfig::default),
            uops,
            pokes,
        )
    });

    let mut table = Table::new(
        "fig19",
        "pipe transfer throughput (bytes/kilocycle): native vs (MC)^2 kernel",
        &["transfer", "native_bpk", "mcsquare_bpk", "ratio"],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let bytes = size * 24;
        let tn = marker0(&results[2 * i].1);
        let tl = marker0(&results[2 * i + 1].1);
        let n = throughput_bytes_per_kcycle(bytes, tn);
        let l = throughput_bytes_per_kcycle(bytes, tl);
        table.row(vec![mcs_bench::fmt_size(size), f3(n), f3(l), f3(l / n)]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
