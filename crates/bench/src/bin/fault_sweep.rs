//! Availability / graceful-degradation sweep: how much does a faulty
//! memory system slow down `memcpy` versus the (MC)² lazy copy?
//!
//! For each severity step the [`mcs_sim::fault::FaultPlan::mild`] plan is
//! scaled (ECC correctable/uncorrectable rates, link jitter/duplication,
//! controller stalls, forced CTT flushes, dropped-entry repairs) and the
//! Fig. 10 copy-latency microbenchmark plus a full destination read-back
//! run on both mechanisms. Faults degrade *timing only* — every run is
//! still differentially checked for data correctness by the simulator's
//! invariants and the chaos harness; this sweep quantifies the latency
//! cost of riding through them.
//!
//! Emits `results/fault_sweep.tsv`. Pass `--smoke` for the seconds-long
//! CI variant (one size, same code paths).

use mcs_bench::{marker0, f3, fmt_size, ns, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::fault::FaultPlan;
use mcs_sim::stats::RunStats;
use mcs_workloads::micro::seq_access;
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

/// Scale the mild plan's per-event rates by `severity` (0 = fault-free).
fn plan_at(severity: f64) -> FaultPlan {
    if severity <= 0.0 {
        return FaultPlan::none();
    }
    let m = FaultPlan::mild(0xFA17);
    FaultPlan {
        seed: 0xFA17,
        ecc_correctable_rate: (m.ecc_correctable_rate * severity).min(1.0),
        ecc_uncorrectable_rate: (m.ecc_uncorrectable_rate * severity).min(1.0),
        link_jitter_rate: (m.link_jitter_rate * severity).min(1.0),
        link_dup_rate: (m.link_dup_rate * severity).min(1.0),
        mc_stall_rate: (m.mc_stall_rate * severity).min(1.0),
        ctt_flush_rate: (m.ctt_flush_rate * severity).min(1.0),
        ctt_drop_rate: (m.ctt_drop_rate * severity).min(1.0),
        ..m
    }
}

fn fault_events(stats: &RunStats) -> u64 {
    stats.mcs.iter().map(|m| m.fault_events()).sum()
}

fn main() {
    let smoke = mcs_bench::BenchOpts::parse().smoke;
    let size: u64 = if smoke { 16 << 10 } else { 256 << 10 };
    let severities: Vec<f64> =
        if smoke { vec![0.0, 1.0, 4.0] } else { vec![0.0, 0.1, 0.5, 1.0, 2.0, 4.0] };

    // Copy + read every destination line (the `frac = 1.0` Fig. 12 shape):
    // this exercises the whole degradation surface — ECC retries and
    // poisoned reads on the reconstruction path, BPQ/CTT fault repairs,
    // link faults on the bounce traffic.
    let points: Vec<(f64, bool)> = severities
        .iter()
        .flat_map(|&s| [false, true].map(|mcsquare| (s, mcsquare)))
        .collect();
    let results = mcs_bench::par_run(points, |(severity, mcsquare)| {
        let mech = if *mcsquare {
            CopyMech::McSquare { threshold: 0 }
        } else {
            CopyMech::Native
        };
        let mut space = AddrSpace::dram_3gb();
        let g = seq_access(mech.clone(), size, 1.0, true, &mut space);
        let mc2 = mech.needs_engine().then(McSquareConfig::default);
        let mut cfg = SystemConfig::table1_one_core();
        cfg.fault = plan_at(*severity);
        Job::single(cfg, mc2, g.uops, g.pokes)
    });

    let mut t = Table::new(
        "fault_sweep",
        "Copy + full destination read-back latency vs injected-fault severity \
         (multiples of the mild every-fault-class plan); slowdowns are \
         normalised to the same mechanism at severity 0",
        &[
            "severity",
            "size",
            "memcpy_ns",
            "mcsquare_ns",
            "memcpy_slowdown",
            "mcsquare_slowdown",
            "memcpy_fault_events",
            "mcsquare_fault_events",
        ],
    );
    let lat = |i: usize| marker0(&results[i].1);
    let (base_memcpy, base_mcs) = (lat(0), lat(1));
    for (si, &severity) in severities.iter().enumerate() {
        let (lb, lm) = (lat(si * 2), lat(si * 2 + 1));
        t.row(vec![
            format!("{severity:.1}x"),
            fmt_size(size),
            f3(ns(lb)),
            f3(ns(lm)),
            f3(lb as f64 / base_memcpy as f64),
            f3(lm as f64 / base_mcs as f64),
            fault_events(&results[si * 2].1).to_string(),
            fault_events(&results[si * 2 + 1].1).to_string(),
        ]);
    }
    t.emit();
    mcs_bench::print_sim_throughput();
}
