//! Figure 10: copy latency vs. size for native memcpy, zIO, touched
//! memcpy, and (MC)².
//!
//! Paper shape: (MC)² is 55% – 11× faster than memcpy for ≥ 1 KB; zIO is
//! flat-expensive until 64 KB (page floor + shootdown) then wins big at
//! 4 MB; touched memcpy is fastest at small sizes, and (MC)² approaches it
//! from 16 KB up.

use mcs_bench::{f3, fmt_size, ns, timed_run, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::micro::copy_latency;
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let sizes: Vec<u64> =
        vec![64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let mechs: Vec<(&str, CopyMech, bool)> = vec![
        ("memcpy", CopyMech::Native, false),
        ("zio", CopyMech::Zio, false),
        ("touched_memcpy", CopyMech::Native, true),
        ("mcsquare", CopyMech::McSquare { threshold: 0 }, false),
    ];

    let points: Vec<(usize, u64)> = mechs
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| sizes.iter().map(move |&s| (mi, s)))
        .collect();

    let results = mcs_bench::par_run(points, |&(mi, size)| {
        let (_, mech, touch) = &mechs[mi];
        let mut space = AddrSpace::dram_3gb();
        let g = copy_latency(mech.clone(), size, *touch, &mut space);
        let mc2 = mech.needs_engine().then(McSquareConfig::default);
        Job::single(SystemConfig::table1_one_core(), mc2, g.uops, g.pokes)
    });

    let mut table = Table::new(
        "fig10",
        "copy latency (ns) for native memcpy, zIO, touched memcpy and (MC)^2",
        &["size", "memcpy_ns", "zio_ns", "touched_ns", "mcsquare_ns"],
    );
    for (si, &size) in sizes.iter().enumerate() {
        let mut row = vec![fmt_size(size)];
        for mi in 0..mechs.len() {
            let (_, stats) = &results[mi * sizes.len() + si];
            let lat = mcs_workloads::common::marker_latencies(&stats.cores[0])[0];
            row.push(f3(ns(lat)));
        }
        table.row(row);
    }
    table.emit();
    let _ = timed_run; // alternative single-run entry point
}
