//! Figure 10: copy latency vs. size for native memcpy, zIO, touched
//! memcpy, and (MC)².
//!
//! Paper shape: (MC)² is 55% – 11× faster than memcpy for ≥ 1 KB; zIO is
//! flat-expensive until 64 KB (page floor + shootdown) then wins big at
//! 4 MB; touched memcpy is fastest at small sizes, and (MC)² approaches it
//! from 16 KB up.

use mcs_bench::figs::{fig10_job, fig10_mechs, fig10_row, FIG10_SIZES};
use mcs_bench::{marker0, Table};

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let mechs = fig10_mechs();
    let points: Vec<(usize, u64)> = mechs
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| FIG10_SIZES.iter().map(move |&s| (mi, s)))
        .collect();

    let mechs_ref = &mechs;
    let results = mcs_bench::par_run(points, |&(mi, size)| {
        let (_, mech, touch) = &mechs_ref[mi];
        fig10_job(mech, size, *touch)
    });

    let mut table = Table::new(
        "fig10",
        "copy latency (ns) for native memcpy, zIO, touched memcpy and (MC)^2",
        &["size", "memcpy_ns", "zio_ns", "touched_ns", "mcsquare_ns"],
    );
    for (si, &size) in FIG10_SIZES.iter().enumerate() {
        let lats: Vec<u64> = (0..mechs.len())
            .map(|mi| marker0(&results[mi * FIG10_SIZES.len() + si].1))
            .collect();
        table.row(fig10_row(size, &lats));
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
