//! Table I: dump the simulated configuration used throughout the
//! evaluation, alongside the (MC)² hardware parameters (CTT/BPQ sizes and
//! the CACTI-derived CTT figures quoted from the paper).

use mcs_bench::Table;
use mcs_sim::config::SystemConfig;
use mcsquare::ctt::ENTRY_BYTES;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let c = SystemConfig::table1();
    let m = McSquareConfig::default();
    let mut t = Table::new("table1", "simulated configuration", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv("CPUs", c.cores.to_string());
    kv("Clock speed", "4 GHz".into());
    kv("Private L1 cache", format!("{} KB/CPU, stride prefetcher", c.l1.size_bytes >> 10));
    kv("Shared L2 cache", format!("{} MB, stride prefetcher", c.llc.size_bytes >> 20));
    kv("DRAM size", "3 GB (sparse)".into());
    kv("DRAM channels", c.channels.to_string());
    kv("DRAM config", "DDR4-like bank/row-buffer timing".into());
    kv("BPQ size", format!("{} entries", m.bpq_entries));
    kv("CTT entries", m.ctt_entries.to_string());
    kv("CTT latency", format!("{} cycles ({} ns)", c.ctt_latency, c.ctt_latency as f64 / 4.0));
    kv("CTT SRAM", format!("{} KB", m.ctt_entries as u64 * ENTRY_BYTES / 1024));
    kv("CTT area (paper, CACTI 7.0 @22nm)", "0.14 mm^2".into());
    kv("CTT bank leakage (paper)", "33.8 mW".into());
    kv("Drain threshold", format!("{:.0}%", m.drain_threshold * 100.0));
    kv("WPQ writeback-reject watermark", format!("{:.0}%", m.wpq_reject_frac * 100.0));
    t.emit();
    mcs_bench::print_sim_throughput();
}
