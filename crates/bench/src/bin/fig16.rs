//! Figure 16: MVCC read-modify-write throughput vs. update fraction, for
//! 1 thread (a) and 8 threads (b).
//!
//! Paper shape: (MC)² wins up to ~78% at small update fractions (it never
//! reads the unmodified tuple bytes); with 1 thread the baseline catches
//! up at high fractions; with 8 threads the run is bandwidth-bound and
//! (MC)²'s reduced traffic wins everywhere below 100%.

use mcs_bench::{f3, throughput_kops, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::{FixedProgram, Program};
use mcs_workloads::mvcc::{mvcc_multithread, MvccConfig, UpdateKind};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let fracs = [0.0625, 0.125, 0.25, 0.5, 1.0];
    let threads = [1usize, 8];
    let base = MvccConfig {
        tuples: 32,
        tuple_size: 8192,
        txns: 48,
        kind: UpdateKind::Rmw,
        ..MvccConfig::default()
    };

    let mut points: Vec<(usize, f64, bool)> = Vec::new();
    for &t in &threads {
        for &f in &fracs {
            points.push((t, f, false));
            points.push((t, f, true));
        }
    }
    let basec = &base;
    let results = mcs_bench::par_run(points.clone(), |&(nthreads, frac, lazy)| {
        let mut space = AddrSpace::dram_3gb();
        let wcfg = MvccConfig { update_frac: frac, ..basec.clone() };
        let mech = if lazy { CopyMech::McSquare { threshold: 0 } } else { CopyMech::Native };
        let progs = mvcc_multithread(mech.clone(), &wcfg, nthreads, &mut space);
        let mut cfg = SystemConfig::table1();
        cfg.cores = nthreads;
        let mut pokes = mcs_workloads::Pokes::default();
        let mut programs: Vec<Box<dyn Program>> = Vec::new();
        for (u, p) in progs {
            programs.push(Box::new(FixedProgram::new(u)));
            pokes.0.extend(p.0);
        }
        Job {
            cfg,
            mc2: lazy.then(McSquareConfig::default),
            programs,
            pokes,
            max_cycles: 40_000_000_000,
        }
    });

    let mut table = Table::new(
        "fig16",
        "MVCC RMW throughput (kOps/s) vs fraction updated; 1 and 8 threads",
        &["threads", "fraction", "baseline_kops", "mcsquare_kops", "speedup"],
    );
    for (i, &(t, f, _)) in points.iter().enumerate().step_by(2) {
        let b = throughput_kops(&results[i].1, base.txns, t);
        let m = throughput_kops(&results[i + 1].1, base.txns, t);
        table.row(vec![
            t.to_string(),
            format!("{:.2}%", f * 100.0),
            f3(b),
            f3(m),
            f3(m / b),
        ]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
