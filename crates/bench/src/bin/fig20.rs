//! Figure 20: Protobuf performance and CTT-full stalls, sweeping the CTT
//! entry count and the asynchronous-drain threshold.
//!
//! Paper shape: worst-to-best spread is small (~5%); too few entries or a
//! too-high threshold cause CTT-full stalls. The paper sweeps 1,024–4,096
//! entries against its workload; our scaled workload holds proportionally
//! fewer live copies, so the sweep covers proportionally smaller tables
//! (the stall mechanism and its shape are the reproduction target —
//! recorded in EXPERIMENTS.md).

use mcs_bench::{marker0, f3, ms, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::protobuf::{protobuf_program, ProtobufConfig};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let entries = [32usize, 64, 128, 256];
    let thresholds = [0.25f64, 0.5, 0.75, 0.9];
    // No MCFREE hints here: like the paper's run, prospective copies live
    // until overwritten or drained, so table capacity and the drain
    // threshold are the binding constraints.
    let wcfg =
        ProtobufConfig { messages: 64, fields: 8, free_hints: false, ..ProtobufConfig::default() };

    let mut points = Vec::new();
    for &e in &entries {
        for &t in &thresholds {
            points.push((e, t));
        }
    }
    let wc = &wcfg;
    let results = mcs_bench::par_run(points.clone(), |&(e, t)| {
        let mut space = AddrSpace::dram_3gb();
        let (uops, pokes, _) =
            protobuf_program(CopyMech::McSquare { threshold: 1024 }, wc, &mut space);
        let mc2 = McSquareConfig { ctt_entries: e, drain_threshold: t, ..McSquareConfig::default() };
        Job::single(SystemConfig::table1_one_core(), Some(mc2), uops, pokes)
    });

    let mut table = Table::new(
        "fig20",
        "Protobuf runtime (ms) and CTT-full stall cycles vs CTT entries x drain threshold",
        &["ctt_entries", "threshold", "runtime_ms", "ctt_full_stall_cycles", "stalls_norm"],
    );
    let max_stall = results
        .iter()
        .map(|(_, s)| s.engine_counter("ctt_full_retries"))
        .max()
        .unwrap_or(0)
        .max(1);
    for (i, &(e, t)) in points.iter().enumerate() {
        let stats = &results[i].1;
        let rt = marker0(stats);
        let stalls = stats.engine_counter("ctt_full_retries");
        table.row(vec![
            e.to_string(),
            format!("{:.0}%", t * 100.0),
            f3(ms(rt)),
            stalls.to_string(),
            f3(stalls as f64 / max_stall as f64),
        ]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
