//! Figure 17: MVCC write-only throughput vs. fraction written, 1 and 8
//! threads, with the non-temporal store variant.
//!
//! Paper shape: plain write-only mimics RMW because store misses issue
//! read-for-ownership; with non-temporal stores (no RFO) (MC)² beats the
//! baseline at every fraction with 1 thread, and until 100% with 8.

use mcs_bench::{f3, throughput_kops, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::{FixedProgram, Program};
use mcs_workloads::mvcc::{mvcc_multithread, MvccConfig, UpdateKind};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let fracs = [0.0625, 0.125, 0.25, 0.5, 1.0];
    let threads = [1usize, 8];
    let base = MvccConfig { tuples: 32, tuple_size: 8192, txns: 48, ..MvccConfig::default() };

    // Variants per (threads, frac): baseline WriteOnly, MC² WriteOnly,
    // MC² NonTemporal.
    #[derive(Clone)]
    struct P(usize, f64, u8);
    let mut points = Vec::new();
    for &t in &threads {
        for &f in &fracs {
            for v in 0..3u8 {
                points.push(P(t, f, v));
            }
        }
    }
    let basec = &base;
    let results = mcs_bench::par_run(points.clone(), |P(nthreads, frac, v)| {
        let mut space = AddrSpace::dram_3gb();
        let kind = if *v == 2 { UpdateKind::NonTemporal } else { UpdateKind::WriteOnly };
        let mech = if *v == 0 { CopyMech::Native } else { CopyMech::McSquare { threshold: 0 } };
        let wcfg = MvccConfig { update_frac: *frac, kind, ..basec.clone() };
        let progs = mvcc_multithread(mech, &wcfg, *nthreads, &mut space);
        let mut cfg = SystemConfig::table1();
        cfg.cores = *nthreads;
        let mut pokes = mcs_workloads::Pokes::default();
        let mut programs: Vec<Box<dyn Program>> = Vec::new();
        for (u, p) in progs {
            programs.push(Box::new(FixedProgram::new(u)));
            pokes.0.extend(p.0);
        }
        Job {
            cfg,
            mc2: (*v > 0).then(McSquareConfig::default),
            programs,
            pokes,
            max_cycles: 40_000_000_000,
        }
    });

    let mut table = Table::new(
        "fig17",
        "MVCC write-only throughput (kOps/s): baseline, (MC)^2, (MC)^2 nontemporal",
        &["threads", "fraction", "baseline_kops", "mcsquare_kops", "mcsquare_nt_kops"],
    );
    for (i, P(t, f, _)) in points.iter().enumerate().step_by(3) {
        let b = throughput_kops(&results[i].1, base.txns, *t);
        let m = throughput_kops(&results[i + 1].1, base.txns, *t);
        let nt = throughput_kops(&results[i + 2].1, base.txns, *t);
        table.row(vec![t.to_string(), format!("{:.2}%", f * 100.0), f3(b), f3(m), f3(nt)]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
