//! Figure 15: MongoDB average insertion latency for baseline, zIO, and
//! (MC)².
//!
//! Paper shape: (MC)² speeds up inserts ~15.5%; zIO *slows them down*
//! ~9.7% because copied fields are accessed (B-tree, log) and fault.
//! The paper's 10 × 100 KB fields × 50 inserts are scaled down to
//! 10 × 16 KB × 8 (recorded in EXPERIMENTS.md); the copy-to-access
//! pattern, not the absolute volume, drives the result.

use mcs_bench::{f3, ms, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::mongodb::{mongodb_program, MongoConfig};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    // Paper: 10 × 100 KB fields, 50 inserts. We run 10 × 96 KB fields and
    // 4 inserts (time-scaled; the copy-then-access pattern is preserved).
    let wcfg = MongoConfig {
        inserts: 4,
        fields: 10,
        field_size: 96 * 1024,
        // Full MongoDB does substantial non-copy work per field (BSON
        // validation, index maintenance, journaling) — Fig. 2 puts its
        // copy overhead near 40%, which these costs reproduce.
        server_work: 30_000,
        parse_cost: 20_000,
        ..MongoConfig::default()
    };
    let mechs: Vec<(&str, CopyMech)> = vec![
        ("baseline", CopyMech::Native),
        ("zio", CopyMech::Zio),
        ("mcsquare", CopyMech::McSquare { threshold: 1024 }),
    ];

    let mechs_ref = &mechs;
    let wc = &wcfg;
    let results = mcs_bench::par_run((0..mechs.len()).collect(), |&mi| {
        let mut space = AddrSpace::dram_3gb();
        let (uops, pokes, _) = mongodb_program(mechs_ref[mi].1.clone(), wc, &mut space);
        let mc2 = mechs_ref[mi].1.needs_engine().then(McSquareConfig::default);
        Job::single(SystemConfig::table1_one_core(), mc2, uops, pokes)
    });

    let avg = |stats: &mcs_sim::stats::RunStats| {
        let l = marker_latencies(&stats.cores[0]);
        l.iter().sum::<u64>() as f64 / l.len() as f64
    };
    let base = avg(&results[0].1);
    let mut table = Table::new(
        "fig15",
        "MongoDB average insertion latency (ms) and change vs baseline",
        &["mechanism", "avg_latency_ms", "vs_baseline"],
    );
    for (mi, (name, _)) in mechs.iter().enumerate() {
        let t = avg(&results[mi].1);
        table.row(vec![
            name.to_string(),
            f3(ms(t as u64)),
            format!("{:+.1}%", (t / base - 1.0) * 100.0),
        ]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
