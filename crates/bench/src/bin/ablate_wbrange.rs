//! Ablation: the §V-A1 wide-writeback extension.
//!
//! The paper calls `memcpy_lazy`'s per-line CLWB cost "a conservative
//! estimate" and proposes a wider writeback instruction (page
//! granularity) to remove the serialisation above 1 KB. This bench
//! measures the lazy copy latency with per-line CLWBs vs. one WBRANGE per
//! page chunk, and verifies the end state stays correct either way.

use mcs_bench::{marker0, f3, fmt_size, ns, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::common::{marker, pattern, Pokes};
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let sizes: Vec<u64> = vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let points: Vec<(u64, bool)> = sizes.iter().flat_map(|&s| [(s, false), (s, true)]).collect();

    let results = mcs_bench::par_run(points, |&(size, wide)| {
        let mut space = AddrSpace::dram_3gb();
        let src = space.alloc_page(size.max(4096));
        let dst = space.alloc_page(size.max(4096));
        let mut uops = Vec::new();
        marker(&mut uops, 0);
        let opts = LazyOpts { wide_writeback: wide, ..LazyOpts::default() };
        uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, size, &opts));
        marker(&mut uops, 1);
        let mut pokes = Pokes::default();
        pokes.add(src, pattern(size as usize, 3));
        Job::single(SystemConfig::table1_one_core(), Some(McSquareConfig::default()), uops, pokes)
    });

    let mut table = Table::new(
        "ablate_wbrange",
        "memcpy_lazy latency (ns): per-line CLWB vs the wide-writeback extension",
        &["size", "clwb_per_line_ns", "wbrange_ns", "speedup"],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let a = marker0(&results[2 * i].1);
        let b = marker0(&results[2 * i + 1].1);
        table.row(vec![fmt_size(size), f3(ns(a)), f3(ns(b)), f3(a as f64 / b as f64)]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
