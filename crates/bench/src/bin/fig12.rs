//! Figure 12: sequential destination access after a 4 MB copy, varying
//! the fraction of the destination read.
//!
//! Series: native memcpy (baseline = 1.0), zIO, (MC)² (misaligned source,
//! two bounces/line), (MC)² `Aligned`, (MC)² [No prefetch]. Paper shape:
//! (MC)² stays below 1.0 for all fractions (~0.57 aligned best, ~0.8
//! misaligned worst) thanks to the prefetcher running ahead of the demand
//! stream; disabling prefetch degrades it past the baseline (~1.2×); zIO
//! wins only when almost nothing is accessed and loses past ~50%.

use mcs_bench::{f3, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::micro::seq_access;
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

const SIZE: u64 = 4 << 20;

#[derive(Clone)]
struct Variant {
    name: &'static str,
    mech: CopyMech,
    misalign: bool,
    prefetch: bool,
}

fn main() {
    let variants = vec![
        Variant { name: "memcpy", mech: CopyMech::Native, misalign: true, prefetch: true },
        Variant { name: "zio", mech: CopyMech::Zio, misalign: true, prefetch: true },
        Variant {
            name: "mcsquare",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: true,
            prefetch: true,
        },
        Variant {
            name: "mcsquare_aligned",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: false,
            prefetch: true,
        },
        Variant {
            name: "mcsquare_nopf",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: true,
            prefetch: false,
        },
    ];
    let fracs = [0.0, 0.25, 0.5, 0.75, 1.0];

    let points: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|v| fracs.iter().map(move |&f| (v, f)))
        .collect();
    let variants_ref = &variants;
    let results = mcs_bench::par_run(points, |&(vi, frac)| {
        let v = &variants_ref[vi];
        let mut space = AddrSpace::dram_3gb();
        let g = seq_access(v.mech.clone(), SIZE, frac, v.misalign, &mut space);
        let mut cfg = SystemConfig::table1_one_core();
        if !v.prefetch {
            cfg.l1.prefetch = false;
            cfg.llc.prefetch = false;
        }
        let mc2 = v.mech.needs_engine().then(McSquareConfig::default);
        Job::single(cfg, mc2, g.uops, g.pokes)
    });

    let mut headers: Vec<String> = vec!["fraction".into()];
    headers.extend(variants.iter().map(|v| format!("{}_norm", v.name)));
    let mut table = Table::new(
        "fig12",
        "sequential destination access: runtime normalised to native memcpy (4MB copy)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (fi, &frac) in fracs.iter().enumerate() {
        let base = marker_latencies(&results[fi].1.cores[0])[0] as f64;
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for vi in 0..variants.len() {
            let t = marker_latencies(&results[vi * fracs.len() + fi].1.cores[0])[0] as f64;
            row.push(f3(t / base));
        }
        table.row(row);
    }
    table.emit();
}
