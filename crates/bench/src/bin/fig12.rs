//! Figure 12: sequential destination access after a 4 MB copy, varying
//! the fraction of the destination read.
//!
//! Series: native memcpy (baseline = 1.0), zIO, (MC)² (misaligned source,
//! two bounces/line), (MC)² `Aligned`, (MC)² [No prefetch]. Paper shape:
//! (MC)² stays below 1.0 for all fractions (~0.57 aligned best, ~0.8
//! misaligned worst) thanks to the prefetcher running ahead of the demand
//! stream; disabling prefetch degrades it past the baseline (~1.2×); zIO
//! wins only when almost nothing is accessed and loses past ~50%.

use mcs_bench::figs::{fig12_job, fig12_row, fig12_variants, FIG12_FRACS};
use mcs_bench::{marker0, Table};

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let variants = fig12_variants();
    let points: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|v| FIG12_FRACS.iter().map(move |&f| (v, f)))
        .collect();
    let variants_ref = &variants;
    let results =
        mcs_bench::par_run(points, |&(vi, frac)| fig12_job(&variants_ref[vi], frac));

    let mut headers: Vec<String> = vec!["fraction".into()];
    headers.extend(variants.iter().map(|v| format!("{}_norm", v.name)));
    let mut table = Table::new(
        "fig12",
        "sequential destination access: runtime normalised to native memcpy (4MB copy)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (fi, &frac) in FIG12_FRACS.iter().enumerate() {
        let lats: Vec<u64> = (0..variants.len())
            .map(|vi| marker0(&results[vi * FIG12_FRACS.len() + fi].1))
            .collect();
        table.row(fig12_row(frac, &lats));
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
