//! Memory-technology sensitivity sweep: re-runs the Fig. 10 copy-latency
//! microbenchmark and the Fig. 12 sequential destination-access experiment
//! on every [`MemTech`] backend (DDR4, DDR5, HBM2), with refresh enabled —
//! the robustness question the single hardcoded DDR4 model could not ask.
//!
//! Emits `results/sweep_memtech_fig10.tsv` and
//! `results/sweep_memtech_fig12.tsv`. Pass `--smoke` for a seconds-long CI
//! variant (small sizes, all three backends, same code paths).

use mcs_bench::{f3, fmt_size, marker0, ns, BenchOpts, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::{MemTech, SystemConfig};
use mcs_sim::stats::RunStats;
use mcs_workloads::micro::{copy_latency, seq_access};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

/// One simulated configuration point of either sweep.
#[derive(Clone)]
struct Point {
    tech: MemTech,
    mcsquare: bool,
}

fn mech_of(p: &Point) -> CopyMech {
    if p.mcsquare {
        CopyMech::McSquare { threshold: 0 }
    } else {
        CopyMech::Native
    }
}

fn cfg_of(p: &Point) -> SystemConfig {
    let mut cfg = SystemConfig::builder()
        .base(SystemConfig::table1_one_core())
        .tech(p.tech)
        .build();
    cfg.dram = cfg.dram.with_refresh();
    cfg
}

fn refreshes(stats: &RunStats) -> u64 {
    stats.mcs.iter().map(|m| m.refreshes).sum()
}

fn main() {
    let smoke = BenchOpts::parse().smoke;
    let sizes: Vec<u64> = if smoke {
        vec![1 << 10, 4 << 10]
    } else {
        vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20]
    };
    let seq_size: u64 = if smoke { 64 << 10 } else { 4 << 20 };
    let fracs: Vec<f64> = if smoke { vec![0.0, 1.0] } else { vec![0.0, 0.25, 0.5, 0.75, 1.0] };

    // --- Fig. 10 across technologies: copy latency, memcpy vs (MC)² ----
    let points: Vec<(Point, u64)> = MemTech::ALL
        .iter()
        .flat_map(|&tech| {
            sizes.iter().flat_map(move |&size| {
                [false, true].map(|mcsquare| (Point { tech, mcsquare }, size))
            })
        })
        .collect();
    let results = mcs_bench::par_run(points, |(p, size)| {
        let mech = mech_of(p);
        let mut space = AddrSpace::dram_3gb();
        let g = copy_latency(mech.clone(), *size, false, &mut space);
        let mc2 = mech.needs_engine().then(McSquareConfig::default);
        Job::single(cfg_of(p), mc2, g.uops, g.pokes)
    });
    let mut t10 = Table::new(
        "sweep_memtech_fig10",
        "Fig. 10 copy latency across memory technologies, refresh enabled",
        &["tech", "size", "memcpy_ns", "mcsquare_ns", "speedup", "refreshes"],
    );
    let per_tech = sizes.len() * 2;
    for (ti, tech) in MemTech::ALL.iter().enumerate() {
        for (si, &size) in sizes.iter().enumerate() {
            let base = &results[ti * per_tech + si * 2].1;
            let mcs = &results[ti * per_tech + si * 2 + 1].1;
            let (lb, lm) = (marker0(base), marker0(mcs));
            t10.row(vec![
                tech.name().into(),
                fmt_size(size),
                f3(ns(lb)),
                f3(ns(lm)),
                f3(lb as f64 / lm as f64),
                refreshes(mcs).to_string(),
            ]);
        }
    }
    t10.emit();

    // --- Fig. 12 across technologies: destination access after a copy --
    let points: Vec<(Point, f64)> = MemTech::ALL
        .iter()
        .flat_map(|&tech| {
            fracs.iter().flat_map(move |&frac| {
                [false, true].map(|mcsquare| (Point { tech, mcsquare }, frac))
            })
        })
        .collect();
    let results = mcs_bench::par_run(points, |(p, frac)| {
        let mech = mech_of(p);
        let mut space = AddrSpace::dram_3gb();
        let g = seq_access(mech.clone(), seq_size, *frac, true, &mut space);
        let mc2 = mech.needs_engine().then(McSquareConfig::default);
        Job::single(cfg_of(p), mc2, g.uops, g.pokes)
    });
    let mut t12 = Table::new(
        "sweep_memtech_fig12",
        "Fig. 12 sequential destination access across memory technologies: \
         (MC)^2 runtime normalised to native memcpy, refresh enabled",
        &["tech", "fraction", "memcpy_ns", "mcsquare_ns", "mcsquare_norm"],
    );
    let per_tech = fracs.len() * 2;
    for (ti, tech) in MemTech::ALL.iter().enumerate() {
        for (fi, &frac) in fracs.iter().enumerate() {
            let base = marker0(&results[ti * per_tech + fi * 2].1);
            let mcs = marker0(&results[ti * per_tech + fi * 2 + 1].1);
            t12.row(vec![
                tech.name().into(),
                format!("{:.0}%", frac * 100.0),
                f3(ns(base)),
                f3(ns(mcs)),
                f3(mcs as f64 / base as f64),
            ]);
        }
    }
    t12.emit();
    mcs_bench::print_sim_throughput();
}
