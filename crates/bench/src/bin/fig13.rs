//! Figure 13: random (pointer-chase) destination access after a copy.
//!
//! Series: native, zIO, (MC)², (MC)² `Aligned`, (MC)² [No writeback].
//! Paper shape: dependent accesses put the full bounce latency on the
//! critical path. With the post-bounce writeback, (MC)² stays ~0.92× of
//! memcpy; without it every re-access bounces twice and degrades to
//! ~1.6×; zIO spikes to ~2.1× at small fractions (fault per page) and
//! recovers toward 1.3×.

use mcs_bench::{marker0, f3, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::micro::PointerChaseProgram;
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

const SIZE: u64 = 4 << 20; // the paper's 4 MB (must exceed the LLC)

#[derive(Clone)]
struct Variant {
    name: &'static str,
    mech: CopyMech,
    misalign: bool,
    writeback: bool,
}

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let variants = vec![
        Variant { name: "memcpy", mech: CopyMech::Native, misalign: true, writeback: true },
        Variant { name: "zio", mech: CopyMech::Zio, misalign: true, writeback: true },
        Variant {
            name: "mcsquare",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: true,
            writeback: true,
        },
        Variant {
            name: "mcsquare_aligned",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: false,
            writeback: true,
        },
        Variant {
            name: "mcsquare_nowb",
            mech: CopyMech::McSquare { threshold: 0 },
            misalign: true,
            writeback: false,
        },
    ];
    let fracs = [0.125, 0.25, 0.5, 0.75, 1.0];
    let elements = SIZE / 8;

    let points: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|v| fracs.iter().map(move |&f| (v, f)))
        .collect();
    let vs = &variants;
    let results = mcs_bench::par_run(points, |&(vi, frac)| {
        let v = &vs[vi];
        let mut space = AddrSpace::dram_3gb();
        let steps = ((elements as f64) * frac) as u64;
        let (prog, pokes, _) =
            PointerChaseProgram::build(v.mech.clone(), SIZE, steps, v.misalign, 1234, &mut space);
        let mc2 = v.mech.needs_engine().then(|| McSquareConfig {
            writeback_after_bounce: v.writeback,
            ..McSquareConfig::default()
        });
        Job {
            cfg: SystemConfig::table1_one_core(),
            mc2,
            programs: vec![Box::new(prog)],
            pokes,
            max_cycles: 20_000_000_000,
        }
    });

    let mut headers: Vec<String> = vec!["fraction".into()];
    headers.extend(vs.iter().map(|v| format!("{}_norm", v.name)));
    let mut table = Table::new(
        "fig13",
        "random (pointer-chase) destination access: runtime normalised to native memcpy",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (fi, &frac) in fracs.iter().enumerate() {
        let base = marker0(&results[fi].1) as f64;
        let mut row = vec![format!("{:.1}%", frac * 100.0)];
        for vi in 0..vs.len() {
            let t = marker0(&results[vi * fracs.len() + fi].1) as f64;
            row.push(f3(t / base));
        }
        table.row(row);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
