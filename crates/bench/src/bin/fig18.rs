//! Figure 18: per-access write latency under hugepage copy-on-write,
//! native kernel vs. the (MC)²-modified kernel.
//!
//! Paper shape: a 64 MB hugepage region is forked and 100 random 8-byte
//! updates are timed; faults that hit a still-shared 2 MB page cost the
//! native kernel a full-page copy (spikes up to ~455×), while the MCLAZY
//! kernel's worst case is ~2× a plain access — 250× lower.

use mcs_bench::{Job, Table};
use mcs_os::{CowCopyMode, Kernel, OsCosts};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::cow::{cow_program, CowConfig};
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let region = 64 * 1024 * 1024;
    let updates = 100;

    let modes = [("native", CowCopyMode::Eager), ("mcsquare", CowCopyMode::Lazy)];
    let results = mcs_bench::par_run(vec![0usize, 1], |&mi| {
        let (_, mode) = modes[mi];
        let mut kernel =
            Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 2 << 30));
        let wcfg = CowConfig { region, updates, mode, ..CowConfig::default() };
        let (uops, pokes) = cow_program(&wcfg, &mut kernel);
        let mc2 = matches!(mode, CowCopyMode::Lazy).then(McSquareConfig::default);
        Job::single(SystemConfig::table1_one_core(), mc2, uops, pokes)
    });

    let native = marker_latencies(&results[0].1.cores[0]);
    let lazy = marker_latencies(&results[1].1.cores[0]);

    let mut table = Table::new(
        "fig18",
        "per-access write latency (cycles) with hugepage COW: native vs (MC)^2 kernel",
        &["access", "native_cycles", "mcsquare_cycles"],
    );
    for i in 0..updates {
        table.row(vec![i.to_string(), native[i].to_string(), lazy[i].to_string()]);
    }
    table.emit();

    // Summary like the paper's prose.
    let ns = mcs_sim::stats::summarize_latencies(&native).expect("samples");
    let ls = mcs_sim::stats::summarize_latencies(&lazy).expect("samples");
    println!(
        "# native  cycles: min={} p50={} p99={} max={} mean={:.0}",
        ns.min, ns.p50, ns.p99, ns.max, ns.mean
    );
    println!(
        "# (MC)^2  cycles: min={} p50={} p99={} max={} mean={:.0}",
        ls.min, ls.p50, ls.p99, ls.max, ls.mean
    );
    println!("# native worst spike: {}x its fast path", ns.max / ns.min.max(1));
    println!(
        "# (MC)^2 worst case is {:.0}x lower than native worst case",
        ns.max as f64 / ls.max as f64
    );
    mcs_bench::print_sim_throughput();
}
