//! Bandwidth–latency ("Mess"-style) curves per memory technology.
//!
//! All workload construction lives in [`mcs_bench::mess`] (shared with
//! the `perf_smoke` throughput benchmark); this binary sweeps the full
//! grid and emits `results/mess_curves.tsv`. Pass `--smoke` for a
//! seconds-long CI variant (same code paths, smaller buffers and
//! ladder). With the `trace` feature and `--trace=<path>`, each job
//! additionally writes a Chrome trace, a queue-depth time series, and
//! latency histograms.

use mcs_bench::mess::{job_for, points, row_for, Scale};
use mcs_bench::{BenchOpts, Table};

fn main() {
    let smoke = BenchOpts::parse().smoke;
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    let sc = &scale;
    let results = mcs_bench::par_run(points(sc), |p| job_for(p, sc));

    let mut table = Table::new(
        "mess_curves",
        "bandwidth-latency curves: probe chase latency vs injected copy load, \
         per memory technology, memcpy vs (MC)^2",
        &["tech", "mode", "burst", "bw_gbps", "lat_ns", "mc_read_ns"],
    );
    for (p, stats) in &results {
        table.row(row_for(p, sc, stats));
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
