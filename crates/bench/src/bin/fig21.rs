//! Figure 21: runtime when source buffers are overwritten after a lazy
//! copy, varying the number of BPQ entries.
//!
//! Paper shape: 1 entry serialises the source writes badly; 2 entries are
//! ~35% faster; returns diminish — 16 entries gain only ~2% over 8
//! (Table I picks 8).

use mcs_bench::{marker0, f3, fmt_size, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::micro::src_write_stress;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let sizes: Vec<u64> = vec![16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let bpqs = [1usize, 2, 4, 8, 16];

    let mut points = Vec::new();
    for &s in &sizes {
        for &b in &bpqs {
            points.push((s, b));
        }
    }
    let results = mcs_bench::par_run(points.clone(), |&(size, bpq)| {
        let mut space = AddrSpace::dram_3gb();
        let g = src_write_stress(size, &mut space);
        let mc2 = McSquareConfig { bpq_entries: bpq, ..McSquareConfig::default() };
        Job::single(SystemConfig::table1_one_core(), Some(mc2), g.uops, g.pokes)
    });

    let mut table = Table::new(
        "fig21",
        "source-overwrite runtime normalised to BPQ=1, per buffer size",
        &["buffer", "bpq1", "bpq2", "bpq4", "bpq8", "bpq16"],
    );
    for (si, &size) in sizes.iter().enumerate() {
        let base = marker0(&results[si * bpqs.len()].1) as f64;
        let mut row = vec![fmt_size(size)];
        for bi in 0..bpqs.len() {
            let t = marker0(&results[si * bpqs.len() + bi].1) as f64;
            row.push(f3(t / base));
        }
        table.row(row);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
