//! Figure 14: Protobuf (Fleetbench-like) workload runtime for baseline,
//! zIO, and (MC)².
//!
//! Paper shape: (MC)² gives a ~43% speedup; zIO elides nothing because
//! every copy is sub-page.

use mcs_bench::{marker0, f3, ms, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::protobuf::{protobuf_program, ProtobufConfig};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let wcfg = ProtobufConfig { messages: 96, fields: 8, ..ProtobufConfig::default() };
    let mechs: Vec<(&str, CopyMech)> = vec![
        ("baseline", CopyMech::Native),
        ("zio", CopyMech::Zio),
        ("mcsquare", CopyMech::mcsquare_1k()),
    ];

    let points: Vec<usize> = (0..mechs.len()).collect();
    let mechs_ref = &mechs;
    let wc = &wcfg;
    let results = mcs_bench::par_run(points, |&mi| {
        let mut space = AddrSpace::dram_3gb();
        let (uops, pokes, _) = protobuf_program(mechs_ref[mi].1.clone(), wc, &mut space);
        let mc2 = mechs_ref[mi].1.needs_engine().then(McSquareConfig::default);
        Job::single(SystemConfig::table1_one_core(), mc2, uops, pokes)
    });

    let base = marker0(&results[0].1);
    let mut table = Table::new(
        "fig14",
        "Protobuf workload runtime (ms) and speedup over baseline",
        &["mechanism", "runtime_ms", "speedup"],
    );
    for (mi, (name, _)) in mechs.iter().enumerate() {
        let t = marker0(&results[mi].1);
        table.row(vec![
            name.to_string(),
            f3(ms(t)),
            f3(base as f64 / t as f64),
        ]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
