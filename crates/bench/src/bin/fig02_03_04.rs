//! Figures 2–4 (motivation): copy-cycle fractions, memcpy stall anatomy,
//! and the Protobuf copy-size CDF — measured on the simulator instead of
//! the paper's Skylake + perf setup.
//!
//! Paper shape: copy overhead reaches tens of percent of cycles (up to
//! ~68%, and ~99% for hugepage COW); during Protobuf memcpys most cycles
//! have a memory access outstanding and the majority are full stalls;
//! ~56% of Protobuf copies are exactly 1 KB.

use mcs_bench::{f3, Job, Table};
use mcs_os::{CowCopyMode, Kernel, OsCosts};
use mcs_sim::addr::PhysAddr;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::stats::RunStats;
use mcs_sim::uop::StatTag;
use mcs_workloads::cow::{cow_program, CowConfig};
use mcs_workloads::mongodb::{mongodb_program, MongoConfig};
use mcs_workloads::mvcc::{mvcc_program, MvccConfig, UpdateKind};
use mcs_workloads::protobuf::{protobuf_program, ProtobufConfig};
use mcs_workloads::CopyMech;

fn copy_fraction(stats: &RunStats) -> f64 {
    // Count kernel-tagged copy work (COW handlers) together with memcpy.
    let copy = stats.total_tag_cycles(StatTag::Memcpy) + stats.total_tag_cycles(StatTag::Kernel);
    let total: u64 = stats.cores.iter().flat_map(|c| c.cycles_by_tag.values()).sum();
    copy as f64 / total.max(1) as f64
}

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    // --- Fig. 2: copy overhead per use case (baseline machines). ---
    let jobs: Vec<(&str, Job)> = vec![
        ("protobuf", {
            let mut space = AddrSpace::dram_3gb();
            let (u, p, _) = protobuf_program(
                CopyMech::Native,
                &ProtobufConfig { messages: 48, ..ProtobufConfig::default() },
                &mut space,
            );
            Job::single(SystemConfig::table1_one_core(), None, u, p)
        }),
        ("mongodb_inserts", {
            let mut space = AddrSpace::dram_3gb();
            let (u, p, _) = mongodb_program(
                CopyMech::Native,
                &MongoConfig { inserts: 4, field_size: 16 * 1024, ..MongoConfig::default() },
                &mut space,
            );
            Job::single(SystemConfig::table1_one_core(), None, u, p)
        }),
        ("mvcc_writes", {
            let mut space = AddrSpace::dram_3gb();
            let (u, p, _) = mvcc_program(
                CopyMech::Native,
                &MvccConfig { txns: 32, update_ratio: 1.0, kind: UpdateKind::Rmw, ..MvccConfig::default() },
                &mut space,
            );
            Job::single(SystemConfig::table1_one_core(), None, u, p)
        }),
        ("fork_cow_fault", {
            let mut kernel =
                Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 2 << 30));
            let (u, p) = cow_program(
                &CowConfig {
                    region: 16 * 1024 * 1024,
                    updates: 24,
                    mode: CowCopyMode::Eager,
                    ..CowConfig::default()
                },
                &mut kernel,
            );
            Job::single(SystemConfig::table1_one_core(), None, u, p)
        }),
    ];

    let names: Vec<&str> = jobs.iter().map(|(n, _)| *n).collect();
    let mut fig2 = Table::new(
        "fig02",
        "fraction of cycles attributed to memory copying, per use case",
        &["use_case", "copy_overhead"],
    );
    let mut proto_stats: Option<RunStats> = None;
    for ((name, job), n) in jobs.into_iter().zip(names) {
        let stats = job.run();
        fig2.row(vec![n.to_string(), f3(copy_fraction(&stats))]);
        if name == "protobuf" {
            proto_stats = Some(stats);
        }
    }
    fig2.emit();

    // --- Fig. 3: anatomy of Protobuf memcpy cycles. ---
    let st = proto_stats.expect("protobuf ran");
    let c = &st.cores[0];
    let memcpy_cycles = c.tag_cycles(StatTag::Memcpy).max(1);
    let mem_busy = c.mem_busy_by_tag.get(&StatTag::Memcpy).copied().unwrap_or(0);
    let mem_stall = c.tag_mem_stalls(StatTag::Memcpy);
    let miss_frac = if c.loads == 0 { 0.0 } else { c.l1_miss_loads as f64 / c.loads as f64 };
    let mut fig3 = Table::new(
        "fig03",
        "during Protobuf memcpys: cache-miss rate, memory-busy cycles, full-stall cycles",
        &["metric", "fraction"],
    );
    fig3.row(vec!["cache_miss".into(), f3(miss_frac)]);
    fig3.row(vec!["mem_miss_cycles".into(), f3(mem_busy as f64 / memcpy_cycles as f64)]);
    fig3.row(vec!["mem_miss_stall_cycles".into(), f3(mem_stall as f64 / memcpy_cycles as f64)]);
    fig3.emit();

    // --- Fig. 4: Protobuf copy-size CDF. ---
    let dist = mcs_workloads::dist::ProtobufSizes::default();
    let mut fig4 = Table::new(
        "fig04",
        "cumulative distribution of Protobuf memcpy sizes",
        &["size", "cdf"],
    );
    for size in [2u64, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        fig4.row(vec![mcs_bench::fmt_size(size), f3(dist.cdf_at(size))]);
    }
    fig4.emit();
    mcs_bench::print_sim_throughput();
}
