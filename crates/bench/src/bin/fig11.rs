//! Figure 11: overhead breakdown of `memcpy_lazy` — cacheline writeback
//! (CLWB) vs. the MCLAZY packet sends.
//!
//! Paper shape: below 1 KB the CLWBs proceed in parallel and the packet
//! component matters; above 1 KB the CLWBs exhaust the writeback slots and
//! serialise, dominating the overhead at large sizes.

use mcs_bench::{marker0, f3, fmt_size, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::micro::lazy_overhead_parts;
use mcsquare::McSquareConfig;

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let sizes: Vec<u64> =
        vec![64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];

    // Two jobs per size: writeback-only and packet-only.
    let points: Vec<(u64, bool)> =
        sizes.iter().flat_map(|&s| [(s, true), (s, false)]).collect();
    let results = mcs_bench::par_run(points, |&(size, writeback)| {
        let mut space = AddrSpace::dram_3gb();
        let (wb, pk) = lazy_overhead_parts(size, &mut space);
        let g = if writeback { wb } else { pk };
        Job::single(
            SystemConfig::table1_one_core(),
            Some(McSquareConfig::default()),
            g.uops,
            g.pokes,
        )
    });

    let mut table = Table::new(
        "fig11",
        "memcpy_lazy overhead contribution: cacheline writeback vs packet to memctrl",
        &["size", "writeback_cycles", "packet_cycles", "writeback_frac", "packet_frac"],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let wb = marker0(&results[2 * i].1);
        let pk = marker0(&results[2 * i + 1].1);
        let total = (wb + pk) as f64;
        table.row(vec![
            fmt_size(size),
            wb.to_string(),
            pk.to_string(),
            f3(wb as f64 / total),
            f3(pk as f64 / total),
        ]);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
