//! Figure 22: MVCC throughput with (MC)², normalised to the baseline,
//! varying the number of CTT entries freed in parallel per memory
//! controller and the number of executing threads.
//!
//! Paper shape: at low thread counts parallel freeing does not matter (the
//! CTT never fills); at 8 threads serial freeing stalls and parallelism
//! restores the speedup.

use mcs_bench::{f3, Job, Table};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::{FixedProgram, Program};
use mcs_workloads::common::marker_latencies;
use mcs_workloads::mvcc::{mvcc_multithread, MvccConfig, UpdateKind};
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

fn elapsed(stats: &mcs_sim::stats::RunStats, cores: usize) -> u64 {
    stats
        .cores
        .iter()
        .take(cores)
        .map(|c| marker_latencies(c).first().copied().unwrap_or(0))
        .max()
        .unwrap_or(stats.cycles)
}

fn main() {
    let _opts = mcs_bench::BenchOpts::parse();
    let threads = [1usize, 2, 4, 8];
    let frees = [1usize, 2, 4, 8];
    // A CTT small relative to the copy burst so freeing throughput matters
    // (the paper's 2,048 entries against its full-size workload; scaled to
    // our transaction volume).
    let ctt_entries = 64;
    let base = MvccConfig {
        tuples: 16,
        tuple_size: 8192,
        txns: 32,
        update_frac: 0.125,
        update_ratio: 1.0,
        kind: UpdateKind::Rmw,
        ..MvccConfig::default()
    };

    #[derive(Clone)]
    struct P(usize, Option<usize>); // threads, parallel frees (None = baseline)
    let mut points = Vec::new();
    for &t in &threads {
        points.push(P(t, None));
        for &f in &frees {
            points.push(P(t, Some(f)));
        }
    }
    let basec = &base;
    let results = mcs_bench::par_run(points.clone(), |P(nthreads, free)| {
        let mut space = AddrSpace::dram_3gb();
        let mech = match free {
            Some(_) => CopyMech::McSquare { threshold: 0 },
            None => CopyMech::Native,
        };
        let progs = mvcc_multithread(mech, basec, *nthreads, &mut space);
        let mut cfg = SystemConfig::table1();
        cfg.cores = *nthreads;
        let mut pokes = mcs_workloads::Pokes::default();
        let mut programs: Vec<Box<dyn Program>> = Vec::new();
        for (u, p) in progs {
            programs.push(Box::new(FixedProgram::new(u)));
            pokes.0.extend(p.0);
        }
        let mc2 = free.map(|f| McSquareConfig {
            ctt_entries,
            parallel_free: f,
            ..McSquareConfig::default()
        });
        Job { cfg, mc2, programs, pokes, max_cycles: 40_000_000_000 }
    });

    let mut table = Table::new(
        "fig22",
        "MVCC throughput with (MC)^2 normalised to baseline, by threads x parallel frees",
        &["threads", "free1", "free2", "free4", "free8"],
    );
    let row_len = 1 + frees.len();
    for (ti, &t) in threads.iter().enumerate() {
        let base_t = elapsed(&results[ti * row_len].1, t) as f64;
        let mut row = vec![t.to_string()];
        for fi in 0..frees.len() {
            let lazy_t = elapsed(&results[ti * row_len + 1 + fi].1, t) as f64;
            // Normalised throughput = baseline time / lazy time.
            row.push(f3(base_t / lazy_t));
        }
        table.row(row);
    }
    table.emit();
    mcs_bench::print_sim_throughput();
}
