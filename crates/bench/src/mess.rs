//! Shared machinery for the bandwidth–latency ("Mess"-style) curves.
//!
//! A probe core runs a dependent pointer chase through a DRAM-resident
//! buffer — one load in flight at a time, so its per-step latency is the
//! *loaded* memory latency. Background cores inject copy traffic at a
//! controlled rate: each chases its own pacer pointer chain and emits a
//! burst of `burst` copy line operations per chase step, so the injected
//! bandwidth scales with the burst size. The copies run either as native
//! memcpy (64 B load + store per line) or through (MC)² (MCLAZY, then
//! reads of the lazy destination).
//!
//! Lives in the library (rather than the `mess_curves` binary) so the
//! `perf_smoke` throughput benchmark can re-simulate the exact committed
//! points and byte-compare its rows against `results/mess_curves.tsv`.

use crate::{f3, marker0, ns, Job, CYCLES_PER_NS};
use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::{MemTech, SystemConfig};
use mcs_sim::program::{Fetch, Program};
use mcs_sim::stats::RunStats;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopId, UopKind};
use mcs_workloads::Pokes;
use mcsquare::McSquareConfig;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Build a pointer-chase chain over `bytes` at `buf`: each 64 B line's
/// first 8 bytes hold the absolute address of the next line in a
/// Fisher–Yates-shuffled single cycle. Returns the first address.
pub fn chase_chain(buf: PhysAddr, bytes: u64, seed: u64, pokes: &mut Pokes) -> u64 {
    let lines = (bytes / CACHELINE) as usize;
    let mut order: Vec<usize> = (0..lines).collect();
    let mut rng = seed | 1;
    for i in (1..lines).rev() {
        // xorshift64: deterministic, no external dependency.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        order.swap(i, (rng % (i as u64 + 1)) as usize);
    }
    let mut image = vec![0u8; bytes as usize];
    for k in 0..lines {
        let here = order[k] * CACHELINE as usize;
        let next = buf.0 + (order[(k + 1) % lines] as u64) * CACHELINE;
        image[here..here + 8].copy_from_slice(&next.to_le_bytes());
    }
    pokes.add(buf, image);
    buf.0 + (order[0] as u64) * CACHELINE
}

/// Dependent pointer-chase probe: exactly one load in flight at a time,
/// so the marker-bracketed span divided by the step count is the loaded
/// round-trip latency. Sets `stop` when done so the background load
/// generators wind down with it.
struct ChaseProgram {
    stop: Arc<AtomicBool>,
    cur: u64,
    steps_left: u64,
    pending: Option<UopId>,
    state: u8,
}

impl Program for ChaseProgram {
    fn fetch(&mut self, next_id: UopId) -> Fetch {
        match self.state {
            0 => {
                self.state = 1;
                Fetch::Uop(Uop::new(UopKind::Marker { id: 0 }, StatTag::App))
            }
            1 => {
                if self.pending.is_some() {
                    return Fetch::Stall;
                }
                if self.steps_left == 0 {
                    self.state = 2;
                    self.stop.store(true, Ordering::Relaxed);
                    return Fetch::Uop(Uop::new(UopKind::Marker { id: 1 }, StatTag::App));
                }
                self.steps_left -= 1;
                self.pending = Some(next_id);
                Fetch::Uop(Uop::new(
                    UopKind::Load { addr: PhysAddr(self.cur), size: 8 },
                    StatTag::App,
                ))
            }
            _ => Fetch::Done,
        }
    }

    fn on_load_complete(&mut self, id: UopId, data: &[u8]) {
        if self.pending == Some(id) {
            self.pending = None;
            self.cur = u64::from_le_bytes(data[..8].try_into().expect("8B pointer load"));
        }
    }
}

/// Paced background copy traffic. Each round dispatches one dependent
/// pacer-chase load plus a burst of `burst` copy line operations, then
/// stalls until the pacer load returns: the injected rate is
/// `burst` line-ops per memory round trip, so the burst size is the load
/// knob. Copy passes rotate over a pool of (src, dst) buffer pairs and
/// loop until the probe raises `stop`.
struct PacedCopyProgram {
    stop: Arc<AtomicBool>,
    lazy: bool,
    pairs: Vec<(u64, u64)>,
    lines: u64,
    burst: u32,
    pair: usize,
    line: u64,
    pacer_cur: u64,
    pending: Option<UopId>,
    queue: VecDeque<Uop>,
}

impl PacedCopyProgram {
    fn refill_burst(&mut self) {
        for _ in 0..self.burst {
            let (src, dst) = self.pairs[self.pair];
            if self.lazy && self.line == 0 {
                self.queue.push_back(Uop::new(
                    UopKind::Mclazy {
                        dst: PhysAddr(dst),
                        src: PhysAddr(src),
                        size: self.lines * CACHELINE,
                    },
                    StatTag::Memcpy,
                ));
            }
            let off = self.line * CACHELINE;
            if self.lazy {
                self.queue.push_back(Uop::new(
                    UopKind::Load { addr: PhysAddr(dst + off), size: 8 },
                    StatTag::App,
                ));
            } else {
                self.queue.push_back(Uop::new(
                    UopKind::Load { addr: PhysAddr(src + off), size: 64 },
                    StatTag::Memcpy,
                ));
                self.queue.push_back(Uop::new(
                    UopKind::Store {
                        addr: PhysAddr(dst + off),
                        size: 64,
                        data: StoreData::Splat(0xab),
                        nontemporal: false,
                    },
                    StatTag::Memcpy,
                ));
            }
            self.line += 1;
            if self.line == self.lines {
                self.line = 0;
                self.pair = (self.pair + 1) % self.pairs.len();
            }
        }
    }
}

impl Program for PacedCopyProgram {
    fn fetch(&mut self, next_id: UopId) -> Fetch {
        if let Some(u) = self.queue.pop_front() {
            return Fetch::Uop(u);
        }
        if self.pending.is_some() {
            return Fetch::Stall;
        }
        if self.stop.load(Ordering::Relaxed) {
            return Fetch::Done;
        }
        // New round: the pacer load goes out first, the burst streams
        // behind it while it is in flight.
        self.refill_burst();
        self.pending = Some(next_id);
        Fetch::Uop(Uop::new(
            UopKind::Load { addr: PhysAddr(self.pacer_cur), size: 8 },
            StatTag::App,
        ))
    }

    fn on_load_complete(&mut self, id: UopId, data: &[u8]) {
        if self.pending == Some(id) {
            self.pending = None;
            self.pacer_cur = u64::from_le_bytes(data[..8].try_into().expect("8B pointer load"));
        }
    }
}

/// Sweep dimensions of one curve point.
#[derive(Clone)]
pub struct Point {
    /// Memory technology under test.
    pub tech: MemTech,
    /// Copies through (MC)² (`true`) or native memcpy (`false`).
    pub lazy: bool,
    /// Copy line-ops injected per background-core memory round trip.
    pub burst: u32,
}

/// Workload sizing of a sweep.
pub struct Scale {
    /// Probe pointer-chase buffer size.
    pub chase_bytes: u64,
    /// Probe chase steps (latency sample count).
    pub steps: u64,
    /// Background copy cores.
    pub bg_cores: usize,
    /// Bytes per copy buffer.
    pub pair_bytes: u64,
    /// (src, dst) buffer pairs rotated per background core.
    pub pairs_per_core: usize,
    /// Burst-size ladder swept per (tech, mode).
    pub bursts: Vec<u32>,
}

impl Scale {
    /// The seconds-long CI variant (`--smoke`).
    pub fn smoke() -> Scale {
        Scale {
            chase_bytes: 4 << 20,
            steps: 1_500,
            bg_cores: 2,
            pair_bytes: 256 << 10,
            pairs_per_core: 2,
            bursts: vec![0, 4, 32],
        }
    }

    /// The full committed-results variant.
    pub fn full() -> Scale {
        Scale {
            chase_bytes: 8 << 20,
            steps: 10_000,
            bg_cores: 4,
            pair_bytes: 512 << 10,
            pairs_per_core: 4,
            bursts: vec![0, 1, 2, 4, 8, 16, 32, 64, 128],
        }
    }
}

/// The full sweep grid for `scale`: every technology × mode × burst.
pub fn points(scale: &Scale) -> Vec<Point> {
    MemTech::ALL
        .iter()
        .flat_map(|&tech| {
            [false, true].into_iter().flat_map({
                let bursts = scale.bursts.clone();
                move |lazy| {
                    bursts.clone().into_iter().map(move |burst| Point { tech, lazy, burst })
                }
            })
        })
        .collect()
}

/// Build the simulation job for one curve point.
pub fn job_for(p: &Point, sc: &Scale) -> Job {
    let mut space = AddrSpace::dram_3gb();
    let mut pokes = Pokes::default();
    let stop = Arc::new(AtomicBool::new(false));
    let chase_buf = space.alloc_page(sc.chase_bytes);
    let start = chase_chain(chase_buf, sc.chase_bytes, 0x9e37_79b9, &mut pokes);
    let probe = ChaseProgram {
        stop: stop.clone(),
        cur: start,
        steps_left: sc.steps,
        pending: None,
        state: 0,
    };
    let mut programs: Vec<Box<dyn Program>> = vec![Box::new(probe)];
    let lines = sc.pair_bytes / CACHELINE;
    for b in 0..sc.bg_cores {
        let pacer_buf = space.alloc_page(sc.chase_bytes / 2);
        let pacer_cur =
            chase_chain(pacer_buf, sc.chase_bytes / 2, 0xc2b2_ae35 + b as u64, &mut pokes);
        let pairs: Vec<(u64, u64)> = (0..sc.pairs_per_core)
            .map(|_| (space.alloc_page(sc.pair_bytes).0, space.alloc_page(sc.pair_bytes).0))
            .collect();
        programs.push(Box::new(PacedCopyProgram {
            stop: stop.clone(),
            lazy: p.lazy,
            pairs,
            lines,
            burst: p.burst,
            pair: 0,
            line: 0,
            pacer_cur,
            pending: None,
            queue: VecDeque::new(),
        }));
    }
    let mut cfg = SystemConfig::builder().tech(p.tech).build();
    cfg.cores = programs.len();
    Job {
        cfg,
        mc2: p.lazy.then(McSquareConfig::default),
        programs,
        pokes,
        max_cycles: 40_000_000_000,
    }
}

fn total_accesses(stats: &RunStats) -> u64 {
    stats
        .mcs
        .iter()
        .map(|m| m.reads + m.writes + m.engine_reads + m.engine_writes)
        .sum()
}

/// Format one TSV data row exactly as `mess_curves` emits it, so callers
/// can byte-compare re-simulated rows against the committed file.
pub fn row_for(p: &Point, sc: &Scale, stats: &RunStats) -> Vec<String> {
    let bytes = total_accesses(stats) * CACHELINE;
    let bw_gbps = bytes as f64 * CYCLES_PER_NS / stats.cycles as f64;
    let lat_ns = ns(marker0(stats)) / sc.steps as f64;
    let mc = stats
        .mcs
        .iter()
        .fold((0u64, 0u64), |a, m| (a.0 + m.demand_read_lat_sum, a.1 + m.demand_reads_done));
    let mc_read_ns = mc.0.checked_div(mc.1).map_or(0.0, ns);
    vec![
        p.tech.name().into(),
        if p.lazy { "mcsquare" } else { "memcpy" }.into(),
        p.burst.to_string(),
        f3(bw_gbps),
        f3(lat_ns),
        f3(mc_read_ns),
    ]
}
