//! Criterion microbenchmarks for the hot (MC)² data structures: CTT
//! insert/lookup/untrack under realistic mixes, the interval map, and the
//! BPQ.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcs_sim::addr::PhysAddr;
use mcs_sim::data::LineData;
use mcsquare::bpq::Bpq;
use mcsquare::ctt::Ctt;
use mcsquare::ranges::{ByteRange, RangeMap, SrcBase};
use std::hint::black_box;

fn half_full_ctt() -> Ctt {
    let mut c = Ctt::new(2048);
    for i in 0..1024u64 {
        // Distinct, non-mergeable 1 KB entries.
        let dst = PhysAddr(i * 8192);
        let src = PhysAddr((1 << 30) + i * 16384 + 24);
        c.try_insert(dst, src, 1024).expect("fits");
    }
    c
}

fn bench_ctt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctt");

    g.bench_function("insert_into_half_full", |b| {
        b.iter_batched(
            half_full_ctt,
            |mut ctt| {
                ctt.try_insert(
                    black_box(PhysAddr(900 * 8192 + 4096)),
                    black_box(PhysAddr(2 << 30)),
                    1024,
                )
                .unwrap();
                ctt
            },
            BatchSize::SmallInput,
        )
    });

    let ctt = half_full_ctt();
    g.bench_function("lookup_hit", |b| {
        b.iter(|| black_box(ctt.lookup_line(black_box(PhysAddr(512 * 8192)))))
    });
    g.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(ctt.lookup_line(black_box(PhysAddr(3 << 30)))))
    });
    g.bench_function("covers_dst_miss", |b| {
        b.iter(|| black_box(ctt.covers_dst(black_box(PhysAddr(3 << 30)), 64)))
    });
    g.bench_function("src_overlap_scan", |b| {
        b.iter(|| black_box(ctt.src_overlapping(black_box(PhysAddr((1 << 30) + 512 * 16384)), 64)))
    });

    g.bench_function("untrack_line", |b| {
        b.iter_batched(
            half_full_ctt,
            |mut ctt| {
                ctt.remove_dst(black_box(PhysAddr(512 * 8192 + 64)), 64);
                ctt
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_range_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_map");
    g.bench_function("insert_coalescing_stream", |b| {
        b.iter(|| {
            let mut m: RangeMap<SrcBase> = RangeMap::new();
            for i in 0..256u64 {
                m.insert(ByteRange::sized(i * 64, 64), SrcBase((1 << 20) + i * 64));
            }
            black_box(m.segments())
        })
    });
    g.bench_function("overlapping_query", |b| {
        let mut m: RangeMap<SrcBase> = RangeMap::new();
        for i in 0..1024u64 {
            m.insert(ByteRange::sized(i * 256, 64), SrcBase(i));
        }
        b.iter(|| black_box(m.overlapping(ByteRange::new(100_000, 100_064)).len()))
    });
    g.finish();
}

fn bench_bpq(c: &mut Criterion) {
    c.bench_function("bpq_insert_lookup_release", |b| {
        b.iter(|| {
            let mut q = Bpq::new(8);
            for i in 0..8u64 {
                q.insert(PhysAddr(i * 64), LineData::splat(i as u8));
            }
            let hit = q.get(black_box(PhysAddr(4 * 64))).is_some();
            let out = q.take_ready(|_| true);
            black_box((hit, out.len()))
        })
    });
}

criterion_group!(benches, bench_ctt, bench_range_map, bench_bpq);
criterion_main!(benches);
