//! Criterion benchmarks for the simulator itself, plus an end-to-end lazy
//! vs. eager copy comparison at a fixed size (a smoke version of Fig. 10
//! suitable for `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_workloads::micro::copy_latency;
use mcs_workloads::CopyMech;
use mcsquare::{McSquareConfig, McSquareEngine};
use std::hint::black_box;

fn run_copy(mech: CopyMech, size: u64) -> u64 {
    let mut space = AddrSpace::dram_3gb();
    let g = copy_latency(mech.clone(), size, false, &mut space);
    let cfg = SystemConfig::table1_one_core();
    let mut sys = if mech.needs_engine() {
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        System::with_engine(cfg, vec![Box::new(FixedProgram::new(g.uops))], Box::new(e))
    } else {
        System::new(cfg, vec![Box::new(FixedProgram::new(g.uops))])
    };
    g.pokes.apply(&mut sys);
    let stats = sys.run(1_000_000_000).expect("finishes");
    mcs_workloads::common::marker_latencies(&stats.cores[0])[0]
}

fn bench_copies(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_copy_16k");
    g.sample_size(10);
    g.bench_function("native", |b| {
        b.iter(|| black_box(run_copy(CopyMech::Native, 16 * 1024)))
    });
    g.bench_function("mcsquare", |b| {
        b.iter(|| black_box(run_copy(CopyMech::McSquare { threshold: 0 }, 16 * 1024)))
    });
    g.finish();
}

fn bench_tick_rate(c: &mut Criterion) {
    // Pure tick throughput with a short streaming-read program.
    c.bench_function("sim_4k_streaming_read", |b| {
        b.iter(|| {
            let mut uops = Vec::new();
            for i in 0..64u64 {
                uops.push(mcs_sim::uop::Uop::new(
                    mcs_sim::uop::UopKind::Load {
                        addr: mcs_sim::addr::PhysAddr(0x100000 + i * 64),
                        size: 64,
                    },
                    mcs_sim::uop::StatTag::App,
                ));
            }
            let mut sys = System::new(
                SystemConfig::table1_one_core(),
                vec![Box::new(FixedProgram::new(uops))],
            );
            black_box(sys.run(10_000_000).expect("finishes").cycles)
        })
    });
}

criterion_group!(benches, bench_copies, bench_tick_rate);
criterion_main!(benches);
