//! Golden-shape regression for the headline result: the Fig. 10
//! (MC)²-vs-memcpy copy-latency speedups on the default DDR4 system.
//!
//! The exact cycle counts are pinned byte-for-byte by `results/fig10.tsv`
//! regeneration; this test instead pins the *shape* — the speedup ratios at
//! three decades of copy size — with a ±10% tolerance, so that deliberate
//! timing-model retunes that preserve the paper's story still pass while
//! anything that flattens or inverts the curve fails loudly.
//!
//! Golden ratios come from the committed `results/fig10.tsv`
//! (see EXPERIMENTS.md): 1 KB → 2.731×, 64 KB → 4.616×, 4 MB → 8.886×.

use mcs_bench::Job;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::config::SystemConfig;
use mcs_workloads::common::marker_latencies;
use mcs_workloads::micro::copy_latency;
use mcs_workloads::CopyMech;
use mcsquare::McSquareConfig;

/// Copy latency (cycles) for `mech` at `size` on the default DDR4 system,
/// refresh forced off regardless of `MCS_REFRESH` and fault injection
/// forced off regardless of `MCS_FAULTS`, so the goldens hold.
fn latency(mech: CopyMech, size: u64) -> u64 {
    let mut cfg = SystemConfig::table1_one_core();
    cfg.dram.t_refi = 0;
    cfg.fault = mcs_sim::fault::FaultPlan::none();
    let mut space = AddrSpace::dram_3gb();
    let g = copy_latency(mech.clone(), size, false, &mut space);
    let engine = mech.needs_engine().then(McSquareConfig::default);
    let stats = Job::single(cfg, engine, g.uops, g.pokes).run();
    marker_latencies(&stats.cores[0])[0]
}

#[test]
fn fig10_speedup_ratios_match_golden_shape() {
    let golden = [(1u64 << 10, 2.731), (64 << 10, 4.616), (4 << 20, 8.886)];
    for (size, expect) in golden {
        let memcpy = latency(CopyMech::Native, size);
        let mcs = latency(CopyMech::McSquare { threshold: 0 }, size);
        let speedup = memcpy as f64 / mcs as f64;
        let rel = (speedup - expect).abs() / expect;
        assert!(
            rel <= 0.10,
            "size {size}: (MC)^2 speedup {speedup:.3}x drifted more than 10% \
             from golden {expect:.3}x (memcpy {memcpy} cyc, mcsquare {mcs} cyc)"
        );
    }
}
