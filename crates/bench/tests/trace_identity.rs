//! Byte-identity regression: with the `trace` feature off (the default
//! test build), re-simulating Fig. 10 / Fig. 12 points through the shared
//! [`mcs_bench::figs`] constructors must reproduce the committed
//! `results/*.tsv` rows *byte for byte*. This is the acceptance criterion
//! for the observability layer being zero-cost when disabled: if any
//! instrumentation leaks timing into the trace-off build, these rows
//! drift and the comparison fails.
//!
//! (When built `--features trace` with `MCS_TRACE` unset, the same
//! comparison proves the armed-capable build is also timing-identical.)

use mcs_bench::figs::{
    fig10_job, fig10_mechs, fig10_row, fig12_job, fig12_row, fig12_variants,
};
use mcs_bench::marker0;

/// Read one data row (by first-column key) out of a committed TSV.
fn committed_row(file: &str, key: &str) -> String {
    let path = format!("{}/../../results/{}", env!("CARGO_MANIFEST_DIR"), file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e}"));
    text.lines()
        .find(|l| l.split('\t').next() == Some(key))
        .unwrap_or_else(|| panic!("no row keyed {key:?} in {file}"))
        .to_string()
}

/// Force refresh and fault injection off regardless of `MCS_REFRESH` /
/// `MCS_FAULTS`, matching the clean environment the committed TSVs were
/// generated under.
fn neutralize(job: &mut mcs_bench::Job) {
    job.cfg.dram.t_refi = 0;
    job.cfg.fault = mcs_sim::fault::FaultPlan::none();
}

#[test]
fn fig10_rows_byte_identical_to_committed_tsv() {
    for size in [1u64 << 10, 64 << 10] {
        let lats: Vec<u64> = fig10_mechs()
            .iter()
            .map(|(_, mech, touch)| {
                let mut job = fig10_job(mech, size, *touch);
                neutralize(&mut job);
                marker0(&job.run())
            })
            .collect();
        let row = fig10_row(size, &lats).join("\t");
        assert_eq!(
            row,
            committed_row("fig10.tsv", row.split('\t').next().unwrap()),
            "fig10 row for size {size} drifted from the committed TSV"
        );
    }
}

#[test]
fn fig12_row_byte_identical_to_committed_tsv() {
    let frac = 0.0;
    let lats: Vec<u64> = fig12_variants()
        .iter()
        .map(|v| {
            let mut job = fig12_job(v, frac);
            neutralize(&mut job);
            marker0(&job.run())
        })
        .collect();
    let row = fig12_row(frac, &lats).join("\t");
    assert_eq!(
        row,
        committed_row("fig12.tsv", "0%"),
        "fig12 0% row drifted from the committed TSV"
    );
}
