//! # mcs-workloads — workload generators for the (MC)² evaluation
//!
//! Each module builds the uop programs behind one of the paper's
//! evaluation sections, parameterised over the copy mechanism under test
//! ([`common::CopyMech`]: native memcpy, the (MC)² interposer, or zIO):
//!
//! * [`micro`] — Figs. 10–13 and 21 microbenchmarks (copy latency sweep,
//!   overhead breakdown, sequential and pointer-chase destination access,
//!   source-write BPQ stress);
//! * [`protobuf`] — the Fleetbench-like serialization workload (Figs. 14,
//!   20) over the Fig. 4 size distribution ([`dist`]);
//! * [`mongodb`] — YCSB-load-style inserts with the three copy sites the
//!   paper names (Fig. 15);
//! * [`mvcc`] — the Cicada-style multi-version table (Figs. 16, 17, 22);
//! * [`cow`] — fork + hugepage copy-on-write snapshotting (Fig. 18);
//! * [`pipe`] — kernel pipe transfers (Fig. 19).
//!
//! All generators are deterministic given their seed, so whole-figure
//! sweeps are exactly reproducible.

pub mod common;
pub mod cow;
pub mod dist;
pub mod micro;
pub mod mongodb;
pub mod mvcc;
pub mod pipe;
pub mod protobuf;

pub use common::{CopyMech, Copier, Pokes};
