//! Shared workload plumbing: the pluggable copy mechanism and program
//! assembly helpers.
//!
//! Workloads generate uop streams for a [`mcs_sim::program::FixedProgram`];
//! because the core assigns uop ids sequentially from zero, `uops.len()`
//! is always the id of the next uop, which is how `FromLoad` dependencies
//! and fault-plan splicing stay consistent.

use mcs_baselines::zio::{Zio, ZioCosts};
use mcs_sim::addr::PhysAddr;
use mcs_sim::data::SparseMem;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use mcsquare::software::{memcpy_interposed_uops, LazyOpts};

/// Which memcpy implementation a workload runs with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CopyMech {
    /// Plain eager memcpy (baseline).
    Native,
    /// (MC)² via the interposer: copies of at least `threshold` bytes go
    /// through `memcpy_lazy` (the paper's Protobuf run uses 1 KB).
    McSquare {
        /// Minimum copy size to interpose.
        threshold: u64,
    },
    /// zIO-style transparent elision.
    Zio,
}

impl CopyMech {
    /// The (MC)² mechanism with the paper's 1 KB interposer threshold.
    pub fn mcsquare_1k() -> CopyMech {
        CopyMech::McSquare { threshold: 1024 }
    }

    /// Whether this mechanism requires the (MC)² engine in the system.
    pub fn needs_engine(&self) -> bool {
        matches!(self, CopyMech::McSquare { .. })
    }
}

/// A stateful copier: generates copy uops and pre-access fixups for the
/// configured mechanism.
#[derive(Debug)]
pub struct Copier {
    mech: CopyMech,
    zio: Option<Zio>,
    /// Total bytes requested through [`Copier::copy`].
    pub bytes_copied: u64,
    /// Copy calls made.
    pub calls: u64,
}

impl Copier {
    /// Create a copier for `mech`.
    pub fn new(mech: CopyMech) -> Copier {
        let zio = matches!(mech, CopyMech::Zio).then(|| Zio::new(ZioCosts::default()));
        Copier { mech, zio, bytes_copied: 0, calls: 0 }
    }

    /// Append the uops of `memcpy(dst, src, size)` under this mechanism.
    pub fn copy(&mut self, uops: &mut Vec<Uop>, dst: PhysAddr, src: PhysAddr, size: u64) {
        self.bytes_copied += size;
        self.calls += 1;
        let base = uops.len() as u64;
        match &self.mech {
            CopyMech::Native => {
                uops.extend(mcsquare::software::memcpy_eager_uops(
                    base,
                    dst,
                    src,
                    size,
                    StatTag::Memcpy,
                ));
            }
            CopyMech::McSquare { threshold } => {
                uops.extend(memcpy_interposed_uops(
                    base,
                    dst,
                    src,
                    size,
                    *threshold,
                    &LazyOpts::default(),
                ));
            }
            CopyMech::Zio => {
                let z = self.zio.as_mut().expect("zio runtime present");
                let mut fix = z.access_fixups(base, src, size);
                // Reading an elided source faults first (copy-on-access).
                let base2 = base + fix.len() as u64;
                fix.extend(z.memcpy_uops(base2, dst, src, size));
                uops.extend(fix);
            }
        }
    }

    /// Append fault fixups that must precede an access to
    /// `[addr, addr+len)` (zIO copy-on-access; a no-op for the others).
    pub fn before_access(&mut self, uops: &mut Vec<Uop>, addr: PhysAddr, len: u64) {
        if let Some(z) = self.zio.as_mut() {
            let base = uops.len() as u64;
            let fix = z.access_fixups(base, addr, len);
            uops.extend(fix);
        }
    }

    /// zIO statistics, when running under zIO.
    pub fn zio_stats(&self) -> Option<&mcs_baselines::zio::ZioStats> {
        self.zio.as_ref().map(|z| &z.stats)
    }

    /// Declare `[addr, addr+len)` dead (buffer freed / arena destroyed).
    /// Under (MC)² this emits the paper's `MCFREE` hint (§III-C: "called
    /// within functions like munmap"), dropping prospective copies whose
    /// destination lies in the buffer so recycled buffers do not pin their
    /// sources. A no-op for the other mechanisms.
    pub fn free_hint(&mut self, uops: &mut Vec<Uop>, addr: PhysAddr, len: u64) {
        if matches!(self.mech, CopyMech::McSquare { .. }) && len > 0 {
            uops.push(Uop::new(UopKind::Mcfree { addr, size: len }, StatTag::App));
        }
    }
}

/// Append sequential 64B loads over `[addr, addr+len)` (a streaming read).
pub fn read_region(uops: &mut Vec<Uop>, addr: PhysAddr, len: u64, tag: StatTag) {
    for l in mcs_sim::addr::lines_of(addr, len) {
        uops.push(Uop::new(UopKind::Load { addr: l, size: 64 }, tag));
    }
}

/// Append a retire-timestamp marker.
pub fn marker(uops: &mut Vec<Uop>, id: u32) {
    uops.push(Uop::new(UopKind::Marker { id }, StatTag::App));
}

/// Append an `MFENCE`.
pub fn fence(uops: &mut Vec<Uop>, tag: StatTag) {
    uops.push(Uop::new(UopKind::Mfence, tag));
}

/// Deterministic pattern bytes for buffer initialisation.
pub fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(131).wrapping_add(seed as u64) % 251) as u8).collect()
}

/// Memory initialisation to apply before a run.
#[derive(Debug, Default, Clone)]
pub struct Pokes(pub Vec<(PhysAddr, Vec<u8>)>);

impl Pokes {
    /// Record an initialisation write.
    pub fn add(&mut self, addr: PhysAddr, bytes: Vec<u8>) {
        self.0.push((addr, bytes));
    }

    /// Apply to a system.
    pub fn apply(&self, sys: &mut mcs_sim::system::System) {
        for (a, b) in &self.0 {
            sys.poke(*a, b);
        }
    }

    /// Apply to a raw memory image (tests).
    pub fn apply_mem(&self, mem: &mut SparseMem) {
        for (a, b) in &self.0 {
            mem.write_bytes(*a, b);
        }
    }
}

/// Extract per-marker latencies from run stats: pairs `(2k, 2k+1)` become
/// `lat[k] = t(2k+1) - t(2k)`.
pub fn marker_latencies(stats: &mcs_sim::stats::CoreStats) -> Vec<u64> {
    let mut starts = std::collections::HashMap::new();
    let mut out = Vec::new();
    for &(id, t) in &stats.markers {
        if id % 2 == 0 {
            starts.insert(id / 2, t);
        } else if let Some(s) = starts.remove(&(id / 2)) {
            out.push(t.saturating_sub(s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copier_native_is_pure_eager() {
        let mut c = Copier::new(CopyMech::Native);
        let mut uops = Vec::new();
        c.copy(&mut uops, PhysAddr(0x10000), PhysAddr(0x20000), 256);
        assert!(uops.iter().all(|u| !matches!(u.kind, UopKind::Mclazy { .. })));
        assert_eq!(c.bytes_copied, 256);
    }

    #[test]
    fn copier_mcsquare_respects_threshold() {
        let mut c = Copier::new(CopyMech::mcsquare_1k());
        let mut uops = Vec::new();
        c.copy(&mut uops, PhysAddr(0x10000), PhysAddr(0x20000), 512);
        assert!(uops.iter().all(|u| !matches!(u.kind, UopKind::Mclazy { .. })));
        c.copy(&mut uops, PhysAddr(0x10000), PhysAddr(0x20000), 4096);
        assert!(uops.iter().any(|u| matches!(u.kind, UopKind::Mclazy { .. })));
    }

    #[test]
    fn copier_zio_tracks_and_faults() {
        let mut c = Copier::new(CopyMech::Zio);
        let mut uops = Vec::new();
        c.copy(&mut uops, PhysAddr(0x10000), PhysAddr(0x20000), 8192);
        assert_eq!(c.zio_stats().unwrap().pages_elided, 2);
        c.before_access(&mut uops, PhysAddr(0x10000), 8);
        assert_eq!(c.zio_stats().unwrap().faults, 1);
    }

    #[test]
    fn marker_latency_pairing() {
        let mut cs = mcs_sim::stats::CoreStats::default();
        cs.markers = vec![(0, 100), (1, 180), (2, 200), (3, 450)];
        assert_eq!(marker_latencies(&cs), vec![80, 250]);
    }

    #[test]
    fn uop_ids_equal_vec_indices() {
        // The invariant every generator relies on.
        let mut c = Copier::new(CopyMech::Native);
        let mut uops = Vec::new();
        c.copy(&mut uops, PhysAddr(0x10000), PhysAddr(0x20000), 128);
        for (i, u) in uops.iter().enumerate() {
            if let UopKind::Store { data: mcs_sim::uop::StoreData::FromLoad { load, .. }, .. } =
                &u.kind
            {
                assert!(*load < i as u64, "store {i} depends on earlier load {load}");
            }
        }
    }
}
