//! Pipe transfer workload (Fig. 19) — user-kernel buffer copies.
//!
//! A producer writes `transfer`-byte chunks into a pipe and a consumer
//! reads them back, through the `mcs-os` pipe model, with the kernel
//! copies either eager (`copy_from_user`/`copy_to_user`) or lazy (the
//! paper's modified `pipe_write`/`pipe_read`). The figure reports
//! throughput in bytes per kilocycle; for small transfers the syscall cost
//! dominates, for large ones the copy does — which is where the lazy path
//! roughly doubles throughput.

use crate::common::{marker, pattern, Pokes};
use mcs_os::{CopyMode, OsCosts, Pipe};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, Uop, UopKind};

/// Pipe workload parameters.
#[derive(Clone, Debug)]
pub struct PipeConfig {
    /// Bytes per transfer (the sweep axis: 1 KB – 16 KB).
    pub transfer: u64,
    /// Number of write+read round trips.
    pub rounds: usize,
    /// Kernel copy implementation.
    pub mode: CopyMode,
    /// Pipe buffer capacity (Linux default: 64 KB).
    pub capacity: u64,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig { transfer: 4096, rounds: 16, mode: CopyMode::Eager, capacity: 64 * 1024 }
    }
}

/// Build the transfer loop. Markers 0/1 bracket all rounds; total bytes
/// moved = `transfer × rounds` (each direction).
pub fn pipe_program(cfg: &PipeConfig, space: &mut AddrSpace) -> (Vec<Uop>, Pokes, u64) {
    let kbuf = space.alloc_page(cfg.capacity);
    let dst = space.alloc_page(cfg.transfer);
    let mut pipe = Pipe::new(kbuf, cfg.capacity, OsCosts::default());

    let mut pokes = Pokes::default();

    let mut uops = Vec::new();
    marker(&mut uops, 0);
    for r in 0..cfg.rounds {
        // A producer streams fresh data every round (the realistic case:
        // each send(2) carries new payload, cold to the cache).
        let src = space.alloc_page(cfg.transfer);
        pokes.add(src, pattern(cfg.transfer as usize, (31 + r % 100) as u8));
        let (w, n) = pipe.write_uops(uops.len() as u64, src, cfg.transfer, cfg.mode);
        assert_eq!(n, cfg.transfer, "transfer fits the pipe");
        uops.extend(w);
        let (rd, m) = pipe.read_uops(uops.len() as u64, dst, cfg.transfer, cfg.mode);
        assert_eq!(m, cfg.transfer);
        uops.extend(rd);
        // The consumer touches the first line of what it read (header
        // inspection), keeping the read path honest.
        uops.push(Uop::new(UopKind::Load { addr: dst, size: 8 }, StatTag::App));
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    marker(&mut uops, 1);
    (uops, pokes, cfg.transfer * cfg.rounds as u64)
}

/// Throughput in bytes per kilocycle given the marker-bracketed cycles.
pub fn throughput_bytes_per_kcycle(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        bytes as f64 / (cycles as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::addr::PhysAddr;
    use crate::common::marker_latencies;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::FixedProgram;
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn run(mode: CopyMode, transfer: u64) -> (f64, Vec<u8>, PhysAddr) {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let cfgw = PipeConfig { transfer, rounds: 4, mode, ..PipeConfig::default() };
        // dst is the third allocation; recompute it for verification.
        let (uops, pokes, bytes) = pipe_program(&cfgw, &mut space);
        let cfg = SystemConfig::tiny();
        let mut sys = match mode {
            CopyMode::Lazy => {
                let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
                System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
            }
            CopyMode::Eager => System::new(cfg, vec![Box::new(FixedProgram::new(uops))]),
        };
        pokes.apply(&mut sys);
        let st = sys.run(500_000_000).expect("finishes");
        let cyc = marker_latencies(&st.cores[0])[0];
        let dst = PhysAddr((1 << 20) + cfgw.capacity + transfer.max(4096));
        (throughput_bytes_per_kcycle(bytes, cyc), sys.peek_coherent(dst, 16), dst)
    }

    #[test]
    fn eager_and_lazy_complete_and_move_data() {
        let (te, de, _) = run(CopyMode::Eager, 2048);
        let (tl, dl, _) = run(CopyMode::Lazy, 2048);
        assert!(te > 0.0 && tl > 0.0);
        // Both deliver the source bytes to the consumer.
        let want = pattern(16, 31);
        assert_eq!(de, want);
        assert_eq!(dl, want);
    }

    #[test]
    fn throughput_metric_sane() {
        assert_eq!(throughput_bytes_per_kcycle(1000, 0), 0.0);
        assert!((throughput_bytes_per_kcycle(64_000, 1_000) - 64_000.0).abs() < 1e-9);
    }
}
