//! Copy-size distributions.
//!
//! [`ProtobufSizes`] is an empirical distribution matched to the CDF the
//! paper reports for Fleetbench's Protobuf workload (Fig. 4): copies from
//! 2 B to 4 KB, with the single largest mass (~56%) at 1 KB — which is why
//! the paper interposes copies ≥ 1 KB and why zIO, needing page-sized
//! copies, elides nothing there.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An empirical discrete distribution over copy sizes.
#[derive(Debug, Clone)]
pub struct SizeDist {
    // (size, cumulative per-mille)
    cdf: Vec<(u64, u32)>,
}

impl SizeDist {
    /// Build from (size, probability per-mille) pairs.
    ///
    /// # Panics
    /// Panics if the weights do not sum to 1000.
    pub fn from_pmf(pmf: &[(u64, u32)]) -> SizeDist {
        let mut acc = 0;
        let cdf = pmf
            .iter()
            .map(|&(s, w)| {
                acc += w;
                (s, acc)
            })
            .collect::<Vec<_>>();
        assert_eq!(acc, 1000, "probabilities must sum to 1000 per-mille");
        SizeDist { cdf }
    }

    /// Sample a size.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let x: u32 = rng.random_range(0..1000);
        for &(s, c) in &self.cdf {
            if x < c {
                return s;
            }
        }
        self.cdf.last().expect("nonempty").0
    }

    /// The cumulative probability of sizes ≤ `size` (for checks).
    pub fn cdf_at(&self, size: u64) -> f64 {
        let mut last = 0;
        for &(s, c) in &self.cdf {
            if s <= size {
                last = c;
            }
        }
        last as f64 / 1000.0
    }
}

/// The Fig. 4 Protobuf memcpy size distribution.
#[derive(Debug, Clone)]
pub struct ProtobufSizes(SizeDist);

impl Default for ProtobufSizes {
    fn default() -> Self {
        // Matched to the Fig. 4 CDF: a thin tail of tiny copies, modest
        // mass through 512 B, the dominant step (~56%) at 1 KB, and the
        // remainder at 2–4 KB. All sub-page, as the paper observes.
        ProtobufSizes(SizeDist::from_pmf(&[
            (2, 20),
            (4, 20),
            (8, 40),
            (16, 40),
            (32, 40),
            (64, 60),
            (128, 40),
            (256, 40),
            (512, 40),
            (1024, 560),
            (2048, 50),
            (4096, 50),
        ]))
    }
}

impl ProtobufSizes {
    /// Sample one copy size.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        self.0.sample(rng)
    }

    /// CDF query.
    pub fn cdf_at(&self, size: u64) -> f64 {
        self.0.cdf_at(size)
    }
}

/// A seeded RNG for deterministic workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protobuf_mass_at_1kb_matches_paper() {
        let d = ProtobufSizes::default();
        // "the majority of copies (~56%) copy a single kilobyte" and the
        // CDF reaches 100% at 4 KB.
        assert!((d.cdf_at(1024) - d.cdf_at(512) - 0.56).abs() < 1e-9);
        assert!((d.cdf_at(4096) - 1.0).abs() < 1e-9);
        assert!(d.cdf_at(64) < 0.3);
    }

    #[test]
    fn sampling_is_deterministic_and_in_support() {
        let d = ProtobufSizes::default();
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..1000 {
            let x = d.sample(&mut a);
            assert_eq!(x, d.sample(&mut b));
            assert!(x >= 2 && x <= 4096 && x.is_power_of_two());
        }
    }

    #[test]
    fn empirical_frequency_approaches_pmf() {
        let d = ProtobufSizes::default();
        let mut r = rng(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1024).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.56).abs() < 0.02, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "sum to 1000")]
    fn bad_pmf_panics() {
        let _ = SizeDist::from_pmf(&[(1, 500)]);
    }
}
