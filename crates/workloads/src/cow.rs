//! Hugepage copy-on-write workload (Fig. 18) — virtual-memory
//! snapshotting via `fork`.
//!
//! An in-memory database initialises a large hugepage-mapped region, forks
//! to take a consistent snapshot, then keeps serving writes: each write to
//! a still-shared hugepage traps, and the unmodified kernel copies the
//! whole 2 MB page in the handler (the latency spike Redis warns about),
//! while the paper's kernel issues a single `MCLAZY` instead. The workload
//! updates random 8-byte elements and brackets every update with markers,
//! reproducing the paper's per-access RDTSC measurement.

use crate::common::{marker, pattern, Pokes};
use mcs_os::{CowCopyMode, Kernel, PageSize, VirtAddr, Vm};
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use rand::RngExt;

/// COW workload parameters.
#[derive(Clone, Debug)]
pub struct CowConfig {
    /// Region size in bytes (paper: 64 MB; must be a page multiple).
    pub region: u64,
    /// Random 8-byte updates measured (paper: first 100 accesses).
    pub updates: usize,
    /// Kernel copy mode in the fault handler.
    pub mode: CowCopyMode,
    /// Page size of the mapping (the paper contrasts 4 KB faults, whose
    /// copy is small, with 2 MB hugepage faults, whose copy dominates).
    pub page: PageSize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CowConfig {
    fn default() -> Self {
        CowConfig {
            region: 16 * 1024 * 1024,
            updates: 100,
            mode: CowCopyMode::Eager,
            page: PageSize::Huge2M,
            seed: 0xF0F0,
        }
    }
}

/// Build the fork+COW workload. Returns the uops, pokes, and the kernel
/// (whose stats report faults and pages copied). Marker pair `2k`/`2k+1`
/// brackets update `k`.
pub fn cow_program(cfg: &CowConfig, kernel: &mut Kernel) -> (Vec<Uop>, Pokes) {
    assert_eq!(cfg.region % cfg.page.bytes(), 0);
    let mut vm = Vm::new();
    let base_va = VirtAddr(0x4000_0000);
    let pa = kernel.mmap(&mut vm, base_va, cfg.region, cfg.page);

    let mut pokes = Pokes::default();
    pokes.add(pa, pattern(cfg.region as usize, 29));

    let mut uops: Vec<Uop> = Vec::new();
    // fork(): the snapshot child shares every page; parent pages go COW.
    let (_child, fork_cost) = kernel.fork(&mut vm, StatTag::Kernel);
    uops.extend(fork_cost);

    let mut r = crate::dist::rng(cfg.seed);
    for k in 0..cfg.updates {
        // Random aligned 8-byte element.
        let off = r.random_range(0..cfg.region / 8) * 8;
        let va = VirtAddr(base_va.0 + off);
        marker(&mut uops, (2 * k) as u32);
        let (pa, mv) = vm.translate(va).expect("mapped");
        if mv.cow {
            let plan = kernel.handle_cow_fault(&mut vm, va, cfg.mode, uops.len() as u64);
            uops.extend(plan);
        }
        // Re-translate: the fault may have remapped the page.
        let (pa, _) = vm.translate(va).unwrap_or((pa, mv));
        uops.push(Uop::new(
            UopKind::Store {
                addr: pa,
                size: 8,
                data: StoreData::Splat(0x5A),
                nontemporal: false,
            },
            StatTag::App,
        ));
        marker(&mut uops, (2 * k + 1) as u32);
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    (uops, pokes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::addr::PhysAddr;
    use crate::common::marker_latencies;
    use mcs_os::OsCosts;
    use mcs_sim::alloc::AddrSpace;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::FixedProgram;
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn small() -> CowConfig {
        CowConfig { region: 2 * PageSize::Huge2M.bytes(), updates: 8, ..CowConfig::default() }
    }

    fn run(mode: CowCopyMode) -> (Vec<u64>, mcs_os::vm::KernelStats) {
        let mut kernel =
            Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 1 << 30));
        let cfgw = CowConfig { mode, ..small() };
        let (uops, pokes) = cow_program(&cfgw, &mut kernel);
        let cfg = SystemConfig::tiny();
        let mut sys = match mode {
            CowCopyMode::Lazy => {
                let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
                System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
            }
            CowCopyMode::Eager => System::new(cfg, vec![Box::new(FixedProgram::new(uops))]),
        };
        pokes.apply(&mut sys);
        let st = sys.run(2_000_000_000).expect("finishes");
        (marker_latencies(&st.cores[0]), kernel.stats.clone())
    }

    #[test]
    fn eager_faults_spike_lazy_does_not() {
        let (eager, es) = run(CowCopyMode::Eager);
        let (lazy, ls) = run(CowCopyMode::Lazy);
        assert_eq!(eager.len(), 8);
        assert_eq!(lazy.len(), 8);
        assert!(es.cow_faults >= 1 && es.cow_faults <= 2);
        assert_eq!(es.cow_faults, ls.cow_faults, "same fault pattern");
        let emax = *eager.iter().max().unwrap();
        let lmax = *lazy.iter().max().unwrap();
        assert!(
            emax > 10 * lmax,
            "eager 2MB copy must dominate lazy fault: {emax} vs {lmax}"
        );
    }

    #[test]
    fn non_faulting_updates_are_fast_in_both() {
        let (eager, _) = run(CowCopyMode::Eager);
        let min = *eager.iter().min().unwrap();
        let max = *eager.iter().max().unwrap();
        assert!(max > 20 * min, "fault spike vs plain store");
    }

    #[test]
    fn small_pages_fault_often_but_cheaply() {
        // 4 KB mapping: many more faults, each copying only 4 KB — the
        // reason fork is tolerable without huge pages (§V-B).
        let mut kernel =
            Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 1 << 30));
        let cfgw = CowConfig {
            region: 2 * PageSize::Huge2M.bytes(),
            updates: 16,
            page: PageSize::Base4K,
            ..CowConfig::default()
        };
        let (uops, pokes) = cow_program(&cfgw, &mut kernel);
        let cfg = SystemConfig::tiny();
        let mut sys = System::new(cfg, vec![Box::new(FixedProgram::new(uops))]);
        pokes.apply(&mut sys);
        let st = sys.run(2_000_000_000).expect("finishes");
        let lats = marker_latencies(&st.cores[0]);
        assert!(kernel.stats.cow_faults > 2, "4KB pages fault per page touched");
        let max = *lats.iter().max().unwrap();
        // A 4 KB copy is ~512× cheaper than a 2 MB one; spikes stay small.
        assert!(max < 200_000, "4KB fault spike bounded: {max}");
    }

    #[test]
    fn fault_count_bounded_by_pages() {
        let mut kernel =
            Kernel::new(OsCosts::default(), AddrSpace::new(PhysAddr(1 << 21), 1 << 30));
        let cfgw = CowConfig { updates: 50, ..small() };
        let (_, _) = cow_program(&cfgw, &mut kernel);
        assert!(kernel.stats.cow_faults <= 2, "at most one fault per hugepage");
    }
}
