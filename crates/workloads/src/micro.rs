//! Microbenchmark workloads: Figs. 10–13 and 21.
//!
//! * [`copy_latency`] — copy latency vs. size for the four mechanisms of
//!   Fig. 10 (native, touched, zIO, (MC)²);
//! * [`lazy_overhead_parts`] — the Fig. 11 breakdown: CLWB writebacks vs.
//!   the MCLAZY packet send;
//! * [`seq_access`] — copy 4 MB, then stream over a fraction of the
//!   destination (Fig. 12), with aligned/misaligned variants;
//! * [`PointerChaseProgram`] — the Fig. 13 random (dependent) access
//!   pattern;
//! * [`src_write_stress`] — overwrite a lazily copied source and flush,
//!   bringing BPQ back-pressure into the critical path (Fig. 21).

use crate::common::{fence, marker, pattern, read_region, Copier, CopyMech, Pokes};
use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::program::{Fetch, Program};
use mcs_sim::uop::{StatTag, Uop, UopId, UopKind};
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};

/// A generated single-core workload: the uop stream plus the memory
/// initialisation it expects.
#[derive(Debug)]
pub struct Generated {
    /// The program.
    pub uops: Vec<Uop>,
    /// Initial memory contents.
    pub pokes: Pokes,
    /// Buffers of interest (dst, src) for validation.
    pub dst: PhysAddr,
    /// Source buffer base.
    pub src: PhysAddr,
}

/// Fig. 10: one timed copy of `size` bytes with mechanism `mech`.
/// `touch_first` adds the source-warming pass ("Touched memcpy"). The
/// timed section is bracketed by markers 0/1.
pub fn copy_latency(
    mech: CopyMech,
    size: u64,
    touch_first: bool,
    space: &mut AddrSpace,
) -> Generated {
    let src = space.alloc_page(size.max(4096));
    let dst = space.alloc_page(size.max(4096));
    let mut uops = Vec::new();
    let mut copier = Copier::new(mech);
    if touch_first {
        uops.extend(mcs_baselines::touched::touch_uops(src, size, StatTag::App));
        fence(&mut uops, StatTag::App);
    }
    marker(&mut uops, 0);
    copier.copy(&mut uops, dst, src, size);
    marker(&mut uops, 1);
    let mut pokes = Pokes::default();
    pokes.add(src, pattern(size as usize, 3));
    Generated { uops, pokes, dst, src }
}

/// Fig. 11: the two overhead components of `memcpy_lazy`, measured by
/// running the wrapper with only one component active. Returns
/// (writeback-only uops, packet-only uops), each bracketed by markers.
pub fn lazy_overhead_parts(size: u64, space: &mut AddrSpace) -> (Generated, Generated) {
    let mk = |clwb: bool, space: &mut AddrSpace| {
        let src = space.alloc_page(size.max(4096));
        let dst = space.alloc_page(size.max(4096));
        let mut uops = Vec::new();
        marker(&mut uops, 0);
        if clwb {
            // CLWB component: the writebacks plus the ordering fence.
            for line in mcs_sim::addr::lines_of(src, size) {
                uops.push(Uop::new(UopKind::Clwb { addr: line }, StatTag::Memcpy));
            }
            fence(&mut uops, StatTag::Memcpy);
        } else {
            // Packet component: the MCLAZY sends without CLWBs.
            let opts = LazyOpts { clwb_sources: false, ..LazyOpts::default() };
            uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, size, &opts));
        }
        marker(&mut uops, 1);
        let mut pokes = Pokes::default();
        pokes.add(src, pattern(size as usize, 5));
        Generated { uops, pokes, dst, src }
    };
    (mk(true, space), mk(false, space))
}

/// Fig. 12: copy `size` bytes then sequentially read the first
/// `accessed_frac` of the destination. `misalign` offsets the source by 20
/// bytes so every destination line needs two bounces. The timed section
/// (markers 0/1) covers the copy *and* the accesses, matching the paper's
/// "runtime" metric.
pub fn seq_access(
    mech: CopyMech,
    size: u64,
    accessed_frac: f64,
    misalign: bool,
    space: &mut AddrSpace,
) -> Generated {
    let src_base = space.alloc_page(size + 4096);
    let src = if misalign { src_base.add(20) } else { src_base };
    let dst = space.alloc_page(size);
    let mut uops = Vec::new();
    let mut copier = Copier::new(mech);
    marker(&mut uops, 0);
    copier.copy(&mut uops, dst, src, size);
    let read_bytes = ((size as f64 * accessed_frac) as u64) / CACHELINE * CACHELINE;
    if read_bytes > 0 {
        copier.before_access(&mut uops, dst, read_bytes);
        read_region(&mut uops, dst, read_bytes, StatTag::App);
    }
    fence(&mut uops, StatTag::App);
    marker(&mut uops, 1);
    let mut pokes = Pokes::default();
    pokes.add(src, pattern(size as usize, 11));
    Generated { uops, pokes, dst, src }
}

/// Fig. 13's dependent-access phase: a pointer chase where each 64B
/// element's first 8 bytes hold the *byte offset* of the next element.
/// Dependent loads defeat both prefetching and memory-level parallelism,
/// putting the full (possibly bounced) memory latency on the critical
/// path.
pub struct PointerChaseProgram {
    prologue: std::vec::IntoIter<Uop>,
    base: PhysAddr,
    next_off: Option<u64>,
    steps_left: u64,
    waiting: Option<UopId>,
    zio_fault_uops: Vec<Uop>,
    epilogue: Vec<Uop>,
    epilogue_emitted: bool,
    zio: Option<mcs_baselines::zio::Zio>,
}

impl std::fmt::Debug for PointerChaseProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PointerChaseProgram({} steps left)", self.steps_left)
    }
}

impl PointerChaseProgram {
    /// Build the Fig. 13 workload: copy `size` bytes with `mech`, then
    /// chase `steps` pointers through the destination. Returns the
    /// program plus the pokes (which include the permutation).
    ///
    /// Elements are 8 bytes (the paper chases array indices, so each
    /// cacheline holds eight elements and is revisited over the walk —
    /// which is what makes the post-bounce writeback optimisation matter:
    /// without it every revisit of an evicted line bounces again). The
    /// permutation is a single random cycle over all elements, so any
    /// prefix of the walk visits distinct elements ("every index is
    /// unique", §V-A2).
    pub fn build(
        mech: CopyMech,
        size: u64,
        steps: u64,
        misalign: bool,
        seed: u64,
        space: &mut AddrSpace,
    ) -> (PointerChaseProgram, Pokes, PhysAddr) {
        use rand::seq::SliceRandom;
        let src_base = space.alloc_page(size + 4096);
        let src = if misalign { src_base.add(20) } else { src_base };
        let dst = space.alloc_page(size);
        let n = size / 8;
        // Random cycle: visit order = shuffled elements linked circularly.
        let mut order: Vec<u64> = (0..n).collect();
        let mut r = crate::dist::rng(seed);
        order.shuffle(&mut r);
        let mut image = pattern(size as usize, 17);
        for w in 0..n {
            let cur = order[w as usize];
            let nxt = order[((w + 1) % n) as usize];
            image[(cur * 8) as usize..(cur * 8 + 8) as usize]
                .copy_from_slice(&(nxt * 8).to_le_bytes());
        }
        let mut pokes = Pokes::default();
        pokes.add(src, image);

        let is_zio = matches!(mech, CopyMech::Zio);
        let mut copier = Copier::new(mech);
        let mut prologue = Vec::new();
        marker(&mut prologue, 0);
        copier.copy(&mut prologue, dst, src, size);
        fence(&mut prologue, StatTag::App);
        // For zIO the chase faults page by page; carry the runtime along.
        let zio = if is_zio {
            let mut z = mcs_baselines::zio::Zio::with_defaults();
            let mut tmp = Vec::new();
            // Rebuild prologue under a private zio so fault state is ours.
            marker(&mut tmp, 0);
            let mut fix = z.access_fixups(tmp.len() as u64, src, size);
            tmp.append(&mut fix);
            let mut cp = z.memcpy_uops(tmp.len() as u64, dst, src, size);
            tmp.append(&mut cp);
            fence(&mut tmp, StatTag::App);
            prologue = tmp;
            Some(z)
        } else {
            None
        };

        let mut epilogue = Vec::new();
        marker(&mut epilogue, 1);
        let start = order[0] * CACHELINE;
        (
            PointerChaseProgram {
                prologue: prologue.into_iter(),
                base: dst,
                next_off: Some(start),
                steps_left: steps,
                waiting: None,
                zio_fault_uops: Vec::new(),
                epilogue,
                epilogue_emitted: false,
                zio,
            },
            pokes,
            dst,
        )
    }
}

impl Program for PointerChaseProgram {
    fn fetch(&mut self, next_id: UopId) -> Fetch {
        if let Some(u) = self.prologue.next() {
            return Fetch::Uop(u);
        }
        if !self.zio_fault_uops.is_empty() {
            return Fetch::Uop(self.zio_fault_uops.remove(0));
        }
        if self.waiting.is_some() {
            return Fetch::Stall;
        }
        if self.steps_left == 0 {
            if self.epilogue_emitted {
                return Fetch::Done;
            }
            if let Some(u) = if self.epilogue.is_empty() {
                None
            } else {
                Some(self.epilogue.remove(0))
            } {
                if self.epilogue.is_empty() {
                    self.epilogue_emitted = true;
                }
                return Fetch::Uop(u);
            }
            self.epilogue_emitted = true;
            return Fetch::Done;
        }
        let off = self.next_off.take().expect("address ready");
        let addr = self.base.add(off);
        // zIO: fault the page in before touching it.
        if let Some(z) = self.zio.as_mut() {
            let fix = z.access_fixups(next_id, addr, 8);
            if !fix.is_empty() {
                self.next_off = Some(off);
                self.zio_fault_uops = fix;
                return Fetch::Uop(self.zio_fault_uops.remove(0));
            }
        }
        self.steps_left -= 1;
        self.waiting = Some(next_id);
        Fetch::Uop(Uop::new(UopKind::Load { addr, size: 8 }, StatTag::App))
    }

    fn on_load_complete(&mut self, id: UopId, data: &[u8]) {
        if self.waiting == Some(id) {
            self.waiting = None;
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[..8]);
            self.next_off = Some(u64::from_le_bytes(b));
        }
    }
}

/// Fig. 21: lazily copy `size` bytes, then overwrite the source and flush
/// each overwritten line, fencing at the end — the flush pushes the source
/// writes to the controller where the BPQ must absorb them.
pub fn src_write_stress(size: u64, space: &mut AddrSpace) -> Generated {
    let src = space.alloc_page(size);
    let dst = space.alloc_page(size);
    let mut uops = Vec::new();
    uops.extend(memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default()));
    marker(&mut uops, 0);
    for line in mcs_sim::addr::lines_of(src, size) {
        uops.push(Uop::new(
            UopKind::Store {
                addr: line,
                size: 64,
                data: mcs_sim::uop::StoreData::Splat(0xD1),
                nontemporal: false,
            },
            StatTag::App,
        ));
        uops.push(Uop::new(UopKind::Clwb { addr: line }, StatTag::App));
    }
    fence(&mut uops, StatTag::App);
    marker(&mut uops, 1);
    let mut pokes = Pokes::default();
    pokes.add(src, pattern(size as usize, 23));
    Generated { uops, pokes, dst, src }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::FixedProgram;
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn run_fixed(g: Generated, lazy: bool) -> (System, mcs_sim::stats::RunStats) {
        let cfg = SystemConfig::tiny();
        let mut sys = if lazy {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(g.uops))], Box::new(e))
        } else {
            System::new(cfg, vec![Box::new(FixedProgram::new(g.uops))])
        };
        g.pokes.apply(&mut sys);
        let st = sys.run(50_000_000).expect("finishes");
        (sys, st)
    }

    #[test]
    fn copy_latency_markers_bracket_work() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let g = copy_latency(CopyMech::Native, 1024, false, &mut space);
        let (_, st) = run_fixed(g, false);
        let lats = crate::common::marker_latencies(&st.cores[0]);
        assert_eq!(lats.len(), 1);
        assert!(lats[0] > 0);
    }

    #[test]
    fn touched_copy_is_faster_than_cold() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let cold = copy_latency(CopyMech::Native, 2048, false, &mut space);
        let warm = copy_latency(CopyMech::Native, 2048, true, &mut space);
        let (_, c) = run_fixed(cold, false);
        let (_, w) = run_fixed(warm, false);
        let lc = crate::common::marker_latencies(&c.cores[0])[0];
        let lw = crate::common::marker_latencies(&w.cores[0])[0];
        assert!(lw < lc, "cached source must copy faster ({lw} !< {lc})");
    }

    #[test]
    fn seq_access_reads_correct_data() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let g = seq_access(CopyMech::mcsquare_1k(), 8192, 1.0, true, &mut space);
        let (dst, want) = (g.dst, pattern(8192, 11));
        let (sys, _) = run_fixed(g, true);
        assert_eq!(sys.peek_coherent(dst, 8192), want);
    }

    #[test]
    fn pointer_chase_visits_all_when_full_fraction() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let size = 4096u64;
        let steps = size / 8;
        let (prog, pokes, dst) =
            PointerChaseProgram::build(CopyMech::Native, size, steps, false, 9, &mut space);
        let cfg = SystemConfig::tiny();
        let mut sys = System::new(cfg, vec![Box::new(prog)]);
        pokes.apply(&mut sys);
        let st = sys.run(50_000_000).expect("finishes");
        assert_eq!(st.cores[0].loads as u64, steps + size / 64 /* copy loads */);
        let _ = dst;
    }

    #[test]
    fn pointer_chase_lazy_matches_native_loads() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let size = 2048u64;
        let (prog, pokes, _) = PointerChaseProgram::build(
            CopyMech::mcsquare_1k(),
            size,
            size / 8,
            true,
            5,
            &mut space,
        );
        let cfg = SystemConfig::tiny();
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        let mut sys = System::with_engine(cfg, vec![Box::new(prog)], Box::new(e));
        pokes.apply(&mut sys);
        let st = sys.run(50_000_000).expect("finishes — chase resolved through bounces");
        assert!(st.cycles > 0);
    }

    #[test]
    fn src_write_stress_preserves_copy() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let g = src_write_stress(512, &mut space);
        let (dst, src) = (g.dst, g.src);
        let (sys, _) = run_fixed(g, true);
        assert_eq!(sys.peek_coherent(dst, 512), pattern(512, 23), "copy sees pre-write data");
        assert_eq!(sys.peek_coherent(src, 64), vec![0xD1; 64], "source overwritten");
    }

    #[test]
    fn overhead_parts_both_nonzero() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let (wb, pk) = lazy_overhead_parts(1024, &mut space);
        let (_, sw) = run_fixed(wb, true);
        let (_, sp) = run_fixed(pk, true);
        let lw = crate::common::marker_latencies(&sw.cores[0])[0];
        let lp = crate::common::marker_latencies(&sp.cores[0])[0];
        assert!(lw > 0 && lp > 0);
    }
}
