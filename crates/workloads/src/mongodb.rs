//! MongoDB-style insert workload (Fig. 15).
//!
//! Replicates the structure of the paper's YCSB load phase against
//! MongoDB: each insert carries `fields` fields of `field_size` bytes, and
//! each field is copied three times — into an IO buffer (the socket copy
//! zIO targets), into an in-memory B-tree index page, and into the commit
//! log — with the B-tree and log stages *reading* the copied data (key
//! comparison, checksumming). Those accesses are why zIO's copy-on-access
//! faults hurt here while (MC)² pays only line-granularity bounces (§V-B).
//!
//! The paper uses 10 × 100 KB fields and 50 inserts; that is directly
//! expressible but slow, so benches scale it down and record the scaling
//! in EXPERIMENTS.md. One marker pair brackets each insert (the figure
//! reports average insert latency).

use crate::common::{fence, marker, pattern, Copier, CopyMech, Pokes};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, Uop, UopKind};

/// MongoDB workload parameters.
#[derive(Clone, Debug)]
pub struct MongoConfig {
    /// Number of inserts (paper: 50, scaled down).
    pub inserts: usize,
    /// Fields per insert (paper: 10).
    pub fields: usize,
    /// Bytes per field (paper: 100 KB).
    pub field_size: u64,
    /// Fraction of each field read during B-tree indexing.
    pub index_read_frac: f64,
    /// Fixed request-parsing cost per insert, cycles.
    pub parse_cost: u32,
    /// Log checksum cost per field, cycles.
    pub checksum_cost: u32,
    /// B-tree traversal / journal bookkeeping per field, cycles.
    pub server_work: u32,
    /// Byte offset of B-tree cells within their page (cells are not
    /// page-aligned, so zIO cannot elide the index copy).
    pub btree_offset: u64,
    /// Byte offset of journal records (ditto for the log copy).
    pub log_offset: u64,
}

impl Default for MongoConfig {
    fn default() -> Self {
        MongoConfig {
            inserts: 6,
            fields: 10,
            field_size: 16 * 1024,
            index_read_frac: 0.25,
            parse_cost: 2_000,
            checksum_cost: 500,
            server_work: 4_000,
            btree_offset: 72,
            log_offset: 24,
        }
    }
}

/// Build the insert workload under `mech`. Marker pair `2k`/`2k+1`
/// brackets insert `k`.
pub fn mongodb_program(
    mech: CopyMech,
    cfg: &MongoConfig,
    space: &mut AddrSpace,
) -> (Vec<Uop>, Pokes, Copier) {
    let mut copier = Copier::new(mech);
    let mut uops = Vec::new();
    let mut pokes = Pokes::default();

    let io_buf = space.alloc_page(cfg.field_size * cfg.fields as u64);
    let btree = space.alloc_page((cfg.field_size + 4096) * cfg.fields as u64);
    let log = space.alloc_page((cfg.field_size + 4096) * cfg.fields as u64);

    for k in 0..cfg.inserts {
        // Fresh client payload per insert.
        let payload = space.alloc_page(cfg.field_size * cfg.fields as u64);
        pokes.add(
            payload,
            pattern((cfg.field_size * cfg.fields as u64) as usize, (k % 200) as u8),
        );
        marker(&mut uops, (2 * k) as u32);
        uops.push(Uop::new(UopKind::PipelineFlush, StatTag::App));
        uops.push(Uop::new(UopKind::Compute { cycles: cfg.parse_cost }, StatTag::App));
        for f in 0..cfg.fields as u64 {
            let src = payload.add(f * cfg.field_size);
            let io = io_buf.add(f * cfg.field_size);
            // B-tree cells and journal records sit at arbitrary offsets
            // inside their pages — zIO's page-granular elision cannot
            // cover them, and (MC)² takes its misaligned two-bounce path.
            let idx = btree.add(f * (cfg.field_size + 4096) + cfg.btree_offset);
            let lg = log.add(f * (cfg.field_size + 4096) + cfg.log_offset);

            // 1. Socket → IO buffer.
            copier.copy(&mut uops, io, src, cfg.field_size);

            // 2. IO buffer → B-tree page, then the index reads a prefix of
            //    the copied field for key comparison.
            uops.push(Uop::new(UopKind::Compute { cycles: cfg.server_work }, StatTag::App));
            copier.before_access(&mut uops, io, cfg.field_size);
            copier.copy(&mut uops, idx, io, cfg.field_size);
            let read = ((cfg.field_size as f64 * cfg.index_read_frac) as u64).max(64);
            copier.before_access(&mut uops, idx, read);
            crate::common::read_region(&mut uops, idx, read, StatTag::App);

            // 3. IO buffer → log record + checksum pass over the record.
            uops.push(Uop::new(UopKind::Compute { cycles: cfg.server_work / 2 }, StatTag::App));
            copier.copy(&mut uops, lg, io, cfg.field_size);
            copier.before_access(&mut uops, lg, cfg.field_size);
            crate::common::read_region(&mut uops, lg, cfg.field_size, StatTag::App);
            uops.push(Uop::new(UopKind::Compute { cycles: cfg.checksum_cost }, StatTag::App));
        }
        // The insert's buffers die here: the IO buffer slot and payload
        // will be recycled/freed (MCFREE under (MC)², §III-C).
        copier.free_hint(&mut uops, io_buf, cfg.field_size * cfg.fields as u64);
        fence(&mut uops, StatTag::App);
        marker(&mut uops, (2 * k + 1) as u32);
    }
    (uops, pokes, copier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::addr::PhysAddr;
    use crate::common::marker_latencies;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::FixedProgram;
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn tiny_mongo() -> MongoConfig {
        MongoConfig { inserts: 2, fields: 2, field_size: 4096, ..MongoConfig::default() }
    }

    fn run(mech: CopyMech) -> Vec<u64> {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let needs = mech.needs_engine();
        let (uops, pokes, _) = mongodb_program(mech, &tiny_mongo(), &mut space);
        let cfg = SystemConfig::tiny();
        let mut sys = if needs {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
        } else {
            System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
        };
        pokes.apply(&mut sys);
        let st = sys.run(200_000_000).expect("finishes");
        marker_latencies(&st.cores[0])
    }

    #[test]
    fn per_insert_latencies_recorded() {
        let lats = run(CopyMech::Native);
        assert_eq!(lats.len(), 2);
        assert!(lats.iter().all(|&l| l > 0));
    }

    #[test]
    fn all_mechanisms_complete() {
        assert_eq!(run(CopyMech::mcsquare_1k()).len(), 2);
        assert_eq!(run(CopyMech::Zio).len(), 2);
    }

    #[test]
    fn zio_takes_faults_on_accessed_copies() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let (_, _, copier) = mongodb_program(CopyMech::Zio, &tiny_mongo(), &mut space);
        let zs = copier.zio_stats().expect("zio");
        assert!(zs.pages_elided > 0, "page-sized fields are elidable here");
        assert!(zs.faults > 0, "copied data is accessed → faults (the Fig. 15 story)");
    }

    #[test]
    fn data_integrity_through_the_pipeline() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let cfgw = tiny_mongo();
        let (uops, pokes, _) = mongodb_program(CopyMech::mcsquare_1k(), &cfgw, &mut space);
        let cfg = SystemConfig::tiny();
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        let mut sys =
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e));
        pokes.apply(&mut sys);
        sys.run(200_000_000).expect("finishes");
        // The log region for the last insert holds the payload bytes.
        // (log base = third region allocated: io, btree, log in order.)
        // We can't easily reconstruct addresses here; integrity is covered
        // by the engine e2e suite. Just assert stats flowed.
        let st = sys.collect_stats();
        assert!(st.engine_counter("ctt_inserts") > 0);
    }
}
