//! Protobuf serialization workload (Fig. 14, Fig. 20).
//!
//! Models the Fleetbench Protobuf benchmark the paper runs: a stream of
//! messages, each made of fields whose sizes follow the Fig. 4 trace
//! distribution. Serializing a message copies every field from the object
//! arena into a stream buffer (`MergeFrom`-style copying plus varint
//! framing work); deserializing copies fields back out into a fresh object
//! and then touches part of the resulting object, which is where copied
//! data gets accessed. All copies are sub-page, so zIO can never elide
//! (the Fig. 14 observation), while the (MC)² interposer redirects the
//! ≥ 1 KB majority to `memcpy_lazy`.

use crate::common::{fence, marker, pattern, Copier, CopyMech, Pokes};
use crate::dist::{rng, ProtobufSizes};
use mcs_sim::addr::PhysAddr;
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use rand::RngExt;

/// Protobuf workload parameters.
#[derive(Clone, Debug)]
pub struct ProtobufConfig {
    /// Emit per-phase markers (10/11 serialize, 12/13 deserialize, 14/15
    /// touch) for diagnosis.
    pub phase_markers: bool,
    /// Emit MCFREE hints when a message's buffers die (the paper's §III-C
    /// `munmap` hook). Disable to study CTT pressure (Fig. 20).
    pub free_hints: bool,
    /// Messages processed.
    pub messages: usize,
    /// Fields per message.
    pub fields: usize,
    /// Fraction of each deserialized field later read by the application.
    pub touch_frac: f64,
    /// Fixed framing/parse work per field, cycles.
    pub compute_per_field: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProtobufConfig {
    fn default() -> Self {
        ProtobufConfig {
            phase_markers: false,
            free_hints: true,
            messages: 24,
            fields: 8,
            touch_frac: 0.25,
            compute_per_field: 120,
            seed: 0xF1EE7,
        }
    }
}

/// Build the protobuf workload under `mech`. Markers 0/1 bracket the whole
/// run (the figure's "runtime").
pub fn protobuf_program(
    mech: CopyMech,
    cfg: &ProtobufConfig,
    space: &mut AddrSpace,
) -> (Vec<Uop>, Pokes, Copier) {
    let sizes = ProtobufSizes::default();
    let mut r = rng(cfg.seed);
    let mut copier = Copier::new(mech);
    let mut uops = Vec::new();
    let mut pokes = Pokes::default();

    // Arenas: object fields live scattered; a ring of stream/out buffers
    // models a server juggling many connections. The ring exceeds the LLC
    // (paper servers run with caches full of other state), so destination
    // buffers are realistically cold — and reuse exercises the CTT's
    // destination-overlap and MCFREE rules.
    let streams: Vec<_> = (0..32).map(|_| space.alloc_page(64 * 1024)).collect();
    let outs: Vec<_> = (0..32).map(|_| space.alloc_page(64 * 1024)).collect();

    marker(&mut uops, 0);
    for m in 0..cfg.messages {
        let stream = streams[m % streams.len()];
        let out_arena = outs[m % outs.len()];
        // Field sizes for this message.
        let field_sizes: Vec<u64> = (0..cfg.fields).map(|_| sizes.sample(&mut r)).collect();

        // Source fields: fresh allocations with content.
        let fields: Vec<PhysAddr> = field_sizes
            .iter()
            .map(|&s| {
                let a = space.alloc_lines(s.max(64));
                pokes.add(a, pattern(s as usize, (m % 250) as u8));
                a
            })
            .collect();

        // Serialize: copy fields into the stream buffer back to back. The
        // framing work is a dependent chain (field N's offset depends on
        // field N-1's encoded length), so it serialises the pipeline —
        // this is why the paper's memcpys cannot overlap each other and
        // their stalls dominate (§II-C).
        if cfg.phase_markers {
            marker(&mut uops, 10);
        }
        let mut off = 0u64;
        for (i, &fsz) in field_sizes.iter().enumerate() {
            uops.push(Uop::new(UopKind::PipelineFlush, StatTag::App));
            uops.push(Uop::new(
                UopKind::Compute { cycles: cfg.compute_per_field },
                StatTag::App,
            ));
            copier.copy(&mut uops, stream.add(off), fields[i], fsz);
            off += fsz;
        }

        if cfg.phase_markers {
            marker(&mut uops, 11);
            marker(&mut uops, 12);
        }
        // Deserialize: copy fields out of the stream into the out arena
        // (parsing each tag/length before the next is a dependent chain).
        let mut soff = 0u64;
        let mut ooff = 0u64;
        for &fsz in &field_sizes {
            uops.push(Uop::new(UopKind::PipelineFlush, StatTag::App));
            uops.push(Uop::new(
                UopKind::Compute { cycles: cfg.compute_per_field },
                StatTag::App,
            ));
            copier.before_access(&mut uops, stream.add(soff), fsz);
            copier.copy(&mut uops, out_arena.add(ooff), stream.add(soff), fsz);
            soff += fsz;
            ooff += fsz;
        }

        if cfg.phase_markers {
            marker(&mut uops, 13);
            marker(&mut uops, 14);
        }
        // Application touches part of each deserialized field.
        let mut aoff = 0u64;
        for &fsz in &field_sizes {
            let touch = ((fsz as f64 * cfg.touch_frac) as u64).max(8).min(fsz);
            copier.before_access(&mut uops, out_arena.add(aoff), touch);
            let mut t = 0u64;
            while t < touch {
                let a = out_arena.add(aoff + t);
                let take = 8u64.min(64 - a.line_off()).min(touch - t);
                uops.push(Uop::new(
                    UopKind::Load { addr: a, size: take as u8 },
                    StatTag::App,
                ));
                t += take.max(8);
            }
            aoff += fsz;
        }
        if cfg.phase_markers {
            marker(&mut uops, 15);
        }
        // The message is consumed: its stream slot and deserialized object
        // die here (arena destruction in Fleetbench terms), so the runtime
        // can drop any still-lazy copies targeting them before the buffers
        // are recycled — otherwise a recycled stream stays pinned as the
        // live source of unconsumed object bytes.
        if cfg.free_hints {
            copier.free_hint(&mut uops, out_arena, ooff);
            copier.free_hint(&mut uops, stream, off);
        }
        // Occasionally reuse the stream from offset 0 (next message).
        let _ = r.random_range(0..4u32);
    }
    fence(&mut uops, StatTag::App);
    marker(&mut uops, 1);
    (uops, pokes, copier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::marker_latencies;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::FixedProgram;
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn small_cfg() -> ProtobufConfig {
        ProtobufConfig { messages: 3, fields: 4, ..ProtobufConfig::default() }
    }

    fn run(mech: CopyMech) -> u64 {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let needs_engine = mech.needs_engine();
        let (uops, pokes, _) = protobuf_program(mech, &small_cfg(), &mut space);
        let cfg = SystemConfig::tiny();
        let mut sys = if needs_engine {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
        } else {
            System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
        };
        pokes.apply(&mut sys);
        let st = sys.run(100_000_000).expect("finishes");
        marker_latencies(&st.cores[0])[0]
    }

    #[test]
    fn all_mechanisms_complete() {
        assert!(run(CopyMech::Native) > 0);
        assert!(run(CopyMech::mcsquare_1k()) > 0);
        assert!(run(CopyMech::Zio) > 0);
    }

    #[test]
    fn zio_cannot_elide_sub_page_copies() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let (_, _, copier) = protobuf_program(CopyMech::Zio, &small_cfg(), &mut space);
        let zs = copier.zio_stats().expect("zio runtime");
        assert_eq!(zs.pages_elided, 0, "Fig. 14: all protobuf copies are sub-page");
        assert!(zs.fallbacks > 0);
    }

    #[test]
    fn mcsquare_interposes_large_fields_only() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let (uops, _, copier) =
            protobuf_program(CopyMech::mcsquare_1k(), &small_cfg(), &mut space);
        let mclazys = uops.iter().filter(|u| matches!(u.kind, UopKind::Mclazy { .. })).count();
        assert!(mclazys > 0, "the ≥1KB majority goes lazy");
        assert!(copier.calls > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut s1 = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let mut s2 = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let (u1, _, _) = protobuf_program(CopyMech::Native, &small_cfg(), &mut s1);
        let (u2, _, _) = protobuf_program(CopyMech::Native, &small_cfg(), &mut s2);
        assert_eq!(u1, u2);
    }
}
