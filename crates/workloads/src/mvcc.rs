//! MVCC database workload (Figs. 16, 17, 22) — a Cicada-style
//! multi-version table.
//!
//! Write transactions copy the 8 KB tuple into a fresh version buffer,
//! modify a fraction of it, and commit by swapping version pointers; read
//! transactions scan the current version. The copy mechanism is pluggable:
//! with (MC)² the tuple copy is lazy, so only the fraction actually
//! modified (plus reads) ever moves — the paper's "tuple-wise copying
//! while paying the copy penalty only for the portions updated".
//!
//! Update flavours reproduce the figure variants: read-modify-write
//! (Fig. 16), plain write-only stores whose RFO still reads memory
//! (Fig. 17 baseline curve), and non-temporal stores that avoid the RFO
//! (Fig. 17's `[Nontemporal]`).
//!
//! Multi-threaded runs give each thread a disjoint partition of the table
//! (Cicada is shared-nothing-ish per core for inserts); bandwidth is the
//! shared resource, reproducing the 8-thread saturation behaviour.

use crate::common::{fence, pattern, read_region, Copier, CopyMech, Pokes};
use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use rand::RngExt;

/// How an update transaction modifies the copied tuple.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UpdateKind {
    /// Read-modify-write: load then store each updated 64B chunk.
    Rmw,
    /// Write-only stores (cache RFO reads memory anyway).
    WriteOnly,
    /// Write-only with non-temporal stores (no RFO).
    NonTemporal,
}

/// MVCC workload parameters.
#[derive(Clone, Debug)]
pub struct MvccConfig {
    /// Tuples in this thread's partition.
    pub tuples: usize,
    /// Tuple size in bytes (paper: 8 KB rows).
    pub tuple_size: u64,
    /// Transactions to run.
    pub txns: usize,
    /// Fraction of the tuple updated by a write txn (the sweep axis).
    pub update_frac: f64,
    /// Update flavour.
    pub kind: UpdateKind,
    /// Fraction of transactions that are updates (paper: 50:50).
    pub update_ratio: f64,
    /// Version-management bookkeeping cost per txn, cycles.
    pub commit_cost: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MvccConfig {
    fn default() -> Self {
        MvccConfig {
            tuples: 16,
            tuple_size: 8192,
            txns: 64,
            update_frac: 0.125,
            kind: UpdateKind::Rmw,
            update_ratio: 0.5,
            commit_cost: 300,
            seed: 0xC1CADA,
        }
    }
}

/// Build one thread's transaction stream. Markers 0/1 bracket all
/// transactions (throughput = txns / elapsed).
pub fn mvcc_program(
    mech: CopyMech,
    cfg: &MvccConfig,
    space: &mut AddrSpace,
) -> (Vec<Uop>, Pokes, Copier) {
    let mut r = crate::dist::rng(cfg.seed);
    let mut copier = Copier::new(mech);
    let mut uops = Vec::new();
    let mut pokes = Pokes::default();

    // Current version of each tuple + a rotating pool of version buffers.
    let mut current: Vec<PhysAddr> = (0..cfg.tuples)
        .map(|i| {
            let a = space.alloc_page(cfg.tuple_size);
            pokes.add(a, pattern(cfg.tuple_size as usize, (i % 199) as u8));
            a
        })
        .collect();
    let pool: Vec<PhysAddr> =
        (0..cfg.tuples * 2).map(|_| space.alloc_page(cfg.tuple_size)).collect();
    let mut next_version = 0usize;

    let upd_bytes =
        (((cfg.tuple_size as f64 * cfg.update_frac) as u64).max(8) / 8) * 8;

    crate::common::marker(&mut uops, 0);
    for _ in 0..cfg.txns {
        let t = r.random_range(0..cfg.tuples);
        let is_update = r.random_range(0.0..1.0) < cfg.update_ratio;
        if !is_update {
            // Read txn: scan the current version.
            copier.before_access(&mut uops, current[t], cfg.tuple_size);
            read_region(&mut uops, current[t], cfg.tuple_size, StatTag::App);
            uops.push(Uop::new(UopKind::Compute { cycles: cfg.commit_cost }, StatTag::App));
            continue;
        }
        // Update txn: copy tuple → new version buffer, modify a fraction.
        let newv = pool[next_version % pool.len()];
        next_version += 1;
        copier.before_access(&mut uops, current[t], 0); // no-op guard
        copier.copy(&mut uops, newv, current[t], cfg.tuple_size);

        let mut off = 0u64;
        while off < upd_bytes {
            let chunk = (upd_bytes - off).min(CACHELINE);
            let addr = newv.add(off);
            match cfg.kind {
                UpdateKind::Rmw => {
                    copier.before_access(&mut uops, addr, chunk);
                    let lid = uops.len() as u64;
                    uops.push(Uop::new(
                        UopKind::Load { addr, size: chunk as u8 },
                        StatTag::App,
                    ));
                    // Modify and store back (dependent on the load).
                    uops.push(Uop::new(
                        UopKind::Store {
                            addr,
                            size: chunk as u8,
                            data: StoreData::FromLoad { load: lid, offset: 0 },
                            nontemporal: false,
                        },
                        StatTag::App,
                    ));
                }
                UpdateKind::WriteOnly => {
                    copier.before_access(&mut uops, addr, chunk);
                    uops.push(Uop::new(
                        UopKind::Store {
                            addr,
                            size: chunk as u8,
                            data: StoreData::Splat(0xA5),
                            nontemporal: false,
                        },
                        StatTag::App,
                    ));
                }
                UpdateKind::NonTemporal => {
                    // NT stores are full-line; the update fraction is a
                    // multiple of 64B for fractions ≥ 1/128 of 8 KB.
                    if chunk == CACHELINE && addr.is_aligned(CACHELINE) {
                        copier.before_access(&mut uops, addr, chunk);
                        uops.push(Uop::new(
                            UopKind::Store {
                                addr,
                                size: 64,
                                data: StoreData::Splat(0xA5),
                                nontemporal: true,
                            },
                            StatTag::App,
                        ));
                    } else {
                        copier.before_access(&mut uops, addr, chunk);
                        uops.push(Uop::new(
                            UopKind::Store {
                                addr,
                                size: chunk as u8,
                                data: StoreData::Splat(0xA5),
                                nontemporal: false,
                            },
                            StatTag::App,
                        ));
                    }
                }
            }
            off += chunk;
        }
        // Commit: version pointer swap + bookkeeping.
        uops.push(Uop::new(UopKind::Compute { cycles: cfg.commit_cost }, StatTag::App));
        current[t] = newv;
    }
    fence(&mut uops, StatTag::App);
    crate::common::marker(&mut uops, 1);
    (uops, pokes, copier)
}

/// Build per-thread programs for an `n_threads` run (disjoint partitions,
/// distinct seeds). Returns one (uops, pokes) per thread.
pub fn mvcc_multithread(
    mech: CopyMech,
    base: &MvccConfig,
    n_threads: usize,
    space: &mut AddrSpace,
) -> Vec<(Vec<Uop>, Pokes)> {
    (0..n_threads)
        .map(|t| {
            let cfg = MvccConfig { seed: base.seed + t as u64 * 7919, ..base.clone() };
            let (u, p, _) = mvcc_program(mech.clone(), &cfg, space);
            (u, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::marker_latencies;
    use mcs_sim::config::SystemConfig;
    use mcs_sim::program::{FixedProgram, IdleProgram, Program};
    use mcs_sim::system::System;
    use mcsquare::{McSquareConfig, McSquareEngine};

    fn tiny() -> MvccConfig {
        MvccConfig { tuples: 4, tuple_size: 1024, txns: 10, ..MvccConfig::default() }
    }

    fn run(mech: CopyMech, kind: UpdateKind) -> u64 {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let needs = mech.needs_engine();
        let cfgw = MvccConfig { kind, ..tiny() };
        let (uops, pokes, _) = mvcc_program(mech, &cfgw, &mut space);
        let cfg = SystemConfig::tiny();
        let mut sys = if needs {
            let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
        } else {
            System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
        };
        pokes.apply(&mut sys);
        let st = sys.run(200_000_000).expect("finishes");
        marker_latencies(&st.cores[0])[0]
    }

    #[test]
    fn all_kinds_complete_native() {
        assert!(run(CopyMech::Native, UpdateKind::Rmw) > 0);
        assert!(run(CopyMech::Native, UpdateKind::WriteOnly) > 0);
        assert!(run(CopyMech::Native, UpdateKind::NonTemporal) > 0);
    }

    #[test]
    fn all_kinds_complete_lazy() {
        assert!(run(CopyMech::mcsquare_1k(), UpdateKind::Rmw) > 0);
        assert!(run(CopyMech::mcsquare_1k(), UpdateKind::WriteOnly) > 0);
        assert!(run(CopyMech::mcsquare_1k(), UpdateKind::NonTemporal) > 0);
    }

    #[test]
    fn update_fraction_bounds_stores() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let cfgw = MvccConfig { update_frac: 0.25, update_ratio: 1.0, ..tiny() };
        let (uops, _, _) = mvcc_program(CopyMech::Native, &cfgw, &mut space);
        let app_stores = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Store { .. }) && u.tag == StatTag::App)
            .count();
        // 10 update txns × 256B/64B chunks = 40 stores.
        assert_eq!(app_stores, 40);
    }

    #[test]
    fn multithread_builds_disjoint_partitions() {
        let mut space = AddrSpace::new(PhysAddr(1 << 20), 1 << 28);
        let progs = mvcc_multithread(CopyMech::Native, &tiny(), 2, &mut space);
        assert_eq!(progs.len(), 2);
        // Distinct seeds and distinct buffers → different uop streams.
        assert_ne!(progs[0].0, progs[1].0);
        // Run both on a 2-core system.
        let mut cfg = SystemConfig::tiny();
        cfg.cores = 2;
        let mut sys = System::new(
            cfg,
            progs
                .iter()
                .map(|(u, _)| Box::new(FixedProgram::new(u.clone())) as Box<dyn Program>)
                .collect(),
        );
        for (_, p) in &progs {
            p.apply(&mut sys);
        }
        let _ = IdleProgram;
        sys.run(200_000_000).expect("finishes");
    }
}
