//! Byte ranges and a disjoint interval map.
//!
//! [`RangeMap`] is the storage the Copy Tracking Table is built on: a set
//! of disjoint byte ranges, each carrying a value that can be *sliced*
//! (split at a byte offset) and tested for *continuity* (so adjacent
//! segments whose values continue each other coalesce into one — the
//! paper's entry-merging rule for contiguous copies, §III-A1).

use std::collections::BTreeMap;
use std::fmt;

/// A half-open byte range `[start, end)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteRange {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl ByteRange {
    /// Construct `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> ByteRange {
        assert!(end >= start, "inverted range {start}..{end}");
        ByteRange { start, end }
    }

    /// Construct from a start and a length.
    pub fn sized(start: u64, len: u64) -> ByteRange {
        ByteRange { start, end: start + len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `p` lies inside the range.
    pub fn contains(&self, p: u64) -> bool {
        self.start <= p && p < self.end
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_range(&self, other: &ByteRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the ranges share at least one byte.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping part, if any.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (s < e).then(|| ByteRange::new(s, e))
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x},{:#x})", self.start, self.end)
    }
}

/// A value that can be split at a byte offset and tested for continuity
/// with a successor.
pub trait Sliceable: Clone {
    /// The value describing the subrange starting `off` bytes in.
    fn slice(&self, off: u64) -> Self;

    /// Whether a range of length `len` carrying `self`, immediately
    /// followed by a range carrying `next`, forms one logical range.
    fn continues(&self, len: u64, next: &Self) -> bool {
        let _ = (len, next);
        false
    }
}

/// Source base address carried by a CTT segment: the value at `dst` range
/// start; byte `dst.start + k` is a prospective copy of `src + k`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SrcBase(pub u64);

impl Sliceable for SrcBase {
    fn slice(&self, off: u64) -> Self {
        SrcBase(self.0 + off)
    }

    fn continues(&self, len: u64, next: &Self) -> bool {
        self.0 + len == next.0
    }
}

/// A map from disjoint byte ranges to sliceable values.
///
/// Inserting overwrites any overlapped parts of existing segments
/// (trimming or splitting them); adjacent segments whose values continue
/// each other are coalesced.
#[derive(Clone)]
pub struct RangeMap<V> {
    map: BTreeMap<u64, (u64, V)>, // start → (end, value)
}

impl<V: Sliceable> RangeMap<V> {
    /// Create an empty map.
    pub fn new() -> RangeMap<V> {
        RangeMap { map: BTreeMap::new() }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.map.iter().map(|(s, (e, _))| e - s).sum()
    }

    /// The segment containing `p`, if any, as (range, value at range start).
    pub fn get(&self, p: u64) -> Option<(ByteRange, &V)> {
        let (s, (e, v)) = self.map.range(..=p).next_back()?;
        (*e > p).then(|| (ByteRange::new(*s, *e), v))
    }

    /// Clipped overlaps with `r`, in address order: each item is a subrange
    /// of `r` together with the value sliced to that subrange's start.
    pub fn overlapping(&self, r: ByteRange) -> Vec<(ByteRange, V)> {
        let mut out = Vec::new();
        if r.is_empty() {
            return out;
        }
        // The segment starting before r.start may reach into r.
        let iter = self
            .map
            .range(..r.start)
            .next_back()
            .into_iter()
            .chain(self.map.range(r.start..r.end));
        for (s, (e, v)) in iter {
            let seg = ByteRange::new(*s, *e);
            if let Some(ix) = seg.intersect(&r) {
                out.push((ix, v.slice(ix.start - s)));
            }
        }
        out
    }

    /// Whether any byte of `r` is covered.
    pub fn covers_any(&self, r: ByteRange) -> bool {
        if r.is_empty() {
            return false;
        }
        if let Some((s, (e, _))) = self.map.range(..r.start).next_back() {
            if ByteRange::new(*s, *e).overlaps(&r) {
                return true;
            }
        }
        self.map.range(r.start..r.end).next().is_some()
    }

    /// Remove coverage of `r`, trimming and splitting segments as needed.
    pub fn remove(&mut self, r: ByteRange) {
        if r.is_empty() {
            return;
        }
        // Collect affected segment starts.
        let mut affected: Vec<u64> = Vec::new();
        if let Some((s, (e, _))) = self.map.range(..r.start).next_back() {
            if *e > r.start {
                affected.push(*s);
            }
        }
        affected.extend(self.map.range(r.start..r.end).map(|(s, _)| *s));
        for s in affected {
            let (e, v) = self.map.remove(&s).expect("affected segment present");
            if s < r.start {
                self.map.insert(s, (r.start, v.clone()));
            }
            if e > r.end {
                self.map.insert(r.end, (e, v.slice(r.end - s)));
            }
        }
    }

    /// Insert `r → v`, overwriting whatever it overlaps, then coalesce
    /// with neighbours whose values continue.
    pub fn insert(&mut self, r: ByteRange, v: V) {
        if r.is_empty() {
            return;
        }
        self.remove(r);
        let (mut start, mut val, mut end) = (r.start, v, r.end);
        // Coalesce with predecessor.
        if let Some((ps, (pe, pv))) = self.map.range(..start).next_back() {
            if *pe == start && pv.continues(pe - ps, &val) {
                let (ps, pe) = (*ps, *pe);
                let (_, pv) = self.map.remove(&ps).expect("pred present");
                debug_assert_eq!(pe, start);
                val = pv;
                start = ps;
            }
        }
        // Coalesce with successor.
        if let Some((ns, (ne, nv))) = self.map.range(end..).next() {
            if *ns == end && val.continues(end - start, nv) {
                let ne = *ne;
                let ns = *ns;
                self.map.remove(&ns);
                end = ne;
            }
        }
        self.map.insert(start, (end, val));
    }

    /// Iterate over all segments in address order.
    pub fn iter(&self) -> impl Iterator<Item = (ByteRange, &V)> {
        self.map.iter().map(|(s, (e, v))| (ByteRange::new(*s, *e), v))
    }
}

impl<V: Sliceable> Default for RangeMap<V> {
    fn default() -> Self {
        RangeMap::new()
    }
}

impl<V: Sliceable + fmt::Debug> fmt::Debug for RangeMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.map.iter().map(|(s, (e, v))| (ByteRange::new(*s, *e), v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rm() -> RangeMap<SrcBase> {
        RangeMap::new()
    }

    #[test]
    fn byte_range_basics() {
        let r = ByteRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(r.contains(10) && r.contains(19) && !r.contains(20));
        assert!(r.overlaps(&ByteRange::new(19, 25)));
        assert!(!r.overlaps(&ByteRange::new(20, 25)));
        assert_eq!(r.intersect(&ByteRange::new(15, 30)), Some(ByteRange::new(15, 20)));
        assert!(ByteRange::new(0, 100).contains_range(&r));
    }

    #[test]
    fn insert_and_get() {
        let mut m = rm();
        m.insert(ByteRange::new(100, 200), SrcBase(1000));
        let (r, v) = m.get(150).expect("covered");
        assert_eq!(r, ByteRange::new(100, 200));
        assert_eq!(v.0, 1000);
        assert!(m.get(200).is_none());
        assert!(m.get(99).is_none());
    }

    #[test]
    fn overlapping_slices_values() {
        let mut m = rm();
        m.insert(ByteRange::new(100, 200), SrcBase(1000));
        let o = m.overlapping(ByteRange::new(150, 400));
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].0, ByteRange::new(150, 200));
        assert_eq!(o[0].1 .0, 1050, "value sliced to subrange start");
    }

    #[test]
    fn insert_overwrites_overlap() {
        let mut m = rm();
        m.insert(ByteRange::new(0, 100), SrcBase(5000));
        m.insert(ByteRange::new(40, 60), SrcBase(9000));
        assert_eq!(m.segments(), 3);
        // `get` returns the value at the segment *start*.
        assert_eq!(m.get(39).unwrap(), (ByteRange::new(0, 40), &SrcBase(5000)));
        assert_eq!(m.get(40).unwrap().1 .0, 9000);
        assert_eq!(m.get(60).unwrap(), (ByteRange::new(60, 100), &SrcBase(5060)));
        assert_eq!(m.covered_bytes(), 100);
    }

    #[test]
    fn remove_splits_segments() {
        let mut m = rm();
        m.insert(ByteRange::new(0, 100), SrcBase(0));
        m.remove(ByteRange::new(30, 70));
        assert_eq!(m.segments(), 2);
        assert!(m.get(30).is_none() && m.get(69).is_none());
        assert_eq!(m.get(70).unwrap().1 .0, 70);
    }

    #[test]
    fn coalesce_contiguous_values() {
        let mut m = rm();
        m.insert(ByteRange::new(0, 64), SrcBase(1000));
        m.insert(ByteRange::new(64, 128), SrcBase(1064));
        assert_eq!(m.segments(), 1, "contiguous src+dst merge (paper §III-A1)");
        assert_eq!(m.get(100).unwrap().0, ByteRange::new(0, 128));
        // Non-contiguous values do not merge.
        m.insert(ByteRange::new(128, 192), SrcBase(9999));
        assert_eq!(m.segments(), 2);
    }

    #[test]
    fn coalesce_bridges_both_sides() {
        let mut m = rm();
        m.insert(ByteRange::new(0, 64), SrcBase(1000));
        m.insert(ByteRange::new(128, 192), SrcBase(1128));
        m.insert(ByteRange::new(64, 128), SrcBase(1064));
        assert_eq!(m.segments(), 1);
        assert_eq!(m.get(0).unwrap().0, ByteRange::new(0, 192));
    }

    #[test]
    fn covers_any_edges() {
        let mut m = rm();
        m.insert(ByteRange::new(100, 200), SrcBase(0));
        assert!(m.covers_any(ByteRange::new(199, 300)));
        assert!(!m.covers_any(ByteRange::new(200, 300)));
        assert!(m.covers_any(ByteRange::new(0, 101)));
        assert!(!m.covers_any(ByteRange::new(0, 100)));
        assert!(!m.covers_any(ByteRange::new(150, 150)), "empty range covers nothing");
    }

    /// Naive model: a Vec of per-byte Option<u64> source addresses.
    #[derive(Clone)]
    struct Model {
        bytes: Vec<Option<u64>>,
    }

    impl Model {
        fn new(n: usize) -> Model {
            Model { bytes: vec![None; n] }
        }
        fn insert(&mut self, r: ByteRange, src: u64) {
            for i in r.start..r.end {
                self.bytes[i as usize] = Some(src + (i - r.start));
            }
        }
        fn remove(&mut self, r: ByteRange) {
            for i in r.start..r.end {
                self.bytes[i as usize] = None;
            }
        }
    }

    fn arb_range(max: u64) -> impl Strategy<Value = ByteRange> {
        (0..max).prop_flat_map(move |s| (Just(s), s..=max)).prop_map(|(s, e)| ByteRange::new(s, e))
    }

    proptest! {
        #[test]
        fn matches_naive_model(ops in prop::collection::vec(
            (arb_range(256), 0u64..10_000, prop::bool::ANY), 1..40)
        ) {
            let mut m = rm();
            let mut model = Model::new(256);
            for (r, src, is_insert) in ops {
                if is_insert {
                    m.insert(r, SrcBase(src));
                    model.insert(r, src);
                } else {
                    m.remove(r);
                    model.remove(r);
                }
                // Compare byte by byte.
                for p in 0..256u64 {
                    let got = m.get(p).map(|(r0, v)| v.0 + (p - r0.start));
                    prop_assert_eq!(got, model.bytes[p as usize], "byte {}", p);
                }
                // Segments are disjoint, sorted, and maximal w.r.t. merging.
                let segs: Vec<_> = m.iter().map(|(r, v)| (r, *v)).collect();
                for w in segs.windows(2) {
                    prop_assert!(w[0].0.end <= w[1].0.start, "disjoint & sorted");
                    let touching = w[0].0.end == w[1].0.start;
                    let continuous = w[0].1.0 + w[0].0.len() == w[1].1.0;
                    prop_assert!(!(touching && continuous), "unmerged neighbours");
                }
            }
        }
    }
}
