//! The Copy Tracking Table (CTT), §III-A1.
//!
//! Each logical entry tracks one prospective copy as a destination byte
//! range plus the source address it shadows. The paper's table rules are
//! implemented here:
//!
//! * **Destination uniqueness** — inserting a copy whose destination
//!   overlaps existing entries trims or removes them, so tracked
//!   destination ranges are pairwise disjoint and every destination has a
//!   unique source.
//! * **Chain collapsing** — if the new copy's *source* overlaps an existing
//!   entry's *destination* (copy A→B followed by B→C), the new entry is
//!   split and the overlapping part redirected to the older source (stored
//!   as A→C), so no chains form.
//! * **Merging** — adjacent entries whose source and destination are both
//!   contiguous coalesce into one (element-by-element copies of an array
//!   occupy one entry).
//! * **Capacity** — a bounded number of entries (2048 in Table I);
//!   [`Ctt::try_insert`] fails when full so the memory controller can
//!   stall the request (the Fig. 20b stalls).
//!
//! The hardware table keeps one 16-byte row per entry (52b source, 52b
//! destination, 21b size, 1 active bit, 2 spare — see [`ENTRY_BYTES`]);
//! here an entry is a segment of a [`RangeMap`].

use crate::ranges::{ByteRange, RangeMap, SrcBase};
use mcs_sim::addr::{PhysAddr, CACHELINE, PAGE_2M};

/// Size of one hardware CTT entry in bytes (52 + 52 + 21 + 1 + 2 = 128
/// bits).
pub const ENTRY_BYTES: u64 = 16;
/// Maximum size a single entry can track: 2 MB, the 21-bit size field.
pub const MAX_ENTRY_SIZE: u64 = PAGE_2M;

/// Hardware rows needed to track `len` contiguous bytes.
fn hw_rows(len: u64) -> usize {
    (len.div_ceil(MAX_ENTRY_SIZE)) as usize
}

/// Why an insertion could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CttError {
    /// The table has no room for the entry (caller stalls and retries).
    Full,
    /// The new destination overlaps existing entries' *sources*: those
    /// dependent destinations must be flushed (copied out) before this
    /// insert can proceed, or the older entries would read clobbered data.
    /// Carries the destination lines to flush.
    NeedsFlush(Vec<PhysAddr>),
}

impl std::fmt::Display for CttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CttError::Full => write!(f, "copy tracking table full"),
            CttError::NeedsFlush(lines) => {
                write!(f, "insert requires flushing {} dependent lines", lines.len())
            }
        }
    }
}

impl std::error::Error for CttError {}

/// A fragment of a destination cacheline and the source bytes backing it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Fragment {
    /// Absolute destination address of the fragment.
    pub dst: PhysAddr,
    /// Fragment length in bytes.
    pub len: u64,
    /// Absolute source address the fragment shadows.
    pub src: PhysAddr,
}

/// CTT statistics counters.
#[derive(Debug, Default, Clone)]
pub struct CttStats {
    /// Successful insert operations (MCLAZY packets accepted).
    pub inserts: u64,
    /// Inserts rejected because the table was full.
    pub full_rejects: u64,
    /// Pieces created by chain collapsing.
    pub chain_collapses: u64,
    /// Bytes untracked by destination writes.
    pub bytes_untracked_by_write: u64,
    /// Entries dropped by MCFREE.
    pub freed_entries: u64,
    /// Peak segment count observed.
    pub peak_segments: u64,
}

/// The Copy Tracking Table.
#[derive(Debug, Clone)]
pub struct Ctt {
    map: RangeMap<SrcBase>,
    capacity: usize,
    /// Memoized [`Ctt::hw_entries`] — the drain policy and the event-driven
    /// scheduler's `needs_tick` probe read occupancy every cycle, while the
    /// table itself changes only on copy/free/write traffic. Invalidated by
    /// every `map` mutation.
    hw_cache: std::cell::Cell<Option<usize>>,
    /// Statistics.
    pub stats: CttStats,
}

impl Ctt {
    /// Create a table with room for `capacity` entries (segments).
    pub fn new(capacity: usize) -> Ctt {
        Ctt {
            map: RangeMap::new(),
            capacity,
            hw_cache: std::cell::Cell::new(None),
            stats: CttStats::default(),
        }
    }

    /// Number of live entries (segments).
    pub fn len(&self) -> usize {
        self.map.segments()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fractional occupancy, in hardware rows (drives the drain policy).
    pub fn occupancy(&self) -> f64 {
        self.hw_entries() as f64 / self.capacity as f64
    }

    /// Total destination bytes currently tracked.
    pub fn tracked_bytes(&self) -> u64 {
        self.map.covered_bytes()
    }

    /// Number of hardware table rows the live segments occupy. The 21-bit
    /// size field caps one row at [`MAX_ENTRY_SIZE`] (2 MB), so a merged
    /// segment wider than that is stored as several back-to-back rows:
    /// `ceil(len / MAX_ENTRY_SIZE)` per segment.
    pub fn hw_entries(&self) -> usize {
        if let Some(n) = self.hw_cache.get() {
            return n;
        }
        let n = self.map.iter().map(|(r, _)| hw_rows(r.len())).sum();
        self.hw_cache.set(Some(n));
        n
    }

    /// Insert a prospective copy `size` bytes from `src` to `dst`.
    ///
    /// Applies chain collapsing and destination-overlap trimming. Copies
    /// larger than [`MAX_ENTRY_SIZE`] are accepted and split into multiple
    /// hardware rows — a segment wider than 2 MB counts as several entries
    /// toward capacity (see [`Ctt::hw_entries`]); the software wrapper
    /// already splits at page granularity, so this is belt and braces.
    ///
    /// # Errors
    /// * [`CttError::Full`] if the table cannot hold the resulting entries.
    /// * [`CttError::NeedsFlush`] if the new destination overlaps an
    ///   existing entry's source (the caller must flush those lines first).
    pub fn try_insert(&mut self, dst: PhysAddr, src: PhysAddr, size: u64) -> Result<(), CttError> {
        assert!(dst.is_aligned(CACHELINE), "MCLAZY destination must be line aligned");
        assert!(size > 0 && size.is_multiple_of(CACHELINE), "MCLAZY size must be in whole lines");
        let dst_r = ByteRange::sized(dst.0, size);
        let src_r = ByteRange::sized(src.0, size);
        assert!(!dst_r.overlaps(&src_r), "memcpy buffers must not overlap");

        // Rule: the new destination must not clobber bytes other entries
        // still need as sources.
        let dependents = self.dst_lines_with_src_in(dst_r);
        if !dependents.is_empty() {
            return Err(CttError::NeedsFlush(dependents));
        }

        // Chain collapsing: split the new source range around existing
        // destinations and redirect.
        let mut pieces: Vec<(ByteRange, u64)> = Vec::new(); // (dst subrange, src base)
        let mut cursor = src_r.start;
        for (seg, v) in self.map.overlapping(src_r) {
            if seg.start > cursor {
                let d0 = dst_r.start + (cursor - src_r.start);
                pieces.push((ByteRange::new(d0, d0 + (seg.start - cursor)), cursor));
            }
            let d0 = dst_r.start + (seg.start - src_r.start);
            pieces.push((ByteRange::new(d0, d0 + seg.len()), v.0));
            self.stats.chain_collapses += 1;
            cursor = seg.end;
        }
        if cursor < src_r.end {
            let d0 = dst_r.start + (cursor - src_r.start);
            pieces.push((ByteRange::new(d0, d0 + (src_r.end - cursor)), cursor));
        }

        // Capacity check: conservative upper bound on resulting hardware
        // rows. Each new piece costs ceil(len / MAX_ENTRY_SIZE) rows (the
        // 21-bit size field). Overlap removal can split one existing entry
        // into two; merging can reduce the count — we bound by current +
        // new rows + 1.
        let new_rows: usize = pieces.iter().map(|(r, _)| hw_rows(r.len())).sum();
        if self.hw_entries() + new_rows + 1 > self.capacity {
            self.stats.full_rejects += 1;
            return Err(CttError::Full);
        }

        for (r, src_base) in pieces {
            self.map.insert(r, SrcBase(src_base));
        }
        self.hw_cache.set(None);
        self.stats.inserts += 1;
        self.stats.peak_segments = self.stats.peak_segments.max(self.len() as u64);
        Ok(())
    }

    /// Fragments of the destination cacheline containing `line` that are
    /// tracked, in address order. Gaps between fragments are bytes whose
    /// current memory contents are already valid.
    pub fn lookup_line(&self, line: PhysAddr) -> Vec<Fragment> {
        let base = line.line_base().0;
        self.map
            .overlapping(ByteRange::new(base, base + CACHELINE))
            .into_iter()
            .map(|(r, v)| Fragment { dst: PhysAddr(r.start), len: r.len(), src: PhysAddr(v.0) })
            .collect()
    }

    /// Whether any byte in `[addr, addr+len)` is a tracked destination.
    pub fn covers_dst(&self, addr: PhysAddr, len: u64) -> bool {
        self.map.covers_any(ByteRange::sized(addr.0, len))
    }

    /// Untrack destination bytes `[addr, addr+len)` (a write to the
    /// destination reached memory, §III-B2).
    pub fn remove_dst(&mut self, addr: PhysAddr, len: u64) {
        let r = ByteRange::sized(addr.0, len);
        let before = self.map.covered_bytes();
        self.map.remove(r);
        self.hw_cache.set(None);
        self.stats.bytes_untracked_by_write += before - self.map.covered_bytes();
    }

    /// Entries whose *source* range overlaps `[addr, addr+len)`, clipped
    /// to the overlap: returns (destination subrange, source base of that
    /// subrange). O(entries).
    pub fn src_overlapping(&self, addr: PhysAddr, len: u64) -> Vec<(ByteRange, PhysAddr)> {
        let q = ByteRange::sized(addr.0, len);
        let mut out = Vec::new();
        for (dst, v) in self.map.iter() {
            let src = ByteRange::sized(v.0, dst.len());
            if let Some(ix) = src.intersect(&q) {
                let off = ix.start - src.start;
                out.push((
                    ByteRange::new(dst.start + off, dst.start + off + ix.len()),
                    PhysAddr(ix.start),
                ));
            }
        }
        out
    }

    /// Destination *lines* of entries whose source overlaps `r` (used for
    /// the flush-before-insert rule and for source-write handling).
    pub fn dst_lines_with_src_in(&self, r: ByteRange) -> Vec<PhysAddr> {
        let mut lines: Vec<PhysAddr> = Vec::new();
        for (dst_sub, _) in self.src_overlapping(PhysAddr(r.start), r.len()) {
            for l in mcs_sim::addr::lines_of(PhysAddr(dst_sub.start), dst_sub.len()) {
                if lines.last() != Some(&l) {
                    lines.push(l);
                }
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Drop every entry whose destination lies entirely within
    /// `[addr, addr+len)` — the MCFREE rule (§III-C). Returns entries
    /// dropped.
    pub fn free_contained(&mut self, addr: PhysAddr, len: u64) -> usize {
        let q = ByteRange::sized(addr.0, len);
        let victims: Vec<ByteRange> =
            self.map.iter().filter(|(r, _)| q.contains_range(r)).map(|(r, _)| r).collect();
        for v in &victims {
            self.map.remove(*v);
        }
        self.hw_cache.set(None);
        self.stats.freed_entries += victims.len() as u64;
        victims.len()
    }

    /// The smallest entry overlapping channel-owned lines, per the drain
    /// policy ("the MC identifies entries with the smallest size",
    /// §III-A1). `owned` filters by the first destination line; entries
    /// overlapping `exclude` ranges (already being drained) are skipped.
    pub fn smallest_entry(
        &self,
        owned: impl Fn(PhysAddr) -> bool,
        exclude: &[ByteRange],
    ) -> Option<(ByteRange, PhysAddr)> {
        self.map
            .iter()
            .filter(|(r, _)| owned(PhysAddr(r.start)))
            .filter(|(r, _)| !exclude.iter().any(|x| x.overlaps(r)))
            .min_by_key(|(r, _)| r.len())
            .map(|(r, v)| (r, PhysAddr(v.0)))
    }

    /// Iterate over (destination range, source base) entries.
    pub fn iter(&self) -> impl Iterator<Item = (ByteRange, PhysAddr)> + '_ {
        self.map.iter().map(|(r, v)| (r, PhysAddr(v.0)))
    }

    /// Invariant check (used by tests): destination ranges are pairwise
    /// disjoint and no entry's source overlaps any entry's destination.
    pub fn check_invariants(&self) -> Result<(), String> {
        let entries: Vec<_> = self.iter().collect();
        for w in entries.windows(2) {
            if w[0].0.end > w[1].0.start {
                return Err(format!("overlapping destinations: {:?} and {:?}", w[0].0, w[1].0));
            }
        }
        for (dst, src) in &entries {
            let src_r = ByteRange::sized(src.0, dst.len());
            for (dst2, _) in &entries {
                if src_r.overlaps(dst2) {
                    return Err(format!("chain: src {src_r:?} overlaps dst {dst2:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pa(x: u64) -> PhysAddr {
        PhysAddr(x)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x2000), 128).unwrap();
        assert_eq!(c.len(), 1);
        let f = c.lookup_line(pa(0x1040));
        assert_eq!(f, vec![Fragment { dst: pa(0x1040), len: 64, src: pa(0x2040) }]);
        assert!(c.lookup_line(pa(0x1080)).is_empty());
        c.check_invariants().unwrap();
    }

    #[test]
    fn misaligned_source_lookup() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x2024), 64).unwrap();
        let f = c.lookup_line(pa(0x1000));
        assert_eq!(f, vec![Fragment { dst: pa(0x1000), len: 64, src: pa(0x2024) }]);
    }

    #[test]
    fn dest_overlap_trims_existing() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8000), 256).unwrap();
        // New copy over the middle two lines.
        c.try_insert(pa(0x1040), pa(0x9000), 128).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.lookup_line(pa(0x1000))[0].src, pa(0x8000));
        assert_eq!(c.lookup_line(pa(0x1040))[0].src, pa(0x9000));
        assert_eq!(c.lookup_line(pa(0x1080))[0].src, pa(0x9040));
        assert_eq!(c.lookup_line(pa(0x10c0))[0].src, pa(0x80c0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn chain_collapse_redirects_to_original_source() {
        let mut c = Ctt::new(16);
        // Copy A(0x8000) → B(0x1000), then B → C(0x4000): entry must read
        // A → C (paper's A/B/C example, §III-A1).
        c.try_insert(pa(0x1000), pa(0x8000), 128).unwrap();
        c.try_insert(pa(0x4000), pa(0x1000), 128).unwrap();
        c.check_invariants().unwrap();
        let f = c.lookup_line(pa(0x4000));
        assert_eq!(f[0].src, pa(0x8000), "chain collapsed to A");
        assert_eq!(c.stats.chain_collapses, 1);
    }

    #[test]
    fn partial_chain_collapse_splits() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8000), 64).unwrap(); // A→B (one line)
        // C ← [B-line, untracked line]: first half redirects to A.
        c.try_insert(pa(0x4000), pa(0x1000), 128).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.lookup_line(pa(0x4000))[0].src, pa(0x8000));
        assert_eq!(c.lookup_line(pa(0x4040))[0].src, pa(0x1040));
    }

    #[test]
    fn contiguous_copies_merge() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x2000), 64).unwrap();
        c.try_insert(pa(0x1040), pa(0x2040), 64).unwrap();
        assert_eq!(c.len(), 1, "array element copies merge into one entry");
    }

    #[test]
    fn dest_write_untracks_and_splits() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x2000), 192).unwrap();
        c.remove_dst(pa(0x1040), 64);
        assert_eq!(c.len(), 2);
        assert!(c.lookup_line(pa(0x1040)).is_empty());
        assert!(!c.lookup_line(pa(0x1080)).is_empty());
        assert_eq!(c.stats.bytes_untracked_by_write, 64);
    }

    #[test]
    fn capacity_rejects_when_full() {
        // Capacity 3 with the conservative +1 headroom: third distinct
        // entry is rejected.
        let mut c = Ctt::new(3);
        // Non-mergeable entries.
        c.try_insert(pa(0x1000), pa(0x20000), 64).unwrap();
        c.try_insert(pa(0x3000), pa(0x40000), 64).unwrap();
        let e = c.try_insert(pa(0x5000), pa(0x60000), 64);
        assert_eq!(e, Err(CttError::Full));
        assert_eq!(c.stats.full_rejects, 1);
        // Freeing makes room again.
        c.free_contained(pa(0x1000), 64);
        c.try_insert(pa(0x5000), pa(0x60000), 64).unwrap();
    }

    #[test]
    fn needs_flush_when_dst_overlaps_existing_src() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8000), 128).unwrap(); // src 0x8000..0x8080
        let e = c.try_insert(pa(0x8000), pa(0x9000), 64); // would clobber src
        match e {
            Err(CttError::NeedsFlush(lines)) => assert_eq!(lines, vec![pa(0x1000)]),
            other => panic!("expected NeedsFlush, got {other:?}"),
        }
        // After flushing (simulated by untracking), the insert succeeds.
        c.remove_dst(pa(0x1000), 64);
        c.try_insert(pa(0x8000), pa(0x9000), 64).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn mcfree_drops_only_contained() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8000), 128).unwrap();
        c.try_insert(pa(0x3000), pa(0x9000), 128).unwrap();
        // Free covers the first entry fully, the second not at all.
        assert_eq!(c.free_contained(pa(0x0), 0x2000), 1);
        assert_eq!(c.len(), 1);
        assert!(!c.lookup_line(pa(0x3000)).is_empty());
    }

    #[test]
    fn src_overlapping_maps_back_to_dst() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8020), 128).unwrap();
        let hits = c.src_overlapping(pa(0x8040), 64);
        assert_eq!(hits.len(), 1);
        let (dst, src) = hits[0];
        assert_eq!(src, pa(0x8040));
        assert_eq!(dst, ByteRange::new(0x1020, 0x1060));
    }

    #[test]
    fn smallest_entry_selection() {
        let mut c = Ctt::new(16);
        c.try_insert(pa(0x1000), pa(0x8000), 256).unwrap();
        c.try_insert(pa(0x3000), pa(0x9000), 64).unwrap();
        let (r, _) = c.smallest_entry(|_| true, &[]).unwrap();
        assert_eq!(r.len(), 64);
        // Excluding it picks the next.
        let (r2, _) = c.smallest_entry(|_| true, &[r]).unwrap();
        assert_eq!(r2.len(), 256);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_buffers_panic() {
        let mut c = Ctt::new(16);
        let _ = c.try_insert(pa(0x1000), pa(0x1020), 128);
    }

    proptest! {
        #[test]
        fn invariants_hold_under_random_ops(
            ops in prop::collection::vec((0u8..4, 0u64..32, 32u64..64, 1u64..4), 1..60)
        ) {
            let mut c = Ctt::new(64);
            for (kind, a, b, lines) in ops {
                let dst = pa(a * 64);
                let src = pa(b * 64 + 7); // misaligned sources allowed
                let size = lines * 64;
                match kind {
                    0 => {
                        if !ByteRange::sized(dst.0, size).overlaps(&ByteRange::sized(src.0, size)) {
                            let _ = c.try_insert(dst, src, size);
                        }
                    }
                    1 => c.remove_dst(dst, size),
                    2 => { c.free_contained(dst, size); }
                    3 => { let _ = c.lookup_line(dst); }
                    _ => unreachable!(),
                }
                prop_assert!(c.check_invariants().is_ok(), "{:?}", c.check_invariants());
                prop_assert!(c.len() <= c.capacity() + 1);
            }
        }

        #[test]
        fn lookup_agrees_with_entry_arithmetic(
            dst_line in 0u64..64, src_byte in 4096u64..8192, lines in 1u64..8
        ) {
            let mut c = Ctt::new(64);
            let dst = pa(dst_line * 64);
            let size = lines * 64;
            prop_assume!(!ByteRange::sized(dst.0, size).overlaps(&ByteRange::sized(src_byte, size)));
            c.try_insert(dst, pa(src_byte), size).unwrap();
            for l in 0..lines {
                let frs = c.lookup_line(pa(dst.0 + l * 64));
                let total: u64 = frs.iter().map(|f| f.len).sum();
                prop_assert_eq!(total, 64);
                for f in frs {
                    let off = f.dst.0 - dst.0;
                    prop_assert_eq!(f.src.0, src_byte + off);
                }
            }
        }
    }
}
