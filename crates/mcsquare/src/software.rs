//! Software support (§III-D): uop generators for eager `memcpy`, the
//! `memcpy_lazy` wrapper, and the interposer policy that redirects large
//! copies to the lazy path.
//!
//! `memcpy_lazy` follows the paper's Fig. 8 algorithm: copy the unaligned
//! destination fringe eagerly, then walk the buffers page by page (an
//! MCLAZY's operands must be physically contiguous, so one instruction per
//! page), issuing a CLWB per source cacheline (modelling the writeback
//! cost, §IV) followed by one MCLAZY per page-bounded chunk, falling back
//! to an eager copy for sub-cacheline remainders, and ending with an
//! MFENCE to order the prospective copies with later accesses.

use mcs_sim::addr::{lines_of, PhysAddr, CACHELINE, PAGE_4K};
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};

/// Options for lazy-copy generation.
#[derive(Clone, Debug)]
pub struct LazyOpts {
    /// Page size used for chunking (4 KB for user buffers; 2 MB when the
    /// kernel copies huge pages, §V-B).
    pub page_size: u64,
    /// Issue a CLWB per source line (the §IV cost model). Disabling lets
    /// benches isolate the packet-send component (Fig. 11).
    pub clwb_sources: bool,
    /// Use the §V-A1 wide-writeback extension (one WBRANGE per lazy chunk
    /// instead of a CLWB per line), removing the per-line serialisation
    /// the paper calls a conservative overhead estimate.
    pub wide_writeback: bool,
    /// Append the trailing MFENCE.
    pub fence: bool,
    /// Statistics tag for the generated uops.
    pub tag: StatTag,
}

impl Default for LazyOpts {
    fn default() -> Self {
        LazyOpts {
            page_size: PAGE_4K,
            clwb_sources: true,
            wide_writeback: false,
            fence: true,
            tag: StatTag::Memcpy,
        }
    }
}

/// Bytes remaining in the page containing `a` (the Fig. 8 `ALIGN_REM`
/// usage: full page when `a` is page aligned).
fn rem_in_page(a: PhysAddr, page: u64) -> u64 {
    page - a.page_off(page)
}

/// Generate uops for a plain eager memcpy: per-chunk load + dependent
/// store, chunked so no access crosses a cacheline.
///
/// `base_id` is the uop id the core will assign to the *first* generated
/// uop (ids are sequential), needed to wire `StoreData::FromLoad`.
pub fn memcpy_eager_uops(
    base_id: u64,
    dst: PhysAddr,
    src: PhysAddr,
    size: u64,
    tag: StatTag,
) -> Vec<Uop> {
    let mut uops = Vec::new();
    let mut s = src;
    let mut d = dst;
    let mut rem = size;
    while rem > 0 {
        let take = rem
            .min(CACHELINE - s.line_off())
            .min(CACHELINE - d.line_off());
        let load_id = base_id + uops.len() as u64;
        uops.push(Uop::new(UopKind::Load { addr: s, size: take as u8 }, tag));
        uops.push(Uop::new(
            UopKind::Store {
                addr: d,
                size: take as u8,
                data: StoreData::FromLoad { load: load_id, offset: 0 },
                nontemporal: false,
            },
            tag,
        ));
        s = s.add(take);
        d = d.add(take);
        rem -= take;
    }
    uops
}

/// Generate uops for `memcpy_lazy(dst, src, size)` per Fig. 8.
///
/// `base_id` is the id of the first generated uop (for fringe copies'
/// load→store dependencies).
///
/// # Panics
/// Panics if the source and destination ranges overlap.
pub fn memcpy_lazy_uops(
    base_id: u64,
    dst: PhysAddr,
    src: PhysAddr,
    size: u64,
    opts: &LazyOpts,
) -> Vec<Uop> {
    assert!(
        dst.0 + size <= src.0 || src.0 + size <= dst.0,
        "memcpy buffers must not overlap"
    );
    let mut uops: Vec<Uop> = Vec::new();
    let mut d = dst;
    let mut s = src;
    let mut rem = size;

    while rem > 0 {
        // Cacheline-align the destination (Fig. 8 lines 2–7). Beyond the
        // initial fringe this also re-aligns after a sub-cacheline eager
        // chunk at a source page boundary, which Fig. 8's pseudocode
        // glosses over: without it the next MCLAZY would violate the
        // destination-alignment rule.
        if !d.is_aligned(CACHELINE) {
            let fringe = d.align_rem(CACHELINE).min(rem);
            uops.extend(memcpy_eager_uops(base_id + uops.len() as u64, d, s, fringe, opts.tag));
            d = d.add(fringe);
            s = s.add(fringe);
            rem -= fringe;
            continue;
        }
        // Remaining bytes within the current page of each buffer
        // (Fig. 8 lines 9–13).
        let chunk = rem_in_page(s, opts.page_size)
            .min(rem_in_page(d, opts.page_size))
            .min(rem);
        if chunk < CACHELINE {
            // Sub-cacheline remainder: eager (Fig. 8 lines 14–15).
            uops.extend(memcpy_eager_uops(base_id + uops.len() as u64, d, s, chunk, opts.tag));
            d = d.add(chunk);
            s = s.add(chunk);
            rem -= chunk;
            continue;
        }
        // Whole-line lazy chunk (Fig. 8 lines 17–19).
        let lazy = chunk & !(CACHELINE - 1);
        if opts.clwb_sources {
            if opts.wide_writeback {
                uops.push(Uop::new(UopKind::WbRange { addr: s, size: lazy }, opts.tag));
            } else {
                for line in lines_of(s, lazy) {
                    uops.push(Uop::new(UopKind::Clwb { addr: line }, opts.tag));
                }
            }
        }
        uops.push(Uop::new(UopKind::Mclazy { dst: d, src: s, size: lazy }, opts.tag));
        d = d.add(lazy);
        s = s.add(lazy);
        rem -= lazy;
    }

    if opts.fence {
        uops.push(Uop::new(UopKind::Mfence, opts.tag));
    }
    uops
}

/// The interposer policy (`copy_interpose.so`): redirect copies of at
/// least `threshold` bytes to `memcpy_lazy`, leave smaller ones eager.
/// The paper's Protobuf run interposes copies ≥ 1 KB (§V-B).
pub fn memcpy_interposed_uops(
    base_id: u64,
    dst: PhysAddr,
    src: PhysAddr,
    size: u64,
    threshold: u64,
    opts: &LazyOpts,
) -> Vec<Uop> {
    if size >= threshold {
        memcpy_lazy_uops(base_id, dst, src, size, opts)
    } else {
        memcpy_eager_uops(base_id, dst, src, size, opts.tag)
    }
}

/// Generate an `MCFREE` hint uop for `[addr, addr+size)` (to be called
/// where the buffer is known dead, e.g. inside `munmap`, §III-C).
pub fn mcfree_uop(addr: PhysAddr, size: u64, tag: StatTag) -> Uop {
    Uop::new(UopKind::Mcfree { addr, size }, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Functional interpreter: applies the uop stream to a byte map,
    /// treating MCLAZY as an eager copy (the architectural semantics).
    #[derive(Default)]
    struct FuncMem {
        bytes: HashMap<u64, u8>,
        loads: HashMap<u64, Vec<u8>>, // uop id → value
    }

    impl FuncMem {
        fn read(&self, a: PhysAddr, n: u64) -> Vec<u8> {
            (0..n).map(|i| *self.bytes.get(&(a.0 + i)).unwrap_or(&0)).collect()
        }
        fn write(&mut self, a: PhysAddr, data: &[u8]) {
            for (i, b) in data.iter().enumerate() {
                self.bytes.insert(a.0 + i as u64, *b);
            }
        }
        fn run(&mut self, base_id: u64, uops: &[Uop]) {
            for (i, u) in uops.iter().enumerate() {
                let id = base_id + i as u64;
                match &u.kind {
                    UopKind::Load { addr, size } => {
                        let v = self.read(*addr, *size as u64);
                        self.loads.insert(id, v);
                    }
                    UopKind::Store { addr, size, data, .. } => {
                        let bytes = match data {
                            StoreData::Imm(b) => b.clone(),
                            StoreData::Splat(v) => vec![*v; *size as usize],
                            StoreData::FromLoad { load, offset } => {
                                let v = &self.loads[load];
                                v[*offset as usize..*offset as usize + *size as usize].to_vec()
                            }
                        };
                        self.write(*addr, &bytes);
                    }
                    UopKind::Mclazy { dst, src, size } => {
                        let v = self.read(*src, *size);
                        self.write(*dst, &v);
                    }
                    UopKind::Clwb { .. }
                    | UopKind::WbRange { .. }
                    | UopKind::Mfence
                    | UopKind::Mcfree { .. } => {}
                    UopKind::Compute { .. } | UopKind::Marker { .. } | UopKind::PipelineFlush => {}
                }
            }
        }
    }

    #[test]
    fn eager_copy_is_correct() {
        let mut m = FuncMem::default();
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7 % 251) as u8).collect();
        m.write(PhysAddr(1000), &data);
        let uops = memcpy_eager_uops(0, PhysAddr(5003), PhysAddr(1000), 200, StatTag::Memcpy);
        m.run(0, &uops);
        assert_eq!(m.read(PhysAddr(5003), 200), data);
    }

    #[test]
    fn lazy_wrapper_structure_aligned() {
        // Page-aligned, line-multiple copy: no fringes, one MCLAZY per page.
        let uops = memcpy_lazy_uops(
            0,
            PhysAddr(2 * PAGE_4K),
            PhysAddr(8 * PAGE_4K),
            2 * PAGE_4K,
            &LazyOpts::default(),
        );
        let mclazys: Vec<_> =
            uops.iter().filter(|u| matches!(u.kind, UopKind::Mclazy { .. })).collect();
        let clwbs = uops.iter().filter(|u| matches!(u.kind, UopKind::Clwb { .. })).count();
        assert_eq!(mclazys.len(), 2, "one MCLAZY per page");
        assert_eq!(clwbs as u64, 2 * PAGE_4K / CACHELINE, "one CLWB per source line");
        assert!(matches!(uops.last().unwrap().kind, UopKind::Mfence));
        for u in &uops {
            assert!(u.validate().is_ok(), "{u}");
        }
    }

    #[test]
    fn lazy_wrapper_handles_misaligned_dest() {
        let dst = PhysAddr(4096 + 37);
        let src = PhysAddr(65536 + 5);
        let uops = memcpy_lazy_uops(0, dst, src, 1000, &LazyOpts::default());
        // First uops are the eager fringe (64 - 37 = 27 bytes).
        let first_lazy = uops
            .iter()
            .find_map(|u| match u.kind {
                UopKind::Mclazy { dst, size, .. } => Some((dst, size)),
                _ => None,
            })
            .expect("has a lazy chunk");
        assert!(first_lazy.0.is_aligned(CACHELINE));
        assert_eq!(first_lazy.1 % CACHELINE, 0);
        for u in &uops {
            assert!(u.validate().is_ok(), "{u}");
        }
    }

    #[test]
    fn lazy_wrapper_splits_at_page_boundaries() {
        // Source starts mid-page: chunks must not cross either buffer's
        // page boundary (MCLAZY operands are physically contiguous pages).
        let dst = PhysAddr(10 * PAGE_4K);
        let src = PhysAddr(20 * PAGE_4K + 2048);
        let uops = memcpy_lazy_uops(0, dst, src, 3 * PAGE_4K, &LazyOpts::default());
        for u in &uops {
            if let UopKind::Mclazy { dst, src, size } = u.kind {
                assert_eq!(dst.page_base(PAGE_4K), PhysAddr(dst.0 + size - 1).page_base(PAGE_4K));
                assert_eq!(src.page_base(PAGE_4K), PhysAddr(src.0 + size - 1).page_base(PAGE_4K));
            }
        }
    }

    #[test]
    fn wide_writeback_replaces_clwb_storm() {
        let opts = LazyOpts { wide_writeback: true, ..LazyOpts::default() };
        let uops =
            memcpy_lazy_uops(0, PhysAddr(2 * PAGE_4K), PhysAddr(8 * PAGE_4K), 2 * PAGE_4K, &opts);
        let clwbs = uops.iter().filter(|u| matches!(u.kind, UopKind::Clwb { .. })).count();
        let wbs = uops.iter().filter(|u| matches!(u.kind, UopKind::WbRange { .. })).count();
        assert_eq!(clwbs, 0);
        assert_eq!(wbs, 2, "one WBRANGE per page chunk");
        for u in &uops {
            assert!(u.validate().is_ok(), "{u}");
        }
    }

    #[test]
    fn tiny_copy_is_fully_eager() {
        let uops = memcpy_lazy_uops(0, PhysAddr(4096), PhysAddr(8192), 40, &LazyOpts::default());
        assert!(uops.iter().all(|u| !matches!(u.kind, UopKind::Mclazy { .. })));
    }

    #[test]
    fn interposer_threshold() {
        let opts = LazyOpts::default();
        let small = memcpy_interposed_uops(0, PhysAddr(0x40000), PhysAddr(0x80000), 512, 1024, &opts);
        assert!(small.iter().all(|u| !matches!(u.kind, UopKind::Mclazy { .. })));
        let large = memcpy_interposed_uops(0, PhysAddr(0x40000), PhysAddr(0x80000), 2048, 1024, &opts);
        assert!(large.iter().any(|u| matches!(u.kind, UopKind::Mclazy { .. })));
    }

    proptest! {
        /// The wrapper's architectural effect equals a plain memcpy for
        /// arbitrary (mis)alignments and sizes.
        #[test]
        fn lazy_equals_eager_functionally(
            dst_off in 0u64..200, src_off in 0u64..200, size in 1u64..20_000
        ) {
            let dst = PhysAddr(100 * PAGE_4K + dst_off);
            let src = PhysAddr(200 * PAGE_4K + src_off);
            let mut m = FuncMem::default();
            let data: Vec<u8> = (0..size).map(|i| (i * 131 % 251) as u8).collect();
            m.write(src, &data);
            let uops = memcpy_lazy_uops(77, dst, src, size, &LazyOpts::default());
            m.run(77, &uops);
            prop_assert_eq!(m.read(dst, size), data);
            for u in &uops {
                prop_assert!(u.validate().is_ok());
            }
        }

        /// Every generated MCLAZY obeys the ISA alignment rules and page
        /// containment, and CLWB count matches source lines.
        #[test]
        fn wrapper_respects_isa_rules(
            dst_off in 0u64..4096, src_off in 0u64..4096, size in 1u64..50_000
        ) {
            let dst = PhysAddr(100 * PAGE_4K + dst_off);
            let src = PhysAddr(300 * PAGE_4K + src_off);
            let uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
            let mut lazy_bytes = 0u64;
            for u in &uops {
                if let UopKind::Mclazy { dst, size, .. } = u.kind {
                    prop_assert!(dst.is_aligned(CACHELINE));
                    prop_assert_eq!(size % CACHELINE, 0);
                    lazy_bytes += size;
                }
            }
            prop_assert!(lazy_bytes <= size);
            let clwbs = uops.iter().filter(|u| matches!(u.kind, UopKind::Clwb { .. })).count();
            // One CLWB per source line of lazily copied chunks: between
            // lazy_bytes/64 and lazy_bytes/64 + chunks (fringe lines).
            prop_assert!(clwbs as u64 >= lazy_bytes / CACHELINE);
        }
    }
}
