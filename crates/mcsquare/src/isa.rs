//! The (MC)² ISA extension (§III-C): `MCLAZY` and `MCFREE` constructors
//! with the architectural constraints enforced, plus the entry-encoding
//! constants of the hardware table.
//!
//! `MCLAZY Rdest, Rsrc, Rsize` requests a prospective copy; the
//! destination must be cacheline aligned and the size a multiple of the
//! cacheline, the buffers must not overlap, and each operand buffer must
//! be physically contiguous (one call per page for user buffers — the
//! [`crate::software::memcpy_lazy_uops`] wrapper handles all of that).
//! `MCFREE Raddr, Rsize` hints that a buffer is dead. Both behave like
//! `CLFLUSHOPT` with respect to ordering: parallel among themselves,
//! ordered only by fences.

use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcs_sim::uop::{StatTag, Uop, UopKind};

/// Bits of a physical address in a CTT entry (the common architectural
/// maximum, §III-A1).
pub const ADDR_BITS: u32 = 52;
/// Bits of the size field: one entry tracks up to 2 MB.
pub const SIZE_BITS: u32 = 21;

/// Errors constructing an (MC)² instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Destination not cacheline aligned.
    UnalignedDest(PhysAddr),
    /// Size zero or not a multiple of the cacheline size.
    BadSize(u64),
    /// Source and destination ranges overlap.
    Overlap,
    /// An operand exceeds the architectural address width.
    AddrTooWide(PhysAddr),
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::UnalignedDest(a) => write!(f, "MCLAZY destination {a} not 64B aligned"),
            IsaError::BadSize(s) => write!(f, "MCLAZY size {s} not a positive multiple of 64"),
            IsaError::Overlap => write!(f, "MCLAZY source and destination overlap"),
            IsaError::AddrTooWide(a) => write!(f, "address {a} exceeds {ADDR_BITS} bits"),
        }
    }
}

impl std::error::Error for IsaError {}

fn check_addr(a: PhysAddr) -> Result<(), IsaError> {
    if a.0 >> ADDR_BITS != 0 {
        return Err(IsaError::AddrTooWide(a));
    }
    Ok(())
}

/// Construct an `MCLAZY` uop, validating the §III-C operand rules.
///
/// # Errors
/// Returns an [`IsaError`] describing the violated constraint.
pub fn mclazy(dst: PhysAddr, src: PhysAddr, size: u64, tag: StatTag) -> Result<Uop, IsaError> {
    check_addr(dst)?;
    check_addr(src)?;
    if !dst.is_aligned(CACHELINE) {
        return Err(IsaError::UnalignedDest(dst));
    }
    if size == 0 || !size.is_multiple_of(CACHELINE) || size >> SIZE_BITS != 0 {
        return Err(IsaError::BadSize(size));
    }
    if dst.0 < src.0 + size && src.0 < dst.0 + size {
        return Err(IsaError::Overlap);
    }
    Ok(Uop::new(UopKind::Mclazy { dst, src, size }, tag))
}

/// Construct an `MCFREE` uop.
///
/// # Errors
/// Returns [`IsaError::BadSize`] for a zero size.
pub fn mcfree(addr: PhysAddr, size: u64, tag: StatTag) -> Result<Uop, IsaError> {
    check_addr(addr)?;
    if size == 0 {
        return Err(IsaError::BadSize(size));
    }
    Ok(Uop::new(UopKind::Mcfree { addr, size }, tag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mclazy() {
        let u = mclazy(PhysAddr(0x1000), PhysAddr(0x2005), 128, StatTag::Memcpy).unwrap();
        assert!(matches!(u.kind, UopKind::Mclazy { .. }));
    }

    #[test]
    fn rejects_unaligned_dest() {
        assert_eq!(
            mclazy(PhysAddr(0x1001), PhysAddr(0x2000), 64, StatTag::Memcpy),
            Err(IsaError::UnalignedDest(PhysAddr(0x1001)))
        );
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            mclazy(PhysAddr(0x1000), PhysAddr(0x2000), 100, StatTag::Memcpy),
            Err(IsaError::BadSize(100))
        ));
        assert!(matches!(
            mclazy(PhysAddr(0x1000), PhysAddr(0x800000), 0, StatTag::Memcpy),
            Err(IsaError::BadSize(0))
        ));
        // Larger than the 21-bit size field (2 MB).
        assert!(matches!(
            mclazy(PhysAddr(0x40000000), PhysAddr(0x2000), 4 << 20, StatTag::Memcpy),
            Err(IsaError::BadSize(_))
        ));
    }

    #[test]
    fn rejects_overlap() {
        assert_eq!(
            mclazy(PhysAddr(0x1000), PhysAddr(0x1040), 128, StatTag::Memcpy),
            Err(IsaError::Overlap)
        );
    }

    #[test]
    fn rejects_wide_addresses() {
        let wide = PhysAddr(1 << 53);
        assert!(matches!(
            mclazy(wide, PhysAddr(0), 64, StatTag::Memcpy),
            Err(IsaError::AddrTooWide(_))
        ));
    }

    #[test]
    fn mcfree_validation() {
        assert!(mcfree(PhysAddr(0x1234), 100, StatTag::App).is_ok());
        assert!(mcfree(PhysAddr(0x1234), 0, StatTag::App).is_err());
    }
}
