//! # mcsquare — (MC)²: Lazy MemCopy at the Memory Controller
//!
//! A from-scratch implementation of the system described in *"(MC)²: Lazy
//! MemCopy at the Memory Controller"* (Kamath & Peter, ISCA 2024), built
//! on the [`mcs_sim`] cycle-level memory-system simulator.
//!
//! (MC)² makes `memcpy` lazy: instead of moving bytes, the CPU's new
//! `MCLAZY` instruction registers a *prospective copy* in a Copy Tracking
//! Table (CTT) at the memory controllers. The copy executes only when and
//! where it is needed — when a destination line is read (the controller
//! *bounces* the read to the source), when a source line is written (the
//! write waits in a Bounce Pending Queue while the copy completes), or in
//! the background when the table fills. To the program, data always looks
//! as if it had been copied eagerly.
//!
//! The crate mirrors the paper's structure:
//!
//! * [`ctt`] — the Copy Tracking Table (§III-A1): destination-disjoint
//!   entries, chain collapsing, merging, capacity and drain policy.
//! * [`bpq`] — the Bounce Pending Queue (§III-A2).
//! * [`engine`] — the memory-controller extension (§III-B): the four
//!   tracked-access cases, bounce reconstruction (including two-bounce
//!   misaligned copies), the post-bounce destination writeback with its
//!   75%-WPQ contention guard, and asynchronous parallel entry freeing.
//! * [`isa`] — the `MCLAZY` / `MCFREE` instructions (§III-C).
//! * [`software`] — `memcpy_lazy` (Fig. 8) and the interposer policy
//!   (§III-D).
//! * [`ranges`] — byte-range interval machinery the CTT is built on.
//! * [`config`] — the §V-C sensitivity-study knobs.
//!
//! ## Quick start
//!
//! ```
//! use mcs_sim::{config::SystemConfig, system::System, program::FixedProgram};
//! use mcs_sim::addr::PhysAddr;
//! use mcsquare::{engine::McSquareEngine, config::McSquareConfig, software};
//!
//! let cfg = SystemConfig::table1_one_core();
//! let engine = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
//!
//! // A program that lazily copies 4 KB and fences.
//! let (dst, src) = (PhysAddr(0x10_0000), PhysAddr(0x20_0000));
//! let uops = software::memcpy_lazy_uops(0, dst, src, 4096, &Default::default());
//! let mut sys = System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))],
//!                                   Box::new(engine));
//! sys.poke(src, &vec![0xab; 4096]);
//! sys.run(10_000_000).expect("finishes");
//! // The copy happened lazily; memory converges to the eager result.
//! ```

pub mod bpq;
pub mod config;
pub mod ctt;
pub mod engine;
pub mod isa;
pub mod ranges;
pub mod software;

pub use config::McSquareConfig;
pub use ctt::Ctt;
pub use engine::McSquareEngine;
