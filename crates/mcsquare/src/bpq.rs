//! The Bounce Pending Queue (BPQ), §III-A2.
//!
//! Writes arriving at a memory controller for a cacheline that is the
//! *source* of prospective copies cannot be applied to memory until the
//! dependent destinations have been copied (the copy logically happened at
//! MCLAZY time, before the write). The BPQ holds such writes; reads and
//! writes to held lines are merged and serviced from the queue, and the
//! entry is released to memory once no prospective copy depends on the
//! line. A small queue (8 entries in Table I) absorbs bursts; when it
//! fills, further source writes back-pressure the caches (Fig. 21).

use mcs_sim::addr::PhysAddr;
use mcs_sim::data::LineData;

/// One held source-line write.
#[derive(Debug, Clone)]
pub struct BpqEntry {
    /// The held line (base address).
    pub line: PhysAddr,
    /// The newest write data for the line.
    pub data: LineData,
}

/// A bounce pending queue for one memory controller.
#[derive(Debug, Clone)]
pub struct Bpq {
    cap: usize,
    entries: Vec<BpqEntry>,
    /// Peak occupancy observed (stats).
    pub peak: usize,
    /// Writes merged into existing entries (stats).
    pub merges: u64,
    /// Entries released to memory (stats).
    pub releases: u64,
}

impl Bpq {
    /// Create a queue holding up to `cap` cachelines.
    pub fn new(cap: usize) -> Bpq {
        Bpq { cap, entries: Vec::new(), peak: 0, merges: 0, releases: 0 }
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of held lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (further source writes must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// The held data for `line`, if present (read merging, Fig. 9 state 3:
    /// "reads and writes to Si are serviced directly from the BPQ").
    pub fn get(&self, line: PhysAddr) -> Option<&LineData> {
        let line = line.line_base();
        self.entries.iter().find(|e| e.line == line).map(|e| &e.data)
    }

    /// Whether `line` is held.
    pub fn contains(&self, line: PhysAddr) -> bool {
        self.get(line).is_some()
    }

    /// Whether any held line falls within `[addr, addr+len)`.
    pub fn overlaps(&self, addr: PhysAddr, len: u64) -> bool {
        let lo = addr.line_base().0;
        let hi = addr.0 + len;
        self.entries.iter().any(|e| e.line.0 < hi && e.line.0 + 64 > lo)
    }

    /// Insert a write, merging with an existing entry for the same line.
    ///
    /// Returns `false` (and changes nothing) if the queue is full and the
    /// line is not already held.
    pub fn insert(&mut self, line: PhysAddr, data: LineData) -> bool {
        let line = line.line_base();
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.data = data;
            self.merges += 1;
            return true;
        }
        if self.is_full() {
            return false;
        }
        self.entries.push(BpqEntry { line, data });
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Remove and return entries for which `ready` holds (release to
    /// memory, Fig. 9 state 4: "the BPQ writes Si to memory").
    pub fn take_ready(&mut self, mut ready: impl FnMut(PhysAddr) -> bool) -> Vec<BpqEntry> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if ready(self.entries[i].line) {
                out.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        self.releases += out.len() as u64;
        out
    }

    /// Iterate over held lines.
    pub fn iter(&self) -> impl Iterator<Item = &BpqEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(x: u64) -> PhysAddr {
        PhysAddr(x)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut q = Bpq::new(2);
        assert!(q.insert(pa(0x1000), LineData::splat(1)));
        assert_eq!(q.get(pa(0x1020)), Some(&LineData::splat(1)), "any addr in line");
        assert!(q.contains(pa(0x103f)));
        assert!(!q.contains(pa(0x1040)));
    }

    #[test]
    fn merge_overwrites_same_line() {
        let mut q = Bpq::new(1);
        assert!(q.insert(pa(0x1000), LineData::splat(1)));
        assert!(q.insert(pa(0x1000), LineData::splat(2)), "same line merges even when full");
        assert_eq!(q.get(pa(0x1000)), Some(&LineData::splat(2)));
        assert_eq!(q.merges, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn full_queue_rejects_new_lines() {
        let mut q = Bpq::new(1);
        assert!(q.insert(pa(0x1000), LineData::ZERO));
        assert!(!q.insert(pa(0x2000), LineData::ZERO));
        assert!(q.is_full());
    }

    #[test]
    fn take_ready_releases_selectively() {
        let mut q = Bpq::new(4);
        q.insert(pa(0x1000), LineData::splat(1));
        q.insert(pa(0x2000), LineData::splat(2));
        q.insert(pa(0x3000), LineData::splat(3));
        let out = q.take_ready(|l| l.0 != 0x2000);
        assert_eq!(out.len(), 2);
        assert_eq!(q.len(), 1);
        assert!(q.contains(pa(0x2000)));
        assert_eq!(q.releases, 2);
    }

    #[test]
    fn overlaps_checks_line_granularity() {
        let mut q = Bpq::new(4);
        q.insert(pa(0x1000), LineData::ZERO);
        assert!(q.overlaps(pa(0x1030), 8));
        assert!(q.overlaps(pa(0x0fff), 2), "range ending inside the line");
        assert!(!q.overlaps(pa(0x1040), 64));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = Bpq::new(8);
        for i in 0..5u64 {
            q.insert(pa(i * 64), LineData::ZERO);
        }
        q.take_ready(|_| true);
        assert_eq!(q.peak, 5);
        assert!(q.is_empty());
    }
}
