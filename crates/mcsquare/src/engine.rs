//! The (MC)² memory-controller extension: implements §III-B's four
//! tracked-access cases, destination-line reconstruction with bouncing,
//! the BPQ protocol, asynchronous CTT draining, and broadcast-consistent
//! CTT updates — as a [`CopyEngine`] plugged into `mcs-sim`'s memory
//! controllers.
//!
//! One engine instance serves every controller (the paper keeps per-MC
//! CTTs coherent by snooping broadcast messages; we model the
//! synchronized tables as one logical table and charge the broadcast cost
//! to the interconnect latencies of the packets involved).

use crate::bpq::Bpq;
use crate::config::McSquareConfig;
use crate::ctt::{Ctt, CttError, Fragment};
use crate::ranges::ByteRange;
use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcs_sim::data::{LineData, SparseMem};
use mcs_sim::dram::channel_of;
use mcs_sim::fault::{domain, FaultPlan, FaultStream};
use mcs_sim::engine::{CopyEngine, EngineIo, Verdict};
use mcs_sim::packet::{BounceInfo, FreeDesc, LazyDesc, MemCmd, Node, Packet};
use mcs_sim::Cycle;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Why a destination line is being reconstructed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ReconCause {
    /// A demand (or prefetch) read of the destination arrived at the MC.
    Demand,
    /// A write to a source line forced the copy (BPQ flush).
    SrcFlush,
    /// The asynchronous drain engine is freeing the entry.
    Drain,
}

#[derive(Debug)]
enum ReconState {
    /// Fragments outstanding.
    Filling,
    /// Data complete; a `LazyDestWrite` is in flight to the destination's
    /// controller, which will untrack the line on arrival.
    AwaitingDestWrite,
}

/// An in-flight reconstruction of one destination cacheline.
#[derive(Debug)]
struct Recon {
    /// Controller executing the reconstruction.
    mcid: usize,
    buf: LineData,
    outstanding: u32,
    waiting: Vec<Packet>,
    cause: ReconCause,
    state: ReconState,
    /// A fresh destination write arrived mid-flight: serve waiting readers
    /// from `buf` (legal: they ordered before the write) but do not write
    /// back or untrack.
    superseded: bool,
    /// A BPQ entry depends on this copy completing: the destination write
    /// must happen even if the WPQ is busy.
    force_write: bool,
    /// Source lines pinned by this reconstruction.
    pinned: Vec<PhysAddr>,
    /// A fragment was produced by a poisoned DRAM read: the assembled
    /// line (responses, destination writebacks) carries poison onward.
    poisoned: bool,
}

#[derive(Debug)]
enum TagKind {
    /// Local fragment read for a reconstruction keyed by dest line.
    Frag { dest_line: PhysAddr, dest_off: u32, len: u32, src_off: u32 },
    /// Serving a remote controller's bounce request.
    BounceServe { info: BounceInfo },
}

/// An active drain job: frees one CTT entry line by line.
#[derive(Debug)]
struct DrainJob {
    range: ByteRange,
    cursor: u64,
}

/// Deliberately disabled degradation paths, for chaos-harness mutants:
/// each variant makes the engine *wrong* in a way the differential
/// oracle must catch. Production code always runs with `None`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ChaosMutation {
    /// Fully correct engine.
    #[default]
    None,
    /// When a CTT-drop fault fires, lose the metadata silently instead of
    /// repairing by eager re-copy — destination reads then return stale
    /// memory.
    DropWithoutRepair,
}

/// Fault state for the engine-level fault classes of a
/// [`FaultPlan`]: forced CTT flushes and dropped CTT entries, both
/// rolled once per successful CTT insert.
#[derive(Debug)]
struct EngineFault {
    plan: FaultPlan,
    flush: FaultStream,
    drop: FaultStream,
    pick: FaultStream,
}

/// Counters (exported into `RunStats::engine`).
#[derive(Debug, Default, Clone)]
struct Counters {
    bounces_sent: u64,
    bounce_serves: u64,
    recon_demand: u64,
    recon_src_flush: u64,
    recon_drain: u64,
    dest_writebacks: u64,
    writebacks_rejected: u64,
    reads_from_bpq: u64,
    bpq_full_retries: u64,
    ctt_full_retries: u64,
    flush_retries: u64,
    drained_entries: u64,
    lazy_dest_writes: u64,
    mclazy_acked: u64,
    forced_flushes: u64,
    dropped_entries: u64,
    eager_fallbacks: u64,
}

/// The (MC)² engine.
#[derive(Debug)]
pub struct McSquareEngine {
    cfg: McSquareConfig,
    channels: usize,
    ctt: Ctt,
    bpqs: Vec<Bpq>,
    recons: HashMap<u64, Recon>,
    /// Source lines with in-flight reconstruction reads: line → count.
    pins: HashMap<u64, usize>,
    /// MCLAZY broadcasts still arming: packet id → controllers whose copy
    /// has not yet arrived. The entry is inserted (and acked) only when
    /// the last controller processes its copy, so every write queued ahead
    /// of the broadcast anywhere has already been applied (§III-B1).
    arming: HashMap<u64, u32>,
    tags: HashMap<u64, TagKind>,
    next_tag: u64,
    drains: Vec<Vec<DrainJob>>,
    n: Counters,
    /// Injected engine faults (`None` ⇔ empty plan: zero-cost hooks).
    fault: Option<EngineFault>,
    mutation: ChaosMutation,
    /// Current cycle, cached at the trait entry points so private
    /// methods can timestamp trace events without threading `now`
    /// through every call.
    #[cfg(feature = "trace")]
    now: Cycle,
    /// BPQ entries `(mcid, line)` that were releasable at the previous
    /// `validate` call. `bpq_release_tick` runs every cycle, so an entry
    /// still releasable a full validation period later is stuck.
    #[cfg(feature = "check-invariants")]
    releasable_memo: std::collections::HashSet<(usize, u64)>,
}

impl McSquareEngine {
    /// Create an engine for a system with `channels` memory controllers.
    pub fn new(cfg: McSquareConfig, channels: usize) -> McSquareEngine {
        McSquareEngine {
            ctt: Ctt::new(cfg.ctt_entries),
            bpqs: (0..channels).map(|_| Bpq::new(cfg.bpq_entries)).collect(),
            drains: (0..channels).map(|_| Vec::new()).collect(),
            recons: HashMap::new(),
            pins: HashMap::new(),
            arming: HashMap::new(),
            tags: HashMap::new(),
            next_tag: 1,
            channels,
            cfg,
            n: Counters::default(),
            fault: None,
            mutation: ChaosMutation::None,
            #[cfg(feature = "trace")]
            now: 0,
            #[cfg(feature = "check-invariants")]
            releasable_memo: std::collections::HashSet::new(),
        }
    }

    /// Create an engine with the engine-level fault classes of `plan`
    /// armed (forced CTT flushes, dropped CTT entries).
    pub fn with_faults(cfg: McSquareConfig, channels: usize, plan: &FaultPlan) -> McSquareEngine {
        let mut e = McSquareEngine::new(cfg, channels);
        if !plan.is_empty() {
            e.fault = Some(EngineFault {
                plan: plan.clone(),
                flush: plan.stream(domain::CTT_FLUSH, 0),
                drop: plan.stream(domain::CTT_DROP, 0),
                pick: plan.stream(domain::CTT_PICK, 0),
            });
        }
        e
    }

    /// Arm a chaos mutant (test harnesses only — see [`ChaosMutation`]).
    pub fn set_chaos_mutation(&mut self, m: ChaosMutation) {
        self.mutation = m;
    }

    /// Access the CTT (tests and instrumentation).
    pub fn ctt(&self) -> &Ctt {
        &self.ctt
    }

    fn mc_of(&self, addr: PhysAddr) -> usize {
        channel_of(addr, self.channels)
    }

    fn pin(&mut self, line: PhysAddr) {
        *self.pins.entry(line.line_base().0).or_insert(0) += 1;
    }

    fn unpin(&mut self, line: PhysAddr) {
        match self.pins.entry(line.line_base().0) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(_) => unreachable!("unpin of unpinned line {line:?}"),
        }
    }

    fn pinned_overlap(&self, addr: PhysAddr, len: u64) -> bool {
        mcs_sim::addr::lines_of(addr, len).any(|l| self.pins.contains_key(&l.0))
    }

    fn bpq_overlap_any(&self, addr: PhysAddr, len: u64) -> bool {
        self.bpqs.iter().any(|b| b.overlaps(addr, len))
    }

    /// Start reconstructing destination line `line` at controller `mcid`
    /// (or join an existing reconstruction). Returns whether a new
    /// reconstruction was started.
    fn start_recon(
        &mut self,
        mcid: usize,
        line: PhysAddr,
        cause: ReconCause,
        reader: Option<Packet>,
        io: &mut EngineIo,
    ) -> bool {
        let line = line.line_base();
        if let Some(r) = self.recons.get_mut(&line.0) {
            if cause == ReconCause::SrcFlush {
                r.force_write = true;
            }
            match (&r.state, reader) {
                (ReconState::Filling, Some(p)) => r.waiting.push(p),
                (ReconState::AwaitingDestWrite, Some(p)) => {
                    // Data already assembled: answer immediately.
                    let mut resp = p.make_read_resp(r.buf);
                    resp.poisoned = r.poisoned;
                    io.send(resp);
                }
                (_, None) => {}
            }
            return false;
        }

        let frags = self.ctt.lookup_line(line);
        self.start_recon_with(frags, mcid, line, cause, reader, io)
    }

    /// Start a reconstruction from an explicit fragment list. Used by
    /// [`McSquareEngine::start_recon`] (fragments straight from the CTT)
    /// and by dropped-entry repair, where the fragments are captured
    /// *before* the faulty metadata loss and the entry is already gone.
    fn start_recon_with(
        &mut self,
        frags: Vec<Fragment>,
        mcid: usize,
        line: PhysAddr,
        cause: ReconCause,
        reader: Option<Packet>,
        io: &mut EngineIo,
    ) -> bool {
        debug_assert!(!frags.is_empty(), "recon of untracked line {line:?}");
        debug_assert!(!self.recons.contains_key(&line.0), "recon already in flight");
        match cause {
            ReconCause::Demand => self.n.recon_demand += 1,
            ReconCause::SrcFlush => self.n.recon_src_flush += 1,
            ReconCause::Drain => self.n.recon_drain += 1,
        }
        #[cfg(feature = "trace")]
        mcs_trace::emit(mcs_trace::Event::ReconStart {
            mc: mcid as u16,
            line: line.0,
            cause: match cause {
                ReconCause::Demand => "demand",
                ReconCause::SrcFlush => "src_flush",
                ReconCause::Drain => "drain",
            },
            at: self.now,
        });

        // Plan sub-fragments: tracked bytes come from their sources
        // (splitting at source-line boundaries — the two-bounce case for
        // misaligned copies, §III-B2), gaps come from the destination
        // line's own memory.
        let mut plan: Vec<(u32, u32, PhysAddr)> = Vec::new(); // (dest_off, len, src)
        let mut cursor = line.0;
        let end = line.0 + CACHELINE;
        for Fragment { dst, len, src } in &frags {
            if dst.0 > cursor {
                plan.push(((cursor - line.0) as u32, (dst.0 - cursor) as u32, PhysAddr(cursor)));
            }
            // Split the tracked fragment at source line boundaries.
            let mut off = 0u64;
            while off < *len {
                let s = src.add(off);
                let take = (*len - off).min(CACHELINE - s.line_off());
                plan.push(((dst.0 + off - line.0) as u32, take as u32, s));
                off += take;
            }
            cursor = dst.0 + len;
        }
        if cursor < end {
            plan.push(((cursor - line.0) as u32, (end - cursor) as u32, PhysAddr(cursor)));
        }

        let mut recon = Recon {
            mcid,
            buf: LineData::ZERO,
            outstanding: plan.len() as u32,
            waiting: reader.into_iter().collect(),
            cause,
            state: ReconState::Filling,
            superseded: false,
            force_write: cause == ReconCause::SrcFlush,
            pinned: Vec::new(),
            poisoned: false,
        };

        for (dest_off, len, src) in plan {
            let src_line = src.line_base();
            recon.pinned.push(src_line);
            let src_mc = self.mc_of(src_line);
            if src_mc == mcid {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.tags.insert(
                    tag,
                    TagKind::Frag {
                        dest_line: line,
                        dest_off,
                        len,
                        src_off: src.line_off() as u32,
                    },
                );
                io.dram_read(tag, src_line);
            } else {
                self.n.bounces_sent += 1;
                #[cfg(feature = "trace")]
                mcs_trace::emit(mcs_trace::Event::Bounce {
                    mc: mcid as u16,
                    src_mc: src_mc as u16,
                    at: self.now,
                });
                let info = BounceInfo { reply_to: mcid, token: line.0, src, len, dest_off };
                let pkt = Packet {
                    id: mcs_sim::packet::fresh_id(),
                    cmd: MemCmd::BounceRead(info),
                    addr: src_line,
                    data: None,
                    dest: Node::Mc(src_mc),
                    is_prefetch: false,
                    core: None,
                    needs_ack: false,
                    poisoned: false,
                };
                io.send_after(pkt, self.cfg.ctt_latency);
            }
        }
        for l in recon.pinned.clone() {
            self.pin(l);
        }
        self.recons.insert(line.0, recon);
        true
    }

    /// A fragment landed: fill the buffer and finish if complete.
    fn fragment_done(
        &mut self,
        line: PhysAddr,
        dest_off: u32,
        bytes: &[u8],
        poisoned: bool,
        io: &mut EngineIo,
    ) {
        let Some(r) = self.recons.get_mut(&line.0) else {
            return; // reconstruction superseded and discarded
        };
        r.buf.write(dest_off as usize, bytes);
        r.poisoned |= poisoned;
        r.outstanding -= 1;
        if r.outstanding == 0 {
            self.finish_recon(line, io);
        }
    }

    fn finish_recon(&mut self, line: PhysAddr, io: &mut EngineIo) {
        let r = self.recons.get_mut(&line.0).expect("recon present");
        debug_assert!(matches!(r.state, ReconState::Filling));
        // Answer waiting readers (§III-B2 step 3: the packet is sent back
        // to the core as if it was read from the destination).
        let buf = r.buf;
        let poisoned = r.poisoned;
        for p in std::mem::take(&mut r.waiting) {
            let mut resp = p.make_read_resp(buf);
            resp.poisoned = poisoned;
            io.send(resp);
        }
        // Unpin sources: the copy data is captured.
        let pinned = std::mem::take(&mut r.pinned);
        let (cause, superseded, force_write, mcid) =
            (r.cause, r.superseded, r.force_write, r.mcid);
        #[cfg(feature = "trace")]
        mcs_trace::emit(mcs_trace::Event::ReconEnd {
            mc: mcid as u16,
            line: line.0,
            at: self.now,
        });
        for l in pinned {
            self.unpin(l);
        }

        if superseded {
            self.recons.remove(&line.0);
            return;
        }

        // Writeback decision. Demand reconstructions skip the write when
        // the WPQ is contended (§III-B2 "reducing bandwidth contention")
        // or when the ablation disables it; flushes and drains must write.
        let must_write = force_write || cause != ReconCause::Demand;
        let want_write = self.cfg.writeback_after_bounce && io.wpq_frac() < self.cfg.wpq_reject_frac;
        if !(must_write || want_write) {
            self.n.writebacks_rejected += 1;
            self.recons.remove(&line.0);
            return;
        }

        self.n.dest_writebacks += 1;
        let dest_mc = self.mc_of(line);
        if dest_mc == mcid {
            self.ctt.remove_dst(line, CACHELINE);
            if poisoned {
                io.dram_write_poisoned(line, buf);
            } else {
                io.dram_write(line, buf);
            }
            self.recons.remove(&line.0);
        } else {
            // The entry is untracked when the write arrives at the owning
            // controller, so a racing read still bounces correctly.
            self.n.lazy_dest_writes += 1;
            let pkt = Packet {
                id: mcs_sim::packet::fresh_id(),
                cmd: MemCmd::LazyDestWrite,
                addr: line,
                data: Some(buf),
                dest: Node::Mc(dest_mc),
                is_prefetch: false,
                core: None,
                needs_ack: false,
                poisoned,
            };
            io.send(pkt);
            let r = self.recons.get_mut(&line.0).expect("recon present");
            r.state = ReconState::AwaitingDestWrite;
        }
    }

    fn on_mclazy(&mut self, mcid: usize, pkt: Packet, desc: LazyDesc, io: &mut EngineIo) -> Verdict {
        // Broadcast arming: consume copies until the last controller's
        // arrives; only then is the table updated.
        let rem = self.arming.entry(pkt.id).or_insert(self.channels as u32);
        if *rem > 0 {
            *rem -= 1;
        }
        if *rem > 0 {
            return Verdict::Consumed;
        }
        // Stall while any BPQ holds lines of either buffer (Fig. 9:
        // "prospective copies involving S1 or S2 are stalled"), or while
        // in-flight reconstructions still read lines the new copy will
        // redefine.
        if self.bpq_overlap_any(desc.src, desc.size)
            || self.bpq_overlap_any(desc.dst, desc.size)
            || self.pinned_overlap(desc.dst, desc.size)
        {
            self.n.bpq_full_retries += 1;
            return Verdict::Retry(pkt);
        }
        #[cfg(feature = "trace")]
        let collapses_pre = self.ctt.stats.chain_collapses;
        match self.ctt.try_insert(desc.dst, desc.src, desc.size) {
            Ok(()) => {
                #[cfg(feature = "trace")]
                {
                    mcs_trace::emit(mcs_trace::Event::CttInsert {
                        mc: mcid as u16,
                        dst: desc.dst.0,
                        lines: mcs_sim::addr::lines_of(desc.dst, desc.size).count() as u32,
                        at: self.now,
                    });
                    let collapsed = self.ctt.stats.chain_collapses - collapses_pre;
                    if collapsed > 0 {
                        mcs_trace::emit(mcs_trace::Event::CttCollapse {
                            mc: mcid as u16,
                            n: collapsed as u32,
                            at: self.now,
                        });
                    }
                }
                // Destination lines being reconstructed are redefined.
                for l in mcs_sim::addr::lines_of(desc.dst, desc.size) {
                    if let Some(r) = self.recons.get_mut(&l.0) {
                        r.superseded = true;
                    }
                }
                self.arming.remove(&pkt.id);
                self.n.mclazy_acked += 1;
                let ack = Packet {
                    id: pkt.id,
                    cmd: MemCmd::MclazyAck,
                    addr: pkt.addr,
                    data: None,
                    dest: Node::Llc,
                    is_prefetch: false,
                    core: pkt.core,
                    needs_ack: false,
                    poisoned: false,
                };
                io.send(ack);
                self.inject_post_insert_faults(mcid, io);
                Verdict::Consumed
            }
            Err(CttError::Full) => {
                self.n.ctt_full_retries += 1;
                #[cfg(feature = "trace")]
                mcs_trace::emit(mcs_trace::Event::CttFull { mc: mcid as u16, at: self.now });
                Verdict::Retry(pkt)
            }
            Err(CttError::NeedsFlush(lines)) => {
                // Copy out the dependent destinations, then retry.
                self.n.flush_retries += 1;
                #[cfg(feature = "trace")]
                mcs_trace::emit(mcs_trace::Event::CttFlush {
                    mc: mcid as u16,
                    lines: lines.len() as u32,
                    at: self.now,
                });
                for l in lines {
                    if self.ctt.covers_dst(l, CACHELINE) {
                        self.start_recon(mcid, l, ReconCause::SrcFlush, None, io);
                    }
                }
                Verdict::Retry(pkt)
            }
        }
    }

    fn on_read(&mut self, mcid: usize, pkt: Packet, io: &mut EngineIo) -> Verdict {
        let line = pkt.addr.line_base();
        // Reads of BPQ-held source lines are serviced from the queue.
        if let Some(d) = self.bpqs[mcid].get(line) {
            self.n.reads_from_bpq += 1;
            #[cfg(feature = "trace")]
            mcs_trace::emit(mcs_trace::Event::BpqHit {
                mc: mcid as u16,
                line: line.0,
                at: self.now,
            });
            let data = *d;
            io.send(pkt.make_read_resp(data));
            return Verdict::Consumed;
        }
        // Join an in-flight reconstruction if one exists.
        if self.recons.contains_key(&line.0) {
            self.start_recon(mcid, line, ReconCause::Demand, Some(pkt), io);
            return Verdict::Consumed;
        }
        if !self.ctt.covers_dst(line, CACHELINE) {
            return Verdict::Pass(pkt); // includes reads from source: §III-B2
        }
        self.start_recon(mcid, line, ReconCause::Demand, Some(pkt), io);
        Verdict::Consumed
    }

    fn on_write(&mut self, mcid: usize, pkt: Packet, io: &mut EngineIo) -> Verdict {
        let line = pkt.addr.line_base();
        let is_lazy_dest = pkt.cmd == MemCmd::LazyDestWrite;

        // Write to destination: memory will hold fresh data — untrack
        // (§III-B2 "write to destination").
        if self.ctt.covers_dst(line, CACHELINE) {
            self.ctt.remove_dst(line, CACHELINE);
            if let Some(r) = self.recons.get_mut(&line.0) {
                match r.state {
                    // A fresh write beats an in-flight reconstruction.
                    ReconState::Filling => r.superseded = true,
                    // Our own completed copy arriving: drop the recon.
                    ReconState::AwaitingDestWrite => {
                        self.recons.remove(&line.0);
                    }
                }
            }
            return Verdict::Pass(pkt);
        }
        if is_lazy_dest {
            // Entry already untracked (e.g. by an intervening write).
            if let Some(r) = self.recons.get(&line.0) {
                if matches!(r.state, ReconState::AwaitingDestWrite) {
                    self.recons.remove(&line.0);
                }
            }
            return Verdict::Pass(pkt);
        }

        // Write to source (or to a line an in-flight reconstruction still
        // reads): hold in the BPQ until dependent copies complete
        // (§III-B2 "write to source").
        let deps = self.ctt.src_overlapping(line, CACHELINE);
        if !deps.is_empty() || self.pins.contains_key(&line.0) || self.bpqs[mcid].contains(line) {
            let data = pkt.data.expect("write carries data");
            if !self.bpqs[mcid].insert(line, data) {
                self.n.bpq_full_retries += 1;
                return Verdict::Retry(pkt);
            }
            if pkt.needs_ack {
                io.send(pkt.make_write_ack());
            }
            // Flush every destination line depending on this source line.
            let mut dest_lines: Vec<PhysAddr> = Vec::new();
            for (dst_sub, _) in deps {
                for l in mcs_sim::addr::lines_of(PhysAddr(dst_sub.start), dst_sub.len()) {
                    if dest_lines.last() != Some(&l) {
                        dest_lines.push(l);
                    }
                }
            }
            dest_lines.dedup();
            for l in dest_lines {
                self.start_recon(mcid, l, ReconCause::SrcFlush, None, io);
            }
            return Verdict::Consumed;
        }
        Verdict::Pass(pkt)
    }

    /// Roll the engine-level fault classes once per successful CTT insert
    /// (per-event, so the schedule is fast-forward safe):
    ///
    /// * **forced flush** — a CTT entry must be drained eagerly even below
    ///   the occupancy threshold (models e.g. a metadata scrub);
    /// * **dropped entry** — one tracked destination line's metadata is
    ///   lost. The engine *detects* the loss and degrades gracefully: it
    ///   captures the fragments first and repairs by eager re-copy, so
    ///   memory stays correct (unless a [`ChaosMutation`] disables the
    ///   repair to exercise the chaos harness).
    fn inject_post_insert_faults(&mut self, mcid: usize, io: &mut EngineIo) {
        let Some(f) = self.fault.as_mut() else {
            return;
        };
        let do_flush = f.flush.roll(f.plan.ctt_flush_rate);
        let drop_draw = f.drop.roll(f.plan.ctt_drop_rate).then(|| f.pick.next_u64());

        if do_flush {
            let exclude: Vec<ByteRange> = self.drains.iter().flatten().map(|d| d.range).collect();
            if let Some((range, _)) = self.ctt.smallest_entry(|_| true, &exclude) {
                let cursor = PhysAddr(range.start).line_base().0;
                self.drains[mcid].push(DrainJob { range, cursor });
                self.n.forced_flushes += 1;
                io.fault_forced_flushes += 1;
            }
        }

        if let Some(draw) = drop_draw {
            // Victim: a tracked destination line with no reconstruction in
            // flight (an in-flight recon already owns the fragments).
            let cands: Vec<PhysAddr> = self
                .ctt
                .iter()
                .map(|(r, _)| PhysAddr(r.start).line_base())
                .filter(|l| !self.recons.contains_key(&l.0))
                .collect();
            if !cands.is_empty() {
                let line = cands[(draw % cands.len() as u64) as usize];
                let frags = self.ctt.lookup_line(line);
                self.ctt.remove_dst(line, CACHELINE);
                self.n.dropped_entries += 1;
                if self.mutation == ChaosMutation::DropWithoutRepair {
                    // Mutant: metadata silently lost, no repair. Reads of
                    // `line` now return stale memory — the differential
                    // oracle must flag this.
                } else {
                    self.n.eager_fallbacks += 1;
                    io.fault_eager_fallbacks += 1;
                    self.start_recon_with(frags, mcid, line, ReconCause::SrcFlush, None, io);
                }
            }
        }
    }

    fn drain_tick(&mut self, mcid: usize, io: &mut EngineIo) {
        /// Lines one drain job keeps in flight. Kept small so the total
        /// outstanding asynchronous copies per controller is governed by
        /// `parallel_free` and never swamps the read queue — the paper
        /// "limits the outstanding asynchronous copies per memory
        /// controller, restricting the memory bandwidth interference"
        /// (§V-C).
        const DRAIN_WINDOW: usize = 2;
        // Launch new jobs while above the threshold (§III-A1: start lazy
        // copying at 50% occupancy, smallest entries first, bounded
        // parallelism per controller).
        if self.ctt.occupancy() >= self.cfg.drain_threshold {
            while self.drains[mcid].len() < self.cfg.parallel_free {
                let exclude: Vec<ByteRange> = self
                    .drains
                    .iter()
                    .flatten()
                    .map(|d| d.range)
                    .collect();
                // Any controller may orchestrate a drain (page-aligned
                // buffers would otherwise all land on channel 0's
                // controller); the line reads and writes still route to
                // their owning channels.
                let Some((range, _)) = self.ctt.smallest_entry(|_| true, &exclude) else {
                    break;
                };
                // Chain collapse can leave byte-granular entry bounds; the
                // drain walks whole destination lines.
                let cursor = PhysAddr(range.start).line_base().0;
                self.drains[mcid].push(DrainJob { range, cursor });
            }
        }
        let mut j = 0;
        while j < self.drains[mcid].len() {
            // Advance the cursor past lines already untracked and settled.
            loop {
                let job = &self.drains[mcid][j];
                if job.cursor >= job.range.end {
                    break;
                }
                let line = PhysAddr(job.cursor).line_base();
                if !self.ctt.covers_dst(line, CACHELINE) && !self.recons.contains_key(&line.0)
                {
                    self.drains[mcid][j].cursor = line.0 + CACHELINE;
                } else {
                    break;
                }
            }
            let (cur, end) = {
                let job = &self.drains[mcid][j];
                (job.cursor, job.range.end)
            };
            if cur >= end {
                self.drains[mcid].remove(j);
                self.n.drained_entries += 1;
                continue;
            }
            // Keep up to DRAIN_WINDOW line copies in flight for this job.
            let mut inflight = 0;
            let mut line = PhysAddr(cur).line_base().0;
            while line < end && inflight < DRAIN_WINDOW {
                let l = PhysAddr(line);
                if self.recons.contains_key(&l.0) {
                    inflight += 1;
                } else if self.ctt.covers_dst(l, CACHELINE) {
                    self.start_recon(mcid, l, ReconCause::Drain, None, io);
                    inflight += 1;
                }
                line += CACHELINE;
            }
            j += 1;
        }

    }

    fn bpq_release_tick(&mut self, mcid: usize, io: &mut EngineIo) {
        if self.bpqs[mcid].is_empty() {
            return;
        }
        let ctt = &self.ctt;
        let pins = &self.pins;
        let ready = self.bpqs[mcid].take_ready(|line| {
            !pins.contains_key(&line.0) && ctt.src_overlapping(line, CACHELINE).is_empty()
        });
        #[cfg(feature = "trace")]
        if !ready.is_empty() {
            mcs_trace::emit(mcs_trace::Event::BpqDrain {
                mc: mcid as u16,
                lines: ready.len() as u32,
                at: self.now,
            });
        }
        for e in ready {
            io.dram_write(e.line, e.data);
        }
    }
}

impl CopyEngine for McSquareEngine {
    fn on_arrive(&mut self, _now: Cycle, mcid: usize, pkt: Packet, io: &mut EngineIo) -> Verdict {
        #[cfg(feature = "trace")]
        {
            self.now = _now;
        }
        match pkt.cmd {
            MemCmd::Mclazy(desc) => self.on_mclazy(mcid, pkt.clone(), desc, io),
            MemCmd::Mcfree(FreeDesc { addr, size }) => {
                self.ctt.free_contained(addr, size);
                Verdict::Consumed
            }
            MemCmd::ReadReq => self.on_read(mcid, pkt, io),
            MemCmd::WriteReq | MemCmd::LazyDestWrite => self.on_write(mcid, pkt, io),
            MemCmd::BounceRead(info) => {
                // Serve a remote reconstruction: read the source line from
                // *memory* (not the BPQ — the held write is newer than the
                // copy point, Fig. 9 state 3).
                self.n.bounce_serves += 1;
                let tag = self.next_tag;
                self.next_tag += 1;
                self.tags.insert(tag, TagKind::BounceServe { info });
                io.dram_read(tag, info.src.line_base());
                Verdict::Consumed
            }
            MemCmd::BounceResp(info) => {
                let data = pkt.data.expect("bounce response carries data");
                let bytes = data.read(info.dest_off as usize, info.len as usize).to_vec();
                self.fragment_done(PhysAddr(info.token), info.dest_off, &bytes, pkt.poisoned, io);
                Verdict::Consumed
            }
            _ => Verdict::Pass(pkt),
        }
    }

    fn on_dram_read(
        &mut self,
        _now: Cycle,
        _mcid: usize,
        tag: u64,
        _addr: PhysAddr,
        data: LineData,
        poisoned: bool,
        io: &mut EngineIo,
    ) {
        #[cfg(feature = "trace")]
        {
            self.now = _now;
        }
        match self.tags.remove(&tag).expect("unknown engine tag") {
            TagKind::Frag { dest_line, dest_off, len, src_off } => {
                let bytes = data.read(src_off as usize, len as usize).to_vec();
                self.fragment_done(dest_line, dest_off, &bytes, poisoned, io);
            }
            TagKind::BounceServe { info } => {
                // Pack the fragment at its destination offset and reply.
                let mut payload = LineData::ZERO;
                let off = info.src.line_off() as usize;
                payload.write(info.dest_off as usize, data.read(off, info.len as usize));
                let pkt = Packet {
                    id: mcs_sim::packet::fresh_id(),
                    cmd: MemCmd::BounceResp(info),
                    addr: info.src.line_base(),
                    data: Some(payload),
                    dest: Node::Mc(info.reply_to),
                    is_prefetch: false,
                    core: None,
                    needs_ack: false,
                    poisoned,
                };
                io.send(pkt);
            }
        }
    }

    fn tick(&mut self, _now: Cycle, mcid: usize, io: &mut EngineIo) {
        #[cfg(feature = "trace")]
        {
            self.now = _now;
        }
        self.bpq_release_tick(mcid, io);
        self.drain_tick(mcid, io);
    }

    fn needs_tick(&self, mcid: usize) -> bool {
        // Mirrors what tick() would do for this controller: release BPQ
        // entries, advance in-flight drain jobs, or launch new ones when
        // CTT occupancy is at the drain threshold.
        !self.bpqs[mcid].is_empty()
            || !self.drains[mcid].is_empty()
            || self.ctt.occupancy() >= self.cfg.drain_threshold
    }

    fn busy(&self) -> bool {
        !self.recons.is_empty()
            || !self.arming.is_empty()
            || !self.tags.is_empty()
            || self.bpqs.iter().any(|b| !b.is_empty())
            || self.drains.iter().any(|d| !d.is_empty())
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let c = &self.n;
        let s = &self.ctt.stats;
        vec![
            ("ctt_inserts".into(), s.inserts),
            ("ctt_full_rejects".into(), s.full_rejects),
            ("ctt_chain_collapses".into(), s.chain_collapses),
            ("ctt_peak_entries".into(), s.peak_segments),
            ("ctt_freed_entries".into(), s.freed_entries),
            ("ctt_live_entries".into(), self.ctt.len() as u64),
            ("ctt_hw_entries".into(), self.ctt.hw_entries() as u64),
            ("bounces_sent".into(), c.bounces_sent),
            ("bounce_serves".into(), c.bounce_serves),
            ("recon_demand".into(), c.recon_demand),
            ("recon_src_flush".into(), c.recon_src_flush),
            ("recon_drain".into(), c.recon_drain),
            ("dest_writebacks".into(), c.dest_writebacks),
            ("writebacks_rejected".into(), c.writebacks_rejected),
            ("reads_from_bpq".into(), c.reads_from_bpq),
            ("bpq_full_retries".into(), c.bpq_full_retries),
            ("ctt_full_retries".into(), c.ctt_full_retries),
            ("flush_retries".into(), c.flush_retries),
            ("drained_entries".into(), c.drained_entries),
            ("lazy_dest_writes".into(), c.lazy_dest_writes),
            ("mclazy_acked".into(), c.mclazy_acked),
            ("bpq_peak".into(), self.bpqs.iter().map(|b| b.peak as u64).max().unwrap_or(0)),
            ("forced_flushes".into(), c.forced_flushes),
            ("dropped_entries".into(), c.dropped_entries),
            ("eager_fallbacks".into(), c.eager_fallbacks),
        ]
    }

    /// The *materialized* value of `line`: BPQ-held source writes first
    /// (they are newer than memory), then CTT-tracked fragments overlaid
    /// on the destination line's backing memory. `None` for untracked
    /// lines — memory is already authoritative there.
    fn peek_line(&self, mem: &SparseMem, line: PhysAddr) -> Option<LineData> {
        let line = line.line_base();
        for b in &self.bpqs {
            if let Some(d) = b.get(line) {
                return Some(*d);
            }
        }
        let frags = self.ctt.lookup_line(line);
        if frags.is_empty() {
            return None;
        }
        let mut buf = mem.read_line(line);
        for Fragment { dst, len, src } in frags {
            let bytes = mem.read_bytes(src, len as usize);
            buf.write((dst.0 - line.0) as usize, &bytes);
        }
        Some(buf)
    }

    /// Audit the engine's internal bookkeeping (the `check-invariants`
    /// feature): CTT structural invariants, pin/reconstruction agreement,
    /// tag liveness, arming bounds, and BPQ forward progress.
    #[cfg(feature = "check-invariants")]
    fn validate(&mut self, now: Cycle) -> Result<(), String> {
        self.ctt.check_invariants()?;

        // The pin multiset is exactly the union of in-flight
        // reconstructions' pinned source lines (unpinned when the copy
        // data is captured). A mismatch means a leaked or double-freed
        // pin, which would wedge BPQ releases or MCLAZY arming forever.
        let mut want: HashMap<u64, usize> = HashMap::new();
        for r in self.recons.values() {
            for l in &r.pinned {
                *want.entry(l.0).or_insert(0) += 1;
            }
        }
        if want != self.pins {
            return Err(format!(
                "pin ledger disagrees with reconstructions at cycle {now}: \
                 pins {:?} vs pinned-by-recons {:?}",
                self.pins, want
            ));
        }

        for (line, r) in &self.recons {
            if matches!(r.state, ReconState::Filling) {
                if r.outstanding == 0 {
                    return Err(format!(
                        "recon of line {line:#x} is Filling with zero \
                         outstanding fragments at cycle {now}"
                    ));
                }
                if r.outstanding as usize > r.pinned.len() {
                    return Err(format!(
                        "recon of line {line:#x} has more outstanding \
                         fragments ({}) than pinned sources ({}) at cycle {now}",
                        r.outstanding,
                        r.pinned.len()
                    ));
                }
            }
        }

        // Every local-fragment tag must point at a live Filling recon;
        // a dangling tag means the DRAM read's result will be dropped and
        // the reconstruction can never complete.
        for (tag, kind) in &self.tags {
            if let TagKind::Frag { dest_line, .. } = kind {
                match self.recons.get(&dest_line.0) {
                    Some(r) if matches!(r.state, ReconState::Filling) => {}
                    other => {
                        return Err(format!(
                            "fragment tag {tag} targets line {:#x} with no \
                             Filling recon ({other:?}) at cycle {now}",
                            dest_line.0
                        ));
                    }
                }
            }
        }

        for (id, rem) in &self.arming {
            if *rem > self.channels as u32 {
                return Err(format!(
                    "MCLAZY {id} arming count {rem} exceeds {} controllers \
                     at cycle {now}",
                    self.channels
                ));
            }
        }

        // BPQ forward progress: `bpq_release_tick` runs every cycle, so an
        // entry whose release condition held at the previous audit and
        // still holds now was skipped — a stuck entry (it would deadlock
        // fences waiting on the held write).
        let mut releasable = std::collections::HashSet::new();
        for (mcid, bpq) in self.bpqs.iter().enumerate() {
            for e in bpq.iter() {
                if !self.pins.contains_key(&e.line.0)
                    && self.ctt.src_overlapping(e.line, CACHELINE).is_empty()
                {
                    releasable.insert((mcid, e.line.0));
                }
            }
        }
        if let Some((mcid, line)) = releasable.intersection(&self.releasable_memo).next() {
            return Err(format!(
                "BPQ entry for line {line:#x} at controller {mcid} has been \
                 releasable across two audits without being released (stuck) \
                 at cycle {now}"
            ));
        }
        self.releasable_memo = releasable;
        Ok(())
    }

    /// Destination lines with an active (not superseded) reconstruction.
    /// While one is in flight every read of the line joins the recon, so
    /// no cache may hold a dirty copy.
    #[cfg(feature = "check-invariants")]
    fn reconstructing_lines(&self) -> Vec<PhysAddr> {
        self.recons
            .iter()
            .filter(|(_, r)| matches!(r.state, ReconState::Filling) && !r.superseded)
            .map(|(l, _)| PhysAddr(*l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::packet::fresh_id;

    fn engine() -> McSquareEngine {
        McSquareEngine::new(McSquareConfig::tiny(), 2)
    }

    impl McSquareEngine {
        fn counters_map(&self) -> HashMap<String, u64> {
            self.counters().into_iter().collect()
        }
    }

    fn read_pkt(addr: u64, mc: usize) -> Packet {
        Packet::read(PhysAddr(addr), Node::Mc(mc))
    }

    fn write_pkt(addr: u64, mc: usize, val: u8) -> Packet {
        Packet::write(PhysAddr(addr), LineData::splat(val), Node::Mc(mc))
    }

    fn mclazy_pkt(dst: u64, src: u64, size: u64, mc: usize) -> Packet {
        Packet {
            id: fresh_id(),
            cmd: MemCmd::Mclazy(LazyDesc { dst: PhysAddr(dst), src: PhysAddr(src), size }),
            addr: PhysAddr(dst),
            data: None,
            dest: Node::Mc(mc),
            is_prefetch: false,
            core: Some(0),
            needs_ack: false,
            poisoned: false,
        }
    }

    /// Deliver an MCLAZY broadcast (one copy per controller); the table
    /// arms on the last arrival.
    fn insert(e: &mut McSquareEngine, dst: u64, src: u64, size: u64) {
        let pkt = mclazy_pkt(dst, src, size, 0);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, pkt.clone(), &mut io), Verdict::Consumed));
        assert!(
            !io.sends.iter().any(|(p, _)| p.cmd == MemCmd::MclazyAck),
            "no ack until the broadcast completes"
        );
        let mut io = EngineIo::default();
        match e.on_arrive(0, 1, pkt, &mut io) {
            Verdict::Consumed => {}
            other => panic!("insert rejected: {other:?}"),
        }
        assert!(io.sends.iter().any(|(p, _)| p.cmd == MemCmd::MclazyAck));
    }

    #[test]
    fn untracked_reads_and_writes_pass_through() {
        let mut e = engine();
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, read_pkt(0x1000, 0), &mut io), Verdict::Pass(_)));
        assert!(matches!(e.on_arrive(0, 0, write_pkt(0x1000, 0, 1), &mut io), Verdict::Pass(_)));
        assert!(io.dram_reads.is_empty() && io.sends.is_empty());
    }

    #[test]
    fn source_reads_pass_destination_reads_reconstruct() {
        let mut e = engine();
        // dst line 0x2000 is on channel 0 (line index even).
        insert(&mut e, 0x2000, 0x10000, 64);
        let mut io = EngineIo::default();
        assert!(
            matches!(e.on_arrive(1, 0, read_pkt(0x10000, 0), &mut io), Verdict::Pass(_)),
            "source reads proceed without interference (§III-B2)"
        );
        let mut io = EngineIo::default();
        match e.on_arrive(2, 0, read_pkt(0x2000, 0), &mut io) {
            Verdict::Consumed => {}
            other => panic!("dest read must be consumed: {other:?}"),
        }
        // Source is on this channel → a local tagged DRAM read.
        assert_eq!(io.dram_reads.len(), 1);
        assert!(e.busy());
    }

    #[test]
    fn reconstruction_answers_reader_and_writes_back() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 64);
        let req = read_pkt(0x2000, 0);
        let req_id = req.id;
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, req, &mut io), Verdict::Consumed));
        let (tag, addr) = io.dram_reads[0];
        let mut io = EngineIo::default();
        io.wpq = (0, 8); // plenty of room: writeback allowed
        e.on_dram_read(5, 0, tag, addr, LineData::splat(7), false, &mut io);
        let resp = io.sends.iter().find(|(p, _)| p.cmd == MemCmd::ReadResp).expect("reply");
        assert_eq!(resp.0.id, req_id);
        assert_eq!(resp.0.data, Some(LineData::splat(7)));
        assert_eq!(io.dram_writes.len(), 1, "post-bounce writeback");
        assert!(!e.ctt().covers_dst(PhysAddr(0x2000), 64), "entry removed after writeback");
    }

    #[test]
    fn busy_wpq_rejects_writeback_and_keeps_entry() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 64);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, read_pkt(0x2000, 0), &mut io), Verdict::Consumed));
        let (tag, addr) = io.dram_reads[0];
        let mut io = EngineIo::default();
        io.wpq = (7, 8); // ≥ 75% full → reject (§III-B2)
        e.on_dram_read(5, 0, tag, addr, LineData::splat(7), false, &mut io);
        assert!(io.dram_writes.is_empty(), "writeback rejected under contention");
        assert!(e.ctt().covers_dst(PhysAddr(0x2000), 64), "entry stays tracked");
    }

    #[test]
    fn cross_channel_destination_bounces() {
        let mut e = engine();
        // dst on channel 0, src line 0x10040 on channel 1.
        insert(&mut e, 0x2000, 0x10040, 64);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, read_pkt(0x2000, 0), &mut io), Verdict::Consumed));
        assert!(io.dram_reads.is_empty());
        let bounce = io
            .sends
            .iter()
            .find(|(p, _)| matches!(p.cmd, MemCmd::BounceRead(_)))
            .expect("bounce sent to the source's controller");
        assert_eq!(bounce.0.dest, Node::Mc(1));
    }

    #[test]
    fn source_write_goes_to_bpq_and_flushes() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 64);
        let mut io = EngineIo::default();
        match e.on_arrive(0, 0, write_pkt(0x10000, 0, 9), &mut io) {
            Verdict::Consumed => {}
            other => panic!("source write must be held: {other:?}"),
        }
        assert_eq!(io.dram_reads.len(), 1, "flush reconstruction starts");
        // BPQ merge of a second write to the same line.
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(1, 0, write_pkt(0x10000, 0, 10), &mut io), Verdict::Consumed));
    }

    #[test]
    fn bpq_full_retries_new_source_lines() {
        let mut e = engine(); // tiny: bpq 2 entries
        insert(&mut e, 0x2000, 0x10000, 64);
        insert(&mut e, 0x2080, 0x10080, 64);
        insert(&mut e, 0x2100, 0x10100, 64);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, write_pkt(0x10000, 0, 1), &mut io), Verdict::Consumed));
        assert!(matches!(e.on_arrive(0, 0, write_pkt(0x10080, 0, 2), &mut io), Verdict::Consumed));
        match e.on_arrive(0, 0, write_pkt(0x10100, 0, 3), &mut io) {
            Verdict::Retry(_) => {}
            other => panic!("full BPQ must back-pressure: {other:?}"),
        }
    }

    #[test]
    fn ctt_full_retries_mclazy() {
        let mut e = engine(); // tiny: 8 entries (with +1 insert headroom)
        for i in 0..7u64 {
            insert(&mut e, 0x100000 + i * 0x2000, 0x400000 + i * 0x4000, 64);
        }
        let pkt = mclazy_pkt(0x300000, 0x500000, 64, 0);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, pkt.clone(), &mut io), Verdict::Consumed));
        match e.on_arrive(0, 1, pkt, &mut io) {
            Verdict::Retry(_) => {}
            other => panic!("full CTT must stall MCLAZY: {other:?}"),
        }
        assert!(!io.sends.iter().any(|(p, _)| p.cmd == MemCmd::MclazyAck));
    }

    #[test]
    fn mcfree_drops_tracking_without_traffic() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 128);
        let pkt = Packet {
            id: fresh_id(),
            cmd: MemCmd::Mcfree(FreeDesc { addr: PhysAddr(0x2000), size: 128 }),
            addr: PhysAddr(0x2000),
            data: None,
            dest: Node::Mc(0),
            is_prefetch: false,
            core: None,
            needs_ack: false,
            poisoned: false,
        };
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, pkt, &mut io), Verdict::Consumed));
        assert!(io.dram_reads.is_empty() && io.dram_writes.is_empty());
        assert_eq!(e.ctt().len(), 0);
    }

    #[test]
    fn drain_starts_above_threshold_only() {
        let mut e = engine(); // capacity 8, threshold 0.5
        insert(&mut e, 0x100000, 0x400000, 64);
        let mut io = EngineIo::default();
        e.tick(0, 0, &mut io);
        e.tick(0, 1, &mut io);
        assert!(io.dram_reads.is_empty(), "below threshold: no drain");
        for i in 1..5u64 {
            insert(&mut e, 0x100000 + i * 0x2000, 0x400000 + i * 0x4000, 64);
        }
        let mut io = EngineIo::default();
        e.tick(1, 0, &mut io);
        e.tick(1, 1, &mut io);
        assert!(
            !io.dram_reads.is_empty() || !io.sends.is_empty(),
            "above threshold the drain engine must start copying"
        );
    }

    #[test]
    fn forced_flush_fault_drains_below_threshold() {
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.ctt_flush_rate = 1.0;
        let mut e = McSquareEngine::with_faults(McSquareConfig::tiny(), 2, &plan);
        insert(&mut e, 0x2000, 0x10000, 64); // occupancy 1/8: below threshold
        assert_eq!(e.counters_map()["forced_flushes"], 1);
        // The forced drain job copies the entry out on the next ticks.
        let mut io = EngineIo::default();
        e.tick(0, 0, &mut io);
        e.tick(0, 1, &mut io);
        assert!(
            !io.dram_reads.is_empty() || !io.sends.is_empty(),
            "forced flush must start copying despite sub-threshold occupancy"
        );
    }

    #[test]
    fn dropped_entry_is_repaired_by_eager_recopy() {
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.ctt_drop_rate = 1.0;
        let mut e = McSquareEngine::with_faults(McSquareConfig::tiny(), 2, &plan);
        let mut io = EngineIo::default();
        // Deliver controller 0's broadcast copy last: the insert (and the
        // injected drop + repair) then execute at controller 0, which owns
        // the source line — the repair read is local and visible in `io`.
        let pkt = mclazy_pkt(0x2000, 0x10000, 64, 0);
        assert!(matches!(e.on_arrive(0, 1, pkt.clone(), &mut io), Verdict::Consumed));
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, pkt, &mut io), Verdict::Consumed));
        assert!(!e.ctt().covers_dst(PhysAddr(0x2000), 64), "metadata dropped");
        assert_eq!(e.counters_map()["dropped_entries"], 1);
        assert_eq!(e.counters_map()["eager_fallbacks"], 1);
        // Repair: an eager re-copy reconstruction reads the source.
        assert_eq!(io.dram_reads.len(), 1, "repair re-copy starts immediately");
        let (tag, addr) = io.dram_reads[0];
        let mut io = EngineIo::default();
        e.on_dram_read(1, 0, tag, addr, LineData::splat(9), false, &mut io);
        assert_eq!(io.dram_writes.len(), 1, "repair writes the copy eagerly");
        assert_eq!(io.dram_writes[0].0, PhysAddr(0x2000));
        assert_eq!(io.dram_writes[0].1, LineData::splat(9));
    }

    #[test]
    fn drop_without_repair_mutant_loses_the_copy() {
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.ctt_drop_rate = 1.0;
        let mut e = McSquareEngine::with_faults(McSquareConfig::tiny(), 2, &plan);
        e.set_chaos_mutation(ChaosMutation::DropWithoutRepair);
        insert(&mut e, 0x2000, 0x10000, 64);
        assert!(!e.ctt().covers_dst(PhysAddr(0x2000), 64));
        assert_eq!(e.counters_map()["dropped_entries"], 1);
        assert_eq!(e.counters_map()["eager_fallbacks"], 0, "mutant skips the repair");
        assert!(!e.busy(), "no repair reconstruction in flight");
    }

    #[test]
    fn poisoned_fragment_taints_response_and_writeback() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 64);
        let mut io = EngineIo::default();
        assert!(matches!(e.on_arrive(0, 0, read_pkt(0x2000, 0), &mut io), Verdict::Consumed));
        let (tag, addr) = io.dram_reads[0];
        let mut io = EngineIo::default();
        io.wpq = (0, 8);
        e.on_dram_read(5, 0, tag, addr, LineData::splat(7), true, &mut io);
        let resp = io.sends.iter().find(|(p, _)| p.cmd == MemCmd::ReadResp).expect("reply");
        assert!(resp.0.poisoned, "poison propagates to the demand response");
        assert_eq!(resp.0.data, Some(LineData::splat(7)), "bytes still functional");
        assert_eq!(io.dram_writes.len(), 1);
        assert!(io.dram_writes[0].2, "writeback re-poisons the destination line");
    }

    #[test]
    fn peek_line_materializes_tracked_lines() {
        let mut e = engine();
        let mut mem = SparseMem::default();
        mem.write_line(PhysAddr(0x10000), LineData::splat(3));
        mem.write_line(PhysAddr(0x2000), LineData::splat(1));
        assert_eq!(e.peek_line(&mem, PhysAddr(0x2000)), None, "untracked: memory rules");
        insert(&mut e, 0x2000, 0x10000, 64);
        assert_eq!(
            e.peek_line(&mem, PhysAddr(0x2000)),
            Some(LineData::splat(3)),
            "tracked line reads through to the source bytes"
        );
    }

    #[test]
    fn counters_cover_key_events() {
        let mut e = engine();
        insert(&mut e, 0x2000, 0x10000, 64);
        let names: Vec<String> = e.counters().into_iter().map(|(k, _)| k).collect();
        for key in ["ctt_inserts", "bounces_sent", "dest_writebacks", "ctt_full_retries"] {
            assert!(names.iter().any(|n| n == key), "missing counter {key}");
        }
    }
}
