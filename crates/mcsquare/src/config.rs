//! (MC)² configuration knobs — the axes of the paper's sensitivity studies
//! (§V-C).

use serde::{Deserialize, Serialize};

/// Configuration of the (MC)² engine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct McSquareConfig {
    /// CTT capacity in entries (Table I: 2,048; Fig. 20 sweeps this).
    pub ctt_entries: usize,
    /// BPQ capacity in cachelines per controller (Table I: 8; Fig. 21).
    pub bpq_entries: usize,
    /// Start asynchronously freeing entries once occupancy exceeds this
    /// fraction (paper default: 50%; Fig. 20 sweeps it).
    pub drain_threshold: f64,
    /// Entries freed in parallel per memory controller (Fig. 22).
    pub parallel_free: usize,
    /// Reject the post-bounce destination writeback when the destination
    /// controller's WPQ is fuller than this (§III-B2: 75%).
    pub wpq_reject_frac: f64,
    /// Write the reconstructed destination line back to memory after a
    /// bounced read (the optimization the Fig. 13 "No writeback" ablation
    /// turns off).
    pub writeback_after_bounce: bool,
    /// CTT lookup latency in cycles added to bounced requests (0.79 ns ≈ 4
    /// cycles at 4 GHz, rounded up).
    pub ctt_latency: u64,
}

impl Default for McSquareConfig {
    fn default() -> Self {
        McSquareConfig {
            ctt_entries: 2048,
            bpq_entries: 8,
            drain_threshold: 0.5,
            parallel_free: 4,
            wpq_reject_frac: 0.75,
            writeback_after_bounce: true,
            ctt_latency: 4,
        }
    }
}

impl McSquareConfig {
    /// A small configuration for unit tests (tiny CTT/BPQ so capacity
    /// effects trigger quickly).
    pub fn tiny() -> McSquareConfig {
        McSquareConfig {
            ctt_entries: 8,
            bpq_entries: 2,
            drain_threshold: 0.5,
            parallel_free: 1,
            wpq_reject_frac: 0.75,
            writeback_after_bounce: true,
            ctt_latency: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = McSquareConfig::default();
        assert_eq!(c.ctt_entries, 2048);
        assert_eq!(c.bpq_entries, 8);
        assert!((c.drain_threshold - 0.5).abs() < 1e-9);
        assert!((c.wpq_reject_frac - 0.75).abs() < 1e-9);
        assert!(c.writeback_after_bounce);
    }
}
