//! End-to-end tests of the (MC)² engine through the full simulated
//! machine: CPU → caches → interconnect → memory controllers.
//!
//! These validate the paper's correctness story (§III-E, Fig. 9): at all
//! times data appears to the program as if it had been copied eagerly, for
//! every access pattern the state machine covers — destination reads
//! (bounce), destination writes (untrack), source writes (BPQ), source
//! reads (pass-through), misaligned two-bounce reconstruction, MCFREE, and
//! asynchronous draining.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::stats::RunStats;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcsquare::config::McSquareConfig;
use mcsquare::engine::McSquareEngine;
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};

fn lazy_system(cfg: SystemConfig, mcfg: McSquareConfig, uops: Vec<Uop>) -> System {
    let engine = McSquareEngine::new(mcfg, cfg.channels);
    System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(engine))
}

fn ld(addr: PhysAddr, size: u8) -> Uop {
    Uop::new(UopKind::Load { addr, size }, StatTag::App)
}

fn st(addr: PhysAddr, bytes: &[u8]) -> Uop {
    Uop::new(
        UopKind::Store {
            addr,
            size: bytes.len() as u8,
            data: StoreData::Imm(bytes.to_vec()),
            nontemporal: false,
        },
        StatTag::App,
    )
}

fn fence() -> Uop {
    Uop::new(UopKind::Mfence, StatTag::App)
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u64 * 131 + seed as u64).wrapping_rem(251) as u8).collect()
}

/// Run to completion and return (system, stats).
fn run(mut sys: System) -> (System, RunStats) {
    let stats = sys.run(50_000_000).expect("program finishes");
    (sys, stats)
}

#[test]
fn lazy_copy_converges_to_eager_result() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 4096u64;
    let uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 1);
    sys.poke(src, &data);
    let (sys, stats) = run(sys);
    assert!(stats.engine_counter("ctt_inserts") >= 1);
    // No demand access: the data either stays tracked or was drained; a
    // coherent read of the *tracked view* must equal the eager result.
    // Drain the table by checking DRAM + CTT convergence: simplest strong
    // check is via a second run with reads (below); here assert tracking
    // bookkeeping stayed sane.
    assert_eq!(stats.engine_counter("ctt_full_rejects"), 0);
    drop(sys);
}

#[test]
fn destination_reads_bounce_and_return_source_data() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 1024u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    let base = uops.len() as u64;
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let _ = base;
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 7);
    sys.poke(src, &data);
    let (sys, stats) = run(sys);
    // Every destination line was served; loads observed the source bytes.
    assert_eq!(sys.peek_coherent(dst, size as usize), data, "reads saw eager-copy data");
    assert!(
        stats.engine_counter("recon_demand") >= 1,
        "destination reads must reconstruct: {stats}"
    );
}

#[test]
fn misaligned_copy_needs_two_sources_per_line() {
    let cfg = SystemConfig::tiny();
    // Source deliberately misaligned by 20 bytes: every destination line
    // spans two source lines (§III-B2 "unaligned copies").
    let (src, dst) = (PhysAddr(0x100000 + 20), PhysAddr(0x200000));
    let size = 512u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 9);
    sys.poke(src, &data);
    let (sys, _stats) = run(sys);
    assert_eq!(sys.peek_coherent(dst, size as usize), data);
}

#[test]
fn destination_write_untracks_and_wins() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    // Overwrite the second destination line, flush it to memory, fence.
    uops.push(st(dst.add(64), &[0xEE; 64]));
    uops.push(Uop::new(UopKind::Clwb { addr: dst.add(64) }, StatTag::App));
    uops.push(fence());
    // Read everything back.
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 3);
    sys.poke(src, &data);
    let (sys, _) = run(sys);
    let got = sys.peek_coherent(dst, size as usize);
    assert_eq!(&got[..64], &data[..64]);
    assert_eq!(&got[64..128], &[0xEE; 64][..], "fresh write beats the lazy copy");
    assert_eq!(&got[128..], &data[128..]);
}

#[test]
fn source_write_preserves_copy_via_bpq() {
    // Fig. 9 states 2→3→4: write to the source after MCLAZY; the
    // destination must still observe the ORIGINAL source data.
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    // Overwrite source line 1 and force it to memory (CLWB + fence pushes
    // the write to the controller, where the BPQ must hold it).
    uops.push(st(src.add(64), &[0x55; 64]));
    uops.push(Uop::new(UopKind::Clwb { addr: src.add(64) }, StatTag::App));
    uops.push(fence());
    // Now read the destination.
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    uops.push(fence());
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 5);
    sys.poke(src, &data);
    let (sys, stats) = run(sys);
    assert_eq!(
        sys.peek_coherent(dst, size as usize),
        data,
        "destination sees pre-write source data"
    );
    // And the source itself holds the new bytes after the BPQ released.
    assert_eq!(sys.peek_coherent(src.add(64), 64), vec![0x55; 64]);
    assert!(
        stats.engine_counter("recon_src_flush") >= 1,
        "source write must flush dependent copies: {stats}"
    );
}

#[test]
fn source_reads_pass_through_untouched() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 64) {
        uops.push(ld(src.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 2);
    sys.poke(src, &data);
    let (sys, stats) = run(sys);
    assert_eq!(sys.peek_coherent(src, size as usize), data);
    // Source reads must not reconstruct anything by themselves (drains
    // may, so only demand reconstructions are checked).
    assert_eq!(stats.engine_counter("recon_demand"), 0);
}

#[test]
fn mcfree_drops_tracking() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 512u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    uops.push(Uop::new(UopKind::Mcfree { addr: dst, size }, StatTag::App));
    uops.push(fence());
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    sys.poke(src, &pattern(size as usize, 4));
    let (_, stats) = run(sys);
    assert!(stats.engine_counter("ctt_freed_entries") >= 1, "{stats}");
    assert_eq!(stats.engine_counter("ctt_live_entries"), 0);
}

#[test]
fn ctt_pressure_triggers_async_drain() {
    let cfg = SystemConfig::tiny();
    let mcfg = McSquareConfig { ctt_entries: 8, drain_threshold: 0.5, ..McSquareConfig::tiny() };
    // Many small, non-mergeable copies (distinct pages) to fill the CTT.
    let mut uops = Vec::new();
    let opts = LazyOpts { clwb_sources: false, fence: false, ..LazyOpts::default() };
    for i in 0..12u64 {
        let dst = PhysAddr(0x200000 + i * 8192);
        let src = PhysAddr(0x100000 + i * 8192);
        uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, 64, &opts));
    }
    uops.push(fence());
    let mut sys = lazy_system(cfg, mcfg, uops);
    for i in 0..12u64 {
        sys.poke(PhysAddr(0x100000 + i * 8192), &pattern(64, i as u8));
    }
    let (sys, stats) = run(sys);
    assert!(
        stats.engine_counter("recon_drain") >= 1,
        "drain engine must kick in above threshold: {stats}"
    );
    // Drained copies landed correctly in memory.
    for i in 0..stats.engine_counter("recon_drain").min(12) {
        let dst = PhysAddr(0x200000 + i * 8192);
        let want = pattern(64, i as u8);
        let got = sys.peek_coherent(dst, 64);
        if got == want {
            return; // at least one fully drained line verified
        }
    }
    panic!("no drained destination matched its source");
}

#[test]
fn ctt_full_applies_backpressure_but_completes() {
    let cfg = SystemConfig::tiny();
    // CTT of 4 entries, drains disabled by a high threshold at first is
    // not possible (threshold ≤ 1.0 always drains at full), so use a tiny
    // table and many copies: correctness must hold regardless of stalls.
    let mcfg = McSquareConfig { ctt_entries: 4, ..McSquareConfig::tiny() };
    let mut uops = Vec::new();
    for i in 0..10u64 {
        let dst = PhysAddr(0x400000 + i * 8192);
        let src = PhysAddr(0x300000 + i * 8192);
        uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, 128, &LazyOpts::default()));
    }
    for i in 0..10u64 {
        // Read both lines of each copy: a tracked entry below the drain
        // threshold legitimately stays lazy until accessed.
        uops.push(ld(PhysAddr(0x400000 + i * 8192), 64));
        uops.push(ld(PhysAddr(0x400000 + i * 8192 + 64), 64));
    }
    let mut sys = lazy_system(cfg, mcfg, uops);
    for i in 0..10u64 {
        sys.poke(PhysAddr(0x300000 + i * 8192), &pattern(128, i as u8));
    }
    let (sys, stats) = run(sys);
    for i in 0..10u64 {
        assert_eq!(
            sys.peek_coherent(PhysAddr(0x400000 + i * 8192), 128),
            pattern(128, i as u8),
            "copy {i}"
        );
    }
    assert!(stats.mc_input_stalls() > 0 || stats.engine_counter("ctt_full_retries") > 0);
}

#[test]
fn copy_chain_collapses_and_reads_original() {
    // A → B, then B → C; reading C must return A's data even though B was
    // never materialised (§III-A1 chain rule).
    let cfg = SystemConfig::tiny();
    let a = PhysAddr(0x100000);
    let b = PhysAddr(0x200000);
    let c = PhysAddr(0x300000);
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, b, a, size, &LazyOpts::default());
    uops.extend(memcpy_lazy_uops(uops.len() as u64, c, b, size, &LazyOpts::default()));
    for i in 0..(size / 64) {
        uops.push(ld(c.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 11);
    sys.poke(a, &data);
    let (sys, stats) = run(sys);
    assert_eq!(sys.peek_coherent(c, size as usize), data);
    assert!(stats.engine_counter("ctt_chain_collapses") >= 1, "{stats}");
}

#[test]
fn repeated_copy_to_same_destination_takes_latest_source() {
    let cfg = SystemConfig::tiny();
    let s1 = PhysAddr(0x100000);
    let s2 = PhysAddr(0x180000);
    let d = PhysAddr(0x200000);
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, d, s1, size, &LazyOpts::default());
    uops.extend(memcpy_lazy_uops(uops.len() as u64, d, s2, size, &LazyOpts::default()));
    for i in 0..(size / 64) {
        uops.push(ld(d.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    sys.poke(s1, &pattern(size as usize, 1));
    let newer = pattern(size as usize, 42);
    sys.poke(s2, &newer);
    let (sys, _) = run(sys);
    assert_eq!(sys.peek_coherent(d, size as usize), newer, "second copy wins");
}

#[test]
fn nontemporal_store_to_destination_untracks() {
    let cfg = SystemConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 128u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    uops.push(Uop::new(
        UopKind::Store {
            addr: dst,
            size: 64,
            data: StoreData::Splat(0x77),
            nontemporal: true,
        },
        StatTag::App,
    ));
    uops.push(fence());
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(cfg, McSquareConfig::default(), uops);
    let data = pattern(size as usize, 8);
    sys.poke(src, &data);
    let (sys, _) = run(sys);
    let got = sys.peek_coherent(dst, size as usize);
    assert_eq!(&got[..64], &[0x77; 64][..]);
    assert_eq!(&got[64..], &data[64..]);
}

#[test]
fn no_writeback_ablation_still_correct() {
    let cfg = SystemConfig::tiny();
    let mcfg = McSquareConfig { writeback_after_bounce: false, ..McSquareConfig::default() };
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 512u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    // Read each destination line twice: without writeback the second read
    // bounces again (the Fig. 13 ablation's cost), but stays correct.
    for _ in 0..2 {
        for i in 0..(size / 64) {
            uops.push(ld(dst.add(i * 64), 64));
        }
    }
    let mut sys = lazy_system(cfg, mcfg, uops);
    let data = pattern(size as usize, 13);
    sys.poke(src, &data);
    let (sys, stats) = run(sys);
    assert_eq!(sys.peek_coherent(dst, size as usize), data);
    assert!(stats.engine_counter("writebacks_rejected") >= 1, "{stats}");
}

#[test]
fn eager_and_lazy_agree_on_final_memory_random_program() {
    // Differential test: the same random mix of copies, stores and loads
    // executed (a) eagerly on the baseline and (b) lazily on (MC)² must
    // leave identical architectural memory.
    use mcs_sim::uop::StatTag::App;
    let mut ops: Vec<(u64, u64, u64)> = Vec::new(); // (dst page, src page, bytes)
    let mut x = 0x243F6A8885A308D3u64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..6 {
        let d = rnd() % 16;
        let mut s = rnd() % 16;
        if s == d {
            s = (s + 1) % 16;
        }
        let bytes = 64 + (rnd() % 512);
        ops.push((d, s, bytes));
    }

    let build = |lazy: bool| -> Vec<Uop> {
        let mut uops = Vec::new();
        for (d, s, bytes) in &ops {
            let dst = PhysAddr(0x500000 + d * 4096);
            let src = PhysAddr(0x500000 + s * 4096);
            if lazy {
                uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, *bytes, &LazyOpts::default()));
            } else {
                uops.extend(mcsquare::software::memcpy_eager_uops(
                    uops.len() as u64,
                    dst,
                    src,
                    *bytes,
                    StatTag::Memcpy,
                ));
                // Flush so final DRAM converges for comparison.
                for l in mcs_sim::addr::lines_of(dst, *bytes) {
                    uops.push(Uop::new(UopKind::Clwb { addr: l }, App));
                }
                uops.push(fence());
            }
        }
        // Touch every page at the end so lazy copies resolve.
        for p in 0..16u64 {
            for l in 0..(4096 / 64) {
                uops.push(ld(PhysAddr(0x500000 + p * 4096 + l * 64), 64));
            }
        }
        uops
    };

    let init: Vec<u8> = (0..16 * 4096).map(|i| (i as u64 * 37 % 251) as u8).collect();

    let mut base = System::new(SystemConfig::tiny(), vec![Box::new(FixedProgram::new(build(false)))]);
    base.poke(PhysAddr(0x500000), &init);
    base.run(100_000_000).expect("baseline finishes");

    let mut lazy = lazy_system(SystemConfig::tiny(), McSquareConfig::default(), build(true));
    lazy.poke(PhysAddr(0x500000), &init);
    lazy.run(100_000_000).expect("lazy finishes");

    assert_eq!(
        base.peek_coherent(PhysAddr(0x500000), 16 * 4096),
        lazy.peek_coherent(PhysAddr(0x500000), 16 * 4096),
        "architectural memory diverged between eager and lazy execution"
    );
}

#[test]
fn ctt_full_fallback_preserves_data_and_counts_rejects() {
    // Regression for the `CttError::Full` path: when the CTT rejects an
    // MCLAZY because the table is full, the request is retried at the
    // controller until draining (or demand reconstruction) frees an entry
    // — the copy must never be lost. Config::tiny + McSquareConfig::tiny
    // (8 entries, drain at 50%) with a burst of distinct-page copies
    // overruns the table deterministically.
    let cfg = SystemConfig::tiny();
    let mcfg = McSquareConfig::tiny();
    let n = 24u64;
    let mut uops = Vec::new();
    let opts = LazyOpts { clwb_sources: false, fence: false, ..LazyOpts::default() };
    for i in 0..n {
        let dst = PhysAddr(0x400000 + i * 8192);
        let src = PhysAddr(0x300000 + i * 8192);
        uops.extend(memcpy_lazy_uops(uops.len() as u64, dst, src, 64, &opts));
    }
    uops.push(fence());
    for i in 0..n {
        uops.push(ld(PhysAddr(0x400000 + i * 8192), 64));
    }
    let mut sys = lazy_system(cfg, mcfg, uops);
    for i in 0..n {
        sys.poke(PhysAddr(0x300000 + i * 8192), &pattern(64, i as u8));
    }
    let (sys, stats) = run(sys);
    assert!(
        stats.engine_counter("ctt_full_rejects") >= 1,
        "a 24-copy burst must overrun an 8-entry CTT: {stats}"
    );
    assert!(stats.engine_counter("ctt_full_retries") >= 1, "{stats}");
    // Oracle: every destination equals its source pattern, as if copied
    // eagerly — back-pressure degraded timing, not data.
    for i in 0..n {
        assert_eq!(
            sys.peek_coherent(PhysAddr(0x400000 + i * 8192), 64),
            pattern(64, i as u8),
            "copy {i} lost under CTT-full back-pressure"
        );
    }
}

#[test]
fn lazy_copy_survives_mild_fault_plan() {
    // End-to-end graceful degradation: ECC retries, poisoned lines, link
    // jitter/duplication, controller stalls, forced CTT flushes and
    // dropped-entry repairs all active — the lazy copy must still be
    // indistinguishable from an eager one at every load.
    let mut cfg = SystemConfig::tiny();
    cfg.fault = mcs_sim::fault::FaultPlan::mild(0xBAD5EED);
    let mcfg = McSquareConfig::tiny();
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 8192u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    uops.push(fence());
    let engine = McSquareEngine::with_faults(mcfg, cfg.channels, &cfg.fault);
    let mut sys = System::with_engine(
        cfg,
        vec![Box::new(FixedProgram::new(uops))],
        Box::new(engine),
    );
    let data = pattern(size as usize, 21);
    sys.poke(src, &data);
    let stats = sys.run(50_000_000).expect("finishes under mild faults");
    assert_eq!(sys.peek_coherent(dst, size as usize), data, "faults must not corrupt the copy");
    let injected: u64 = stats.mcs.iter().map(|m| m.fault_events()).sum();
    assert!(injected > 0, "mild plan must actually inject at this scale");
}
