//! The Fig. 9 state-transition diagram as a test suite.
//!
//! The paper proves memory consistency by walking a six-state diagram for
//! a destination cacheline D backed (possibly misaligned) by source
//! cachelines S1 and S2. Each test below drives the full simulated machine
//! through one of the labelled transitions and checks the observable
//! behaviour the paper ascribes to that state.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcsquare::config::McSquareConfig;
use mcsquare::engine::McSquareEngine;
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};

const SIZE: u64 = 128; // D spans two lines; misaligned source spans three

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| ((i as u64 * 131 + seed as u64) % 251) as u8).collect()
}

struct Rig {
    src: PhysAddr,
    dst: PhysAddr,
    uops: Vec<Uop>,
}

impl Rig {
    /// State 1 → 2: issue the prospective copy (misaligned: every D line
    /// depends on two source lines, states 5/6 apply).
    fn new(misaligned: bool) -> Rig {
        let src_base = PhysAddr(0x100000);
        let src = if misaligned { src_base.add(20) } else { src_base };
        let dst = PhysAddr(0x200000);
        let uops = memcpy_lazy_uops(0, dst, src, SIZE, &LazyOpts::default());
        Rig { src, dst, uops }
    }

    fn store(&mut self, addr: PhysAddr, val: u8, len: u8) {
        self.uops.push(Uop::new(
            UopKind::Store { addr, size: len, data: StoreData::Splat(val), nontemporal: false },
            StatTag::App,
        ));
    }

    fn clwb(&mut self, addr: PhysAddr) {
        self.uops.push(Uop::new(UopKind::Clwb { addr }, StatTag::App));
    }

    fn fence(&mut self) {
        self.uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    }

    fn load(&mut self, addr: PhysAddr, len: u8) {
        self.uops.push(Uop::new(UopKind::Load { addr, size: len }, StatTag::App));
    }

    fn run(self) -> (System, mcs_sim::stats::RunStats) {
        let cfg = SystemConfig::tiny();
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        let mut sys =
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(self.uops))], Box::new(e));
        sys.poke(self.src, &pattern(SIZE as usize, 42));
        let stats = sys.run(100_000_000).expect("finishes");
        (sys, stats)
    }
}

#[test]
fn state2_read_source_has_no_impact() {
    // State 2: "reading S1 or S2 has no impact".
    let mut r = Rig::new(true);
    let (src, dst) = (r.src, r.dst);
    for i in 0..3 {
        // Line-safe 8B reads within the (misaligned) source buffer.
        r.load(src.add(i * 32), 8);
    }
    r.fence();
    for i in 0..(SIZE / 64) {
        r.load(dst.add(i * 64), 64);
    }
    let (sys, st) = r.run();
    assert_eq!(sys.peek_coherent(dst, SIZE as usize), pattern(SIZE as usize, 42));
    assert_eq!(st.engine_counter("recon_src_flush"), 0, "source reads trigger nothing");
}

#[test]
fn state2_write_to_d_returns_to_state1() {
    // State 2 → 1: "writing to D removes the entry from the CTT".
    let mut r = Rig::new(false);
    let dst = r.dst;
    r.store(dst, 0xEE, 64);
    r.clwb(dst);
    r.fence();
    let (sys, st) = r.run();
    // First line: the fresh write; second line: still the lazy copy.
    assert_eq!(sys.peek_coherent(dst, 64), vec![0xEE; 64]);
    assert!(st.engine_counter("ctt_inserts") >= 1);
    let _ = sys;
}

#[test]
fn state2_second_copy_to_d_stays_in_state2() {
    // State 2 loop: "performing another prospective copy with destination
    // D retains the same state, entry modified to the new source".
    let mut r = Rig::new(false);
    let dst = r.dst;
    let src2 = PhysAddr(0x300000);
    let more = memcpy_lazy_uops(r.uops.len() as u64, dst, src2, SIZE, &LazyOpts::default());
    r.uops.extend(more);
    for i in 0..(SIZE / 64) {
        r.load(dst.add(i * 64), 64);
    }
    let (mut sys, _) = {
        // src2 needs its own initialisation.
        let cfg = SystemConfig::tiny();
        let e = McSquareEngine::new(McSquareConfig::default(), cfg.channels);
        let mut sys =
            System::with_engine(cfg, vec![Box::new(FixedProgram::new(r.uops))], Box::new(e));
        sys.poke(r.src, &pattern(SIZE as usize, 42));
        sys.poke(src2, &pattern(SIZE as usize, 99));
        let st = sys.run(100_000_000).expect("finishes");
        (sys, st)
    };
    assert_eq!(
        sys.peek_coherent(dst, SIZE as usize),
        pattern(SIZE as usize, 99),
        "latest source wins"
    );
    let _ = &mut sys;
}

#[test]
fn states_3_4_write_si_bounces_then_writes_back() {
    // States 2 → 3 → 4 → 1: a write to Si is held in the BPQ, a bounce
    // writes D, then Si reaches memory.
    let mut r = Rig::new(false);
    let (src, dst) = (r.src, r.dst);
    r.store(src, 0x77, 64);
    r.clwb(src);
    r.fence();
    for i in 0..(SIZE / 64) {
        r.load(dst.add(i * 64), 64);
    }
    r.fence();
    let (sys, st) = r.run();
    // D observes the PRE-write source (the copy point precedes the write).
    assert_eq!(sys.peek_coherent(dst, SIZE as usize), pattern(SIZE as usize, 42));
    // Si observes the new data after BPQ release.
    assert_eq!(sys.peek_coherent(src, 64), vec![0x77; 64]);
    assert!(st.engine_counter("recon_src_flush") >= 1, "{st}");
}

#[test]
fn states_5_6_misaligned_write_both_sources() {
    // States 5/6: misaligned D depends on S1 and S2; writes to BOTH are
    // held and D still reconstructs from pre-write data.
    let mut r = Rig::new(true);
    let (src, dst) = (r.src, r.dst);
    // Write both source lines (line bases of the misaligned buffer).
    let s1 = src.line_base();
    let s2 = s1.add(64);
    r.store(s1, 0x11, 64);
    r.store(s2, 0x22, 64);
    r.clwb(s1);
    r.clwb(s2);
    r.fence();
    for i in 0..(SIZE / 64) {
        r.load(dst.add(i * 64), 64);
    }
    r.fence();
    let (sys, st) = r.run();
    let want = pattern(SIZE as usize, 42);
    assert_eq!(sys.peek_coherent(dst, SIZE as usize), want, "pre-write data preserved");
    assert_eq!(sys.peek_coherent(s1, 64), vec![0x11; 64]);
    assert_eq!(sys.peek_coherent(s2, 64), vec![0x22; 64]);
    assert!(st.engine_counter("recon_src_flush") >= 1);
}

#[test]
fn bpq_merges_repeated_writes_to_same_source_line() {
    // Fig. 9 state 3: "reads and writes to Si are merged and serviced
    // directly from the BPQ".
    let mut r = Rig::new(false);
    let (src, dst) = (r.src, r.dst);
    r.store(src, 0x01, 64);
    r.clwb(src);
    r.store(src, 0x02, 64);
    r.clwb(src);
    r.fence();
    r.load(src, 8);
    r.fence();
    for i in 0..(SIZE / 64) {
        r.load(dst.add(i * 64), 64);
    }
    r.fence();
    let (sys, _) = r.run();
    assert_eq!(sys.peek_coherent(src, 8), vec![0x02; 8], "newest write wins");
    assert_eq!(sys.peek_coherent(dst, SIZE as usize), pattern(SIZE as usize, 42));
}
