//! Stress tests for the `check-invariants` runtime verification layer.
//!
//! Only built with `--features check-invariants`. Each test runs a
//! lazy-copy workload that exercises the racy parts of the protocol
//! (bounces across channels, BPQ holds, chain collapsing, frees) while
//! auditing the full invariant set far more often than the production
//! cadence — every violation panics, so "the test passes" means every
//! intermediate state satisfied the coherence, conservation, engine, and
//! stats invariants.

#![cfg(feature = "check-invariants")]

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcsquare::config::McSquareConfig;
use mcsquare::engine::McSquareEngine;
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};

fn ld(addr: PhysAddr, size: u8) -> Uop {
    Uop::new(UopKind::Load { addr, size }, StatTag::App)
}

fn st(addr: PhysAddr, bytes: &[u8]) -> Uop {
    Uop::new(
        UopKind::Store {
            addr,
            size: bytes.len() as u8,
            data: StoreData::Imm(bytes.to_vec()),
            nontemporal: false,
        },
        StatTag::App,
    )
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u64 * 131 + seed as u64).wrapping_rem(251) as u8).collect()
}

/// Tick the system to completion, auditing every `stride` cycles —
/// coarse enough to be fast, fine enough to catch transient states the
/// production 1024-cycle cadence would step over.
fn run_audited(sys: &mut System, stride: u64, max_cycles: u64) {
    let mut since_done = 0u32;
    for i in 0..max_cycles {
        sys.tick();
        if i % stride == 0 {
            sys.validate_invariants(false);
        }
        // Mirror System::run's quiescence detection via public probes:
        // once stats stop changing and the engine reports no activity the
        // run is over. Simpler: rely on cores_finished + a settle window.
        if sys.cores_finished() {
            since_done += 1;
            if since_done > 2_000 {
                sys.validate_invariants(true);
                return;
            }
        }
    }
    panic!("workload did not finish within {max_cycles} cycles");
}

fn lazy_system(mcfg: McSquareConfig, uops: Vec<Uop>) -> System {
    let cfg = SystemConfig::tiny();
    let engine = McSquareEngine::new(mcfg, cfg.channels);
    System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(engine))
}

#[test]
fn audited_bounce_heavy_workload_holds_all_invariants() {
    // Copies whose lines interleave across both channels, then demand
    // reads of every destination line: maximal bounce/BounceResp traffic.
    let (src, dst) = (PhysAddr(0x100000 + 20), PhysAddr(0x200000));
    let size = 1024u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(McSquareConfig::default(), uops);
    let data = pattern(size as usize, 21);
    sys.poke(src, &data);
    run_audited(&mut sys, 16, 5_000_000);
    assert_eq!(sys.peek_coherent(dst, size as usize), data);
}

#[test]
fn audited_source_write_and_free_workload_holds_all_invariants() {
    // Source writes (BPQ holds + forced flushes), chained copies, and an
    // MCFREE — the paths that mutate the CTT and pins concurrently.
    let a = PhysAddr(0x100000);
    let b = PhysAddr(0x200000);
    let c = PhysAddr(0x300000);
    let size = 512u64;
    let mut uops = memcpy_lazy_uops(0, b, a, size, &LazyOpts::default());
    uops.extend(memcpy_lazy_uops(uops.len() as u64, c, b, size, &LazyOpts::default()));
    // Dirty a source line and push it to the controller.
    uops.push(st(a.add(64), &[0x5A; 64]));
    uops.push(Uop::new(UopKind::Clwb { addr: a.add(64) }, StatTag::App));
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    // Read both destinations, free one, fence.
    for i in 0..(size / 64) {
        uops.push(ld(b.add(i * 64), 64));
        uops.push(ld(c.add(i * 64), 64));
    }
    uops.push(Uop::new(UopKind::Mcfree { addr: c, size }, StatTag::App));
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    let mut sys = lazy_system(McSquareConfig::default(), uops);
    let data = pattern(size as usize, 33);
    sys.poke(a, &data);
    run_audited(&mut sys, 16, 5_000_000);
    // The copies were logically taken before the source write.
    assert_eq!(sys.peek_coherent(b, size as usize), data);
}

#[test]
fn run_performs_quiescence_audit() {
    // System::run itself must end with the strict quiescence audit (packet
    // ledgers empty, no leaked MSHRs/recons) — this is the path production
    // callers take.
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let size = 256u64;
    let mut uops = memcpy_lazy_uops(0, dst, src, size, &LazyOpts::default());
    for i in 0..(size / 64) {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(McSquareConfig::default(), uops);
    let data = pattern(size as usize, 55);
    sys.poke(src, &data);
    sys.run(50_000_000).expect("finishes");
    assert_eq!(sys.peek_coherent(dst, size as usize), data);
}

#[test]
fn stall_cycles_are_attributed_exactly_once_under_lazy_load() {
    let (src, dst) = (PhysAddr(0x100000), PhysAddr(0x200000));
    let mut uops = memcpy_lazy_uops(0, dst, src, 2048, &LazyOpts::default());
    for i in 0..32u64 {
        uops.push(ld(dst.add(i * 64), 64));
    }
    let mut sys = lazy_system(McSquareConfig::default(), uops);
    sys.poke(src, &pattern(2048, 3));
    let stats = sys.run(50_000_000).expect("finishes");
    let c = &stats.cores[0];
    assert_eq!(c.total_stalls(), c.stalled_cycles);
    assert!(c.stalled_cycles > 0, "a lazy memcpy with demand reads must stall somewhere");
    c.check_stall_accounting().expect("stall accounting exact");
}
