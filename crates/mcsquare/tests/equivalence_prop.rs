//! Property-based end-to-end equivalence: for random sequences of copies,
//! stores and final reads, the lazy machine's architectural memory equals
//! the eager machine's — the §III-E guarantee under arbitrary interleaving.

use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::program::FixedProgram;
use mcs_sim::system::System;
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcsquare::software::{memcpy_eager_uops, memcpy_lazy_uops, LazyOpts};
use mcsquare::{McSquareConfig, McSquareEngine};
use proptest::prelude::*;

const REGION: u64 = 0x500000;
const PAGES: u64 = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Copy `len` bytes from page `s`+off to page `d`+off2.
    Copy { d: u64, s: u64, doff: u64, soff: u64, len: u64 },
    /// Store a byte at page `p` offset `off`, then CLWB + fence.
    Store { p: u64, off: u64, val: u8 },
    /// MCFREE a whole page's range.
    Free { p: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..PAGES, 0..PAGES, 0u64..256, 0u64..256, 64u64..1024).prop_filter_map(
            "non-overlapping",
            |(d, s, doff, soff, len)| {
                if d == s {
                    return None;
                }
                Some(Op::Copy { d, s, doff, soff, len })
            }
        ),
        (0..PAGES, 0u64..4096, any::<u8>()).prop_map(|(p, off, val)| Op::Store { p, off, val }),
        (0..PAGES).prop_map(|p| Op::Free { p }),
    ]
}

fn page(p: u64) -> PhysAddr {
    PhysAddr(REGION + p * 4096)
}

fn build(ops: &[Op], lazy: bool) -> Vec<Uop> {
    build_with_reads(ops, lazy, 0, PAGES)
}

fn build_with_reads(ops: &[Op], lazy: bool, read_from: u64, read_to: u64) -> Vec<Uop> {
    let mut uops: Vec<Uop> = Vec::new();
    for op in ops {
        match op {
            Op::Copy { d, s, doff, soff, len } => {
                let dst = page(*d).add(*doff);
                let src = page(*s).add(*soff);
                let base = uops.len() as u64;
                if lazy {
                    uops.extend(memcpy_lazy_uops(base, dst, src, *len, &LazyOpts::default()));
                } else {
                    uops.extend(memcpy_eager_uops(base, dst, src, *len, StatTag::Memcpy));
                }
            }
            Op::Store { p, off, val } => {
                let addr = page(*p).add(*off);
                uops.push(Uop::new(
                    UopKind::Store {
                        addr,
                        size: 1,
                        data: StoreData::Imm(vec![*val]),
                        nontemporal: false,
                    },
                    StatTag::App,
                ));
                uops.push(Uop::new(UopKind::Clwb { addr }, StatTag::App));
                uops.push(Uop::new(UopKind::Mfence, StatTag::App));
            }
            Op::Free { p } => {
                // Freed memory is undefined until rewritten (§III-C), so to
                // keep states comparable the model zeroes it: the eager
                // machine stores zeroes; the lazy machine frees then stores
                // zeroes (as the OS does before page reuse, §III-E).
                if lazy {
                    uops.push(Uop::new(
                        UopKind::Mcfree { addr: page(*p), size: 4096 },
                        StatTag::App,
                    ));
                }
                for l in 0..(4096 / 64) {
                    uops.push(Uop::new(
                        UopKind::Store {
                            addr: page(*p).add(l * 64),
                            size: 64,
                            data: StoreData::Splat(0),
                            nontemporal: false,
                        },
                        StatTag::App,
                    ));
                }
            }
        }
    }
    // Read everything back so lazy copies resolve, flush so DRAM converges.
    for p in read_from..read_to {
        for l in 0..(4096 / 64) {
            uops.push(Uop::new(
                UopKind::Load { addr: page(p).add(l * 64), size: 64 },
                StatTag::App,
            ));
        }
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::App));
    uops
}

fn run(ops: &[Op], lazy: bool) -> Vec<u8> {
    let cfg = SystemConfig::tiny();
    let uops = build(ops, lazy);
    let mut sys = if lazy {
        let e = McSquareEngine::new(McSquareConfig::tiny(), cfg.channels);
        System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(e))
    } else {
        System::new(cfg, vec![Box::new(FixedProgram::new(uops))])
    };
    let init: Vec<u8> =
        (0..PAGES * 4096).map(|i| ((i * 37 + 11) % 251) as u8).collect();
    sys.poke(page(0), &init);
    sys.run(400_000_000).expect("finishes");
    sys.peek_coherent(page(0), (PAGES * 4096) as usize)
}

#[test]
fn regression_chain_collapse_misaligned() {
    // Found by the property test: a misaligned copy whose source is the
    // destination of an earlier misaligned copy (chain collapse at byte
    // granularity).
    let ops = vec![
        Op::Copy { d: 3, s: 0, doff: 65, soff: 0, len: 575 },
        Op::Copy { d: 2, s: 3, doff: 10, soff: 136, len: 249 },
    ];
    let eager = run(&ops, false);
    let lazy = run(&ops, true);
    let diffs: Vec<usize> =
        (0..eager.len()).filter(|&i| eager[i] != lazy[i]).collect();
    assert!(
        diffs.is_empty(),
        "{} diffs, first at {:?} (page {}, off {})",
        diffs.len(),
        diffs.first(),
        diffs.first().map(|d| d / 4096).unwrap_or(0),
        diffs.first().map(|d| d % 4096).unwrap_or(0),
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn lazy_machine_is_architecturally_eager(
        ops in prop::collection::vec(op_strategy(), 1..8)
    ) {
        let eager = run(&ops, false);
        let lazy = run(&ops, true);
        prop_assert_eq!(eager, lazy, "ops: {:?}", ops);
    }
}

/// Two cores working disjoint page sets concurrently: the lazy machine
/// must still converge to the eager result (the engine is shared across
/// controllers; multi-core traffic interleaves at the MCs).
fn run_two_cores(ops_a: &[Op], ops_b: &[Op], lazy: bool) -> Vec<u8> {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 2;
    // Core B works on pages shifted past core A's set.
    let shift = |ops: &[Op]| -> Vec<Op> {
        ops.iter()
            .map(|o| match o {
                Op::Copy { d, s, doff, soff, len } => Op::Copy {
                    d: d + PAGES,
                    s: s + PAGES,
                    doff: *doff,
                    soff: *soff,
                    len: *len,
                },
                Op::Store { p, off, val } => Op::Store { p: p + PAGES, off: *off, val: *val },
                Op::Free { p } => Op::Free { p: p + PAGES },
            })
            .collect()
    };
    let ua = build_with_reads(ops_a, lazy, 0, PAGES);
    // Core B resolves its own (shifted) pages.
    let ub = build_with_reads(&shift(ops_b), lazy, PAGES, 2 * PAGES);
    let mut sys = if lazy {
        let e = McSquareEngine::new(McSquareConfig::tiny(), cfg.channels);
        System::with_engine(
            cfg,
            vec![
                Box::new(FixedProgram::new(ua)),
                Box::new(FixedProgram::new(ub)),
            ],
            Box::new(e),
        )
    } else {
        System::new(
            cfg,
            vec![
                Box::new(FixedProgram::new(ua)),
                Box::new(FixedProgram::new(ub)),
            ],
        )
    };
    let init: Vec<u8> =
        (0..2 * PAGES * 4096).map(|i| ((i * 37 + 11) % 251) as u8).collect();
    sys.poke(page(0), &init);
    sys.run(800_000_000).expect("finishes");
    sys.peek_coherent(page(0), (2 * PAGES * 4096) as usize)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    #[test]
    fn two_cores_stay_architecturally_eager(
        ops_a in prop::collection::vec(op_strategy(), 1..5),
        ops_b in prop::collection::vec(op_strategy(), 1..5),
    ) {
        let eager = run_two_cores(&ops_a, &ops_b, false);
        let lazy = run_two_cores(&ops_a, &ops_b, true);
        prop_assert_eq!(eager, lazy);
    }
}

// ---------------------------------------------------------------------------
// CTT-level properties: MAX_ENTRY_SIZE row splitting and NeedsFlush
// round-trips. Multi-megabyte copies are impractical through the
// cycle-accurate system, so these drive the table directly.
// ---------------------------------------------------------------------------

mod ctt_props {
    use mcs_sim::addr::{PhysAddr, CACHELINE};
    use mcsquare::ctt::{Ctt, CttError, MAX_ENTRY_SIZE};
    use mcsquare::ranges::ByteRange;
    use proptest::prelude::*;

    const DST: u64 = 0x1000_0000;
    const SRC: u64 = 0x2000_0000;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        /// A single copy straddling the 21-bit size limit stays one
        /// segment but costs ceil(size / MAX_ENTRY_SIZE) hardware rows.
        #[test]
        fn oversized_copy_splits_into_hw_rows(
            rows in 1u64..=3,
            delta_lines in -2i64..=2,
        ) {
            let size = ((rows * MAX_ENTRY_SIZE) as i64 + delta_lines * CACHELINE as i64)
                .max(CACHELINE as i64) as u64;
            let mut c = Ctt::new(64);
            c.try_insert(PhysAddr(DST), PhysAddr(SRC), size).unwrap();
            prop_assert_eq!(c.len(), 1, "one contiguous segment");
            prop_assert_eq!(c.tracked_bytes(), size);
            prop_assert_eq!(c.hw_entries() as u64, size.div_ceil(MAX_ENTRY_SIZE));
            prop_assert!((c.occupancy() - c.hw_entries() as f64 / 64.0).abs() < 1e-12);
            prop_assert!(c.check_invariants().is_ok());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        /// Back-to-back page-granularity inserts (the software wrapper's
        /// splitting) merge into one wide segment whose hardware cost is
        /// still counted in 2 MB rows.
        #[test]
        fn merged_chunks_are_accounted_in_hw_rows(k in 1u64..=6) {
            let chunk = MAX_ENTRY_SIZE / 2; // 1 MB chunks
            let mut c = Ctt::new(64);
            for i in 0..k {
                c.try_insert(
                    PhysAddr(DST + i * chunk),
                    PhysAddr(SRC + i * chunk),
                    chunk,
                )
                .unwrap();
            }
            prop_assert_eq!(c.len(), 1, "contiguous src+dst chunks merge");
            prop_assert_eq!(c.tracked_bytes(), k * chunk);
            prop_assert_eq!(c.hw_entries() as u64, (k * chunk).div_ceil(MAX_ENTRY_SIZE));
            prop_assert!(c.check_invariants().is_ok());
        }
    }

    #[test]
    fn capacity_counts_hw_rows_not_segments() {
        // Capacity 3 with the conservative +1 headroom: a 4 MB + one-line
        // copy needs 3 rows and is rejected outright, while 2 MB copies
        // (one row each) fit until the rows run out.
        let mut c = Ctt::new(3);
        assert_eq!(
            c.try_insert(PhysAddr(DST), PhysAddr(SRC), 2 * MAX_ENTRY_SIZE + CACHELINE),
            Err(CttError::Full),
        );
        c.try_insert(PhysAddr(DST), PhysAddr(SRC), MAX_ENTRY_SIZE).unwrap();
        // Non-adjacent second entry: no merge, second row.
        c.try_insert(
            PhysAddr(DST + 8 * MAX_ENTRY_SIZE),
            PhysAddr(SRC + 8 * MAX_ENTRY_SIZE),
            MAX_ENTRY_SIZE,
        )
        .unwrap();
        assert_eq!(c.hw_entries(), 2);
        assert_eq!(
            c.try_insert(
                PhysAddr(DST + 16 * MAX_ENTRY_SIZE),
                PhysAddr(SRC + 16 * MAX_ENTRY_SIZE),
                MAX_ENTRY_SIZE,
            ),
            Err(CttError::Full),
        );
        assert!(c.check_invariants().is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]
        /// Inserting a copy whose destination overlaps a live entry's
        /// source reports exactly the dependent destination lines; after
        /// those lines are materialized (remove_dst) the retry succeeds.
        #[test]
        fn needs_flush_reports_exact_dependents_and_retry_succeeds(
            aoff in 0u64..256,        // first copy's source offset (misaligned ok)
            boff_lines in 0u64..4,    // first copy's dst offset, in lines
            l1 in 1u64..=16,          // first copy length, in lines
            delta in 0u64..1024,      // where in the source the new dst lands
            l2 in 1u64..=8,           // second copy length, in lines
            coff in 0u64..256,        // second copy's source offset
        ) {
            let a = 0x10_0000u64; // source region of copy 1
            let b = 0x30_0000u64; // destination region of copy 1
            let c_ = 0x50_0000u64; // source region of copy 2
            let len1 = l1 * CACHELINE;
            let len2 = l2 * CACHELINE;

            let mut ctt = Ctt::new(64);
            ctt.try_insert(PhysAddr(b + boff_lines * CACHELINE), PhysAddr(a + aoff), len1)
                .unwrap();

            // A line-aligned destination covering some byte of copy 1's
            // source: the flush-before-insert rule must fire.
            let hit = a + aoff + (delta % len1);
            let dst2 = hit / CACHELINE * CACHELINE;
            let want = ctt.dst_lines_with_src_in(ByteRange::sized(dst2, len2));
            prop_assert!(!want.is_empty());

            match ctt.try_insert(PhysAddr(dst2), PhysAddr(c_ + coff), len2) {
                Err(CttError::NeedsFlush(lines)) => {
                    prop_assert_eq!(&lines, &want, "reported lines must be the dependents");
                    // Materialize each dependent line, as the controller's
                    // flush reconstruction does, then retry.
                    for l in &lines {
                        ctt.remove_dst(*l, CACHELINE);
                    }
                    prop_assert!(ctt.check_invariants().is_ok());
                    ctt.try_insert(PhysAddr(dst2), PhysAddr(c_ + coff), len2)
                        .expect("retry after flushing dependents succeeds");
                    // Copy 1 was line-aligned, so every flushed line was
                    // fully tracked: the byte accounting is exact.
                    prop_assert_eq!(
                        ctt.tracked_bytes(),
                        len1 - CACHELINE * lines.len() as u64 + len2
                    );
                    prop_assert!(!ctt.lookup_line(PhysAddr(dst2)).is_empty());
                    prop_assert!(ctt.check_invariants().is_ok());
                }
                other => prop_assert!(false, "expected NeedsFlush, got {:?}", other),
            }
        }
    }
}

#[test]
fn regression_needs_flush_copy_into_live_source() {
    // The destination of the second copy is the source of the first: the
    // controller must flush (materialize) the dependent destination lines
    // of copy 1 before the second MCLAZY can be tracked (§III-B3), and the
    // result must still equal the eager machine's.
    let ops = vec![
        Op::Copy { d: 3, s: 0, doff: 0, soff: 0, len: 512 },
        Op::Copy { d: 0, s: 5, doff: 0, soff: 0, len: 512 },
    ];
    let eager = run(&ops, false);
    let lazy = run(&ops, true);
    assert_eq!(eager, lazy);
}
