//! # mcs-chaos — chaos/soak harness for the (MC)² reproduction
//!
//! Randomized workloads (lazy copies, stores, loads over a slotted arena)
//! run against the full simulated machine under a seeded
//! [`FaultPlan`] — ECC errors, link jitter/duplication, controller
//! stalls, forced CTT flushes, dropped CTT entries — and are then
//! **differentially checked** against the eager-memory oracle
//! ([`mcs_check::oracle::EagerMem`]): after the run drains, every byte of
//! the simulator's materialized memory image
//! ([`System::peek_materialized`]) must equal what eager copies would have
//! produced. Faults may degrade timing; they must never change data.
//!
//! Everything is deterministic: a [`ChaosCase`] is fully described by its
//! seed, so any failure replays exactly. When a case fails, [`shrink`]
//! reduces it to a minimal reproduction — first zeroing fault-plan knobs
//! that are not needed to reproduce, then dropping workload ops — so the
//! reported case is the smallest (plan, workload) pair that still fails.
//!
//! Hangs are converted into structured [`SimError::Livelock`] values by
//! the simulator's liveness watchdog ([`System::run_with_watchdog`]),
//! carrying per-controller queue depths and per-core pipeline snapshots.
//!
//! The harness's teeth are verified with deliberately broken engines
//! ([`ChaosMutation`]): a mutant that drops CTT metadata without the
//! eager-re-copy repair must be caught by the differential check and
//! shrunk to a minimal schedule.

use mcs_check::oracle::EagerMem;
use mcs_sim::addr::PhysAddr;
use mcs_sim::config::SystemConfig;
use mcs_sim::fault::{FaultPlan, FaultStream};
use mcs_sim::program::FixedProgram;
use mcs_sim::system::{SimError, System};
use mcs_sim::uop::{StatTag, StoreData, Uop, UopKind};
use mcsquare::config::McSquareConfig;
pub use mcsquare::engine::ChaosMutation;
use mcsquare::engine::McSquareEngine;
use mcsquare::software::{memcpy_lazy_uops, LazyOpts};

/// Arena base address. The arena is divided into [`SLOTS`] slots of
/// [`SLOT_SIZE`] bytes; copies always use two *distinct* slots, which
/// guarantees the non-overlap precondition of `memcpy_lazy`.
pub const ARENA: u64 = 0x10_0000;
/// Number of arena slots.
pub const SLOTS: u64 = 16;
/// Bytes per slot.
pub const SLOT_SIZE: u64 = 4096;

/// Cycle budget per chaos run.
const RUN_BUDGET: u64 = 50_000_000;
/// Liveness-watchdog window (executed ticks without progress).
const WATCHDOG_WINDOW: u64 = 200_000;

/// One operation of a chaos workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// `memcpy_lazy(dst, src, size)` — dst line-aligned, size a multiple
    /// of the cacheline, src arbitrarily aligned, slots distinct.
    Copy { dst: u64, src: u64, size: u64 },
    /// Store `len` bytes (a deterministic pattern from `seed`) at `addr`;
    /// never crosses a cacheline boundary.
    Store { addr: u64, len: u8, seed: u8 },
    /// Load `len` bytes at `addr`; never crosses a cacheline boundary.
    Load { addr: u64, len: u8 },
}

/// A fully described chaos run: seed, fault plan, and workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosCase {
    /// Seed the case was generated from (also seeds the plan).
    pub seed: u64,
    /// What faults are injected during the run.
    pub plan: FaultPlan,
    /// The workload, executed in order with fences between ops.
    pub ops: Vec<ChaosOp>,
}

/// Why a chaos run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosFailure {
    /// The materialized memory image diverged from the eager oracle.
    Mismatch {
        /// First diverging byte address.
        addr: u64,
        /// Oracle's byte.
        want: u8,
        /// Simulator's byte.
        got: u8,
    },
    /// The simulation itself failed (timeout or livelock).
    Sim(SimError),
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::Mismatch { addr, want, got } => write!(
                f,
                "memory diverged from the eager oracle at {addr:#x}: want {want:#04x}, got {got:#04x}"
            ),
            ChaosFailure::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

/// What a successful chaos run observed (used by determinism checks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Sum of per-controller injected-fault events.
    pub fault_events: u64,
    /// Final materialized arena image.
    pub image: Vec<u8>,
}

/// The deterministic byte pattern stores write and pokes initialize with.
fn pattern_byte(seed: u8, i: u64) -> u8 {
    (i.wrapping_mul(131).wrapping_add(seed as u64) % 251) as u8
}

/// Generate a reproducible random case: `n_ops` operations under the
/// [`FaultPlan::mild`] plan for `seed`.
pub fn gen_case(seed: u64, n_ops: usize) -> ChaosCase {
    let mut rng = FaultStream::new(seed, 0xC4A05, 0);
    let mut ops = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        match rng.pick(4) {
            // Copies are half the mix: they are what the machinery under
            // test is for.
            0 | 1 => {
                let dslot = rng.pick(SLOTS);
                let mut sslot = rng.pick(SLOTS);
                if sslot == dslot {
                    sslot = (sslot + 1) % SLOTS;
                }
                let lines = 1 + rng.pick(16); // 64 B .. 1 KB
                let size = lines * 64;
                let dst = ARENA + dslot * SLOT_SIZE + rng.pick(SLOT_SIZE / 64 - lines + 1) * 64;
                let src = ARENA + sslot * SLOT_SIZE + rng.pick(SLOT_SIZE - size + 1);
                ops.push(ChaosOp::Copy { dst, src, size });
            }
            2 => {
                let line = ARENA + rng.pick(SLOTS * SLOT_SIZE / 64) * 64;
                let off = rng.pick(64);
                let len = 1 + rng.pick(64 - off);
                ops.push(ChaosOp::Store {
                    addr: line + off,
                    len: len as u8,
                    seed: (seed as u8).wrapping_add(i as u8),
                });
            }
            _ => {
                let line = ARENA + rng.pick(SLOTS * SLOT_SIZE / 64) * 64;
                let off = rng.pick(64);
                let len = 1 + rng.pick(64 - off);
                ops.push(ChaosOp::Load { addr: line + off, len: len as u8 });
            }
        }
    }
    ChaosCase { seed, plan: FaultPlan::mild(seed), ops }
}

fn fence() -> Uop {
    Uop::new(UopKind::Mfence, StatTag::App)
}

/// Lower a case's ops to the simulated program. A fence after every op
/// pins program order, so the eager oracle's sequential replay is the
/// correct specification.
fn build_uops(ops: &[ChaosOp]) -> Vec<Uop> {
    let mut uops = Vec::new();
    for op in ops {
        match op {
            ChaosOp::Copy { dst, src, size } => {
                uops.extend(memcpy_lazy_uops(
                    uops.len() as u64,
                    PhysAddr(*dst),
                    PhysAddr(*src),
                    *size,
                    &LazyOpts::default(),
                ));
            }
            ChaosOp::Store { addr, len, seed } => {
                let bytes: Vec<u8> =
                    (0..*len as u64).map(|i| pattern_byte(*seed, i)).collect();
                uops.push(Uop::new(
                    UopKind::Store {
                        addr: PhysAddr(*addr),
                        size: *len,
                        data: StoreData::Imm(bytes),
                        nontemporal: false,
                    },
                    StatTag::App,
                ));
            }
            ChaosOp::Load { addr, len } => {
                uops.push(Uop::new(
                    UopKind::Load { addr: PhysAddr(*addr), size: *len },
                    StatTag::App,
                ));
            }
        }
        uops.push(fence());
    }
    uops
}

/// Replay the case on the eager oracle: the specification of what memory
/// must contain afterwards.
fn oracle_image(case: &ChaosCase) -> EagerMem {
    let mut mem = EagerMem::new();
    let init: Vec<u8> =
        (0..SLOTS * SLOT_SIZE).map(|i| pattern_byte(case.seed as u8, i)).collect();
    mem.write(ARENA, &init);
    for op in &case.ops {
        match op {
            ChaosOp::Copy { dst, src, size } => mem.copy(*dst, *src, *size),
            ChaosOp::Store { addr, len, seed } => {
                let bytes: Vec<u8> =
                    (0..*len as u64).map(|i| pattern_byte(*seed, i)).collect();
                mem.write(*addr, &bytes);
            }
            ChaosOp::Load { .. } => {}
        }
    }
    mem
}

/// Run one chaos case to quiescence and differentially check the final
/// memory image against the eager oracle. `mutation` arms a deliberately
/// broken engine (tests of the harness itself); production callers pass
/// [`ChaosMutation::None`].
///
/// # Errors
/// [`ChaosFailure::Sim`] if the run times out or livelocks,
/// [`ChaosFailure::Mismatch`] at the first diverging byte.
pub fn run_case(case: &ChaosCase, mutation: ChaosMutation) -> Result<ChaosReport, ChaosFailure> {
    let mut cfg = SystemConfig::tiny();
    cfg.fault = case.plan.clone();
    let mut engine = McSquareEngine::with_faults(McSquareConfig::tiny(), cfg.channels, &cfg.fault);
    engine.set_chaos_mutation(mutation);
    let uops = build_uops(&case.ops);
    let mut sys =
        System::with_engine(cfg, vec![Box::new(FixedProgram::new(uops))], Box::new(engine));
    let init: Vec<u8> =
        (0..SLOTS * SLOT_SIZE).map(|i| pattern_byte(case.seed as u8, i)).collect();
    sys.poke(PhysAddr(ARENA), &init);

    let stats = sys
        .run_with_watchdog(RUN_BUDGET, WATCHDOG_WINDOW)
        .map_err(ChaosFailure::Sim)?;

    let want = oracle_image(case).read(ARENA, (SLOTS * SLOT_SIZE) as usize);
    let got = sys.peek_materialized(PhysAddr(ARENA), (SLOTS * SLOT_SIZE) as usize);
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            return Err(ChaosFailure::Mismatch { addr: ARENA + i as u64, want: *w, got: *g });
        }
    }
    Ok(ChaosReport {
        cycles: stats.cycles,
        fault_events: stats.mcs.iter().map(|m| m.fault_events()).sum(),
        image: got,
    })
}

/// Shrink a failing case to a minimal reproduction: first zero each
/// fault-plan knob that is not needed to keep the case failing, then
/// greedily drop workload ops. The returned case still fails under
/// `mutation` (greedy, so minimal with respect to single-element
/// removals, not globally minimal).
pub fn shrink(case: &ChaosCase, mutation: ChaosMutation) -> ChaosCase {
    let fails = |c: &ChaosCase| run_case(c, mutation).is_err();
    debug_assert!(fails(case), "shrink of a passing case");
    let mut cur = case.clone();

    // Knob-zeroing: each rate in turn; keep the zero if it still fails.
    let knobs: [fn(&mut FaultPlan); 7] = [
        |p| p.ecc_correctable_rate = 0.0,
        |p| p.ecc_uncorrectable_rate = 0.0,
        |p| p.link_jitter_rate = 0.0,
        |p| p.link_dup_rate = 0.0,
        |p| p.mc_stall_rate = 0.0,
        |p| p.ctt_flush_rate = 0.0,
        |p| p.ctt_drop_rate = 0.0,
    ];
    for zero in knobs {
        let mut probe = cur.clone();
        zero(&mut probe.plan);
        if fails(&probe) {
            cur = probe;
        }
    }

    // Op removal, rescanning until a fixpoint (removing one op can make
    // another removable).
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.ops.len() {
            let mut probe = cur.clone();
            probe.ops.remove(i);
            if fails(&probe) {
                cur = probe;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_case_is_deterministic_and_well_formed() {
        let a = gen_case(3, 12);
        let b = gen_case(3, 12);
        assert_eq!(a, b);
        assert_eq!(a.ops.len(), 12);
        for op in &a.ops {
            match op {
                ChaosOp::Copy { dst, src, size } => {
                    assert_eq!(dst % 64, 0, "dst line-aligned");
                    assert_eq!(size % 64, 0, "size line-multiple");
                    assert!(*size > 0);
                    // Non-overlap (memcpy precondition).
                    assert!(dst + size <= *src || src + size <= *dst);
                }
                ChaosOp::Store { addr, len, .. } | ChaosOp::Load { addr, len } => {
                    assert!(*len >= 1);
                    assert!(addr % 64 + *len as u64 <= 64, "within one line");
                }
            }
        }
    }

    #[test]
    fn oracle_replay_applies_copies_eagerly() {
        let case = ChaosCase {
            seed: 0,
            plan: FaultPlan::none(),
            ops: vec![
                ChaosOp::Store { addr: ARENA, len: 4, seed: 9 },
                ChaosOp::Copy { dst: ARENA + SLOT_SIZE, src: ARENA, size: 64 },
                ChaosOp::Store { addr: ARENA, len: 4, seed: 200 },
            ],
        };
        let mem = oracle_image(&case);
        let copied = mem.read(ARENA + SLOT_SIZE, 4);
        let expect: Vec<u8> = (0..4).map(|i| pattern_byte(9, i)).collect();
        assert_eq!(copied, expect, "copy snapshots before the later store");
    }
}
