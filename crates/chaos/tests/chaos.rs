//! Soak, determinism, mutant-detection and livelock tests of the chaos
//! harness. Every case is seeded, so failures replay exactly; build with
//! `--features check-invariants` to additionally audit coherence, CTT and
//! BPQ invariants during every run.

use mcs_chaos::{gen_case, run_case, shrink, ChaosCase, ChaosFailure, ChaosMutation, ChaosOp, ARENA, SLOT_SIZE};
use mcs_sim::fault::FaultPlan;
use mcs_sim::system::SimError;

/// The headline soak: 20 seeded randomized workloads under the mild
/// every-fault-class plan, each run to quiescence and differentially
/// checked against the eager oracle.
#[test]
fn soak_twenty_seeds_match_eager_oracle() {
    for seed in 0..20u64 {
        let case = gen_case(seed, 12);
        let report = run_case(&case, ChaosMutation::None)
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert!(report.cycles > 0);
    }
}

/// Identical (seed, plan, workload) ⇒ identical timing, fault schedule,
/// and final memory image.
#[test]
fn chaos_runs_are_deterministic() {
    let case = gen_case(5, 12);
    let a = run_case(&case, ChaosMutation::None).expect("seed 5 passes");
    let b = run_case(&case, ChaosMutation::None).expect("seed 5 passes");
    assert_eq!(a, b, "same case must replay identically");
    assert!(a.fault_events > 0, "mild plan must inject at this scale");
}

/// A deliberately broken engine — CTT metadata dropped without the eager
/// re-copy repair — must be caught by the differential check and shrunk
/// to a minimal reproduction.
#[test]
fn mutant_drop_without_repair_is_caught_and_shrunk() {
    let mut case = gen_case(11, 12);
    // Make every insert drop an entry so the mutant's data loss is
    // guaranteed to manifest.
    case.plan.ctt_drop_rate = 1.0;
    let failure = run_case(&case, ChaosMutation::DropWithoutRepair)
        .expect_err("the mutant must corrupt memory");
    assert!(
        matches!(failure, ChaosFailure::Mismatch { .. }),
        "expected an oracle mismatch, got: {failure}"
    );

    let minimal = shrink(&case, ChaosMutation::DropWithoutRepair);
    assert!(
        run_case(&minimal, ChaosMutation::DropWithoutRepair).is_err(),
        "the shrunk case must still fail"
    );
    assert!(
        minimal.ops.len() < case.ops.len(),
        "shrinking must remove irrelevant ops: {} -> {}",
        case.ops.len(),
        minimal.ops.len()
    );
    // The drop fault is load-bearing: the shrinker must have kept it.
    assert!(minimal.plan.ctt_drop_rate > 0.0);
    // And the correct engine passes the minimal case: the defect is in
    // the mutant, not the workload.
    run_case(&minimal, ChaosMutation::None).expect("correct engine passes the minimal case");
}

/// A fault plan that freezes the controllers forever must surface as a
/// structured livelock with per-component diagnostics, not a hang.
#[test]
fn frozen_controllers_report_livelock() {
    let case = ChaosCase {
        seed: 1,
        plan: FaultPlan {
            seed: 1,
            mc_stall_rate: 1.0,
            mc_stall_cycles: 100_000_000,
            ..FaultPlan::none()
        },
        ops: vec![ChaosOp::Load { addr: ARENA + 2 * SLOT_SIZE, len: 8 }],
    };
    match run_case(&case, ChaosMutation::None) {
        Err(ChaosFailure::Sim(SimError::Livelock { mc_queues, cores, .. })) => {
            assert!(
                mc_queues.iter().any(|&(r, w, f)| r + w + f > 0),
                "stuck work must be visible in the snapshot: {mc_queues:?}"
            );
            assert!(!cores.is_empty());
        }
        other => panic!("expected livelock, got {other:?}"),
    }
}

/// The empty plan through the chaos path is still a clean run — the fault
/// hooks really are no-ops when disarmed.
#[test]
fn empty_plan_injects_nothing() {
    let mut case = gen_case(2, 8);
    case.plan = FaultPlan::none();
    let report = run_case(&case, ChaosMutation::None).expect("clean run passes");
    assert_eq!(report.fault_events, 0);
}
