//! `mcs-check` CLI: bounded model checking of the Copy Tracking Table.
//!
//! ```text
//! cargo run -p mcs-check --release -- [--depth N] [--max-states N]
//!     [--ctt-capacity N] [--mutate none|no-collapse|no-flush-check|no-untrack]
//! ```
//!
//! Exit code 0 when no violation was found, 1 on a violation (with a
//! minimal reproducing trace printed), 2 on usage errors.

use mcs_check::{explore_mutant, explore_real, ExploreConfig, Mutation, OPS};

fn usage() -> ! {
    eprintln!(
        "usage: mcs-check [--depth N] [--max-states N] [--ctt-capacity N] \
         [--mutate none|no-collapse|no-flush-check|no-untrack] [--list-ops]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ExploreConfig::default();
    let mut capacity = 16usize;
    let mut mutation = Mutation::None;
    let mut use_simple = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--depth" => cfg.depth = num(&mut args),
            "--max-states" => cfg.max_states = num(&mut args),
            "--ctt-capacity" => capacity = num(&mut args),
            "--mutate" => {
                let m = args.next().unwrap_or_else(|| usage());
                mutation = Mutation::parse(&m).unwrap_or_else(|| usage());
                use_simple = true;
            }
            "--list-ops" => {
                for (name, _) in OPS {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let backend = if use_simple {
        format!("SimpleCtt (capacity {capacity}, mutation {mutation:?})")
    } else {
        format!("real mcsquare::Ctt (capacity {capacity})")
    };
    println!("mcs-check: bounded model checking of the (MC)^2 Copy Tracking Table");
    println!("  backend:    {backend}");
    println!("  ops:        {} (see --list-ops)", OPS.len());
    println!("  depth:      {}", cfg.depth);
    println!("  max states: {}", cfg.max_states);

    let start = std::time::Instant::now();
    let report = if use_simple {
        explore_mutant(capacity, mutation, &cfg)
    } else {
        explore_real(capacity, &cfg)
    };
    let elapsed = start.elapsed();

    println!("  states explored:  {}", report.states);
    println!("  transitions:      {}", report.transitions);
    println!(
        "  coverage:         {}",
        if report.complete { "state space exhausted within bounds" } else { "bounded (truncated)" }
    );
    println!("  elapsed:          {:.2?}", elapsed);

    match report.violation {
        None => {
            println!("  violations:       0");
        }
        Some(v) => {
            println!("  violations:       1 (minimal trace below)");
            println!("{v}");
            std::process::exit(1);
        }
    }
}
