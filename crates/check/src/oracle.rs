//! A byte-granular eager-memory oracle.
//!
//! [`EagerMem`] models what physical memory *would* contain if every copy
//! executed eagerly at the moment it was issued: stores write bytes, copies
//! snapshot-and-write immediately, loads read the current bytes. It has no
//! caches, no queues, no timing — which is exactly the point: the chaos
//! harness (`mcs-chaos`) replays a workload against this oracle and then
//! differentially compares the simulator's materialized memory image
//! ([`mcs_sim::system::System::peek_materialized`]) against it. Any
//! divergence is a correctness bug in the lazy machinery (or a deliberately
//! armed chaos mutant).
//!
//! Unwritten bytes read as zero, matching [`mcs_sim::data::SparseMem`].

use std::collections::HashMap;

/// Flat, sparse, byte-granular memory with eager copy semantics.
#[derive(Debug, Default, Clone)]
pub struct EagerMem {
    bytes: HashMap<u64, u8>,
}

impl EagerMem {
    /// An empty (all-zero) memory.
    pub fn new() -> EagerMem {
        EagerMem::default()
    }

    /// Store `data` at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            if *b == 0 {
                self.bytes.remove(&(addr + i as u64));
            } else {
                self.bytes.insert(addr + i as u64, *b);
            }
        }
    }

    /// Copy `size` bytes from `src` to `dst`, eagerly and atomically
    /// (snapshot first, so overlapping ranges behave like `memmove`).
    pub fn copy(&mut self, dst: u64, src: u64, size: u64) {
        let snapshot: Vec<u8> = (0..size).map(|i| self.read_byte(src + i)).collect();
        self.write(dst, &snapshot);
    }

    /// Read one byte.
    pub fn read_byte(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_byte(addr + i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = EagerMem::new();
        assert_eq!(m.read(0x1000, 4), vec![0; 4]);
    }

    #[test]
    fn writes_then_reads_round_trip() {
        let mut m = EagerMem::new();
        m.write(0x40, &[1, 2, 3]);
        assert_eq!(m.read(0x3F, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn copy_is_eager_and_snapshotted() {
        let mut m = EagerMem::new();
        m.write(0x100, &[7; 64]);
        m.copy(0x200, 0x100, 64);
        // Later source writes do not affect the completed copy.
        m.write(0x100, &[9; 64]);
        assert_eq!(m.read(0x200, 64), vec![7; 64]);
        assert_eq!(m.read(0x100, 64), vec![9; 64]);
    }

    #[test]
    fn overlapping_copy_behaves_like_memmove() {
        let mut m = EagerMem::new();
        m.write(0x100, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.copy(0x104, 0x100, 8);
        assert_eq!(m.read(0x104, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
