//! # mcs-check — bounded model checking for the (MC)² Copy Tracking Table
//!
//! The CTT ([`mcsquare::ctt`]) promises four structural invariants
//! (destination uniqueness, chain collapsing, merging, capacity) plus the
//! semantic property that matters to software: **lazy memory always reads
//! as if every registered copy had executed eagerly**. This crate checks
//! both, exhaustively, over a small bounded universe:
//!
//! * A flat arena of three 8-line regions (`D`, `S0`, `S1`) models
//!   physical memory at cacheline granularity.
//! * A curated set of operations ([`OPS`]) — overlapping inserts, chain
//!   collapses, flush-triggering inserts, destination and source writes,
//!   drains, bounce reads, and frees — drives the table through every
//!   documented transition.
//! * A breadth-first search enumerates all operation interleavings up to a
//!   depth bound, deduplicating states by hash. BFS order means the first
//!   violation found carries a *minimal* reproducing trace.
//! * After every step the checker asserts the structural invariants
//!   directly from the entry list (not via the table's own self-check, so
//!   a broken table cannot vouch for itself) and compares every line of
//!   lazily-resolved memory against a shadow oracle that copies eagerly.
//!
//! Deliberately broken table implementations ([`SimpleCtt`] with a
//! [`Mutation`]) demonstrate that the checker actually detects the bugs it
//! is aimed at: skipped chain collapsing, a missing flush-before-insert
//! check, and writes that fail to untrack the destination.
//!
//! Run it as a CLI (`cargo run -p mcs-check --release`) or via the crate's
//! integration tests.

pub mod oracle;

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use mcs_sim::addr::{PhysAddr, CACHELINE};
use mcsquare::ctt::{Ctt, CttError, Fragment};
use mcsquare::ranges::ByteRange;

/// Lines per arena region.
pub const LINES_PER_REGION: usize = 8;
/// Number of regions (`D`, `S0`, `S1`).
pub const REGIONS: usize = 3;
/// Total cachelines in the modelled universe.
pub const NUM_LINES: usize = REGIONS * LINES_PER_REGION;
/// Base physical address of each region. Regions are deliberately
/// non-adjacent so entries can never merge across them.
pub const REGION_BASES: [u64; REGIONS] = [0x1000, 0x2000, 0x3000];
/// Region display names (indexes match [`REGION_BASES`]).
pub const REGION_NAMES: [&str; REGIONS] = ["D", "S0", "S1"];

/// Physical address of arena line `i`.
pub fn addr_of(line: usize) -> PhysAddr {
    assert!(line < NUM_LINES);
    PhysAddr(REGION_BASES[line / LINES_PER_REGION] + (line % LINES_PER_REGION) as u64 * CACHELINE)
}

/// Arena line index of a (line-aligned) physical address, if inside the
/// arena.
pub fn idx_of(addr: PhysAddr) -> Option<usize> {
    if !addr.0.is_multiple_of(CACHELINE) {
        return None;
    }
    for (r, base) in REGION_BASES.iter().enumerate() {
        let span = LINES_PER_REGION as u64 * CACHELINE;
        if (*base..base + span).contains(&addr.0) {
            return Some(r * LINES_PER_REGION + ((addr.0 - base) / CACHELINE) as usize);
        }
    }
    None
}

/// Human-readable name of an arena line (`D[3]`, `S1[0]`, ...).
pub fn line_name(line: usize) -> String {
    format!("{}[{}]", REGION_NAMES[line / LINES_PER_REGION], line % LINES_PER_REGION)
}

// ---------------------------------------------------------------------------
// The table interface under test
// ---------------------------------------------------------------------------

/// The slice of the CTT interface the model checker drives. Implemented by
/// the real [`mcsquare::Ctt`] and by [`SimpleCtt`] (which can carry an
/// injected bug), so the checker can demonstrate it detects broken tables.
pub trait CttLike: Clone {
    /// Register a prospective copy (see [`Ctt::try_insert`]).
    fn try_insert(&mut self, dst: PhysAddr, src: PhysAddr, size: u64) -> Result<(), CttError>;
    /// Untrack destination bytes after a write reached memory.
    fn remove_dst(&mut self, addr: PhysAddr, len: u64);
    /// Drop entries fully contained in the range (MCFREE).
    fn free_contained(&mut self, addr: PhysAddr, len: u64) -> usize;
    /// Tracked fragments of the cacheline containing `line`.
    fn lookup_line(&self, line: PhysAddr) -> Vec<Fragment>;
    /// Destination lines of entries whose source overlaps `r`.
    fn dst_lines_with_src_in(&self, r: ByteRange) -> Vec<PhysAddr>;
    /// Whether any byte of the range is a tracked destination.
    fn covers_dst(&self, addr: PhysAddr, len: u64) -> bool;
    /// Smallest entry not overlapping `exclude` (drain policy).
    fn smallest_entry(&self, exclude: &[ByteRange]) -> Option<(ByteRange, PhysAddr)>;
    /// All (destination range, source base) entries in address order.
    fn entries(&self) -> Vec<(ByteRange, PhysAddr)>;
    /// Entry capacity.
    fn capacity(&self) -> usize;
    /// Short description for reports.
    fn describe(&self) -> String;
}

impl CttLike for Ctt {
    fn try_insert(&mut self, dst: PhysAddr, src: PhysAddr, size: u64) -> Result<(), CttError> {
        Ctt::try_insert(self, dst, src, size)
    }

    fn remove_dst(&mut self, addr: PhysAddr, len: u64) {
        Ctt::remove_dst(self, addr, len)
    }

    fn free_contained(&mut self, addr: PhysAddr, len: u64) -> usize {
        Ctt::free_contained(self, addr, len)
    }

    fn lookup_line(&self, line: PhysAddr) -> Vec<Fragment> {
        Ctt::lookup_line(self, line)
    }

    fn dst_lines_with_src_in(&self, r: ByteRange) -> Vec<PhysAddr> {
        Ctt::dst_lines_with_src_in(self, r)
    }

    fn covers_dst(&self, addr: PhysAddr, len: u64) -> bool {
        Ctt::covers_dst(self, addr, len)
    }

    fn smallest_entry(&self, exclude: &[ByteRange]) -> Option<(ByteRange, PhysAddr)> {
        Ctt::smallest_entry(self, |_| true, exclude)
    }

    fn entries(&self) -> Vec<(ByteRange, PhysAddr)> {
        self.iter().collect()
    }

    fn capacity(&self) -> usize {
        Ctt::capacity(self)
    }

    fn describe(&self) -> String {
        format!("real mcsquare::Ctt (capacity {})", Ctt::capacity(self))
    }
}

// ---------------------------------------------------------------------------
// A second, mutable implementation for mutation testing
// ---------------------------------------------------------------------------

/// An injectable bug for [`SimpleCtt`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Faithful behaviour (differential reference against the real table).
    None,
    /// Skip chain collapsing: copy B→C after A→B is stored as B→C.
    NoCollapse,
    /// Skip the flush-before-insert rule: a new destination may silently
    /// clobber bytes older entries still need as sources.
    NoFlushCheck,
    /// Destination writes do not untrack the written bytes.
    NoUntrack,
}

impl Mutation {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "no-collapse" => Some(Mutation::NoCollapse),
            "no-flush-check" => Some(Mutation::NoFlushCheck),
            "no-untrack" => Some(Mutation::NoUntrack),
            _ => None,
        }
    }
}

/// A small, independent CTT implementation (a sorted `Vec` of entries)
/// whose behaviour can be selectively broken via [`Mutation`]. With
/// `Mutation::None` it must be observationally equivalent to the real
/// table; with a bug injected, the model checker must find a violating
/// trace — that is the mutation smoke test.
#[derive(Clone)]
pub struct SimpleCtt {
    /// (destination range, source base), sorted by destination start.
    entries: Vec<(ByteRange, u64)>,
    capacity: usize,
    mutation: Mutation,
}

impl SimpleCtt {
    /// New table with the given capacity and injected bug.
    pub fn new(capacity: usize, mutation: Mutation) -> SimpleCtt {
        SimpleCtt { entries: Vec::new(), capacity, mutation }
    }

    /// Trim/split entries so nothing overlaps `r`.
    fn remove_range(&mut self, r: ByteRange) {
        let mut out = Vec::with_capacity(self.entries.len() + 1);
        for (dst, src) in self.entries.drain(..) {
            match dst.intersect(&r) {
                None => out.push((dst, src)),
                Some(ix) => {
                    if dst.start < ix.start {
                        out.push((ByteRange::new(dst.start, ix.start), src));
                    }
                    if ix.end < dst.end {
                        out.push((ByteRange::new(ix.end, dst.end), src + (ix.end - dst.start)));
                    }
                }
            }
        }
        self.entries = out;
        self.normalize();
    }

    /// Sort and coalesce adjacent entries whose source continues.
    fn normalize(&mut self) {
        self.entries.sort_by_key(|(r, _)| r.start);
        let mut out: Vec<(ByteRange, u64)> = Vec::with_capacity(self.entries.len());
        for (dst, src) in self.entries.drain(..) {
            if let Some((prev, psrc)) = out.last_mut() {
                if prev.end == dst.start && *psrc + prev.len() == src {
                    prev.end = dst.end;
                    continue;
                }
            }
            out.push((dst, src));
        }
        self.entries = out;
    }
}

impl CttLike for SimpleCtt {
    fn try_insert(&mut self, dst: PhysAddr, src: PhysAddr, size: u64) -> Result<(), CttError> {
        let dst_r = ByteRange::sized(dst.0, size);
        let src_r = ByteRange::sized(src.0, size);
        if self.mutation != Mutation::NoFlushCheck {
            let dependents = self.dst_lines_with_src_in(dst_r);
            if !dependents.is_empty() {
                return Err(CttError::NeedsFlush(dependents));
            }
        }
        // Chain collapsing: redirect parts of the new source that are
        // themselves tracked destinations to their original sources.
        let mut pieces: Vec<(ByteRange, u64)> = Vec::new();
        if self.mutation == Mutation::NoCollapse {
            pieces.push((dst_r, src_r.start));
        } else {
            let mut cursor = src_r.start;
            let mut overlaps: Vec<(ByteRange, u64)> = self
                .entries
                .iter()
                .filter_map(|(d, s)| d.intersect(&src_r).map(|ix| (ix, s + (ix.start - d.start))))
                .collect();
            overlaps.sort_by_key(|(r, _)| r.start);
            for (seg, redirected) in overlaps {
                if seg.start > cursor {
                    let d0 = dst_r.start + (cursor - src_r.start);
                    pieces.push((ByteRange::new(d0, d0 + (seg.start - cursor)), cursor));
                }
                let d0 = dst_r.start + (seg.start - src_r.start);
                pieces.push((ByteRange::new(d0, d0 + seg.len()), redirected));
                cursor = seg.end;
            }
            if cursor < src_r.end {
                let d0 = dst_r.start + (cursor - src_r.start);
                pieces.push((ByteRange::new(d0, d0 + (src_r.end - cursor)), cursor));
            }
        }
        if self.entries.len() + pieces.len() + 1 > self.capacity {
            return Err(CttError::Full);
        }
        self.remove_range(dst_r);
        self.entries.extend(pieces);
        self.normalize();
        Ok(())
    }

    fn remove_dst(&mut self, addr: PhysAddr, len: u64) {
        if self.mutation == Mutation::NoUntrack {
            return;
        }
        self.remove_range(ByteRange::sized(addr.0, len));
    }

    fn free_contained(&mut self, addr: PhysAddr, len: u64) -> usize {
        let q = ByteRange::sized(addr.0, len);
        let before = self.entries.len();
        self.entries.retain(|(dst, _)| !q.contains_range(dst));
        before - self.entries.len()
    }

    fn lookup_line(&self, line: PhysAddr) -> Vec<Fragment> {
        let base = line.line_base().0;
        let q = ByteRange::new(base, base + CACHELINE);
        let mut out: Vec<Fragment> = self
            .entries
            .iter()
            .filter_map(|(d, s)| {
                d.intersect(&q).map(|ix| Fragment {
                    dst: PhysAddr(ix.start),
                    len: ix.len(),
                    src: PhysAddr(s + (ix.start - d.start)),
                })
            })
            .collect();
        out.sort_by_key(|f| f.dst.0);
        out
    }

    fn dst_lines_with_src_in(&self, r: ByteRange) -> Vec<PhysAddr> {
        let mut lines: Vec<PhysAddr> = Vec::new();
        for (dst, src) in &self.entries {
            let src_r = ByteRange::sized(*src, dst.len());
            if let Some(ix) = src_r.intersect(&r) {
                let off = ix.start - src_r.start;
                let sub = ByteRange::new(dst.start + off, dst.start + off + ix.len());
                lines.extend(mcs_sim::addr::lines_of(PhysAddr(sub.start), sub.len()));
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    fn covers_dst(&self, addr: PhysAddr, len: u64) -> bool {
        let q = ByteRange::sized(addr.0, len);
        self.entries.iter().any(|(d, _)| d.overlaps(&q))
    }

    fn smallest_entry(&self, exclude: &[ByteRange]) -> Option<(ByteRange, PhysAddr)> {
        self.entries
            .iter()
            .filter(|(r, _)| !exclude.iter().any(|x| x.overlaps(r)))
            .min_by_key(|(r, _)| r.len())
            .map(|(r, s)| (*r, PhysAddr(*s)))
    }

    fn entries(&self) -> Vec<(ByteRange, PhysAddr)> {
        self.entries.iter().map(|(r, s)| (*r, PhysAddr(*s))).collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn describe(&self) -> String {
        format!("SimpleCtt (capacity {}, mutation {:?})", self.capacity, self.mutation)
    }
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// One transition of the model. All fields are arena line indexes.
#[derive(Copy, Clone, Debug)]
pub enum Op {
    /// MCLAZY: register `lines` cachelines `dst ← src`.
    Insert { dst: usize, src: usize, lines: usize },
    /// A store to `line` reaching memory: flushes dependents if the line
    /// is a source, untracks if it is a destination.
    Write { line: usize },
    /// Background drain of the smallest entry.
    Drain,
    /// Demand read of `line`: if tracked, reconstruct from the source,
    /// verify against the oracle, write back and untrack.
    BounceRead { line: usize },
    /// MCFREE over `lines` cachelines starting at `start`.
    Free { start: usize, lines: usize },
}

/// The curated transition set: every documented CTT rule is reachable
/// within a couple of steps. Line indexes: `D` = 0..8, `S0` = 8..16,
/// `S1` = 16..24.
pub const OPS: &[(&str, Op)] = &[
    ("insert D[0..2] <- S0[0..2]", Op::Insert { dst: 0, src: 8, lines: 2 }),
    // Overlaps the first insert's destination: exercises trimming.
    ("insert D[1..3] <- S1[0..2]", Op::Insert { dst: 1, src: 16, lines: 2 }),
    // Source is a tracked destination after the first insert: exercises
    // chain collapsing (stored as S1[4] <- S0[0]).
    ("insert S1[4] <- D[0]", Op::Insert { dst: 20, src: 0, lines: 1 }),
    ("insert S0[4..6] <- S1[2..4]", Op::Insert { dst: 12, src: 18, lines: 2 }),
    // Destination clobbers the second insert's source: exercises the
    // NeedsFlush rule (flush dependents, then retry).
    ("insert S1[0] <- S0[6]", Op::Insert { dst: 16, src: 14, lines: 1 }),
    ("write D[1]", Op::Write { line: 1 }),
    ("write S0[0]", Op::Write { line: 8 }),
    ("write S1[2]", Op::Write { line: 18 }),
    ("drain smallest entry", Op::Drain),
    ("bounce-read D[0]", Op::BounceRead { line: 0 }),
    ("bounce-read D[2]", Op::BounceRead { line: 2 }),
    ("free D[0..8]", Op::Free { start: 0, lines: 8 }),
];

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

/// One model state: the table under test, the lazy world's raw memory
/// contents, and the eager-copy oracle. Memory is modelled one `u64` tag
/// per cacheline (all operations are line-granular).
#[derive(Clone)]
pub struct State<B: CttLike> {
    /// The table under test.
    pub ctt: B,
    /// Raw lazy-world memory: what a DRAM read would return before any
    /// CTT-driven reconstruction.
    pub lazy: [u64; NUM_LINES],
    /// Shadow oracle: memory as if every copy had executed eagerly.
    pub oracle: [u64; NUM_LINES],
}

impl<B: CttLike> State<B> {
    /// Initial state: every line holds a distinct tag, both worlds agree.
    pub fn initial(ctt: B) -> State<B> {
        let mut lazy = [0u64; NUM_LINES];
        for (i, v) in lazy.iter_mut().enumerate() {
            *v = 0x1000 + i as u64;
        }
        State { ctt, lazy, oracle: lazy }
    }

    /// What a coherent read of arena line `i` returns in the lazy world:
    /// the raw contents, unless the line is a tracked destination, in
    /// which case the controller bounces to the source. Single-level
    /// resolution is sufficient because sources are never themselves
    /// tracked destinations (chain collapsing); if that invariant is
    /// broken the structural check reports it first.
    pub fn resolve_line(&self, i: usize) -> Result<u64, String> {
        let addr = addr_of(i);
        let frags = self.ctt.lookup_line(addr);
        if frags.is_empty() {
            return Ok(self.lazy[i]);
        }
        // Line-granular operations can only produce whole-line coverage.
        if frags.len() != 1 || frags[0].dst != addr || frags[0].len != CACHELINE {
            return Err(format!(
                "line {} has sub-line tracking {:?} despite line-granular ops",
                line_name(i),
                frags
            ));
        }
        let src = idx_of(frags[0].src)
            .ok_or_else(|| format!("entry source {:#x} outside the arena", frags[0].src.0))?;
        Ok(self.lazy[src])
    }

    /// Execute the copy for destination line `addr` now: write the
    /// reconstructed value to memory and untrack it.
    fn materialize(&mut self, addr: PhysAddr) -> Result<(), String> {
        let i = idx_of(addr)
            .ok_or_else(|| format!("materialize target {:#x} outside the arena", addr.0))?;
        let v = self.resolve_line(i)?;
        self.lazy[i] = v;
        self.ctt.remove_dst(addr, CACHELINE);
        Ok(())
    }

    /// Apply one operation. `tag` is the value written by `Op::Write`
    /// (distinct per trace position so overwrites are observable).
    /// Returns `Err` when the step itself exposes a violation.
    pub fn apply(&mut self, op: Op, tag: u64) -> Result<(), String> {
        match op {
            Op::Insert { dst, src, lines } => {
                let (d, s) = (addr_of(dst), addr_of(src));
                let size = lines as u64 * CACHELINE;
                match self.ctt.try_insert(d, s, size) {
                    Ok(()) => {}
                    Err(CttError::Full) => return Ok(()), // dropped in both worlds
                    Err(CttError::NeedsFlush(dep)) => {
                        // The MC flushes the dependent destinations, then
                        // retries. A second NeedsFlush means the flush
                        // rule under-approximates — a table bug.
                        for l in dep {
                            self.materialize(l)?;
                        }
                        match self.ctt.try_insert(d, s, size) {
                            Ok(()) => {}
                            Err(CttError::Full) => return Ok(()),
                            Err(CttError::NeedsFlush(rest)) => {
                                return Err(format!(
                                    "insert still needs flushing {rest:?} after flushing \
                                     every reported dependent"
                                ));
                            }
                        }
                    }
                }
                // The oracle copies eagerly.
                for k in 0..lines {
                    self.oracle[dst + k] = self.oracle[src + k];
                }
            }
            Op::Write { line } => {
                let addr = addr_of(line);
                // Source write: dependent destinations must be copied out
                // before the old bytes are clobbered.
                for l in self.ctt.dst_lines_with_src_in(ByteRange::sized(addr.0, CACHELINE)) {
                    self.materialize(l)?;
                }
                // Destination write: the written bytes are no longer a
                // prospective copy.
                self.ctt.remove_dst(addr, CACHELINE);
                self.lazy[line] = tag;
                self.oracle[line] = tag;
            }
            Op::Drain => {
                if let Some((r, _)) = self.ctt.smallest_entry(&[]) {
                    for l in mcs_sim::addr::lines_of(PhysAddr(r.start), r.len()) {
                        self.materialize(l)?;
                    }
                }
            }
            Op::BounceRead { line } => {
                let addr = addr_of(line);
                if self.ctt.covers_dst(addr, CACHELINE) {
                    let v = self.resolve_line(line)?;
                    if v != self.oracle[line] {
                        return Err(format!(
                            "bounce read of {} returned {:#x}, eager copy has {:#x}",
                            line_name(line),
                            v,
                            self.oracle[line]
                        ));
                    }
                    // Post-bounce writeback: the reconstructed line goes
                    // to memory and the entry is dropped.
                    self.lazy[line] = v;
                    self.ctt.remove_dst(addr, CACHELINE);
                }
            }
            Op::Free { start, lines } => {
                let r = ByteRange::sized(addr_of(start).0, lines as u64 * CACHELINE);
                // The model reuses the freed range immediately (contents
                // canonicalised to zero), so entries sourcing from it must
                // be copied out first — same rule as a source write.
                for l in self.ctt.dst_lines_with_src_in(r) {
                    self.materialize(l)?;
                }
                self.ctt.free_contained(PhysAddr(r.start), r.len());
                if self.ctt.covers_dst(PhysAddr(r.start), r.len()) {
                    return Err(format!(
                        "free of {r:?} left tracked destinations inside the freed range"
                    ));
                }
                for k in start..start + lines {
                    self.lazy[k] = 0;
                    self.oracle[k] = 0;
                }
            }
        }
        Ok(())
    }

    /// Structural invariants plus data equivalence, computed from the
    /// entry list and memories only (never via the table's own
    /// self-check).
    pub fn check(&self) -> Result<(), String> {
        let arena = |r: &ByteRange| {
            REGION_BASES.iter().any(|b| {
                ByteRange::sized(*b, LINES_PER_REGION as u64 * CACHELINE).contains_range(r)
            })
        };
        let entries = self.ctt.entries();
        for w in entries.windows(2) {
            // Destination uniqueness: disjoint, sorted destinations.
            if w[0].0.end > w[1].0.start {
                return Err(format!("destinations overlap: {:?} and {:?}", w[0].0, w[1].0));
            }
            // Merging: touching entries with a continuing source must
            // have coalesced into one.
            if w[0].0.end == w[1].0.start && w[0].1 .0 + w[0].0.len() == w[1].1 .0 {
                return Err(format!("unmerged contiguous entries: {:?} and {:?}", w[0].0, w[1].0));
            }
        }
        for (dst, src) in &entries {
            let src_r = ByteRange::sized(src.0, dst.len());
            if !arena(dst) || !arena(&src_r) {
                return Err(format!("entry {dst:?} <- {src_r:?} escapes the arena"));
            }
            // Chain collapsing: no source may be a tracked destination.
            for (dst2, _) in &entries {
                if src_r.overlaps(dst2) {
                    return Err(format!("chain: source {src_r:?} overlaps destination {dst2:?}"));
                }
            }
        }
        // Capacity: inserts reserve one segment of headroom, and a
        // destination write may split one entry into two, so the table
        // may transiently hold capacity + 1 segments but never more.
        if entries.len() > self.ctt.capacity() + 1 {
            return Err(format!(
                "{} entries exceed capacity {} (+1 headroom)",
                entries.len(),
                self.ctt.capacity()
            ));
        }
        // Data equivalence: lazy resolution matches the eager oracle.
        for i in 0..NUM_LINES {
            let got = self.resolve_line(i)?;
            if got != self.oracle[i] {
                return Err(format!(
                    "line {} resolves to {:#x} but eager copy has {:#x}",
                    line_name(i),
                    got,
                    self.oracle[i]
                ));
            }
        }
        Ok(())
    }

    /// Canonical hash for state deduplication.
    pub fn hash_key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (r, s) in self.ctt.entries() {
            (r.start, r.end, s.0).hash(&mut h);
        }
        self.lazy.hash(&mut h);
        self.oracle.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// Breadth-first exploration
// ---------------------------------------------------------------------------

/// Exploration bounds.
#[derive(Copy, Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum trace length.
    pub depth: usize,
    /// Cap on distinct states (safety valve; exploration reports
    /// truncation when hit).
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { depth: 5, max_states: 250_000 }
    }
}

/// A violating trace: the operations from the initial state (minimal by
/// BFS order) and what went wrong after the last one.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Operation names from the initial state, in order.
    pub trace: Vec<&'static str>,
    /// The failed check's message.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation after {} step(s):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  {}. {op}", i + 1)?;
        }
        write!(f, "  => {}", self.message)
    }
}

/// Exploration outcome.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct states visited (including the initial state).
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// First violation found, with its minimal trace.
    pub violation: Option<Violation>,
    /// Whether the state space was exhausted within the bounds.
    pub complete: bool,
}

/// Exhaustively explore all interleavings of [`OPS`] from `initial` up to
/// the configured depth. Stops at the first violation (whose trace is
/// minimal: BFS visits shorter traces first).
pub fn explore<B: CttLike>(initial: State<B>, cfg: &ExploreConfig) -> Report {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(initial.hash_key());
    let mut frontier: Vec<(State<B>, Vec<u8>)> = vec![(initial, Vec::new())];
    let mut report = Report { states: 1, transitions: 0, violation: None, complete: true };

    for depth in 0..cfg.depth {
        let mut next = Vec::new();
        for (state, trace) in &frontier {
            for (op_idx, (name, op)) in OPS.iter().enumerate() {
                if report.states >= cfg.max_states {
                    report.complete = false;
                    return report;
                }
                let mut child = state.clone();
                report.transitions += 1;
                // Distinct write tag per (trace position, op) so every
                // store is observable.
                let tag = 0xA000_0000 + (depth as u64) * 0x100 + op_idx as u64;
                if let Err(message) = child.apply(*op, tag).and_then(|()| child.check()) {
                    let mut ops: Vec<&'static str> =
                        trace.iter().map(|&i| OPS[i as usize].0).collect();
                    ops.push(name);
                    report.violation = Some(Violation { trace: ops, message });
                    report.complete = false;
                    return report;
                }
                if seen.insert(child.hash_key()) {
                    report.states += 1;
                    let mut t = trace.clone();
                    t.push(op_idx as u8);
                    next.push((child, t));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    report
}

/// Explore with the real CTT implementation.
pub fn explore_real(capacity: usize, cfg: &ExploreConfig) -> Report {
    explore(State::initial(Ctt::new(capacity)), cfg)
}

/// Explore with [`SimpleCtt`] carrying `mutation`.
pub fn explore_mutant(capacity: usize, mutation: Mutation, cfg: &ExploreConfig) -> Report {
    explore(State::initial(SimpleCtt::new(capacity, mutation)), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trips() {
        for i in 0..NUM_LINES {
            assert_eq!(idx_of(addr_of(i)), Some(i));
        }
        assert_eq!(idx_of(PhysAddr(0x0)), None);
        assert_eq!(idx_of(PhysAddr(0x1001)), None, "unaligned");
        assert_eq!(idx_of(PhysAddr(0x1200)), None, "one past D");
        assert_eq!(line_name(0), "D[0]");
        assert_eq!(line_name(17), "S1[1]");
    }

    #[test]
    fn initial_state_checks_clean() {
        let st = State::initial(Ctt::new(16));
        st.check().unwrap();
    }

    #[test]
    fn simple_ctt_matches_real_on_basic_ops() {
        // Differential spot-check: chain collapse + overlap trim behave
        // identically.
        let mut real = Ctt::new(16);
        let mut simple = SimpleCtt::new(16, Mutation::None);
        for t in [(0usize, 8usize, 2usize), (20, 0, 1), (1, 16, 2)] {
            let (d, s, n) = (addr_of(t.0), addr_of(t.1), t.2 as u64 * CACHELINE);
            let a = CttLike::try_insert(&mut real, d, s, n);
            let b = simple.try_insert(d, s, n);
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(CttLike::entries(&real), simple.entries());
    }

    #[test]
    fn write_tag_is_observable() {
        let mut st = State::initial(Ctt::new(16));
        st.apply(Op::Write { line: 3 }, 0xDEAD).unwrap();
        assert_eq!(st.lazy[3], 0xDEAD);
        assert_eq!(st.oracle[3], 0xDEAD);
        st.check().unwrap();
    }
}
