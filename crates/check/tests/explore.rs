//! Exploration and mutation smoke tests for the bounded model checker.
//!
//! The positive tests assert the real CTT survives exhaustive exploration
//! with zero violations; the mutation tests assert that deliberately
//! broken tables are caught, each with a short (minimal-by-BFS) trace.

use mcs_check::{explore_mutant, explore_real, ExploreConfig, Mutation};

#[test]
fn real_ctt_explores_10k_states_without_violation() {
    let cfg = ExploreConfig { depth: 5, max_states: 250_000 };
    let report = explore_real(16, &cfg);
    assert!(report.violation.is_none(), "unexpected violation: {:?}", report.violation);
    assert!(
        report.states >= 10_000,
        "expected >= 10k distinct states, explored {}",
        report.states
    );
}

#[test]
fn real_ctt_survives_tiny_capacity() {
    // Capacity 2 forces the Full path on nearly every insert; the model
    // treats rejected inserts as dropped in both worlds, so equivalence
    // must still hold.
    let cfg = ExploreConfig { depth: 5, max_states: 100_000 };
    let report = explore_real(2, &cfg);
    assert!(report.violation.is_none(), "unexpected violation: {:?}", report.violation);
}

#[test]
fn faithful_simple_ctt_is_clean() {
    // The reference reimplementation with no mutation must also pass —
    // otherwise the mutation tests below would prove nothing.
    let cfg = ExploreConfig { depth: 4, max_states: 100_000 };
    let report = explore_mutant(16, Mutation::None, &cfg);
    assert!(report.violation.is_none(), "unexpected violation: {:?}", report.violation);
}

fn assert_caught(mutation: Mutation, max_trace: usize) {
    let cfg = ExploreConfig { depth: 4, max_states: 100_000 };
    let report = explore_mutant(16, mutation, &cfg);
    let v = report
        .violation
        .unwrap_or_else(|| panic!("{mutation:?} was not detected in {} states", report.states));
    assert!(
        v.trace.len() <= max_trace,
        "{mutation:?}: expected a trace of <= {max_trace} steps, got {}: {v}",
        v.trace.len()
    );
    assert!(!v.message.is_empty());
}

#[test]
fn mutation_no_collapse_is_caught() {
    // Copy A→B then B→C must be stored as A→C; without collapsing the
    // second entry's source is a tracked destination. Two steps suffice.
    assert_caught(Mutation::NoCollapse, 2);
}

#[test]
fn mutation_no_flush_check_is_caught() {
    // Inserting a destination over an existing entry's source without
    // flushing leaves that entry reading clobbered bytes. Two steps.
    assert_caught(Mutation::NoFlushCheck, 2);
}

#[test]
fn mutation_no_untrack_is_caught() {
    // A destination write that does not untrack leaves the stale source
    // shadowing the freshly written value. Two steps.
    assert_caught(Mutation::NoUntrack, 2);
}
