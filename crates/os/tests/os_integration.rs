//! Integration tests for the kernel model: pipe ring-buffer wraparound
//! under sustained traffic, and copy-on-write fault paths across fork
//! chains.
//!
//! The inline unit tests in `pipe.rs`/`vm.rs` check single operations;
//! these tests check the *sequences* the Fig. 18/19 experiments depend
//! on — a pipe wrapping several times while staying FIFO, and refcount /
//! remap behaviour across multiple forks and faults.

use mcs_os::pipe::{CopyMode, Pipe};
use mcs_os::vm::{CowCopyMode, Kernel, PageSize, VirtAddr, Vm};
use mcs_os::OsCosts;
use mcs_sim::addr::{PhysAddr, PAGE_2M, PAGE_4K};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use std::collections::BTreeSet;

const RING: PhysAddr = PhysAddr(0x100000);
const CAP: u64 = 4096;

fn pipe() -> Pipe {
    Pipe::new(RING, CAP, OsCosts::free())
}

/// Ring-buffer byte offsets covered by `Store` uops that land inside the
/// ring (a pipe write's copy destinations).
fn store_ring_bytes(uops: &[Uop]) -> BTreeSet<u64> {
    let mut set = BTreeSet::new();
    for u in uops {
        if let UopKind::Store { addr, size, .. } = u.kind {
            if addr.0 >= RING.0 && addr.0 < RING.0 + CAP {
                for b in 0..size as u64 {
                    set.insert(addr.0 + b - RING.0);
                }
            }
        }
    }
    set
}

/// Ring-buffer byte offsets covered by `Load` uops that land inside the
/// ring (a pipe read's copy sources).
fn load_ring_bytes(uops: &[Uop]) -> BTreeSet<u64> {
    let mut set = BTreeSet::new();
    for u in uops {
        if let UopKind::Load { addr, size } = u.kind {
            if addr.0 >= RING.0 && addr.0 < RING.0 + CAP {
                for b in 0..size as u64 {
                    set.insert(addr.0 + b - RING.0);
                }
            }
        }
    }
    set
}

/// The ring offsets `[head, head+len)` modulo the capacity.
fn expect_interval(head: u64, len: u64) -> BTreeSet<u64> {
    (0..len).map(|i| (head + i) & (CAP - 1)).collect()
}

#[test]
fn multi_wrap_writes_cover_expected_ring_intervals() {
    let mut p = pipe();
    let src = PhysAddr(0x800000);
    let chunk = 1536u64; // 24 lines: 8 chunks = 3 full trips around the ring
    let mut head = 0u64;
    for k in 0..8 {
        let (w, moved) = p.write_uops(0, src, chunk, CopyMode::Eager);
        assert_eq!(moved, chunk, "iteration {k}: pipe was drained, write fits");
        assert_eq!(
            store_ring_bytes(&w),
            expect_interval(head, chunk),
            "iteration {k}: write must land at the ring head, wrapping mod capacity"
        );
        let (r, moved) = p.read_uops(0, PhysAddr(0x900000), chunk, CopyMode::Eager);
        assert_eq!(moved, chunk);
        assert_eq!(
            load_ring_bytes(&r),
            expect_interval(head, chunk),
            "iteration {k}: FIFO — the read must source exactly the bytes just written"
        );
        head += chunk;
    }
    assert_eq!(p.available(), 0);
    assert_eq!(p.free_space(), CAP);
}

#[test]
fn wrapping_write_splits_into_two_contiguous_runs() {
    let mut p = pipe();
    let src = PhysAddr(0x800000);
    // Advance head to 3072 and drain.
    p.write_uops(0, src, 3072, CopyMode::Eager);
    p.read_uops(0, PhysAddr(0x900000), 3072, CopyMode::Eager);
    // A 1536-byte write now wraps: 1024 bytes at 3072..4096, 512 at 0..512.
    let (w, moved) = p.write_uops(0, src, 1536, CopyMode::Eager);
    assert_eq!(moved, 1536);
    let covered = store_ring_bytes(&w);
    let mut expected: BTreeSet<u64> = (3072..4096).collect();
    expected.extend(0..512);
    assert_eq!(covered, expected);
    // The source side is read linearly — no wrap on the user buffer.
    let src_loads: Vec<u64> = w
        .iter()
        .filter_map(|u| match u.kind {
            UopKind::Load { addr, .. } if addr.0 >= src.0 => Some(addr.0 - src.0),
            _ => None,
        })
        .collect();
    assert_eq!(*src_loads.last().unwrap(), 1536 - 64);
}

#[test]
fn lazy_wrapping_write_emits_one_mclazy_per_run() {
    let mut p = pipe();
    let src = PhysAddr(0x800000);
    p.write_uops(0, src, 2048, CopyMode::Eager);
    p.read_uops(0, PhysAddr(0x900000), 2048, CopyMode::Eager);
    // head = 2048; a full-capacity lazy write wraps into two aligned runs.
    let (w, moved) = p.write_uops(0, src, CAP, CopyMode::Lazy);
    assert_eq!(moved, CAP);
    let mclazys: Vec<(u64, u64, u64)> = w
        .iter()
        .filter_map(|u| match u.kind {
            UopKind::Mclazy { dst, src, size } => Some((dst.0, src.0, size)),
            _ => None,
        })
        .collect();
    assert_eq!(
        mclazys,
        vec![
            (RING.0 + 2048, src.0, 2048),
            (RING.0, src.0 + 2048, 2048),
        ],
        "one MCLAZY per ring run, wrapped destination, linear source"
    );
    // A lazy read back out sources the ring via MCLAZY too.
    let (r, moved) = p.read_uops(0, PhysAddr(0x900000), CAP, CopyMode::Lazy);
    assert_eq!(moved, CAP);
    let ring_srcs = r
        .iter()
        .filter(|u| {
            matches!(u.kind, UopKind::Mclazy { src, .. }
                if src.0 >= RING.0 && src.0 < RING.0 + CAP)
        })
        .count();
    assert_eq!(ring_srcs, 2, "read wraps: one MCLAZY per ring run");
}

#[test]
fn full_pipe_rejects_bytes_without_copy_uops() {
    let mut p = pipe();
    let src = PhysAddr(0x800000);
    let (_, a) = p.write_uops(0, src, 3000, CopyMode::Eager);
    assert_eq!(a, 3000);
    let (_, b) = p.write_uops(0, src, 3000, CopyMode::Eager);
    assert_eq!(b, CAP - 3000, "second write bounded by free space");
    let (w, c) = p.write_uops(0, src, 64, CopyMode::Eager);
    assert_eq!(c, 0);
    assert!(
        !w.iter().any(|u| matches!(
            u.kind,
            UopKind::Load { .. } | UopKind::Store { .. } | UopKind::Mclazy { .. }
        )),
        "a rejected write still pays the syscall but moves nothing"
    );
    let (_, r) = p.read_uops(0, PhysAddr(0x900000), 2 * CAP, CopyMode::Eager);
    assert_eq!(r, CAP, "read bounded by occupancy");
    assert_eq!(p.available(), 0);
}

#[test]
fn random_traffic_preserves_ring_invariants() {
    // Deterministic xorshift traffic: interleaved writes and reads of
    // irregular sizes, checking occupancy accounting and that every write
    // lands exactly `accepted` distinct bytes inside the ring at the
    // modelled head.
    let mut p = pipe();
    let src = PhysAddr(0x800000);
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut head = 0u64;
    let mut used = 0u64;
    for _ in 0..200 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let len = rng % 1500 + 1;
        if rng & 1 == 0 {
            let (w, moved) = p.write_uops(0, src, len, CopyMode::Eager);
            assert_eq!(moved, len.min(CAP - used));
            assert_eq!(store_ring_bytes(&w), expect_interval(head, moved));
            head = (head + moved) & (CAP - 1);
            used += moved;
        } else {
            let (_, moved) = p.read_uops(0, PhysAddr(0x900000), len, CopyMode::Eager);
            assert_eq!(moved, len.min(used));
            used -= moved;
        }
        assert_eq!(p.available(), used);
        assert_eq!(p.free_space(), CAP - used);
    }
}

// ---------------------------------------------------------------------
// vm.rs: copy-on-write fault paths
// ---------------------------------------------------------------------

fn kernel() -> Kernel {
    Kernel::new(OsCosts::free(), AddrSpace::new(PhysAddr(1 << 20), 1 << 30))
}

#[test]
fn double_fork_refcounts_drop_as_each_child_faults() {
    let mut k = kernel();
    let mut parent = Vm::new();
    let old = k.mmap(&mut parent, VirtAddr(0x10000), PAGE_4K, PageSize::Base4K);
    let (mut a, _) = k.fork(&mut parent, StatTag::Kernel);
    let (mut b, _) = k.fork(&mut parent, StatTag::Kernel);
    assert_eq!(k.frame_refs(old, PageSize::Base4K), 3, "parent + two children");

    k.handle_cow_fault(&mut a, VirtAddr(0x10000), CowCopyMode::Eager, 0);
    assert_eq!(k.frame_refs(old, PageSize::Base4K), 2);
    k.handle_cow_fault(&mut b, VirtAddr(0x10000), CowCopyMode::Lazy, 0);
    assert_eq!(k.frame_refs(old, PageSize::Base4K), 1, "only the parent still shares");

    // All three now map distinct frames; children are writable.
    let (pa_p, vp) = parent.translate(VirtAddr(0x10000)).unwrap();
    let (pa_a, va) = a.translate(VirtAddr(0x10000)).unwrap();
    let (pa_b, vb) = b.translate(VirtAddr(0x10000)).unwrap();
    assert_eq!(pa_p, old);
    assert_ne!(pa_a, pa_p);
    assert_ne!(pa_b, pa_p);
    assert_ne!(pa_a, pa_b);
    assert!(vp.cow && !vp.writable, "parent never wrote, still COW");
    assert!(va.writable && !va.cow);
    assert!(vb.writable && !vb.cow);
    assert_eq!(k.stats.cow_faults, 2);
    assert_eq!(k.stats.pages_copied, 2);
}

#[test]
fn fault_in_middle_of_hugepage_remaps_whole_page_contiguously() {
    let mut k = kernel();
    let mut vm = Vm::new();
    k.mmap(&mut vm, VirtAddr(0), PAGE_2M, PageSize::Huge2M);
    let (mut child, _) = k.fork(&mut vm, StatTag::Kernel);
    // Fault deep inside the page, at an arbitrary misaligned address.
    k.handle_cow_fault(&mut child, VirtAddr(PAGE_2M / 2 + 123), CowCopyMode::Lazy, 0);
    let (lo, v) = child.translate(VirtAddr(0)).unwrap();
    let (hi, _) = child.translate(VirtAddr(PAGE_2M - 64)).unwrap();
    assert_eq!(hi.0 - lo.0, PAGE_2M - 64, "whole 2 MB remapped to one contiguous frame");
    assert!(v.writable && !v.cow);
    assert_eq!(child.segments(), 1, "remap did not fragment the mapping");
}

#[test]
fn lazy_4k_fault_is_one_page_sized_mclazy_with_fence() {
    let mut k = kernel();
    let mut vm = Vm::new();
    k.mmap(&mut vm, VirtAddr(0x40000), PAGE_4K, PageSize::Base4K);
    let (mut child, _) = k.fork(&mut vm, StatTag::Kernel);
    let uops = k.handle_cow_fault(&mut child, VirtAddr(0x40000), CowCopyMode::Lazy, 0);
    let mclazys: Vec<u64> = uops
        .iter()
        .filter_map(|u| match u.kind {
            UopKind::Mclazy { size, .. } => Some(size),
            _ => None,
        })
        .collect();
    assert_eq!(mclazys, vec![PAGE_4K], "one MCLAZY covering the base page");
    assert!(uops.iter().any(|u| matches!(u.kind, UopKind::Mfence)), "ordering fence kept");
    assert!(!uops.iter().any(|u| matches!(u.kind, UopKind::Clwb { .. })));
}

#[test]
fn eager_fault_reads_old_frame_and_writes_new_frame_only() {
    let mut k = kernel();
    let mut vm = Vm::new();
    let old = k.mmap(&mut vm, VirtAddr(0x40000), PAGE_4K, PageSize::Base4K);
    let (mut child, _) = k.fork(&mut vm, StatTag::Kernel);
    let uops = k.handle_cow_fault(&mut child, VirtAddr(0x40000), CowCopyMode::Eager, 0);
    let (new_pa, _) = child.translate(VirtAddr(0x40000)).unwrap();
    for u in &uops {
        match u.kind {
            UopKind::Load { addr, .. } => {
                assert!(
                    addr.0 >= old.0 && addr.0 < old.0 + PAGE_4K,
                    "copy loads confined to the shared frame"
                );
            }
            UopKind::Store { addr, .. } => {
                assert!(
                    addr.0 >= new_pa.0 && addr.0 < new_pa.0 + PAGE_4K,
                    "copy stores confined to the private frame"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn munmap_in_child_keeps_parent_mapping_and_one_ref() {
    let mut k = kernel();
    let mut parent = Vm::new();
    let pa = k.mmap(&mut parent, VirtAddr(0x10000), 2 * PAGE_4K, PageSize::Base4K);
    let (mut child, _) = k.fork(&mut parent, StatTag::Kernel);
    assert_eq!(k.frame_refs(pa, PageSize::Base4K), 2);
    let uops = k.munmap(&mut child, VirtAddr(0x10000), 2 * PAGE_4K, StatTag::Kernel);
    assert_eq!(
        uops.iter().filter(|u| matches!(u.kind, UopKind::Mcfree { .. })).count(),
        2,
        "one MCFREE hint per unmapped page"
    );
    assert_eq!(k.frame_refs(pa, PageSize::Base4K), 1, "parent's reference survives");
    assert!(child.translate(VirtAddr(0x10000)).is_none());
    assert!(parent.translate(VirtAddr(0x10000)).is_some());
}

#[test]
fn fork_pte_cost_scales_with_page_count() {
    let costs = OsCosts { fork_per_pte: 100, ..OsCosts::free() };
    let mut k = Kernel::new(costs, AddrSpace::new(PhysAddr(1 << 20), 1 << 30));
    let mut vm = Vm::new();
    k.mmap(&mut vm, VirtAddr(0), 4 * PAGE_4K, PageSize::Base4K);
    let (_, cost) = k.fork(&mut vm, StatTag::Kernel);
    assert!(
        matches!(cost[0].kind, UopKind::Compute { cycles: 400 }),
        "4 PTEs x 100 cycles, got {:?}",
        cost[0].kind
    );
}
