//! Kernel pipe model (§V-B "User-kernel buffer copies", Fig. 19).
//!
//! A pipe is a kernel ring buffer; `write(2)` copies user bytes into it
//! and `read(2)` copies them out. The paper modifies `pipe_write` and
//! `pipe_read` to use lazy copies instead: the syscall cost stays, the
//! copy becomes an `MCLAZY`. Transfers therefore involve two copies
//! (user→kernel, kernel→user), both replaceable by the lazy path.

use crate::costs::{serialized_cost, OsCosts};
use mcs_sim::addr::PhysAddr;
use mcs_sim::uop::{StatTag, Uop};
use mcsquare::software::{memcpy_eager_uops, memcpy_lazy_uops, LazyOpts};

/// Which copy implementation the kernel uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CopyMode {
    /// Unmodified kernel: `copy_from_user` / `copy_to_user`.
    Eager,
    /// Paper's kernel: lazy copies at the controller.
    Lazy,
}

/// A kernel pipe with a physically contiguous ring buffer.
#[derive(Debug)]
pub struct Pipe {
    buf: PhysAddr,
    capacity: u64,
    head: u64, // next write offset
    tail: u64, // next read offset
    used: u64,
    costs: OsCosts,
    /// Bytes transferred through the pipe (stats).
    pub bytes_moved: u64,
}

impl Pipe {
    /// Create a pipe over a `capacity`-byte kernel buffer at `buf`
    /// (capacity must be a power of two, like Linux's 64 KB default).
    pub fn new(buf: PhysAddr, capacity: u64, costs: OsCosts) -> Pipe {
        assert!(capacity.is_power_of_two());
        Pipe { buf, capacity, head: 0, tail: 0, used: 0, costs, bytes_moved: 0 }
    }

    /// Free space in the buffer.
    pub fn free_space(&self) -> u64 {
        self.capacity - self.used
    }

    /// Bytes available to read.
    pub fn available(&self) -> u64 {
        self.used
    }

    fn copy(
        base_id: u64,
        dst: PhysAddr,
        src: PhysAddr,
        len: u64,
        mode: CopyMode,
    ) -> Vec<Uop> {
        match mode {
            CopyMode::Eager => memcpy_eager_uops(base_id, dst, src, len, StatTag::Kernel),
            CopyMode::Lazy => memcpy_lazy_uops(
                base_id,
                dst,
                src,
                len,
                &LazyOpts { tag: StatTag::Kernel, ..LazyOpts::default() },
            ),
        }
    }

    /// `write(fd, src, len)`: syscall cost + copy into the ring buffer.
    /// Returns the kernel uops and the bytes accepted (bounded by free
    /// space; like `O_NONBLOCK`, never blocks).
    pub fn write_uops(
        &mut self,
        base_id: u64,
        src: PhysAddr,
        len: u64,
        mode: CopyMode,
    ) -> (Vec<Uop>, u64) {
        let mut uops = Vec::new();
        serialized_cost(&mut uops, self.costs.syscall, StatTag::Kernel);
        let mut moved = 0;
        let take = len.min(self.free_space());
        while moved < take {
            let off = (self.head + moved) & (self.capacity - 1);
            let run = (take - moved).min(self.capacity - off);
            uops.extend(Self::copy(
                base_id + uops.len() as u64,
                self.buf.add(off),
                src.add(moved),
                run,
                mode,
            ));
            moved += run;
        }
        self.head = (self.head + moved) & (self.capacity - 1);
        self.used += moved;
        self.bytes_moved += moved;
        (uops, moved)
    }

    /// `read(fd, dst, len)`: syscall cost + copy out of the ring buffer.
    pub fn read_uops(
        &mut self,
        base_id: u64,
        dst: PhysAddr,
        len: u64,
        mode: CopyMode,
    ) -> (Vec<Uop>, u64) {
        let mut uops = Vec::new();
        serialized_cost(&mut uops, self.costs.syscall, StatTag::Kernel);
        let mut moved = 0;
        let take = len.min(self.available());
        while moved < take {
            let off = (self.tail + moved) & (self.capacity - 1);
            let run = (take - moved).min(self.capacity - off);
            uops.extend(Self::copy(
                base_id + uops.len() as u64,
                dst.add(moved),
                self.buf.add(off),
                run,
                mode,
            ));
            moved += run;
        }
        self.tail = (self.tail + moved) & (self.capacity - 1);
        self.used -= moved;
        (uops, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_sim::uop::UopKind;

    fn pipe() -> Pipe {
        Pipe::new(PhysAddr(0x100000), 4096, OsCosts::free())
    }

    #[test]
    fn write_then_read_tracks_occupancy() {
        let mut p = pipe();
        let (w, n) = p.write_uops(0, PhysAddr(0x200000), 1000, CopyMode::Eager);
        assert_eq!(n, 1000);
        assert!(w.len() > 1);
        assert_eq!(p.available(), 1000);
        let (_, m) = p.read_uops(0, PhysAddr(0x300000), 1000, CopyMode::Eager);
        assert_eq!(m, 1000);
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn write_bounded_by_capacity() {
        let mut p = pipe();
        let (_, n) = p.write_uops(0, PhysAddr(0x200000), 10_000, CopyMode::Eager);
        assert_eq!(n, 4096);
        let (_, n2) = p.write_uops(0, PhysAddr(0x200000), 10, CopyMode::Eager);
        assert_eq!(n2, 0, "full pipe accepts nothing");
    }

    #[test]
    fn ring_wraps_without_crossing() {
        let mut p = pipe();
        p.write_uops(0, PhysAddr(0x200000), 3000, CopyMode::Eager);
        p.read_uops(0, PhysAddr(0x300000), 3000, CopyMode::Eager);
        // head = tail = 3000; a 2000-byte write wraps.
        let (uops, n) = p.write_uops(0, PhysAddr(0x200000), 2000, CopyMode::Eager);
        assert_eq!(n, 2000);
        // All stores must land inside the buffer.
        for u in &uops {
            if let UopKind::Store { addr, .. } = u.kind {
                assert!(addr.0 >= 0x100000 && addr.0 < 0x100000 + 4096);
            }
        }
    }

    #[test]
    fn lazy_mode_emits_mclazy() {
        let mut p = pipe();
        let (uops, _) = p.write_uops(0, PhysAddr(0x200000), 2048, CopyMode::Lazy);
        assert!(uops.iter().any(|u| matches!(u.kind, UopKind::Mclazy { .. })));
        assert!(matches!(uops[0].kind, UopKind::PipelineFlush), "syscall entry serialises");
    }

    #[test]
    fn read_bounded_by_available() {
        let mut p = pipe();
        p.write_uops(0, PhysAddr(0x200000), 100, CopyMode::Eager);
        let (_, n) = p.read_uops(0, PhysAddr(0x300000), 500, CopyMode::Eager);
        assert_eq!(n, 100);
    }
}
