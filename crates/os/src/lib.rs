//! # mcs-os — kernel model substrate
//!
//! The (MC)² paper's kernel experiments (§V-B) run on a modified Linux
//! 5.7: huge-page copy-on-write faults served by `MCLAZY` (Fig. 18) and
//! pipes whose `pipe_read`/`pipe_write` use lazy copies (Fig. 19). This
//! crate is the model of those kernel facilities that the reproduction
//! runs on:
//!
//! * [`vm`] — page tables, `fork`, copy-on-write fault handling at 4 KB
//!   and 2 MB granularity (eager or MCLAZY copy modes), frame reference
//!   counting;
//! * [`pipe`] — a kernel pipe ring buffer with eager or lazy copies;
//! * [`costs`] — trap/syscall/TLB cycle charges.
//!
//! Kernel activity is expressed as uop sequences tagged
//! [`mcs_sim::uop::StatTag::Kernel`], spliced into the faulting program's
//! instruction stream exactly where the trap would occur — fault plans are
//! synchronous in program order, like the real handler.

pub mod costs;
pub mod pipe;
pub mod vm;

pub use costs::OsCosts;
pub use pipe::{CopyMode, Pipe};
pub use vm::{CowCopyMode, Kernel, PageSize, VirtAddr, Vm};
