//! Kernel cost model: cycle charges for traps, syscalls, and TLB
//! maintenance.
//!
//! These are the fixed software costs around the memory traffic that the
//! simulator models directly. Values are CPU cycles at 4 GHz and are drawn
//! from widely reported magnitudes (a page-fault trap + handler entry in
//! the ~1 µs neighbourhood, a syscall in the ~0.5 µs neighbourhood with
//! mitigations, a remote TLB shootdown IPI in the several-µs
//! neighbourhood). Experiments cite these knobs; EXPERIMENTS.md records
//! what was used where.

use mcs_sim::uop::{StatTag, Uop, UopKind};
use serde::{Deserialize, Serialize};

/// Append a *serialised* kernel cost: a pipeline flush (privilege
/// transition), the cycles, and a trailing flush so the cost cannot
/// overlap surrounding user work — the behaviour of syscalls and traps.
pub fn serialized_cost(uops: &mut Vec<Uop>, cycles: u32, tag: StatTag) {
    uops.push(Uop::new(UopKind::PipelineFlush, tag));
    uops.push(Uop::new(UopKind::Compute { cycles }, tag));
    uops.push(Uop::new(UopKind::PipelineFlush, tag));
}

/// Cycle costs of kernel entry/exit paths.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsCosts {
    /// Page-fault trap entry through handler dispatch.
    pub fault_entry: u32,
    /// Fault handler bookkeeping + return to user.
    pub fault_exit: u32,
    /// Syscall entry + exit.
    pub syscall: u32,
    /// Fixed cost of a TLB-shootdown round (IPIs + waits).
    pub tlb_shootdown: u32,
    /// Per-page cost of unmapping / remapping page-table entries.
    pub per_page_map: u32,
    /// Per-page-table-entry cost of `fork` copying page tables.
    pub fork_per_pte: u32,
}

impl Default for OsCosts {
    fn default() -> Self {
        OsCosts {
            fault_entry: 2_800,  // ~0.7 µs
            fault_exit: 1_200,   // ~0.3 µs
            syscall: 1_600,      // ~0.4 µs round trip
            tlb_shootdown: 8_000, // ~2 µs
            per_page_map: 160,   // ~40 ns per PTE touched
            fork_per_pte: 100,   // ~25 ns per copied PTE
        }
    }
}

impl OsCosts {
    /// A near-zero cost model for unit tests that only check data flow.
    pub fn free() -> OsCosts {
        OsCosts {
            fault_entry: 1,
            fault_exit: 1,
            syscall: 1,
            tlb_shootdown: 1,
            per_page_map: 0,
            fork_per_pte: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_cost_is_flush_compute_flush() {
        let mut uops = Vec::new();
        serialized_cost(&mut uops, 100, StatTag::Kernel);
        assert!(matches!(uops[0].kind, UopKind::PipelineFlush));
        assert!(matches!(uops[1].kind, UopKind::Compute { cycles: 100 }));
        assert!(matches!(uops[2].kind, UopKind::PipelineFlush));
    }

    #[test]
    fn defaults_are_microsecond_scale() {
        let c = OsCosts::default();
        // At 4 GHz: 4000 cycles = 1 µs.
        assert!(c.fault_entry + c.fault_exit >= 2_000, "fault ≥ 0.5 µs");
        assert!(c.tlb_shootdown >= 4_000, "shootdown ≥ 1 µs");
        assert!(c.syscall >= 800);
    }
}
