//! Virtual memory model: page tables, `fork`, and copy-on-write faults.
//!
//! This is the substrate behind the paper's §V-B kernel experiments. A
//! [`Kernel`] owns physical frames and reference counts; each process has
//! a [`Vm`] mapping virtual ranges to frames with write/COW permission
//! bits. `fork` duplicates the page table and marks writable pages COW in
//! both processes; a write to a COW page produces a *fault plan*: the uop
//! sequence of the kernel handler — trap entry, the page copy (eager
//! `memcpy`, or `MCLAZY` as in the paper's modified
//! `copy_user_huge_page`), remap, TLB maintenance, and return.

use crate::costs::{serialized_cost, OsCosts};
use mcs_sim::addr::{PhysAddr, PAGE_2M, PAGE_4K};
use mcs_sim::alloc::AddrSpace;
use mcs_sim::uop::{StatTag, Uop, UopKind};
use mcsquare::ranges::{ByteRange, RangeMap, Sliceable};
use mcsquare::software::{memcpy_eager_uops, memcpy_lazy_uops, LazyOpts};
use std::collections::HashMap;

/// A virtual address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VirtAddr(pub u64);

/// Page size of a mapping.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PageSize {
    /// 4 KB base pages.
    Base4K,
    /// 2 MB huge pages.
    Huge2M,
}

impl PageSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => PAGE_4K,
            PageSize::Huge2M => PAGE_2M,
        }
    }
}

/// One mapped region's translation info (value of a page-table segment).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapVal {
    /// Physical base corresponding to the segment start.
    pub pa: u64,
    /// Writable without faulting.
    pub writable: bool,
    /// Copy-on-write: a write triggers a fault.
    pub cow: bool,
    /// Page size of the mapping.
    pub page: PageSize,
}

impl Sliceable for MapVal {
    fn slice(&self, off: u64) -> Self {
        MapVal { pa: self.pa + off, ..self.clone() }
    }

    fn continues(&self, len: u64, next: &Self) -> bool {
        self.pa + len == next.pa
            && self.writable == next.writable
            && self.cow == next.cow
            && self.page == next.page
    }
}

/// How a COW fault copies the page (§V-B "Concurrent snapshots").
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CowCopyMode {
    /// The unmodified kernel: eager `copy_user_huge_page`.
    Eager,
    /// The paper's modified kernel: `MCLAZY` instead of copying. The
    /// hardware writes back dirty source lines during the MCLAZY snoop, so
    /// the kernel issues no per-line CLWBs here.
    Lazy,
}

/// A process's address space.
#[derive(Clone, Debug, Default)]
pub struct Vm {
    table: RangeMap<MapVal>,
}

impl Vm {
    /// Create an empty address space.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Translate a virtual address; `None` if unmapped.
    pub fn translate(&self, va: VirtAddr) -> Option<(PhysAddr, MapVal)> {
        let (r, v) = self.table.get(va.0)?;
        Some((PhysAddr(v.pa + (va.0 - r.start)), v.clone()))
    }

    /// Number of distinct mapped segments.
    pub fn segments(&self) -> usize {
        self.table.segments()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.table.covered_bytes()
    }
}

/// Kernel statistics.
#[derive(Clone, Debug, Default)]
pub struct KernelStats {
    /// COW faults handled.
    pub cow_faults: u64,
    /// Pages copied by fault handlers (eagerly or lazily).
    pub pages_copied: u64,
    /// PTEs copied by `fork`.
    pub fork_ptes: u64,
}

/// The kernel: frame allocator, frame reference counts, fault handling.
#[derive(Debug)]
pub struct Kernel {
    /// Cost model.
    pub costs: OsCosts,
    frames: AddrSpace,
    refs: HashMap<u64, u32>,
    /// Statistics.
    pub stats: KernelStats,
}

impl Kernel {
    /// Create a kernel owning the given physical space.
    pub fn new(costs: OsCosts, frames: AddrSpace) -> Kernel {
        Kernel { costs, frames, refs: HashMap::new(), stats: KernelStats::default() }
    }

    /// A kernel over the standard 3 GB simulated DRAM.
    pub fn with_defaults() -> Kernel {
        Kernel::new(OsCosts::default(), AddrSpace::dram_3gb())
    }

    /// Map `len` bytes (rounded up to the page size) at `va`, eagerly
    /// backed by fresh frames (prefaulted, as the evaluation prefaults its
    /// buffers). Returns the physical base.
    pub fn mmap(&mut self, vm: &mut Vm, va: VirtAddr, len: u64, page: PageSize) -> PhysAddr {
        let psz = page.bytes();
        assert!(va.0.is_multiple_of(psz), "va must be page aligned");
        let len = len.div_ceil(psz) * psz;
        let pa = self.frames.alloc(len, psz);
        for k in 0..(len / psz) {
            *self.refs.entry(pa.0 + k * psz).or_insert(0) += 1;
        }
        vm.table.insert(
            ByteRange::sized(va.0, len),
            MapVal { pa: pa.0, writable: true, cow: false, page },
        );
        pa
    }

    /// Fork `parent`: the child shares every frame; writable mappings are
    /// marked COW in both. Returns the child VM and the uop cost of the
    /// page-table copy (the reason huge pages make `fork` itself cheap:
    /// fewer PTEs, §V-B).
    pub fn fork(&mut self, parent: &mut Vm, tag: StatTag) -> (Vm, Vec<Uop>) {
        let mut child = Vm::new();
        let mut ptes = 0u64;
        let segs: Vec<(ByteRange, MapVal)> =
            parent.table.iter().map(|(r, v)| (r, v.clone())).collect();
        for (r, mut v) in segs {
            if v.writable {
                v.cow = true;
                v.writable = false;
                parent.table.insert(r, v.clone());
            }
            let psz = v.page.bytes();
            ptes += r.len() / psz;
            for k in 0..(r.len() / psz) {
                *self.refs.entry(v.pa + k * psz).or_insert(0) += 1;
            }
            child.table.insert(r, v);
        }
        self.stats.fork_ptes += ptes;
        let cost = (ptes as u32).saturating_mul(self.costs.fork_per_pte).max(1);
        (child, vec![Uop::new(UopKind::Compute { cycles: cost }, tag)])
    }

    /// Handle a write fault at `va` in `vm`: allocate a fresh frame, copy
    /// the faulting page (eagerly or with MCLAZY per `mode`), remap
    /// writable, and return the kernel uop sequence. `base_id` is the uop
    /// id the first returned uop will receive.
    ///
    /// # Panics
    /// Panics if `va` is unmapped or the mapping is not COW.
    pub fn handle_cow_fault(
        &mut self,
        vm: &mut Vm,
        va: VirtAddr,
        mode: CowCopyMode,
        base_id: u64,
    ) -> Vec<Uop> {
        let (_, mv) = vm.translate(va).expect("fault on unmapped address");
        assert!(mv.cow && !mv.writable, "fault on non-COW mapping");
        let psz = mv.page.bytes();
        let page_va = va.0 / psz * psz;
        let (old_pa, _) = vm.translate(VirtAddr(page_va)).expect("page mapped");
        let tag = StatTag::Kernel;
        self.stats.cow_faults += 1;
        self.stats.pages_copied += 1;

        let mut uops = Vec::new();
        serialized_cost(&mut uops, self.costs.fault_entry, tag);
        let new_pa = self.frames.alloc(psz, psz);
        *self.refs.entry(new_pa.0).or_insert(0) += 1;
        // Drop our reference to the shared frame.
        if let Some(c) = self.refs.get_mut(&(old_pa.0 / psz * psz)) {
            *c = c.saturating_sub(1);
        }
        match mode {
            CowCopyMode::Eager => {
                uops.extend(memcpy_eager_uops(
                    base_id + uops.len() as u64,
                    new_pa,
                    old_pa,
                    psz,
                    tag,
                ));
            }
            CowCopyMode::Lazy => {
                let opts = LazyOpts {
                    page_size: psz,
                    clwb_sources: false,
                    fence: true,
                    tag,
                    ..LazyOpts::default()
                };
                uops.extend(memcpy_lazy_uops(base_id + uops.len() as u64, new_pa, old_pa, psz, &opts));
            }
        }
        serialized_cost(&mut uops, self.costs.per_page_map + self.costs.fault_exit, tag);
        vm.table.insert(
            ByteRange::sized(page_va, psz),
            MapVal { pa: new_pa.0, writable: true, cow: false, page: mv.page },
        );
        uops
    }

    /// Unmap `[va, va+len)`: drop frame references, clear the page-table
    /// range, and return the unmap cost plus the paper's `MCFREE` hints —
    /// §III-C names `munmap` as the natural place to tell the controllers
    /// the buffer is dead. The freed physical range must be zeroed before
    /// reuse (the OS wipes pages between processes, §III-E), which is what
    /// keeps MCFREE from leaking data.
    pub fn munmap(&mut self, vm: &mut Vm, va: VirtAddr, len: u64, tag: StatTag) -> Vec<Uop> {
        let mut uops = Vec::new();
        let mut cursor = va.0;
        let end = va.0 + len;
        let mut pages = 0u32;
        while cursor < end {
            let Some((pa, mv)) = vm.translate(VirtAddr(cursor)) else {
                cursor += PAGE_4K;
                continue;
            };
            let psz = mv.page.bytes();
            let page_base = cursor / psz * psz;
            let run = (end - page_base).min(psz);
            uops.push(Uop::new(
                UopKind::Mcfree { addr: pa.page_base(psz), size: psz },
                tag,
            ));
            let frame = pa.0 / psz * psz;
            if let Some(c) = self.refs.get_mut(&frame) {
                *c = c.saturating_sub(1);
            }
            vm.table.remove(ByteRange::sized(page_base, run.max(psz)));
            pages += 1;
            cursor = page_base + psz;
        }
        uops.push(Uop::new(
            UopKind::Compute {
                cycles: self.costs.tlb_shootdown + pages * self.costs.per_page_map,
            },
            tag,
        ));
        uops
    }

    /// Reference count of the frame backing `pa`'s page (tests).
    pub fn frame_refs(&self, pa: PhysAddr, page: PageSize) -> u32 {
        let base = pa.0 / page.bytes() * page.bytes();
        self.refs.get(&base).copied().unwrap_or(0)
    }

    /// Allocate raw frames (for workloads needing plain buffers).
    pub fn alloc_frames(&mut self, len: u64, align: u64) -> PhysAddr {
        self.frames.alloc(len, align)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(OsCosts::free(), AddrSpace::new(PhysAddr(1 << 20), 1 << 30))
    }

    #[test]
    fn mmap_translates_linearly() {
        let mut k = kernel();
        let mut vm = Vm::new();
        let pa = k.mmap(&mut vm, VirtAddr(0x10000), 3 * PAGE_4K, PageSize::Base4K);
        let (p, v) = vm.translate(VirtAddr(0x10000 + 5000)).unwrap();
        assert_eq!(p, pa.add(5000));
        assert!(v.writable && !v.cow);
        assert!(vm.translate(VirtAddr(0x10000 + 3 * PAGE_4K)).is_none());
    }

    #[test]
    fn fork_marks_cow_both_sides() {
        let mut k = kernel();
        let mut parent = Vm::new();
        k.mmap(&mut parent, VirtAddr(0x10000), 2 * PAGE_4K, PageSize::Base4K);
        let (child, cost) = k.fork(&mut parent, StatTag::Kernel);
        assert!(!cost.is_empty());
        let (ppa, pv) = parent.translate(VirtAddr(0x10000)).unwrap();
        let (cpa, cv) = child.translate(VirtAddr(0x10000)).unwrap();
        assert_eq!(ppa, cpa, "frames shared after fork");
        assert!(pv.cow && !pv.writable);
        assert!(cv.cow && !cv.writable);
        assert_eq!(k.frame_refs(ppa, PageSize::Base4K), 2);
        assert_eq!(k.stats.fork_ptes, 2);
    }

    #[test]
    fn cow_fault_remaps_to_private_frame() {
        let mut k = kernel();
        let mut parent = Vm::new();
        let old = k.mmap(&mut parent, VirtAddr(0x10000), PAGE_4K, PageSize::Base4K);
        let (mut child, _) = k.fork(&mut parent, StatTag::Kernel);
        let uops = k.handle_cow_fault(&mut child, VirtAddr(0x10020), CowCopyMode::Eager, 0);
        assert!(uops.len() > 2, "trap + copy + return");
        let (new_pa, v) = child.translate(VirtAddr(0x10020)).unwrap();
        assert_ne!(new_pa.page_base(PAGE_4K), old.page_base(PAGE_4K));
        assert!(v.writable && !v.cow);
        // Parent still points at the original frame, still COW.
        let (ppa, pv) = parent.translate(VirtAddr(0x10020)).unwrap();
        assert_eq!(ppa.page_base(PAGE_4K), old.page_base(PAGE_4K));
        assert!(pv.cow);
        assert_eq!(k.stats.cow_faults, 1);
    }

    #[test]
    fn lazy_fault_uses_mclazy() {
        let mut k = kernel();
        let mut vm = Vm::new();
        k.mmap(&mut vm, VirtAddr(0), PAGE_2M, PageSize::Huge2M);
        let (mut child, _) = k.fork(&mut vm, StatTag::Kernel);
        let uops = k.handle_cow_fault(&mut child, VirtAddr(0x100), CowCopyMode::Lazy, 0);
        let mclazys = uops.iter().filter(|u| matches!(u.kind, UopKind::Mclazy { .. })).count();
        assert_eq!(mclazys, 1, "one MCLAZY covers the whole 2 MB page");
        assert!(
            !uops.iter().any(|u| matches!(u.kind, UopKind::Clwb { .. })),
            "kernel path relies on the hardware snoop, no CLWB storm"
        );
    }

    #[test]
    fn eager_hugepage_fault_copies_whole_page() {
        let mut k = kernel();
        let mut vm = Vm::new();
        k.mmap(&mut vm, VirtAddr(0), PAGE_2M, PageSize::Huge2M);
        let (mut child, _) = k.fork(&mut vm, StatTag::Kernel);
        let uops = k.handle_cow_fault(&mut child, VirtAddr(64), CowCopyMode::Eager, 0);
        let loads = uops.iter().filter(|u| matches!(u.kind, UopKind::Load { .. })).count() as u64;
        assert_eq!(loads, PAGE_2M / 64, "2 MB copied line by line");
    }

    #[test]
    fn munmap_clears_mappings_and_emits_mcfree() {
        let mut k = kernel();
        let mut vm = Vm::new();
        let pa = k.mmap(&mut vm, VirtAddr(0x10000), 2 * PAGE_4K, PageSize::Base4K);
        let uops = k.munmap(&mut vm, VirtAddr(0x10000), 2 * PAGE_4K, StatTag::Kernel);
        let frees: Vec<_> = uops
            .iter()
            .filter_map(|u| match u.kind {
                UopKind::Mcfree { addr, size } => Some((addr, size)),
                _ => None,
            })
            .collect();
        assert_eq!(frees.len(), 2, "one MCFREE per page");
        assert_eq!(frees[0], (pa, PAGE_4K));
        assert!(vm.translate(VirtAddr(0x10000)).is_none());
        assert!(vm.translate(VirtAddr(0x10000 + PAGE_4K)).is_none());
        assert_eq!(k.frame_refs(pa, PageSize::Base4K), 0);
        assert!(matches!(uops.last().unwrap().kind, UopKind::Compute { .. }), "TLB shootdown");
    }

    #[test]
    fn munmap_partial_range_keeps_other_pages() {
        let mut k = kernel();
        let mut vm = Vm::new();
        k.mmap(&mut vm, VirtAddr(0), 3 * PAGE_4K, PageSize::Base4K);
        k.munmap(&mut vm, VirtAddr(PAGE_4K), PAGE_4K, StatTag::Kernel);
        assert!(vm.translate(VirtAddr(0)).is_some());
        assert!(vm.translate(VirtAddr(PAGE_4K)).is_none());
        assert!(vm.translate(VirtAddr(2 * PAGE_4K)).is_some());
    }

    #[test]
    fn hugepage_fork_has_fewer_ptes_than_4k() {
        let mut k1 = kernel();
        let mut vm1 = Vm::new();
        k1.mmap(&mut vm1, VirtAddr(0), 4 * PAGE_2M, PageSize::Huge2M);
        k1.fork(&mut vm1, StatTag::Kernel);

        let mut k2 = kernel();
        let mut vm2 = Vm::new();
        k2.mmap(&mut vm2, VirtAddr(0), 4 * PAGE_2M, PageSize::Base4K);
        k2.fork(&mut vm2, StatTag::Kernel);

        assert_eq!(k1.stats.fork_ptes, 4);
        assert_eq!(k2.stats.fork_ptes, 4 * 512, "512× more PTEs with 4 KB pages");
    }
}
