//! Epoch-sampled time series of memory-system state.
//!
//! The simulator pushes one [`McSample`] per memory controller every
//! `epoch` cycles (and whenever a fast-forward skips across an epoch
//! boundary, at the cycle it lands on). Counters are cumulative at the
//! sample instant; [`Series::to_tsv`] differences consecutive samples per
//! controller into interval bandwidth and row-hit rate.

use crate::event::Cycle;

/// One sampled row: instantaneous queue state + cumulative counters for a
/// single memory controller at `cycle`.
#[derive(Debug, Clone, Copy)]
pub struct McSample {
    /// Sample instant (core cycles).
    pub cycle: Cycle,
    /// Controller (= channel) index.
    pub mc: u16,
    /// Read-pending-queue occupancy.
    pub rpq: u32,
    /// Write-pending-queue occupancy.
    pub wpq: u32,
    /// DRAM accesses in flight.
    pub inflight: u32,
    /// Cumulative demand + prefetch reads issued.
    pub reads: u64,
    /// Cumulative writes issued.
    pub writes: u64,
    /// Cumulative engine reads + writes issued.
    pub engine_accesses: u64,
    /// Cumulative row-buffer hits.
    pub row_hits: u64,
    /// Cumulative row-buffer misses (empty) + conflicts.
    pub row_misses: u64,
    /// Cumulative refresh windows elapsed.
    pub refreshes: u64,
}

/// The collected per-interval series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Sampling interval, cycles.
    pub epoch: Cycle,
    /// Next cycle at or after which a sample is due.
    pub next_at: Cycle,
    rows: Vec<McSample>,
}

impl Series {
    /// Empty series sampling every `epoch` cycles (first sample at `epoch`).
    pub fn new(epoch: Cycle) -> Series {
        let epoch = epoch.max(1);
        Series { epoch, next_at: epoch, rows: Vec::new() }
    }

    /// True when `now` has reached the next sampling instant.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_at
    }

    /// Record one controller's sample. The caller pushes one row per MC at
    /// the same `cycle`, then calls [`Series::advance`].
    pub fn push(&mut self, row: McSample) {
        self.rows.push(row);
    }

    /// Schedule the next sample after a sample at `now` was taken.
    pub fn advance(&mut self, now: Cycle) {
        // Skip any epochs a fast-forward jumped over.
        self.next_at = (now / self.epoch + 1) * self.epoch;
    }

    /// All rows, in push order.
    pub fn rows(&self) -> &[McSample] {
        &self.rows
    }

    /// Render the interval-differenced TSV: one row per (sample, mc) with
    /// queue depths, interval bandwidth (GB/s given `cycles_per_ns`) and
    /// interval row-hit rate.
    pub fn to_tsv(&self, cycles_per_ns: f64) -> String {
        let mut out = String::from(
            "cycle\tmc\trpq\twpq\tinflight\tbw_gbps\trow_hit_rate\trefreshes\n",
        );
        // Previous cumulative sample per mc id.
        let mut prev: Vec<Option<McSample>> = Vec::new();
        for r in &self.rows {
            let slot = r.mc as usize;
            if prev.len() <= slot {
                prev.resize(slot + 1, None);
            }
            let (dcyc, dacc, dhit, dmiss) = match prev[slot] {
                Some(p) => (
                    r.cycle.saturating_sub(p.cycle),
                    (r.reads + r.writes + r.engine_accesses)
                        - (p.reads + p.writes + p.engine_accesses),
                    r.row_hits - p.row_hits,
                    r.row_misses - p.row_misses,
                ),
                None => (
                    r.cycle,
                    r.reads + r.writes + r.engine_accesses,
                    r.row_hits,
                    r.row_misses,
                ),
            };
            let bw_gbps = if dcyc == 0 {
                0.0
            } else {
                // 64 B per access; GB/s = bytes/ns = bytes * cycles_per_ns / cycles.
                (dacc * 64) as f64 * cycles_per_ns / dcyc as f64
            };
            let hit_rate =
                if dhit + dmiss == 0 { 0.0 } else { dhit as f64 / (dhit + dmiss) as f64 };
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{}\n",
                r.cycle, r.mc, r.rpq, r.wpq, r.inflight, bw_gbps, hit_rate, r.refreshes
            ));
            prev[slot] = Some(*r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: Cycle, mc: u16, reads: u64, hits: u64, misses: u64) -> McSample {
        McSample {
            cycle,
            mc,
            rpq: 3,
            wpq: 1,
            inflight: 2,
            reads,
            writes: 0,
            engine_accesses: 0,
            row_hits: hits,
            row_misses: misses,
            refreshes: 0,
        }
    }

    #[test]
    fn sampling_cadence_skips_missed_epochs() {
        let mut s = Series::new(1000);
        assert!(!s.due(999));
        assert!(s.due(1000));
        s.advance(1000);
        assert_eq!(s.next_at, 2000);
        // A fast-forward jumped to cycle 7300: one sample, then next at 8000.
        s.advance(7300);
        assert_eq!(s.next_at, 8000);
    }

    #[test]
    fn tsv_differences_intervals_per_mc() {
        let mut s = Series::new(1000);
        // Two MCs, two samples each. MC0: 100 then 300 reads (so the second
        // interval moved 200 accesses in 1000 cycles = 12.8 B/cyc = 51.2 GB/s
        // at 4 cycles/ns). MC1 idles.
        s.push(sample(1000, 0, 100, 80, 20));
        s.push(sample(1000, 1, 0, 0, 0));
        s.push(sample(2000, 0, 300, 230, 70));
        s.push(sample(2000, 1, 0, 0, 0));
        let tsv = s.to_tsv(4.0);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 rows: {tsv}");
        assert!(lines[0].starts_with("cycle\tmc"));
        // Second mc0 row: Δreads=200 over Δcycle=1000 → 200*64*4/1000 = 51.2.
        let row = lines[3].split('\t').collect::<Vec<_>>();
        assert_eq!(row[0], "2000");
        assert_eq!(row[1], "0");
        assert_eq!(row[5], "51.200");
        // Interval hit rate: Δhits=150, Δmisses=50 → 0.75.
        assert_eq!(row[6], "0.750");
        // Idle MC1 reports zero bandwidth.
        let idle = lines[4].split('\t').collect::<Vec<_>>();
        assert_eq!(idle[5], "0.000");
    }
}
