//! Fixed-capacity ring buffer for event capture.
//!
//! Tracing must never grow without bound inside a multi-billion-cycle run,
//! so raw events land in a ring that overwrites its oldest entry once full
//! and counts what it dropped. The online consumers (histograms, interval
//! series) aggregate at emission time and are unaffected by ring overflow;
//! only the raw-event exporter (Chrome trace) sees a bounded window.

/// Overwrite-oldest ring buffer with a drop counter.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element (valid when `buf.len() == cap`).
    start: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Create a ring holding at most `cap` elements (`cap >= 1`).
    pub fn new(cap: usize) -> Ring<T> {
        Ring { buf: Vec::new(), cap: cap.max(1), start: 0, dropped: 0 }
    }

    /// Append, overwriting the oldest element if full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.start] = v;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many elements were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        r.push(4); // overwrites 0
        r.push(5); // overwrites 1
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_and_stays_chronological() {
        let mut r = Ring::new(3);
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 97);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![97, 98, 99]);
    }

    #[test]
    fn capacity_one_keeps_newest() {
        let mut r = Ring::new(1);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = Ring::new(8);
        r.push(10);
        r.push(20);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![10, 20]);
        assert!(!r.is_empty());
        assert_eq!(r.capacity(), 8);
    }
}
