//! The structured event vocabulary of the observability layer.
//!
//! Events are small `Copy` values stamped with simulator cycles. They are
//! deliberately decoupled from the simulator's own types (no `mcs-sim`
//! dependency): instrumentation sites translate into this vocabulary at the
//! point of emission, so the trace crate stays leaf-level and the simulator
//! only depends on it under the `trace` feature.

/// Simulator time, in core clock cycles (mirrors `mcs_sim::Cycle`).
pub type Cycle = u64;

/// Classification of memory-controller traffic, the unit at which latency
/// histograms are kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PacketClass {
    /// Demand read from the LLC (a core miss).
    DemandRead,
    /// Prefetcher-initiated read.
    PrefetchRead,
    /// Read issued by the (MC)² engine (source fetch for reconstruction).
    EngineRead,
    /// Write drained from the write-pending queue.
    Write,
    /// Engine write (lazy destination materialisation).
    EngineWrite,
}

impl PacketClass {
    /// All classes, in display order.
    pub const ALL: [PacketClass; 5] = [
        PacketClass::DemandRead,
        PacketClass::PrefetchRead,
        PacketClass::EngineRead,
        PacketClass::Write,
        PacketClass::EngineWrite,
    ];

    /// Stable lowercase name used in TSV output and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            PacketClass::DemandRead => "demand_read",
            PacketClass::PrefetchRead => "prefetch_read",
            PacketClass::EngineRead => "engine_read",
            PacketClass::Write => "write",
            PacketClass::EngineWrite => "engine_write",
        }
    }
}

/// Row-buffer outcome of a DRAM column access, as seen by the controller.
///
/// `Empty` implies an activate; `Conflict` implies a precharge followed by
/// an activate — so these three values carry the bank activate/precharge
/// activity of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowKind {
    /// Row already open: column access only.
    Hit,
    /// Bank idle: activate + column access.
    Empty,
    /// Different row open: precharge + activate + column access.
    Conflict,
}

impl RowKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RowKind::Hit => "hit",
            RowKind::Empty => "empty",
            RowKind::Conflict => "conflict",
        }
    }
}

/// One trace event. Span-like events carry `[start, end)` in cycles;
/// instantaneous events carry a single `at` cycle.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// Core `core` was stalled on `reason` for `[start, end)`.
    CoreStall { core: u16, reason: &'static str, start: Cycle, end: Cycle },
    /// L1 `l1` missed on cache line `line` at `start`; the fill arrived at
    /// `end`.
    L1Miss { l1: u16, line: u64, start: Cycle, end: Cycle },
    /// A packet of class `class` entered MC `mc`'s read/write queue.
    McEnqueue { mc: u16, class: PacketClass, at: Cycle },
    /// MC `mc` issued a DRAM access for a packet enqueued at `enq`: the
    /// queue latency is `at - enq`, the bank/bus busy window is `[at, done)`.
    McIssue {
        mc: u16,
        bank: u16,
        class: PacketClass,
        row: RowKind,
        enq: Cycle,
        at: Cycle,
        done: Cycle,
    },
    /// A read completed back toward the LLC; service latency is `at - enq`.
    McComplete { mc: u16, class: PacketClass, enq: Cycle, at: Cycle },
    /// `n` refresh windows elapsed on channel `mc` by cycle `at`.
    Refresh { mc: u16, n: u32, at: Cycle },
    /// The engine accepted an MCLAZY descriptor into the CTT.
    CttInsert { mc: u16, dst: u64, lines: u32, at: Cycle },
    /// `n` chain collapses (dst-of-a-dst rewritten to the original source).
    CttCollapse { mc: u16, n: u32, at: Cycle },
    /// An MCLAZY overlapped tracked state; `lines` cached lines were flushed.
    CttFlush { mc: u16, lines: u32, at: Cycle },
    /// The CTT was full; the descriptor was NACKed for retry.
    CttFull { mc: u16, at: Cycle },
    /// A demand read was served out of the Bounce Pending Queue.
    BpqHit { mc: u16, line: u64, at: Cycle },
    /// Background drain wrote back `lines` lazily-pending lines.
    BpqDrain { mc: u16, lines: u32, at: Cycle },
    /// Lazy reconstruction of destination line `line` began (`cause` is one
    /// of `demand`, `src_flush`, `drain`).
    ReconStart { mc: u16, line: u64, cause: &'static str, at: Cycle },
    /// Reconstruction of `line` finished.
    ReconEnd { mc: u16, line: u64, at: Cycle },
    /// A bounce read for a cross-channel source was sent from `mc`.
    Bounce { mc: u16, src_mc: u16, at: Cycle },
}

impl Event {
    /// The cycle this event is stamped with (start cycle for spans).
    pub fn cycle(&self) -> Cycle {
        match *self {
            Event::CoreStall { start, .. } | Event::L1Miss { start, .. } => start,
            Event::McEnqueue { at, .. }
            | Event::McIssue { at, .. }
            | Event::McComplete { at, .. }
            | Event::Refresh { at, .. }
            | Event::CttInsert { at, .. }
            | Event::CttCollapse { at, .. }
            | Event::CttFlush { at, .. }
            | Event::CttFull { at, .. }
            | Event::BpqHit { at, .. }
            | Event::BpqDrain { at, .. }
            | Event::ReconStart { at, .. }
            | Event::ReconEnd { at, .. }
            | Event::Bounce { at, .. } => at,
        }
    }
}
