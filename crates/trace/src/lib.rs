//! # mcs-trace — cycle-level telemetry for the (MC)² simulator
//!
//! A structured event layer that is *zero-cost when off*: the simulator
//! crates only reference this crate under their `trace` cargo feature
//! (mirroring `check-invariants`), and even with the feature compiled in,
//! nothing is recorded until a sink is armed for the current thread.
//!
//! ## Architecture
//!
//! Instrumentation sites call [`emit`], which appends to a thread-local
//! [`TraceSink`]. One simulated `System` runs entirely on one OS thread
//! (the parallel sweep harness gives each job its own thread), so a
//! thread-local sink cleanly scopes a trace to a single simulation without
//! threading a collector handle through every component's `tick`
//! signature — and without any cross-thread synchronisation on the hot
//! path.
//!
//! Three consumers hang off the sink:
//!
//! * the raw event [`Ring`] (bounded, overwrite-oldest) feeding the
//!   [`chrome`] exporter — open the emitted `.trace.json` in Perfetto or
//!   `chrome://tracing`;
//! * exact per-packet-class latency [`Hist`]ograms (queue and service
//!   latency), updated online so ring overflow never skews quantiles;
//! * an epoch-sampled interval [`Series`] (queue depths, bandwidth,
//!   row-hit rate) rendered as TSV.
//!
//! ## Typical use
//!
//! ```
//! use mcs_trace as trace;
//! trace::arm(trace::TraceConfig::default());
//! // ... run the simulation on this thread; instrumented components
//! //     call trace::emit(..) and the system samples the series ...
//! trace::emit(trace::Event::McEnqueue {
//!     mc: 0,
//!     class: trace::PacketClass::DemandRead,
//!     at: 123,
//! });
//! let sink = trace::take().expect("armed above");
//! let json = trace::chrome::to_chrome_json(&sink, 4.0);
//! assert!(json.contains("traceEvents"));
//! ```

pub mod chrome;
pub mod event;
pub mod hist;
pub mod ring;
pub mod series;

pub use event::{Cycle, Event, PacketClass, RowKind};
pub use hist::Hist;
pub use ring::Ring;
pub use series::{McSample, Series};

use std::cell::RefCell;

/// Capture configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Raw-event ring capacity (events beyond this overwrite the oldest).
    pub ring_capacity: usize,
    /// Interval-series sampling period, cycles.
    pub epoch: Cycle,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { ring_capacity: 1 << 18, epoch: 10_000 }
    }
}

/// Per-class latency histograms: queue latency (enqueue → DRAM issue) and
/// service latency (enqueue → completion back at the LLC).
#[derive(Debug, Clone, Default)]
pub struct ClassHists {
    queue: Vec<(PacketClass, Hist)>,
    service: Vec<(PacketClass, Hist)>,
}

fn hist_for(v: &mut Vec<(PacketClass, Hist)>, class: PacketClass) -> &mut Hist {
    if let Some(i) = v.iter().position(|(c, _)| *c == class) {
        return &mut v[i].1;
    }
    v.push((class, Hist::new()));
    &mut v.last_mut().unwrap().1
}

impl ClassHists {
    /// Queue-latency histogram for `class`, if any samples were recorded.
    pub fn queue(&self, class: PacketClass) -> Option<&Hist> {
        self.queue.iter().find(|(c, _)| *c == class).map(|(_, h)| h)
    }

    /// Service-latency histogram for `class`, if any samples were recorded.
    pub fn service(&self, class: PacketClass) -> Option<&Hist> {
        self.service.iter().find(|(c, _)| *c == class).map(|(_, h)| h)
    }

    /// Render a TSV summary: one row per (class, kind) with count, mean,
    /// and exact p50/p95/p99 in cycles.
    pub fn to_tsv(&self) -> String {
        let mut out =
            String::from("class\tkind\tcount\tmean_cyc\tp50_cyc\tp95_cyc\tp99_cyc\tmax_cyc\n");
        for (kind, set) in [("queue", &self.queue), ("service", &self.service)] {
            for class in PacketClass::ALL {
                if let Some(h) = set.iter().find(|(c, _)| *c == class).map(|(_, h)| h) {
                    let (p50, p95, p99) = h.p50_p95_p99();
                    out.push_str(&format!(
                        "{}\t{}\t{}\t{:.1}\t{}\t{}\t{}\t{}\n",
                        class.name(),
                        kind,
                        h.count(),
                        h.mean(),
                        p50,
                        p95,
                        p99,
                        h.max().unwrap_or(0)
                    ));
                }
            }
        }
        out
    }
}

/// Everything one traced run collects.
#[derive(Debug, Clone)]
pub struct TraceSink {
    /// Capture configuration this sink was armed with.
    pub config: TraceConfig,
    /// Bounded raw-event window (chronological; see [`Ring::dropped`]).
    pub ring: Ring<Event>,
    /// Online per-class latency histograms.
    pub hists: ClassHists,
    /// Epoch-sampled interval series.
    pub series: Series,
}

impl TraceSink {
    /// Fresh sink.
    pub fn new(config: TraceConfig) -> TraceSink {
        TraceSink {
            config,
            ring: Ring::new(config.ring_capacity),
            hists: ClassHists::default(),
            series: Series::new(config.epoch),
        }
    }

    /// Record one event: push to the ring and update the online
    /// histograms for latency-bearing events.
    pub fn record(&mut self, ev: Event) {
        match ev {
            Event::McIssue { class, enq, at, .. } => {
                hist_for(&mut self.hists.queue, class).record(at - enq);
            }
            Event::McComplete { class, enq, at, .. } => {
                hist_for(&mut self.hists.service, class).record(at - enq);
            }
            _ => {}
        }
        self.ring.push(ev);
    }
}

thread_local! {
    static SINK: RefCell<Option<Box<TraceSink>>> = const { RefCell::new(None) };
}

/// Arm tracing on the current thread with `config`, replacing (and
/// discarding) any previously armed sink.
pub fn arm(config: TraceConfig) {
    SINK.with(|s| *s.borrow_mut() = Some(Box::new(TraceSink::new(config))));
}

/// Is a sink armed on this thread?
pub fn armed() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Record an event on the current thread's sink; no-op when disarmed.
pub fn emit(ev: Event) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.record(ev);
        }
    });
}

/// Run `f` against the armed sink (e.g. to push series samples); returns
/// `None` when disarmed.
pub fn with_sink<R>(f: impl FnOnce(&mut TraceSink) -> R) -> Option<R> {
    SINK.with(|s| s.borrow_mut().as_mut().map(|sink| f(sink)))
}

/// Disarm and return the sink collected on this thread.
pub fn take() -> Option<Box<TraceSink>> {
    SINK.with(|s| s.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_emit_is_a_no_op() {
        let _ = take();
        emit(Event::CttFull { mc: 0, at: 1 });
        assert!(!armed());
        assert!(take().is_none());
    }

    #[test]
    fn arm_emit_take_roundtrip() {
        arm(TraceConfig { ring_capacity: 16, epoch: 100 });
        assert!(armed());
        emit(Event::McEnqueue { mc: 1, class: PacketClass::Write, at: 5 });
        emit(Event::McIssue {
            mc: 1,
            bank: 0,
            class: PacketClass::Write,
            row: RowKind::Hit,
            enq: 5,
            at: 9,
            done: 13,
        });
        let sink = take().expect("sink armed");
        assert!(!armed());
        assert_eq!(sink.ring.len(), 2);
        let h = sink.hists.queue(PacketClass::Write).expect("write hist");
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(50.0), Some(4));
    }

    #[test]
    fn histograms_survive_ring_overflow() {
        arm(TraceConfig { ring_capacity: 2, epoch: 100 });
        for i in 0..50u64 {
            emit(Event::McIssue {
                mc: 0,
                bank: 0,
                class: PacketClass::DemandRead,
                row: RowKind::Hit,
                enq: i,
                at: i + 7,
                done: i + 20,
            });
        }
        let sink = take().unwrap();
        assert_eq!(sink.ring.len(), 2);
        assert_eq!(sink.ring.dropped(), 48);
        // The histogram saw all 50 samples even though the ring kept 2.
        let h = sink.hists.queue(PacketClass::DemandRead).unwrap();
        assert_eq!(h.count(), 50);
        assert_eq!(h.percentile(99.0), Some(7));
    }

    #[test]
    fn class_hists_tsv_lists_recorded_classes() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.record(Event::McIssue {
            mc: 0,
            bank: 1,
            class: PacketClass::EngineRead,
            row: RowKind::Empty,
            enq: 0,
            at: 30,
            done: 60,
        });
        sink.record(Event::McComplete {
            mc: 0,
            class: PacketClass::EngineRead,
            enq: 0,
            at: 90,
        });
        let tsv = sink.hists.to_tsv();
        assert!(tsv.contains("engine_read\tqueue\t1"));
        assert!(tsv.contains("engine_read\tservice\t1"));
        assert!(!tsv.contains("demand_read"), "no demand samples recorded: {tsv}");
    }
}
