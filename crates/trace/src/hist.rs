//! Exact latency histograms.
//!
//! Latencies in this simulator are small integers (cycles), so a counting
//! histogram over a `BTreeMap<u64, u64>` gives *exact* quantiles — no
//! bucketing error — while staying O(distinct values) in memory. Quantiles
//! use the nearest-rank definition: the p-th percentile of n samples is the
//! k-th smallest with k = ceil(p/100 · n), which matches indexing a sorted
//! vector at `k - 1` (the oracle the unit tests compare against).

use std::collections::BTreeMap;

/// Exact counting histogram over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Hist {
    counts: BTreeMap<u64, u64>,
    n: u64,
    sum: u64,
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.n += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Exact nearest-rank percentile for `p` in (0, 100]. None if empty.
    ///
    /// Equivalent to `sorted[ceil(p/100 * n) - 1]` on the sorted sample
    /// vector.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.n as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.n);
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// (p50, p95, p99) in one call; zeros if empty.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0).unwrap_or(0),
            self.percentile(95.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
        )
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (&v, &c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.n += other.n;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sorted-vector oracle for the nearest-rank percentile.
    fn oracle(samples: &[u64], p: f64) -> u64 {
        let mut s = samples.to_vec();
        s.sort_unstable();
        let rank = ((p / 100.0) * s.len() as f64).ceil().max(1.0) as usize;
        s[rank.min(s.len()) - 1]
    }

    #[test]
    fn percentiles_match_sorted_vector_oracle() {
        // A deliberately lumpy distribution: duplicates, gaps, a long tail.
        let mut samples = Vec::new();
        let mut x = 7u64;
        for i in 0..1000u64 {
            // LCG-ish deterministic pseudo-random values with repeats.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = match i % 5 {
                0 => 40,                  // heavy mode
                1 => 40 + (x >> 60),      // near the mode
                2 => 200 + (x >> 58),     // mid cluster
                3 => 1_000 + (x >> 54),   // tail
                _ => 41,
            };
            samples.push(v);
        }
        let mut h = Hist::new();
        for &s in &samples {
            h.record(s);
        }
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                h.percentile(p),
                Some(oracle(&samples, p)),
                "percentile {p} disagrees with sorted-vector oracle"
            );
        }
    }

    #[test]
    fn percentiles_exact_on_small_sets() {
        for n in 1..=20u64 {
            let samples: Vec<u64> = (0..n).map(|i| i * 10).collect();
            let mut h = Hist::new();
            for &s in &samples {
                h.record(s);
            }
            for p in [50.0, 95.0, 99.0] {
                assert_eq!(h.percentile(p), Some(oracle(&samples, p)), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Hist::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.p50_p95_p99(), (0, 0, 0));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Hist::new();
        h.record(42);
        for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(42));
        }
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(42));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (a_samples, b_samples): (Vec<u64>, Vec<u64>) =
            ((0..50).map(|i| i * 3 % 17).collect(), (0..80).map(|i| i * 7 % 23).collect());
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for &s in &a_samples {
            a.record(s);
            whole.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            whole.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        for p in [10.0, 50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }
}
