//! Chrome `trace_event` JSON exporter.
//!
//! Serialises a [`TraceSink`](crate::TraceSink) into the Trace Event
//! Format that Perfetto and `chrome://tracing` load: complete events
//! (`ph:"X"`) for spans, instant events (`ph:"i"`) for point events,
//! counter events (`ph:"C"`) from the interval series, and metadata
//! events naming the lanes. The tree has no JSON dependency, so the
//! writer emits JSON by hand; the unit tests include a small
//! recursive-descent parser that validates well-formedness.
//!
//! Lane layout: pid 0 = cores (tid = core id), pid 1 = memory controllers
//! (tid = channel id), pid 2 = the (MC)² engine (tid = channel id). DRAM
//! accesses are named by bank so Perfetto's aggregation view groups them.
//!
//! Timestamps are microseconds (the format's unit), converted from cycles
//! with the configured clock.

use crate::event::Event;
use crate::TraceSink;
use std::collections::HashMap;
use std::fmt::Write as _;

const PID_CORES: u32 = 0;
const PID_MC: u32 = 1;
const PID_ENGINE: u32 = 2;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One emitted JSON object under construction.
struct Obj {
    body: String,
    first: bool,
}

impl Obj {
    fn new() -> Obj {
        Obj { body: String::from("{"), first: true }
    }
    fn sep(&mut self) {
        if !self.first {
            self.body.push(',');
        }
        self.first = false;
    }
    fn str(mut self, k: &str, v: &str) -> Obj {
        self.sep();
        let _ = write!(self.body, "\"{}\":\"{}\"", esc(k), esc(v));
        self
    }
    fn num(mut self, k: &str, v: f64) -> Obj {
        self.sep();
        if v.fract() == 0.0 && v.abs() < 9e15 {
            let _ = write!(self.body, "\"{}\":{}", esc(k), v as i64);
        } else {
            let _ = write!(self.body, "\"{}\":{}", esc(k), v);
        }
        self
    }
    fn raw(mut self, k: &str, v: &str) -> Obj {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", esc(k), v);
        self
    }
    fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

/// Build an `args` object from raw JSON values (numbers pass through,
/// strings must arrive pre-quoted).
fn args(pairs: &[(&str, String)]) -> String {
    let mut o = Obj::new();
    for (k, v) in pairs {
        o = o.raw(k, v);
    }
    o.finish()
}

struct Emitter {
    events: Vec<String>,
    /// cycles → microseconds factor.
    us_per_cycle: f64,
}

impl Emitter {
    fn ts(&self, cycle: u64) -> f64 {
        cycle as f64 * self.us_per_cycle
    }

    fn complete(&mut self, pid: u32, tid: u32, name: &str, start: u64, end: u64, a: &str) {
        let dur = (self.ts(end) - self.ts(start)).max(self.us_per_cycle);
        let o = Obj::new()
            .str("name", name)
            .str("ph", "X")
            .num("pid", pid as f64)
            .num("tid", tid as f64)
            .num("ts", self.ts(start))
            .num("dur", dur)
            .raw("args", a);
        self.events.push(o.finish());
    }

    fn instant(&mut self, pid: u32, tid: u32, name: &str, at: u64, a: &str) {
        let o = Obj::new()
            .str("name", name)
            .str("ph", "i")
            .str("s", "t")
            .num("pid", pid as f64)
            .num("tid", tid as f64)
            .num("ts", self.ts(at))
            .raw("args", a);
        self.events.push(o.finish());
    }

    fn counter(&mut self, pid: u32, name: &str, at: u64, a: &str) {
        let o = Obj::new()
            .str("name", name)
            .str("ph", "C")
            .num("pid", pid as f64)
            .num("ts", self.ts(at))
            .raw("args", a);
        self.events.push(o.finish());
    }

    fn lane_name(&mut self, pid: u32, tid: u32, name: &str) {
        let o = Obj::new()
            .str("name", "thread_name")
            .str("ph", "M")
            .num("pid", pid as f64)
            .num("tid", tid as f64)
            .raw("args", &Obj::new().str("name", name).finish());
        self.events.push(o.finish());
    }

    fn process_name(&mut self, pid: u32, name: &str) {
        let o = Obj::new()
            .str("name", "process_name")
            .str("ph", "M")
            .num("pid", pid as f64)
            .raw("args", &Obj::new().str("name", name).finish());
        self.events.push(o.finish());
    }
}

/// Render a full Chrome trace JSON document from a sink.
///
/// `cycles_per_ns` is the simulated core clock (4.0 for the Table I
/// machine); it converts cycle stamps into the format's microseconds.
pub fn to_chrome_json(sink: &TraceSink, cycles_per_ns: f64) -> String {
    let mut e = Emitter {
        events: Vec::new(),
        us_per_cycle: 1.0 / (cycles_per_ns * 1000.0),
    };
    e.process_name(PID_CORES, "cores");
    e.process_name(PID_MC, "memory controllers");
    e.process_name(PID_ENGINE, "(MC)^2 engine");

    let mut named_lanes: HashMap<(u32, u32), ()> = HashMap::new();
    let mut lane = |e: &mut Emitter, pid: u32, tid: u32, name: String| {
        if named_lanes.insert((pid, tid), ()).is_none() {
            e.lane_name(pid, tid, &name);
        }
    };
    // Open reconstruction spans, keyed by (mc, line).
    let mut recon_open: HashMap<(u16, u64), u64> = HashMap::new();

    for ev in sink.ring.iter() {
        match *ev {
            Event::CoreStall { core, reason, start, end } => {
                lane(&mut e, PID_CORES, core as u32, format!("core {core}"));
                e.complete(
                    PID_CORES,
                    core as u32,
                    &format!("stall:{reason}"),
                    start,
                    end,
                    &args(&[("cycles", (end - start).to_string())]),
                );
            }
            Event::L1Miss { l1, line, start, end } => {
                lane(&mut e, PID_CORES, l1 as u32, format!("core {l1}"));
                e.complete(
                    PID_CORES,
                    l1 as u32,
                    "l1-miss",
                    start,
                    end,
                    &args(&[
                        ("line", format!("\"{line:#x}\"")),
                        ("cycles", (end - start).to_string()),
                    ]),
                );
            }
            Event::McEnqueue { mc, class, at } => {
                lane(&mut e, PID_MC, mc as u32, format!("channel {mc}"));
                e.instant(
                    PID_MC,
                    mc as u32,
                    &format!("enq:{}", class.name()),
                    at,
                    "{}",
                );
            }
            Event::McIssue { mc, bank, class, row, enq, at, done } => {
                lane(&mut e, PID_MC, mc as u32, format!("channel {mc}"));
                e.complete(
                    PID_MC,
                    mc as u32,
                    &format!("bank{} {}", bank, class.name()),
                    at,
                    done,
                    &args(&[
                        ("row", format!("\"{}\"", row.name())),
                        ("queue_cycles", (at - enq).to_string()),
                    ]),
                );
            }
            Event::McComplete { mc, class, enq, at } => {
                lane(&mut e, PID_MC, mc as u32, format!("channel {mc}"));
                e.instant(
                    PID_MC,
                    mc as u32,
                    &format!("done:{}", class.name()),
                    at,
                    &args(&[("service_cycles", (at - enq).to_string())]),
                );
            }
            Event::Refresh { mc, n, at } => {
                lane(&mut e, PID_MC, mc as u32, format!("channel {mc}"));
                e.instant(PID_MC, mc as u32, "refresh", at, &args(&[("windows", n.to_string())]));
            }
            Event::CttInsert { mc, dst, lines, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(
                    PID_ENGINE,
                    mc as u32,
                    "ctt-insert",
                    at,
                    &args(&[
                        ("dst", format!("\"{dst:#x}\"")),
                        ("lines", lines.to_string()),
                    ]),
                );
            }
            Event::CttCollapse { mc, n, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(PID_ENGINE, mc as u32, "ctt-collapse", at, &args(&[("chains", n.to_string())]));
            }
            Event::CttFlush { mc, lines, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(PID_ENGINE, mc as u32, "ctt-flush", at, &args(&[("lines", lines.to_string())]));
            }
            Event::CttFull { mc, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(PID_ENGINE, mc as u32, "ctt-full-retry", at, "{}");
            }
            Event::BpqHit { mc, line, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(
                    PID_ENGINE,
                    mc as u32,
                    "bpq-hit",
                    at,
                    &args(&[("line", format!("\"{line:#x}\""))]),
                );
            }
            Event::BpqDrain { mc, lines, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(PID_ENGINE, mc as u32, "bpq-drain", at, &args(&[("lines", lines.to_string())]));
            }
            Event::ReconStart { mc, line, at, .. } => {
                recon_open.insert((mc, line), at);
            }
            Event::ReconEnd { mc, line, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                // If the start fell off the ring, show a point-like span.
                let start = recon_open.remove(&(mc, line)).unwrap_or(at);
                e.complete(
                    PID_ENGINE,
                    mc as u32,
                    "recon",
                    start,
                    at,
                    &args(&[("line", format!("\"{line:#x}\""))]),
                );
            }
            Event::Bounce { mc, src_mc, at } => {
                lane(&mut e, PID_ENGINE, mc as u32, format!("engine ch{mc}"));
                e.instant(
                    PID_ENGINE,
                    mc as u32,
                    "bounce-read",
                    at,
                    &args(&[("src_channel", src_mc.to_string())]),
                );
            }
        }
    }
    // Reconstructions still open when capture ended: emit as instants so
    // they remain visible.
    for ((mc, line), start) in recon_open {
        e.instant(
            PID_ENGINE,
            mc as u32,
            "recon-open",
            start,
            &args(&[("line", format!("\"{line:#x}\""))]),
        );
    }

    // Counter lanes from the interval series.
    for r in sink.series.rows() {
        e.counter(
            PID_MC,
            &format!("ch{} queues", r.mc),
            r.cycle,
            &args(&[("rpq", r.rpq.to_string()), ("wpq", r.wpq.to_string())]),
        );
        e.counter(
            PID_MC,
            &format!("ch{} inflight", r.mc),
            r.cycle,
            &args(&[("n", r.inflight.to_string())]),
        );
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, ev) in e.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(ev);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PacketClass, RowKind};
    use crate::TraceConfig;

    /// Minimal recursive-descent JSON well-formedness checker. Returns the
    /// number of objects in the top-level `traceEvents` array.
    mod json {
        pub struct P<'a> {
            s: &'a [u8],
            pub i: usize,
        }
        impl<'a> P<'a> {
            pub fn new(s: &'a str) -> P<'a> {
                P { s: s.as_bytes(), i: 0 }
            }
            fn ws(&mut self) {
                while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
                    self.i += 1;
                }
            }
            fn peek(&mut self) -> u8 {
                self.ws();
                assert!(self.i < self.s.len(), "unexpected end of JSON");
                self.s[self.i]
            }
            fn eat(&mut self, c: u8) {
                assert_eq!(self.peek(), c, "expected {:?} at byte {}", c as char, self.i);
                self.i += 1;
            }
            pub fn value(&mut self) {
                match self.peek() {
                    b'{' => self.object(),
                    b'[' => self.array(),
                    b'"' => self.string(),
                    b't' => self.lit("true"),
                    b'f' => self.lit("false"),
                    b'n' => self.lit("null"),
                    _ => self.number(),
                }
            }
            pub fn object(&mut self) {
                self.eat(b'{');
                if self.peek() == b'}' {
                    self.i += 1;
                    return;
                }
                loop {
                    self.string();
                    self.eat(b':');
                    self.value();
                    match self.peek() {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return;
                        }
                        c => panic!("bad object separator {:?}", c as char),
                    }
                }
            }
            pub fn array(&mut self) {
                self.eat(b'[');
                if self.peek() == b']' {
                    self.i += 1;
                    return;
                }
                loop {
                    self.value();
                    match self.peek() {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return;
                        }
                        c => panic!("bad array separator {:?}", c as char),
                    }
                }
            }
            fn string(&mut self) {
                self.eat(b'"');
                while self.s[self.i] != b'"' {
                    if self.s[self.i] == b'\\' {
                        self.i += 1;
                    }
                    self.i += 1;
                    assert!(self.i < self.s.len(), "unterminated string");
                }
                self.i += 1;
            }
            fn number(&mut self) {
                let start = self.i;
                while self.i < self.s.len()
                    && matches!(self.s[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                assert!(self.i > start, "expected number at byte {}", start);
            }
            fn lit(&mut self, l: &str) {
                assert_eq!(
                    &self.s[self.i..self.i + l.len()],
                    l.as_bytes(),
                    "bad literal"
                );
                self.i += l.len();
            }
        }

        /// Parse a whole document; panic on malformed JSON.
        pub fn validate(s: &str) {
            let mut p = P::new(s);
            p.value();
            while p.i < s.len() {
                assert!(
                    (s.as_bytes()[p.i] as char).is_whitespace(),
                    "trailing garbage at byte {}",
                    p.i
                );
                p.i += 1;
            }
        }
    }

    fn sample_sink() -> crate::TraceSink {
        let mut sink = crate::TraceSink::new(TraceConfig::default());
        for ev in [
            Event::CoreStall { core: 0, reason: "load \"miss\"", start: 10, end: 90 },
            Event::L1Miss { l1: 0, line: 0x4000, start: 12, end: 88 },
            Event::McEnqueue { mc: 0, class: PacketClass::DemandRead, at: 20 },
            Event::McIssue {
                mc: 0,
                bank: 3,
                class: PacketClass::DemandRead,
                row: RowKind::Conflict,
                enq: 20,
                at: 45,
                done: 77,
            },
            Event::McComplete { mc: 0, class: PacketClass::DemandRead, enq: 20, at: 80 },
            Event::Refresh { mc: 1, n: 2, at: 100 },
            Event::CttInsert { mc: 0, dst: 0x10000, lines: 32, at: 110 },
            Event::CttCollapse { mc: 0, n: 1, at: 111 },
            Event::CttFlush { mc: 0, lines: 4, at: 112 },
            Event::CttFull { mc: 0, at: 113 },
            Event::BpqHit { mc: 0, line: 0x10040, at: 114 },
            Event::BpqDrain { mc: 0, lines: 8, at: 115 },
            Event::ReconStart { mc: 0, line: 0x10080, cause: "demand", at: 116 },
            Event::ReconEnd { mc: 0, line: 0x10080, at: 140 },
            Event::ReconStart { mc: 1, line: 0x20000, cause: "drain", at: 150 },
            Event::Bounce { mc: 0, src_mc: 1, at: 160 },
        ] {
            sink.record(ev);
        }
        sink.series.push(crate::series::McSample {
            cycle: 1000,
            mc: 0,
            rpq: 5,
            wpq: 2,
            inflight: 3,
            reads: 10,
            writes: 4,
            engine_accesses: 1,
            row_hits: 8,
            row_misses: 6,
            refreshes: 0,
        });
        sink
    }

    #[test]
    fn emits_well_formed_json_with_all_event_kinds() {
        let sink = sample_sink();
        let doc = to_chrome_json(&sink, 4.0);
        json::validate(&doc);
        // Lanes + every event kind present.
        for needle in [
            "\"traceEvents\"",
            "process_name",
            "thread_name",
            "stall:load \\\"miss\\\"",
            "l1-miss",
            "enq:demand_read",
            "bank3 demand_read",
            "done:demand_read",
            "refresh",
            "ctt-insert",
            "ctt-collapse",
            "ctt-flush",
            "ctt-full-retry",
            "bpq-hit",
            "bpq-drain",
            "\"recon\"",
            "recon-open",
            "bounce-read",
            "queues",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn timestamps_are_microseconds_at_the_configured_clock() {
        let mut sink = crate::TraceSink::new(TraceConfig::default());
        // 8000 cycles at 4 GHz = 2000 ns = 2 us.
        sink.record(Event::McEnqueue { mc: 0, class: PacketClass::Write, at: 8000 });
        let doc = to_chrome_json(&sink, 4.0);
        json::validate(&doc);
        assert!(doc.contains("\"ts\":2"), "expected ts 2us in:\n{doc}");
    }

    #[test]
    fn escaping_handles_control_and_quote_characters() {
        assert_eq!(esc("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
