//! A model of zIO (Stamler et al., OSDI '22), the paper's state-of-the-art
//! transparent-elision comparator.
//!
//! zIO elides a `memcpy` by recording it in a tracking structure (a
//! skiplist in the original; a range map here), unmapping the destination
//! pages and marking them copy-on-access with `userfaultfd`. The first
//! access to an elided page faults; the handler allocates the page and
//! performs the deferred copy. The mechanism only works at page
//! granularity, pays an unmap + TLB-shootdown cost per elision, and pays a
//! page fault + full-page copy per accessed page — exactly the cost
//! structure that makes it lose below 64 KB and whenever copied data is
//! later accessed (Figs. 10, 12, 13, 15).

use mcs_sim::addr::{PhysAddr, PAGE_4K};
use mcs_sim::uop::{StatTag, Uop, UopKind};
use mcsquare::ranges::{ByteRange, RangeMap, SrcBase};

/// zIO cost model, in CPU cycles at 4 GHz.
///
/// Calibrated to reproduce the paper's crossover points: elision costs
/// more than a 16 KB copy but less than a 64 KB one, and a 4 MB elision is
/// roughly 20× cheaper than the 4 MB copy (§V-A1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZioCosts {
    /// Fixed cost per elided memcpy: unmap + TLB shootdown.
    pub elide_fixed: u32,
    /// Per destination page unmapped.
    pub elide_per_page: u32,
    /// Page-fault handling cost on first access (before the copy itself).
    pub fault: u32,
}

impl Default for ZioCosts {
    fn default() -> Self {
        ZioCosts { elide_fixed: 8_000, elide_per_page: 30, fault: 4_000 }
    }
}

/// zIO statistics.
#[derive(Clone, Debug, Default)]
pub struct ZioStats {
    /// Copies fully or partially elided.
    pub elisions: u64,
    /// Destination pages elided.
    pub pages_elided: u64,
    /// Copies too small to elide (fell back to plain memcpy).
    pub fallbacks: u64,
    /// Copy-on-access faults taken.
    pub faults: u64,
    /// Pages copied by fault handlers.
    pub pages_copied: u64,
}

/// The zIO runtime: elision tracking plus cost accounting.
///
/// The workload must call [`Zio::access_fixups`] before touching any
/// memory that may hold an elided copy — that is where the copy-on-access
/// faults materialise, synchronously in program order like a real
/// `userfaultfd` handler.
#[derive(Debug)]
pub struct Zio {
    elisions: RangeMap<SrcBase>,
    costs: ZioCosts,
    /// Statistics.
    pub stats: ZioStats,
}

impl Zio {
    /// Create a runtime with the given cost model.
    pub fn new(costs: ZioCosts) -> Zio {
        Zio { elisions: RangeMap::new(), costs, stats: ZioStats::default() }
    }

    /// Create a runtime with default (paper-calibrated) costs.
    pub fn with_defaults() -> Zio {
        Zio::new(ZioCosts::default())
    }

    /// Number of pages currently elided.
    pub fn elided_pages(&self) -> u64 {
        self.elisions.covered_bytes() / PAGE_4K
    }

    /// Resolve the ultimate source of `addr` through nested elisions.
    fn resolve(&self, addr: u64) -> u64 {
        let mut a = addr;
        // Nested elision chains are short; bound the walk defensively.
        for _ in 0..64 {
            match self.elisions.get(a) {
                Some((r, v)) => a = v.0 + (a - r.start),
                None => return a,
            }
        }
        a
    }

    /// zIO's interposed `memcpy`: elide whole destination pages, copy the
    /// fringes eagerly. Emits the uop sequence (elision bookkeeping costs
    /// + fringe copies).
    pub fn memcpy_uops(
        &mut self,
        base_id: u64,
        dst: PhysAddr,
        src: PhysAddr,
        size: u64,
    ) -> Vec<Uop> {
        let first_page = dst.add(PAGE_4K - 1).page_base(PAGE_4K);
        let last_page_end = dst.add(size).page_base(PAGE_4K);
        if last_page_end.0 <= first_page.0 {
            // No whole destination page: zIO cannot elide (the Fig. 14
            // Protobuf result: every copy sub-page → no elision at all).
            self.stats.fallbacks += 1;
            return mcsquare::software::memcpy_eager_uops(base_id, dst, src, size, StatTag::Memcpy);
        }
        let mut uops = Vec::new();
        // Leading fringe.
        let lead = first_page.0 - dst.0;
        if lead > 0 {
            uops.extend(mcsquare::software::memcpy_eager_uops(
                base_id,
                dst,
                src,
                lead,
                StatTag::Memcpy,
            ));
        }
        // Elide whole pages: record (resolving chains), charge unmap costs.
        let pages = (last_page_end.0 - first_page.0) / PAGE_4K;
        for k in 0..pages {
            let d = first_page.0 + k * PAGE_4K;
            let s = self.resolve(src.0 + lead + k * PAGE_4K);
            self.elisions.insert(ByteRange::sized(d, PAGE_4K), SrcBase(s));
        }
        self.stats.elisions += 1;
        self.stats.pages_elided += pages;
        let cost = self.costs.elide_fixed as u64 + pages * self.costs.elide_per_page as u64;
        uops.push(Uop::new(UopKind::PipelineFlush, StatTag::Kernel));
        uops.push(Uop::new(
            UopKind::Compute { cycles: cost.min(u32::MAX as u64) as u32 },
            StatTag::Kernel,
        ));
        uops.push(Uop::new(UopKind::PipelineFlush, StatTag::Kernel));
        // Trailing fringe.
        let done = lead + pages * PAGE_4K;
        if done < size {
            uops.extend(mcsquare::software::memcpy_eager_uops(
                base_id + uops.len() as u64,
                dst.add(done),
                src.add(done),
                size - done,
                StatTag::Memcpy,
            ));
        }
        uops
    }

    /// Copy-on-access fixups for `[addr, addr+len)`: for every elided page
    /// touched, emit the fault handler (trap cost + full-page copy from
    /// the recorded source) and untrack the page. Must be interleaved
    /// before the actual access uops.
    pub fn access_fixups(&mut self, base_id: u64, addr: PhysAddr, len: u64) -> Vec<Uop> {
        let mut uops = Vec::new();
        let mut page = addr.page_base(PAGE_4K);
        let end = addr.0 + len;
        while page.0 < end {
            if let Some((r, v)) = self.elisions.get(page.0) {
                // Adjacent elisions coalesce into multi-page segments, so
                // the recorded source must be sliced to this page.
                let src = PhysAddr(v.0 + (page.0 - r.start));
                self.elisions.remove(ByteRange::sized(page.0, PAGE_4K));
                self.stats.faults += 1;
                self.stats.pages_copied += 1;
                uops.push(Uop::new(UopKind::PipelineFlush, StatTag::Kernel));
                uops.push(Uop::new(
                    UopKind::Compute { cycles: self.costs.fault },
                    StatTag::Kernel,
                ));
                uops.extend(mcsquare::software::memcpy_eager_uops(
                    base_id + uops.len() as u64,
                    page,
                    src,
                    PAGE_4K,
                    StatTag::Kernel,
                ));
            }
            page = page.add(PAGE_4K);
        }
        uops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(x: u64) -> PhysAddr {
        PhysAddr(x)
    }

    #[test]
    fn sub_page_copies_fall_back() {
        let mut z = Zio::with_defaults();
        let uops = z.memcpy_uops(0, pa(0x10_0000 + 100), pa(0x20_0000), 2048);
        assert_eq!(z.stats.fallbacks, 1);
        assert_eq!(z.stats.elisions, 0);
        assert!(uops.iter().any(|u| matches!(u.kind, UopKind::Load { .. })));
    }

    #[test]
    fn page_aligned_copy_elides_everything() {
        let mut z = Zio::with_defaults();
        let uops = z.memcpy_uops(0, pa(0x10_0000), pa(0x20_0000), 4 * PAGE_4K);
        assert_eq!(z.stats.pages_elided, 4);
        assert_eq!(z.elided_pages(), 4);
        // Only the bookkeeping compute, no data movement.
        assert!(uops.iter().all(|u| !matches!(u.kind, UopKind::Load { .. })));
    }

    #[test]
    fn misaligned_copy_elides_interior_pages_only() {
        let mut z = Zio::with_defaults();
        // 3 pages starting 100 bytes in: 2 whole destination pages inside.
        let uops = z.memcpy_uops(0, pa(0x10_0000 + 100), pa(0x20_0000), 3 * PAGE_4K);
        assert_eq!(z.stats.pages_elided, 2);
        assert!(uops.iter().any(|u| matches!(u.kind, UopKind::Load { .. })), "fringes copied");
    }

    #[test]
    fn access_faults_copy_and_untrack() {
        let mut z = Zio::with_defaults();
        z.memcpy_uops(0, pa(0x10_0000), pa(0x20_0000), 2 * PAGE_4K);
        let fix = z.access_fixups(0, pa(0x10_0000 + 8), 8);
        assert_eq!(z.stats.faults, 1);
        let loads = fix.iter().filter(|u| matches!(u.kind, UopKind::Load { .. })).count() as u64;
        assert_eq!(loads, PAGE_4K / 64, "whole page copied on fault");
        // Second access to the same page: no fault.
        assert!(z.access_fixups(0, pa(0x10_0000 + 16), 8).is_empty());
        // Untouched page still elided.
        assert_eq!(z.elided_pages(), 1);
    }

    #[test]
    fn access_spanning_pages_faults_each() {
        let mut z = Zio::with_defaults();
        z.memcpy_uops(0, pa(0x10_0000), pa(0x20_0000), 2 * PAGE_4K);
        let fix = z.access_fixups(0, pa(0x10_0000 + PAGE_4K - 4), 8);
        assert_eq!(z.stats.faults, 2);
        assert!(!fix.is_empty());
    }

    #[test]
    fn coalesced_elision_faults_copy_per_page_sources() {
        // A 3-page elision coalesces into one segment; the fault on page 2
        // must copy from src+2 pages, not the segment's base source.
        let mut z = Zio::with_defaults();
        z.memcpy_uops(0, pa(0x10_0000), pa(0x20_0000), 3 * PAGE_4K);
        let fix = z.access_fixups(0, pa(0x10_0000 + 2 * PAGE_4K + 8), 8);
        let first_load = fix
            .iter()
            .find_map(|u| match u.kind {
                UopKind::Load { addr, .. } => Some(addr),
                _ => None,
            })
            .expect("fault copies");
        assert_eq!(first_load, pa(0x20_0000 + 2 * PAGE_4K));
    }

    #[test]
    fn nested_elisions_resolve_to_original_source() {
        let mut z = Zio::with_defaults();
        // A → B elided, then B → C elided: C's fault must copy from A.
        z.memcpy_uops(0, pa(0x20_0000), pa(0x10_0000), PAGE_4K); // A→B
        z.memcpy_uops(0, pa(0x30_0000), pa(0x20_0000), PAGE_4K); // B→C
        let fix = z.access_fixups(0, pa(0x30_0000), 8);
        let src_of_copy = fix.iter().find_map(|u| match u.kind {
            UopKind::Load { addr, .. } => Some(addr),
            _ => None,
        });
        assert_eq!(src_of_copy, Some(pa(0x10_0000)), "chain resolved to A");
    }

    #[test]
    fn costs_reproduce_crossover_ordering() {
        // Elision bookkeeping must exceed a ~16 KB copy's cycles but not a
        // ~64 KB copy's (paper §V-A1 crossover).
        let c = ZioCosts::default();
        let elide_16k = c.elide_fixed as u64 + 4 * c.elide_per_page as u64;
        let elide_64k = c.elide_fixed as u64 + 16 * c.elide_per_page as u64;
        // Streaming copies at ~20 GB/s on the simulated machine:
        let memcpy_16k = 3_300u64;
        let memcpy_64k = 13_000u64;
        assert!(elide_16k > memcpy_16k, "zIO loses at 16 KB");
        assert!(elide_64k < memcpy_64k, "zIO wins at 64 KB");
    }
}
