//! The "Touched memcpy" variant of Fig. 10: the source buffer is read
//! (touched) before the measured copy, so the copy's loads hit the cache.

use mcs_sim::addr::{lines_of, PhysAddr};
use mcs_sim::uop::{StatTag, Uop, UopKind};

/// Uops that touch (load) every cacheline of `[src, src+size)`, warming
/// the caches without other side effects.
pub fn touch_uops(src: PhysAddr, size: u64, tag: StatTag) -> Vec<Uop> {
    lines_of(src, size)
        .map(|l| Uop::new(UopKind::Load { addr: l, size: 8 }, tag))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_each_line_once() {
        let uops = touch_uops(PhysAddr(0x1010), 256, StatTag::App);
        assert_eq!(uops.len(), 5, "misaligned 256B span covers 5 lines");
        assert!(uops.iter().all(|u| matches!(u.kind, UopKind::Load { .. })));
    }
}
