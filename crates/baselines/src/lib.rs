//! # mcs-baselines — the copy mechanisms the paper compares against
//!
//! * [`native`] — plain eager `memcpy` (the baseline of every figure).
//! * [`touched`] — the "Touched memcpy" variant of Fig. 10: the source is
//!   loaded into the cache before the copy is measured.
//! * [`zio`] — a model of zIO (Stamler et al., OSDI '22): transparent copy
//!   elision by unmapping destination pages and copying on first access
//!   via page faults, with the page-size floor and TLB-shootdown costs
//!   that shape its Fig. 10/12/13 behaviour.

pub mod native;
pub mod touched;
pub mod zio;

pub use zio::{Zio, ZioCosts};
