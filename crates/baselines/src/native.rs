//! Plain eager memcpy: the baseline of every evaluation figure.
//!
//! Thin wrappers over [`mcsquare::software::memcpy_eager_uops`] so
//! workloads depend on one baselines crate for all copy mechanisms.

use mcs_sim::addr::PhysAddr;
use mcs_sim::uop::{StatTag, Uop, UopKind};

/// Eager memcpy uops: per ≤64B chunk, a load and a dependent store.
pub fn memcpy_uops(base_id: u64, dst: PhysAddr, src: PhysAddr, size: u64) -> Vec<Uop> {
    mcsquare::software::memcpy_eager_uops(base_id, dst, src, size, StatTag::Memcpy)
}

/// Eager memcpy followed by CLWB of each destination line and a fence —
/// used where the result must be in memory for a fair final-state
/// comparison with the lazy path.
pub fn memcpy_flushed_uops(base_id: u64, dst: PhysAddr, src: PhysAddr, size: u64) -> Vec<Uop> {
    let mut uops = memcpy_uops(base_id, dst, src, size);
    for line in mcs_sim::addr::lines_of(dst, size) {
        uops.push(Uop::new(UopKind::Clwb { addr: line }, StatTag::Memcpy));
    }
    uops.push(Uop::new(UopKind::Mfence, StatTag::Memcpy));
    uops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_matches_size() {
        let uops = memcpy_uops(0, PhysAddr(0x1000), PhysAddr(0x2000), 256);
        let loads = uops.iter().filter(|u| matches!(u.kind, UopKind::Load { .. })).count();
        let stores = uops.iter().filter(|u| matches!(u.kind, UopKind::Store { .. })).count();
        assert_eq!(loads, 4);
        assert_eq!(stores, 4);
    }

    #[test]
    fn flushed_variant_ends_with_fence() {
        let uops = memcpy_flushed_uops(0, PhysAddr(0x1000), PhysAddr(0x2000), 128);
        assert!(matches!(uops.last().unwrap().kind, UopKind::Mfence));
        let clwbs = uops.iter().filter(|u| matches!(u.kind, UopKind::Clwb { .. })).count();
        assert_eq!(clwbs, 2);
    }
}
