//! Umbrella crate; see sub-crates.
pub use mcs_sim as sim;
pub use mcsquare as core;
