//! Deterministic randomness for the proptest stand-in.

/// SplitMix64 generator seeded from the test name: every run of a given
/// test explores the same cases, with no regressions file needed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let mut c = TestRng::from_name("u");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
