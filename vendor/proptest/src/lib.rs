//! Offline stand-in for `proptest`.
//!
//! The workspace builds without network access, so the real proptest
//! cannot be fetched. This crate reimplements the subset the test suites
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_filter_map`/`prop_filter`/`boxed`, integer-range / tuple / `Just`
//! / `any` / `prop::collection::vec` / `prop::bool::ANY` strategies, the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]/
//! [`prop_oneof!`] macros, and [`ProptestConfig`].
//!
//! Differences from upstream, on purpose:
//! * cases are generated from a per-test deterministic seed (derived from
//!   the test name), so runs are reproducible without a regressions file —
//!   `.proptest-regressions` files are ignored;
//! * no shrinking: a failure prints the full generated inputs instead of a
//!   minimised counterexample (the `mcs-check` model checker provides
//!   minimal traces for the CTT where that matters).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
    /// Maximum rejects (filter/assume failures) tolerated before panicking.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` / filter); try another input.
    Reject(String),
    /// The case failed (`prop_assert!`).
    Fail(String),
}

/// Panic once a test has burned through its rejection budget.
#[doc(hidden)]
pub fn reject_guard(name: &str, rejects: u32, cfg: &ProptestConfig) {
    if rejects > cfg.max_global_rejects {
        panic!("proptest `{name}`: too many input rejections ({rejects}); strategy filters are too narrow");
    }
}

/// A generator of random values of one type.
///
/// Object-safe core (`new_value`) plus `Sized`-only combinators, so
/// `Box<dyn Strategy<Value = T>>` works as [`BoxedStrategy`].
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value, or `None` to reject this attempt (the runner
    /// retries with fresh randomness, within the rejection budget).
    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Transform values, rejecting those mapped to `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, _reason: reason }
    }

    /// Reject values failing the predicate.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, _reason: reason }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Option<T> {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let mid = self.inner.new_value(rng)?;
        (self.f)(mid).new_value(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        (self.f)(self.inner.new_value(rng)?)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.new_value(rng).filter(&self.f)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo + (rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

// Signed ranges: compute the span with wrapping arithmetic (correct for
// any lo <= hi thanks to two's complement) and offset from `lo`.
macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                Some(self.start.wrapping_add((rng.next_u64() % span) as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo.wrapping_add((rng.next_u64() % (span + 1)) as $t))
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.new_value(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an unconstrained value.
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct ArbitraryStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::generate(rng))
    }
}

/// The canonical strategy for `A` (`any::<u8>()` etc).
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy(PhantomData)
}

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T: fmt::Debug> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from non-empty alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Option<T> {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Sub-strategy namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors of `element` with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform `bool` strategy.
        pub struct BoolAny;

        /// The uniform `bool` strategy value (`prop::bool::ANY`).
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn new_value(&self, rng: &mut TestRng) -> Option<bool> {
                Some(rng.next_u64() & 1 == 1)
            }
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a proptest body; failures carry the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, ::std::format!($($fmt)+)
        );
    }};
}

/// Discard the current case and try another input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let mut __done: u32 = 0;
            let mut __rejects: u32 = 0;
            while __done < __cfg.cases {
                let __generated = (|| {
                    ::core::option::Option::Some(($(
                        $crate::Strategy::new_value(&($strat), &mut __rng)?,
                    )+))
                })();
                let __vals = match __generated {
                    ::core::option::Option::Some(v) => v,
                    ::core::option::Option::None => {
                        __rejects += 1;
                        $crate::reject_guard(stringify!($name), __rejects, &__cfg);
                        continue;
                    }
                };
                let __repr = ::std::format!("{:#?}", &__vals);
                let ($($pat,)+) = __vals;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::core::result::Result::Err(__payload) => {
                        ::std::eprintln!(
                            "proptest `{}` panicked on inputs:\n{}",
                            stringify!($name),
                            __repr
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                    ::core::result::Result::Ok(::core::result::Result::Err(
                        $crate::TestCaseError::Reject(_),
                    )) => {
                        __rejects += 1;
                        $crate::reject_guard(stringify!($name), __rejects, &__cfg);
                    }
                    ::core::result::Result::Ok(::core::result::Result::Err(
                        $crate::TestCaseError::Fail(__msg),
                    )) => {
                        ::std::panic!(
                            "proptest `{}` failed: {}\ninputs:\n{}",
                            stringify!($name),
                            __msg,
                            __repr
                        );
                    }
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {
                        __done += 1;
                    }
                }
            }
        }
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_range() {
        let mut rng = crate::TestRng::from_name("basic");
        for _ in 0..200 {
            let v = (0u64..7).new_value(&mut rng).unwrap();
            assert!(v < 7);
            let w = (3u8..=5).new_value(&mut rng).unwrap();
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn combinators_compose() {
        let s = (0u64..10)
            .prop_flat_map(|lo| (Just(lo), lo..=20))
            .prop_map(|(lo, hi)| (lo, hi))
            .prop_filter_map("ordered", |(lo, hi)| if hi > lo { Some(hi - lo) } else { None });
        let mut rng = crate::TestRng::from_name("combo");
        let mut produced = 0;
        for _ in 0..200 {
            if let Some(d) = s.new_value(&mut rng) {
                assert!(d >= 1 && d <= 20);
                produced += 1;
            }
        }
        assert!(produced > 50, "filter should keep most values");
    }

    #[test]
    fn oneof_and_vec() {
        let s = prop::collection::vec(prop_oneof![(0u32..4).prop_map(|x| x * 2), Just(99u32)], 1..8);
        let mut rng = crate::TestRng::from_name("vecs");
        for _ in 0..100 {
            let v = s.new_value(&mut rng).unwrap();
            assert!(!v.is_empty() && v.len() < 8);
            assert!(v.iter().all(|&x| x == 99 || (x % 2 == 0 && x < 8)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn the_macro_itself_works(x in 0u64..50, flip in prop::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 50, "x = {}", x);
            if flip {
                prop_assert_eq!(x % 2, x % 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
