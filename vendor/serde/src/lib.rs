//! Offline stand-in for `serde`.
//!
//! The workspace uses `Serialize`/`Deserialize` purely as marker bounds
//! (e.g. the `configs_are_serializable` compile-time check); no data is
//! actually serialized. These traits therefore carry no methods. If a
//! future PR needs real serialization, replace this stub with the real
//! crate (or a vendored copy) — the bound-level API is compatible.

/// Marker: the type could be serialized.
pub trait Serialize {}

/// Marker: the type could be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

pub mod de {
    /// Marker: the type could be deserialized from owned data.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

// Derive macros live in the macro namespace; the traits above live in the
// type namespace, so re-exporting both under the same names is fine (this
// mirrors the real serde with the `derive` feature).
pub use serde_derive::{Deserialize, Serialize};

// Blanket impls for std types used inside derived containers are not
// needed: the marker impls are unconditional on the container.
