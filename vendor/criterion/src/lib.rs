//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the bench targets use (`Criterion`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, the `criterion_group!`
//! and `criterion_main!` macros) with a deliberately simple measurement
//! loop: a short warmup, then a time-boxed measurement window, reporting
//! the mean per-iteration time. No statistics, plots, or baselines — just
//! enough to keep `cargo bench` runnable and the hot paths exercised.

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Upper bound on measured iterations (keeps slow sim benches bounded).
const MAX_ITERS: u64 = 1000;

/// How batched inputs are grouped (accepted, ignored).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { iters: 0, total: Duration::ZERO }
    }

    /// Measure `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup (also primes caches/allocations).
        let _ = std::hint::black_box(f());
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measure `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std::hint::black_box(routine(setup()));
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            let _ = std::hint::black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id}: no iterations measured");
            return;
        }
        let per = self.total.as_nanos() as f64 / self.iters as f64;
        println!("{id}: {per:.0} ns/iter ({} iters)", self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    b.report(id);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }
}

/// A named group; measurement knobs are accepted and ignored.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is already time-boxed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
