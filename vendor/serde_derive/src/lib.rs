//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds without network access, so the real serde cannot
//! be fetched. The repo only uses `Serialize`/`Deserialize` as marker
//! bounds (configs and stats are *serializable*, but nothing serializes
//! them yet), so the derive only needs to emit empty marker impls.
//!
//! Limitations (checked against every use in the workspace): the derived
//! type must be a non-generic `struct` or `enum`.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum`/`union` keyword,
/// skipping attributes, doc comments, and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected type name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found in input")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
