//! Offline stand-in for `rand` 0.10.
//!
//! Implements exactly the surface the workload generators use:
//! `StdRng::seed_from_u64`, `RngExt::random_range` over integer and float
//! ranges, and `seq::SliceRandom::shuffle`. The generator is SplitMix64 —
//! deterministic, seedable, and statistically fine for workload-mix
//! generation (it is not the real rand's ChaCha12, so sequences differ
//! from upstream; all in-repo consumers only require determinism).

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (SplitMix64 in this stand-in).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-advance once so seed 0 doesn't emit a low-entropy first
            // value.
            let mut r = StdRng { state: seed ^ 0x5DEE_CE66_D123_4567 };
            let _ = r.next_u64();
            r
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // 53 (resp. 24) high bits give a uniform value in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods (the rand 0.10 spelling of `Rng`).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = a.random_range(0..17);
            assert!(x < 17);
            assert_eq!(x, b.random_range(0..17u32));
        }
        let f = a.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&f));
        let y = a.random_range(3u64..=3);
        assert_eq!(y, 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u64> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(1);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
